//! Cross-crate determinism: the same seed must produce the same bytes,
//! and the worker pool must never change them. This is the property that
//! makes the campaign engine safe to parallelize — every per-country
//! shard consumes its own derived RNG stream, so scheduling order cannot
//! leak into results.

use gamma::campaign::Options;
use gamma::core::Study;
use gamma::websim::WorldSpec;

fn reduced_study(seed: u64) -> Study {
    let mut spec = WorldSpec::paper_default(seed);
    spec.countries
        .retain(|c| ["EG", "RW", "TH", "AU", "US", "LB"].contains(&c.country.as_str()));
    spec.reg_sites_per_country = 20;
    spec.gov_sites_per_country = 6;
    Study::with_spec(spec)
}

#[test]
fn same_seed_renders_identically_twice() {
    let a = reduced_study(4242).run();
    let b = reduced_study(4242).run();
    assert_eq!(a.render_all(), b.render_all());
    assert_eq!(a.study, b.study);
    assert_eq!(a.runs, b.runs);
}

#[test]
fn parallel_study_is_byte_identical_to_sequential() {
    let study = reduced_study(4243);
    let sequential = study.run_with(&Options::with_workers(1)).unwrap();
    let parallel = study.run_with(&Options::with_workers(4)).unwrap();

    // The raw per-country outputs, the assembled dataset, and every
    // rendered figure/table must match byte for byte.
    assert_eq!(sequential.runs, parallel.runs);
    assert_eq!(sequential.study, parallel.study);
    assert_eq!(sequential.render_all(), parallel.render_all());

    // Only the ledger's execution facts may differ.
    assert_eq!(sequential.metrics.workers, 1);
    assert_eq!(parallel.metrics.workers, 4);
    assert_eq!(
        sequential.metrics.shards.len(),
        parallel.metrics.shards.len()
    );
}

#[test]
fn oversized_pools_change_nothing() {
    // More workers than shards: the pool clamps, the bytes hold.
    let study = reduced_study(4244);
    let small = study.run_with(&Options::with_workers(2)).unwrap();
    let huge = study.run_with(&Options::with_workers(64)).unwrap();
    assert_eq!(small.runs, huge.runs);
    assert_eq!(small.study, huge.study);
}

#[test]
fn run_is_the_one_worker_campaign() {
    let study = reduced_study(4245);
    let plain = study.run();
    let explicit = study.run_with(&Options::sequential()).unwrap();
    assert_eq!(plain.runs, explicit.runs);
    assert_eq!(plain.study, explicit.study);
    assert_eq!(plain.metrics.workers, 1);
}
