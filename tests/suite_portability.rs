//! Integration tests for the Gamma suite's portability layer: the same
//! study data must come out whether volunteers run Linux `traceroute` or
//! Windows `tracert`, because the suite normalizes both into one JSON
//! schema (§3 of the paper).

use gamma::geo::CountryCode;
use gamma::suite::{parse_linux, parse_windows, run_volunteer, GammaConfig, Os, Volunteer};
use gamma::websim::{worldgen, World, WorldSpec};
use std::sync::OnceLock;

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| worldgen::generate(&WorldSpec::paper_default(55)))
}

#[test]
fn os_specific_output_normalizes_to_the_same_schema() {
    let w = world();
    let config = GammaConfig::paper_default(55);
    // Same country, same seed, different OS: raw text differs, normalized
    // hop/RTT structure fields are identical in shape.
    let mut linux_v = Volunteer::for_country(w, CountryCode::new("TH"), 8).unwrap();
    linux_v.os = Os::Linux;
    let mut windows_v = linux_v.clone();
    windows_v.os = Os::Windows;

    let linux_ds = run_volunteer(w, &linux_v, &config);
    let windows_ds = run_volunteer(w, &windows_v, &config);

    assert_eq!(linux_ds.traceroutes.len(), windows_ds.traceroutes.len());
    let mut compared = 0;
    for (a, b) in linux_ds.traceroutes.iter().zip(&windows_ds.traceroutes) {
        assert_eq!(a.target_ip, b.target_ip);
        assert!(a.raw_text.starts_with("traceroute to"), "not Linux output");
        assert!(
            b.raw_text.contains("Tracing route to"),
            "not Windows output"
        );
        assert_eq!(a.normalized.dst, b.normalized.dst);
        assert_eq!(a.normalized.reached, b.normalized.reached);
        assert_eq!(a.normalized.hops.len(), b.normalized.hops.len());
        for (ha, hb) in a.normalized.hops.iter().zip(&b.normalized.hops) {
            assert_eq!(ha.ttl, hb.ttl);
            assert_eq!(ha.ip, hb.ip);
            match (ha.rtt_ms, hb.rtt_ms) {
                // Windows reports integer milliseconds; tolerance 1 ms.
                (Some(x), Some(y)) => assert!((x - y).abs() <= 1.0, "{x} vs {y}"),
                (None, None) => {}
                other => panic!("rtt presence mismatch {other:?}"),
            }
        }
        compared += 1;
    }
    assert!(compared > 100, "only {compared} traceroutes compared");
}

#[test]
fn raw_text_reparses_to_the_stored_normalization() {
    // The suite stores both the captured command output and the parsed
    // record; they must agree (the parser is on the critical path).
    let w = world();
    let config = GammaConfig::paper_default(56);
    for (cc, idx) in [("GB", 1), ("TH", 8)] {
        let v = Volunteer::for_country(w, CountryCode::new(cc), idx).unwrap();
        let ds = run_volunteer(w, &v, &config);
        for t in ds.traceroutes.iter().take(200) {
            let reparsed = match v.os {
                Os::Windows => parse_windows(&t.raw_text).expect("valid tracert text"),
                _ => parse_linux(&t.raw_text).expect("valid traceroute text"),
            };
            assert_eq!(reparsed.dst, t.normalized.dst);
            assert_eq!(reparsed.reached, t.normalized.reached);
            assert_eq!(reparsed.hops.len(), t.normalized.hops.len());
        }
    }
}

#[test]
fn checkpoint_resume_produces_a_suffix_of_the_full_run() {
    let w = world();
    let config = GammaConfig::paper_default(57);
    let v = Volunteer::for_country(w, CountryCode::new("LB"), 22).unwrap();
    let full = run_volunteer(w, &v, &config);
    for skip in [1, 7, 25] {
        let resumed = gamma::suite::suite::run_volunteer_from(w, &v, &config, skip);
        assert_eq!(resumed.loads.len() + skip, full.loads.len(), "skip {skip}");
    }
}

#[test]
fn whole_roster_runs_and_respects_modes() {
    let w = world();
    let datasets = gamma::suite::run_all_volunteers(w, &GammaConfig::paper_default(58));
    assert_eq!(datasets.len(), 23);
    let by = |cc: &str| {
        datasets
            .iter()
            .find(|d| d.volunteer.country.as_str() == cc)
            .unwrap()
    };
    // Egypt opted out of probes entirely.
    assert!(!by("EG").probes_enabled);
    assert!(by("EG").traceroutes.is_empty());
    // Firewalled countries record failed runs.
    for cc in ["AU", "IN", "QA", "JO"] {
        assert!(by(cc).probes_enabled, "{cc}");
        assert!(
            by(cc).traceroutes.iter().all(|t| !t.normalized.reached),
            "{cc} produced reaching traceroutes through a firewall"
        );
    }
    // Everyone else mostly reaches.
    let th = by("TH");
    let reached = th
        .traceroutes
        .iter()
        .filter(|t| t.normalized.reached)
        .count();
    assert!(reached * 2 > th.traceroutes.len());
}

#[test]
fn volume_counters_land_on_the_papers_scale() {
    let w = world();
    let datasets = gamma::suite::run_all_volunteers(w, &GammaConfig::paper_default(59));
    let observations: usize = datasets.iter().map(|d| d.dns.len()).sum();
    let traceroutes: usize = datasets.iter().map(|d| d.traceroutes.len()).sum();
    // §5: ≈26K domain observations, ≈25K volunteer traceroutes.
    assert!(
        (12_000..60_000).contains(&observations),
        "observations {observations}"
    );
    assert!(
        (8_000..60_000).contains(&traceroutes),
        "traceroutes {traceroutes}"
    );
    // §5's ordering: the USA ranks among the heaviest traceroute sources,
    // Saudi Arabia / Lebanon / Taiwan among the lightest.
    let mut ranked: Vec<(&str, usize)> = datasets
        .iter()
        .filter(|d| d.probes_enabled)
        .map(|d| (d.volunteer.country.as_str(), d.traceroutes.len()))
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1));
    let pos = |cc: &str| ranked.iter().position(|(c, _)| *c == cc).unwrap();
    let count = |cc: &str| ranked.iter().find(|(c, _)| *c == cc).unwrap().1;
    assert!(
        pos("US") < 11,
        "US ranks {} of {}: {ranked:?}",
        pos("US"),
        ranked.len()
    );
    assert!(
        pos("SA") + 7 >= ranked.len(),
        "SA ranks {} of {}: {ranked:?}",
        pos("SA"),
        ranked.len()
    );
    assert!(
        count("US") as f64 > count("SA") as f64 * 1.4,
        "US {} vs SA {}",
        count("US"),
        count("SA")
    );
}

#[test]
fn opt_outs_are_recorded_and_small() {
    let w = world();
    let datasets = gamma::suite::run_all_volunteers(w, &GammaConfig::paper_default(60));
    let total_targets: usize = datasets
        .iter()
        .map(|d| d.loads.len() + d.opted_out.len())
        .sum();
    let opted: usize = datasets.iter().map(|d| d.opted_out.len()).sum();
    let rate = opted as f64 / total_targets as f64;
    assert!(rate < 0.03, "opt-out rate {rate} (paper: 0.99%)");
}
