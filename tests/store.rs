//! Crash-consistency integration for the durable artifact plane: every
//! real artifact kind is truncated at every byte boundary and must load
//! a byte-identical prefix or report a typed torn/corrupt state — never
//! panic, never decode garbage. Plus the end-to-end drills: resuming a
//! campaign from a torn checkpoint, repairing a corrupted delta chain
//! with the fsck policy, and running whole campaigns with the
//! storage-fault axis armed.

use gamma::campaign::{CampaignCheckpoint, CampaignError, CheckpointState, Options};
use gamma::chaos::FaultPlan;
use gamma::core::Study;
use gamma::longitudinal::{LongitudinalStudy, RoundSnapshot, SnapshotStore};
use gamma::server::{restore_store, revs_path, save_store, RestoreOutcome, Retention, RevisionStore};
use gamma::store::{fsck, load_doc, save_doc, ArtifactKind, LoadError, WriteOptions};
use gamma::websim::WorldSpec;
use std::path::PathBuf;

/// A study small enough that its artifacts stay a few KB — the
/// every-byte truncation loops below re-parse the prefix at each cut.
fn tiny_study(seed: u64) -> Study {
    let mut spec = WorldSpec::paper_default(seed);
    spec.countries
        .retain(|c| ["RW", "US"].contains(&c.country.as_str()));
    spec.reg_sites_per_country = 6;
    spec.gov_sites_per_country = 2;
    Study::with_spec(spec)
}

/// A scratch directory under the system tmpdir; removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        let dir = std::env::temp_dir().join(format!("gamma-store-it-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        ScratchDir(dir)
    }

    fn path(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn campaign_checkpoints_survive_truncation_at_every_byte() {
    let scratch = ScratchDir::new("ckpt-trunc");
    let ckpt = scratch.path("campaign.ckpt");
    let study = tiny_study(9101);
    study
        .run_with(&Options::sequential().resumable(&ckpt))
        .expect("checkpointed campaign");

    let full_bytes = std::fs::read(&ckpt).expect("checkpoint bytes");
    let full = match CampaignCheckpoint::restore(&ckpt).expect("intact restore") {
        CheckpointState::Loaded { checkpoint, .. } => checkpoint,
        CheckpointState::Missing => panic!("finished campaign left no checkpoint"),
    };
    assert_eq!(full.completed.len(), 2, "one shard per country");

    let cut = scratch.path("cut.ckpt");
    for k in 0..=full_bytes.len() {
        std::fs::write(&cut, &full_bytes[..k]).expect("write prefix");
        match CampaignCheckpoint::restore(&cut) {
            // The durable prefix must be byte-identical to the original
            // shard records, in order — recovery never invents state.
            Ok(CheckpointState::Loaded { checkpoint, .. }) => {
                assert_eq!(checkpoint.master_seed, full.master_seed, "cut {k}");
                assert_eq!(checkpoint.plan, full.plan, "cut {k}");
                assert!(checkpoint.completed.len() <= full.completed.len());
                for (a, b) in checkpoint.completed.iter().zip(&full.completed) {
                    assert_eq!(a, b, "cut {k} altered a completed shard");
                }
            }
            Ok(CheckpointState::Missing) => {} // tear before the meta frame
            Err(CampaignError::Checkpoint { .. }) => {} // typed refusal
            Err(e) => panic!("cut {k}: unexpected error class {e:?}"),
        }
    }
    // The untruncated file restores every shard.
    std::fs::write(&cut, &full_bytes).expect("rewrite full");
    match CampaignCheckpoint::restore(&cut).expect("full restore") {
        CheckpointState::Loaded {
            checkpoint,
            recovered_torn,
        } => {
            assert!(!recovered_torn);
            assert_eq!(checkpoint, full);
        }
        CheckpointState::Missing => panic!("full file read as missing"),
    }
}

#[test]
fn torn_checkpoints_resume_byte_identically_and_corrupt_ones_refuse() {
    let scratch = ScratchDir::new("ckpt-resume");
    let ckpt = scratch.path("campaign.ckpt");
    let study = tiny_study(9102);
    let uninterrupted = study
        .run_with(&Options::sequential().resumable(&ckpt))
        .expect("first run");
    let full_bytes = std::fs::read(&ckpt).expect("checkpoint bytes");

    // A handful of truncation points spread across the file, including
    // mid-meta, mid-shard, and the exact end.
    let cuts = [
        1,
        full_bytes.len() / 4,
        full_bytes.len() / 2,
        3 * full_bytes.len() / 4,
        full_bytes.len() - 1,
        full_bytes.len(),
    ];
    for k in cuts {
        std::fs::write(&ckpt, &full_bytes[..k]).expect("truncate checkpoint");
        let resumed = study
            .run_with(&Options::sequential().resumable(&ckpt))
            .unwrap_or_else(|e| panic!("cut {k}: resume failed: {e:?}"));
        assert_eq!(resumed.runs, uninterrupted.runs, "cut {k}");
        assert_eq!(resumed.study, uninterrupted.study, "cut {k}");
        assert_eq!(resumed.render_all(), uninterrupted.render_all(), "cut {k}");
    }

    // A flipped bit inside a complete frame is corruption: the engine
    // must refuse to run rather than silently clobber the evidence.
    let mut corrupt = full_bytes.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x20;
    std::fs::write(&ckpt, &corrupt).expect("corrupt checkpoint");
    match study.run_with(&Options::sequential().resumable(&ckpt)) {
        Err(CampaignError::Checkpoint { .. }) => {}
        other => panic!("corrupt checkpoint accepted: ok={}", other.is_ok()),
    }
    assert_eq!(
        std::fs::read(&ckpt).expect("checkpoint bytes"),
        corrupt,
        "refusal must leave the corrupt file untouched for post-mortem"
    );
}

#[test]
fn snapshot_chains_survive_truncation_at_every_byte() {
    let scratch = ScratchDir::new("chain-trunc");
    let store_dir = scratch.path("snapshots");
    let lstudy = LongitudinalStudy::new(tiny_study(9103), 3);
    let store = SnapshotStore::open(&store_dir).expect("snapshot store");
    let results = lstudy
        .run_persisted(&Options::sequential(), &store)
        .expect("persisted run");

    let chain_bytes = std::fs::read(store.chain_path()).expect("chain bytes");
    let cut_dir = scratch.path("cut");
    let cut_store = SnapshotStore::open(&cut_dir).expect("cut store");
    for k in 0..=chain_bytes.len() {
        std::fs::write(cut_store.chain_path(), &chain_bytes[..k]).expect("write prefix");
        match cut_store.load_chain() {
            Ok(state) => {
                // Whatever survives is a byte-identical round prefix.
                assert!(state.len() <= results.snapshots.len(), "cut {k}");
                for (got, want) in state.snapshots.iter().zip(&results.snapshots) {
                    assert_eq!(got, want, "cut {k} altered a durable round");
                }
                if k < chain_bytes.len() {
                    assert!(
                        state.recovered_torn || state.len() < results.snapshots.len(),
                        "cut {k} silently passed as intact"
                    );
                }
            }
            Err(e) => {
                // Typed refusal (a cut landing so a stale length field
                // frames garbage bytes) — recover() would re-base.
                let _ = e;
            }
        }
    }

    // latest.snap under the same treatment: the single-doc reader either
    // returns the exact final round or a typed error.
    let latest_bytes = std::fs::read(store.latest_path()).expect("latest bytes");
    for k in 0..=latest_bytes.len() {
        std::fs::write(cut_store.latest_path(), &latest_bytes[..k]).expect("write prefix");
        match load_doc::<RoundSnapshot>(&cut_store.latest_path(), ArtifactKind::RoundSnapshot) {
            Ok(loaded) => {
                assert_eq!(
                    &loaded.value,
                    results.snapshots.last().expect("rounds ran"),
                    "cut {k} decoded a different snapshot"
                );
            }
            Err(
                LoadError::Missing
                | LoadError::TornEmpty
                | LoadError::Corrupt(_)
                | LoadError::VersionMismatch { .. },
            ) => {}
            Err(e) => panic!("cut {k}: unexpected error class {e:?}"),
        }
    }
}

#[test]
fn revision_stores_survive_truncation_at_every_byte() {
    let scratch = ScratchDir::new("revs-trunc");
    let path = revs_path(&scratch.0, 0);

    let mut store = RevisionStore::new(Retention::KeepAll);
    for epoch in 0..3u32 {
        store.record(RoundSnapshot {
            epoch,
            round_seed: 9104 + u64::from(epoch),
            countries: Vec::new(),
        });
    }
    save_store(&path, &store, &WriteOptions::default()).expect("save revisions");
    let full_bytes = std::fs::read(&path).expect("revision bytes");

    for k in 0..=full_bytes.len() {
        std::fs::write(&path, &full_bytes[..k]).expect("write prefix");
        match restore_store(&path, Retention::KeepAll) {
            RestoreOutcome::Fresh => {}
            RestoreOutcome::Restored { store: back, .. } => {
                let epochs = back.epochs();
                assert!(
                    [&[][..], &[0][..], &[0, 1][..], &[0, 1, 2][..]].contains(&epochs.as_slice()),
                    "cut {k}: epochs {epochs:?} are not a prefix"
                );
            }
            RestoreOutcome::Quarantined { renamed_to, .. } => {
                // The policy moved the evidence aside; put the scratch
                // file back for the next iteration.
                assert!(!path.exists(), "cut {k}: quarantine left the file");
                let _ = std::fs::remove_file(&renamed_to);
            }
        }
    }
}

#[test]
fn fsck_detects_and_rebase_repairs_a_corrupted_delta_chain() {
    let scratch = ScratchDir::new("fsck-rebase");
    let store_dir = scratch.path("snapshots");
    let lstudy = LongitudinalStudy::new(tiny_study(9105), 3);
    let store = SnapshotStore::open(&store_dir).expect("snapshot store");
    let uninterrupted = lstudy
        .run_persisted(&Options::sequential(), &store)
        .expect("persisted run");

    // Bit rot inside the first frame's payload: a complete frame fails
    // its checksum, which truncation cannot heal.
    let chain = store.chain_path();
    let mut bytes = std::fs::read(&chain).expect("chain bytes");
    bytes[24] ^= 0x08;
    std::fs::write(&chain, &bytes).expect("corrupt chain");

    let report = fsck::scan_dir(&store_dir).expect("fsck scan");
    assert!(report.problems() > 0, "fsck must flag the corrupt chain");
    assert!(
        report
            .needs_rebase()
            .iter()
            .any(|e| e.path.file_name().is_some_and(|n| n == "rounds.chain")),
        "the chain must be marked for re-base"
    );

    // The repair policy: re-base the chain from the intact latest.snap.
    match store.recover().expect("recover") {
        gamma::longitudinal::Recovery::Rebased(state) => {
            assert_eq!(state.len(), 1);
            assert_eq!(
                state.snapshots[0],
                *uninterrupted.snapshots.last().expect("rounds ran"),
                "re-base anchors on the newest durable round"
            );
        }
        other => panic!("expected a re-base, got {other:?}"),
    }
    let report = fsck::scan_dir(&store_dir).expect("post-repair scan");
    assert_eq!(report.problems(), 0, "repair must leave a clean store");

    // A resumed run over the repaired store is byte-identical and does
    // not disturb the re-based chain.
    let resumed = lstudy
        .run_persisted(&Options::sequential(), &store)
        .expect("resumed run");
    for (a, b) in resumed.rounds.iter().zip(&uninterrupted.rounds) {
        assert_eq!(a.runs, b.runs, "round {} datasets", a.epoch);
        assert_eq!(a.study, b.study);
    }
    assert_eq!(resumed.render_report(), uninterrupted.render_report());
    let state = store.load_chain().expect("chain loads after resume");
    assert_eq!(state.len(), 1, "already-durable rounds are not re-appended");
    assert_eq!(
        state.snapshots[0],
        *uninterrupted.snapshots.last().expect("rounds ran")
    );
}

#[test]
fn storage_chaos_campaigns_stay_byte_identical_across_worker_counts() {
    let scratch = ScratchDir::new("chaos-jobs");
    let mut study = tiny_study(9106);
    study.config.plan = FaultPlan::storage(9106);
    study.options.degraded_fallback = true;

    let sequential = study
        .run_with(&Options::sequential().resumable(&scratch.path("seq.ckpt")))
        .expect("sequential storage-chaos run");
    let parallel = study
        .run_with(&Options::with_workers(4).resumable(&scratch.path("par.ckpt")))
        .expect("parallel storage-chaos run");

    assert_eq!(sequential.runs, parallel.runs);
    assert_eq!(sequential.study, parallel.study);
    assert_eq!(sequential.render_all(), parallel.render_all());

    // Whatever the injected weather left on disk, the typed reader gets
    // a usable answer out of both checkpoints — no panics, no clobber.
    for name in ["seq.ckpt", "par.ckpt"] {
        let restored = CampaignCheckpoint::restore(&scratch.path(name));
        match restored {
            Ok(_) | Err(CampaignError::Checkpoint { .. }) => {}
            Err(e) => panic!("{name}: unexpected error class {e:?}"),
        }
    }
}

#[test]
fn armed_storage_faults_never_yield_a_silently_wrong_read() {
    let scratch = ScratchDir::new("fault-reads");
    let opts = WriteOptions::with_plan(FaultPlan::storage(9107));
    let faults_before = gamma::obs::global().counter("store.write_faults").get();

    let mut landed = 0usize;
    let mut faulted = 0usize;
    for i in 0..150u32 {
        let path = scratch.path(&format!("doc-{i}.gsf"));
        let doc = vec![format!("artifact {i}"), "x".repeat(64 + i as usize)];
        let wrote = save_doc(&path, ArtifactKind::Document, &doc, &opts);
        match load_doc::<Vec<String>>(&path, ArtifactKind::Document) {
            // The only value a read may ever produce is the one written.
            Ok(loaded) => {
                assert_eq!(loaded.value, doc, "doc {i} read back differently");
                landed += 1;
            }
            // Torn tails, dropped renames, full disks, and bit flips
            // (which may land anywhere, header included) all surface as
            // typed states — a write that reported success must at least
            // have left a file behind.
            Err(LoadError::Missing) => {
                assert!(wrote.is_err(), "doc {i}: write claimed success, nothing landed");
                faulted += 1;
            }
            Err(LoadError::Io(e)) => panic!("doc {i}: real I/O failure {e}"),
            Err(_) => faulted += 1,
        }
    }
    assert!(landed > 80, "most writes land ({landed}/150)");
    assert!(faulted > 5, "the storage profile must actually fault ({faulted}/150)");
    let faults_after = gamma::obs::global().counter("store.write_faults").get();
    assert!(
        faults_after > faults_before,
        "store.write_faults must count injected faults"
    );
}
