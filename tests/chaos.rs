//! Chaos-plane properties: fault injection must be deterministic,
//! degradation must be monotone for loss-type faults, and a fully
//! blacked-out country must never take the rest of the study down with
//! it — it degrades into the quarantine ledger instead.

use gamma::campaign::Options;
use gamma::chaos::{FaultPlan, FaultProfile};
use gamma::core::{Study, StudyResults};
use gamma::geo::CountryCode;
use gamma::websim::WorldSpec;

fn reduced_spec(seed: u64) -> WorldSpec {
    let mut spec = WorldSpec::paper_default(seed);
    spec.countries
        .retain(|c| ["RW", "US", "NZ"].contains(&c.country.as_str()));
    spec.reg_sites_per_country = 20;
    spec.gov_sites_per_country = 6;
    spec
}

#[test]
fn stress_faults_are_byte_identical_across_worker_counts() {
    let mut study = Study::with_spec(reduced_spec(909));
    study.config.plan = FaultPlan::stress(909);
    study.options.degraded_fallback = true;

    let seq = study.run_with(&Options::with_workers(1)).unwrap();
    let par = study.run_with(&Options::with_workers(4)).unwrap();

    assert_eq!(seq.runs, par.runs);
    assert_eq!(seq.quarantines, par.quarantines);
    assert_eq!(seq.study, par.study);
    assert_eq!(seq.render_all(), par.render_all());
    assert_eq!(seq.render_quality(), par.render_quality());

    // The stress plan must actually be biting, or the equality above
    // proves nothing about fault determinism.
    assert!(
        seq.quarantines.iter().any(|(_, q)| !q.is_empty()),
        "stress profile quarantined nothing"
    );
}

/// The stress profile with only its *loss* faults: failures that remove
/// records (failed DNS, killed pages, truncated captures, dropped
/// requests and probes). Perturbation faults — RTT spikes, filtered
/// hops, truncated rDNS, churned probes — corrupt measurements rather
/// than remove them, so they can flip individual constraint outcomes in
/// either direction and are exercised by their own unit tests instead.
fn loss_profile(factor: f64) -> FaultProfile {
    let mut p = FaultProfile::scaled(factor);
    p.dns.rdns_truncate_rate = 0.0;
    p.probe.hop_filter_rate = 0.0;
    p.probe.rtt_spike_rate = 0.0;
    p.probe.rtt_spike_ms = 0.0;
    p.atlas.churn_rate = 0.0;
    p
}

/// (unique addresses, constraint passes, geolocated addresses) summed
/// over all countries of a strict-mode run at the given loss severity.
fn loss_counts(factor: f64) -> (usize, usize, usize) {
    let mut study = Study::with_spec(reduced_spec(911));
    study.config.plan = FaultPlan {
        seed: 911,
        base: loss_profile(factor),
        overrides: Vec::new(),
    };
    let r = study.run();
    let sum = |f: &dyn Fn(&gamma::geoloc::FunnelStats) -> usize| -> usize {
        r.runs.iter().map(|(_, rep)| f(&rep.funnel)).sum()
    };
    (
        sum(&|fu| fu.unique_ips),
        sum(&|fu| fu.after_rdns_constraint),
        sum(&|fu| fu.local + fu.after_rdns_constraint),
    )
}

#[test]
fn raising_loss_rates_never_increases_what_survives() {
    // The oracle's fired-sets are nested in the rate (the decision hash
    // is rate-independent), and every loss fault strictly removes data,
    // so each funnel stage can only shrink as severity rises.
    let quiet = loss_counts(0.0);
    let mild = loss_counts(0.5);
    let harsh = loss_counts(1.0);
    for (a, b) in [(quiet, mild), (mild, harsh)] {
        assert!(a.0 >= b.0, "unique addresses grew: {a:?} -> {b:?}");
        assert!(a.1 >= b.1, "constraint passes grew: {a:?} -> {b:?}");
        assert!(a.2 >= b.2, "geolocated addresses grew: {a:?} -> {b:?}");
    }
    assert!(
        harsh.0 < quiet.0,
        "full-rate losses removed nothing: {quiet:?} -> {harsh:?}"
    );
}

#[test]
fn single_country_blackout_never_panics_and_stays_contained() {
    let rw = CountryCode::new("RW");
    let baseline = Study::with_spec(reduced_spec(913)).run();

    let mut chaos = Study::with_spec(reduced_spec(913));
    chaos.config.plan = FaultPlan::paper_default(913).blackout(rw);
    let results = chaos.run();

    // Every country still reports, including the blacked-out one.
    assert_eq!(results.runs.len(), 3);
    assert_eq!(results.quarantines.len(), 3);

    // The other countries are byte-identical to a fault-free run.
    for ((ds_a, rep_a), (ds_b, rep_b)) in baseline.runs.iter().zip(&results.runs) {
        if ds_a.volunteer.country == rw {
            continue;
        }
        assert_eq!(ds_a, ds_b, "{} dataset drifted", ds_a.volunteer.country);
        assert_eq!(rep_a, rep_b, "{} report drifted", ds_a.volunteer.country);
    }

    // The blacked-out vantage shipped nothing usable and owns every loss
    // in its quarantine ledger.
    let (_, q) = results
        .quarantines
        .iter()
        .find(|(c, _)| *c == rw)
        .expect("RW quarantine entry");
    assert!(!q.is_empty(), "blackout produced an empty quarantine");
    let (rw_ds, _) = results
        .runs
        .iter()
        .find(|(ds, _)| ds.volunteer.country == rw)
        .expect("RW run");
    assert_eq!(
        q.pages_killed(),
        rw_ds.loads.len(),
        "every page load should have been killed"
    );
    assert!(rw_ds.dns.iter().all(|o| o.ip.is_none()));

    // And the data-quality section accounts for it.
    let text = results.render_quality();
    assert!(text.contains("quarantined"), "quality report clean: {text}");
    assert!(text.contains("RW"));
}

#[test]
fn quiet_plan_reproduces_the_fault_free_study() {
    // A zero-rate plan must not perturb a byte of the legacy output:
    // the oracle is consulted but never fires, and the RNG streams are
    // consumed identically.
    let baseline = Study::with_spec(reduced_spec(917)).run();
    let mut quiet = Study::with_spec(reduced_spec(917));
    quiet.config.plan = FaultPlan::none(917);
    // `none` zeroes even the paper's ambient probe weather, so compare
    // against the paper profile explicitly instead.
    quiet.config.plan.base = FaultProfile::paper_default();
    let rerun = quiet.run();
    assert_eq!(baseline.runs, rerun.runs);
    assert_eq!(baseline.render_all(), rerun.render_all());
    let check = |r: &StudyResults| r.quarantines.iter().all(|(_, q)| q.is_empty());
    assert!(check(&baseline) && check(&rerun));
}
