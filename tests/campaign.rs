//! Campaign engine integration: checkpoint/resume, fault-tolerant
//! retries, and order-independence of per-country shards over a fixed
//! world.

use gamma::atlas::AtlasPlatform;
use gamma::campaign::{Campaign, CampaignEnv, CampaignError, FaultInjection, Options, RetryPolicy};
use gamma::core::Study;
use gamma::geo::CountryCode;
use gamma::geoloc::{ErrorSpec, GeoDatabase, PipelineOptions};
use gamma::suite::GammaConfig;
use gamma::websim::{worldgen, WorldSpec};
use std::path::PathBuf;

fn reduced_study(seed: u64) -> Study {
    let mut spec = WorldSpec::paper_default(seed);
    spec.countries
        .retain(|c| ["RW", "US", "NZ"].contains(&c.country.as_str()));
    spec.reg_sites_per_country = 16;
    spec.gov_sites_per_country = 5;
    Study::with_spec(spec)
}

/// A temp checkpoint path that cleans itself up.
struct CkptFile(PathBuf);

impl CkptFile {
    fn new(tag: &str) -> CkptFile {
        CkptFile(std::env::temp_dir().join(format!(
            "gamma-campaign-{}-{}.json",
            tag,
            std::process::id()
        )))
    }
}

impl Drop for CkptFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn killed_campaign_resumes_into_an_identical_dataset() {
    let study = reduced_study(1717);
    let uninterrupted = study.run();

    let ckpt = CkptFile::new("resume");

    // First run: the US shard (second of three) always faults, so the
    // campaign dies after Rwanda completes and checkpoints.
    let mut first = Options::sequential().resumable(&ckpt.0);
    first.retry = RetryPolicy::no_retry();
    first.inject = FaultInjection::none().fail_first(CountryCode::new("US"), u32::MAX);
    match study.run_with(&first) {
        Err(CampaignError::ShardFailed { country, .. }) => {
            assert_eq!(country, CountryCode::new("US"));
        }
        other => panic!("expected the injected kill, got {:?}", other.is_ok()),
    }
    assert!(ckpt.0.exists(), "checkpoint must survive the kill");

    // Second run: same options, fault cleared — resumes past Rwanda.
    let second = Options::sequential().resumable(&ckpt.0);
    let resumed = study.run_with(&second).unwrap();

    assert_eq!(resumed.metrics.resumed_shards, 1);
    assert!(
        resumed
            .metrics
            .shard(CountryCode::new("RW"))
            .unwrap()
            .resumed
    );
    assert!(
        !resumed
            .metrics
            .shard(CountryCode::new("US"))
            .unwrap()
            .resumed
    );

    // The assembled results are byte-identical to the uninterrupted run.
    assert_eq!(resumed.runs, uninterrupted.runs);
    assert_eq!(resumed.study, uninterrupted.study);
    assert_eq!(resumed.render_all(), uninterrupted.render_all());
}

#[test]
fn checkpoints_from_other_campaigns_are_rejected() {
    let ckpt = CkptFile::new("incompatible");

    let study = reduced_study(1818);
    study
        .run_with(&Options::sequential().resumable(&ckpt.0))
        .unwrap();

    // Same plan, different seed: must refuse rather than mix streams.
    let other = reduced_study(1819);
    match other.run_with(&Options::sequential().resumable(&ckpt.0)) {
        Err(CampaignError::IncompatibleCheckpoint(_)) => {}
        other => panic!("expected IncompatibleCheckpoint, got {:?}", other.is_ok()),
    }
}

#[test]
fn transient_faults_retry_without_changing_results() {
    let study = reduced_study(1919);
    let clean = study.run();

    let mut faulty = Options::with_workers(2);
    faulty.retry = RetryPolicy::immediate();
    faulty.inject = FaultInjection::none()
        .fail_first(CountryCode::new("RW"), 1)
        .fail_first(CountryCode::new("NZ"), 2);
    let retried = study.run_with(&faulty).unwrap();

    assert_eq!(retried.runs, clean.runs);
    assert_eq!(retried.study, clean.study);
    assert_eq!(
        retried
            .metrics
            .shard(CountryCode::new("RW"))
            .unwrap()
            .attempts,
        2
    );
    assert_eq!(
        retried
            .metrics
            .shard(CountryCode::new("NZ"))
            .unwrap()
            .attempts,
        3
    );
    assert_eq!(retried.metrics.totals().retries, 3);
}

#[test]
fn shard_results_are_independent_of_plan_order_on_a_fixed_world() {
    // The world itself is a function of the spec (generation threads one
    // RNG through the country list), so order independence is a property
    // of the *campaign layer*: over one generated world, a country's
    // shard must not care where it sits in the plan — or what else runs.
    let mut spec = WorldSpec::paper_default(2020);
    spec.countries
        .retain(|c| ["RW", "US", "NZ"].contains(&c.country.as_str()));
    spec.reg_sites_per_country = 16;
    spec.gov_sites_per_country = 5;
    let world = worldgen::generate(&spec);
    let geodb = GeoDatabase::build(&world, &ErrorSpec::default(), 2020);
    let atlas = AtlasPlatform::generate(2020);
    let config = GammaConfig::paper_default(2020);
    let env = CampaignEnv {
        world: &world,
        geodb: &geodb,
        atlas: &atlas,
        config: &config,
        pipeline_options: PipelineOptions::default(),
        master_seed: 2020,
    };

    let cc = CountryCode::new;
    let forward_plan = vec![cc("RW"), cc("US"), cc("NZ")];
    let reversed_plan = vec![cc("NZ"), cc("US"), cc("RW")];
    let forward = Campaign::with_plan(env, Options::sequential(), forward_plan)
        .run()
        .unwrap();
    let reversed = Campaign::with_plan(env, Options::sequential(), reversed_plan.clone())
        .run()
        .unwrap();
    let rw_alone = Campaign::with_plan(env, Options::sequential(), vec![cc("RW")])
        .run()
        .unwrap();

    let pick = |o: &gamma::campaign::CampaignOutcome, c: CountryCode| {
        o.shards
            .iter()
            .find(|d| d.marker.country == c)
            .map(|d| (d.dataset.clone(), d.report.clone()))
            .unwrap()
    };
    for c in [cc("RW"), cc("US"), cc("NZ")] {
        assert_eq!(
            pick(&forward, c),
            pick(&reversed, c),
            "{c} depends on plan order"
        );
    }
    assert_eq!(pick(&forward, cc("RW")), pick(&rw_alone, cc("RW")));

    // Results come back in plan order, whatever that order was.
    let order: Vec<CountryCode> = reversed.shards.iter().map(|d| d.marker.country).collect();
    assert_eq!(order, reversed_plan);
}
