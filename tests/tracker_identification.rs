//! Integration tests for the tracker-identification stack (§4.2): list
//! generation → ABP engine → manual labels → organization attribution,
//! evaluated against the world's ground truth.

use gamma::dns::DomainName;
use gamma::trackers::{
    generate_easylist, generate_easyprivacy, generate_regional_lists, Identification,
    TrackerClassifier,
};
use gamma::websim::{worldgen, World, WorldSpec};
use std::sync::OnceLock;

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| worldgen::generate(&WorldSpec::paper_default(66)))
}

fn d(s: &str) -> DomainName {
    DomainName::parse(s).unwrap()
}

#[test]
fn identification_recall_is_total_and_split_matches() {
    let w = world();
    let c = TrackerClassifier::for_world(w);
    let mut by_list = 0usize;
    let mut by_manual = 0usize;
    for t in &w.tracker_domains {
        match c.identify(&t.domain, &d("independent-news-site.com")) {
            Identification::ByList(_) => by_list += 1,
            Identification::ByManual => by_manual += 1,
            Identification::NotTracker => panic!("{} not identified", t.domain),
        }
    }
    // Paper: 505 total = 441 by lists + 64 by manual inspection.
    let total = by_list + by_manual;
    assert!((420..=580).contains(&total), "{total} tracker domains");
    assert!(by_list > by_manual * 4, "split {by_list}/{by_manual}");
    assert!(by_manual >= 30, "manual labels {by_manual}");
}

#[test]
fn identification_has_no_false_positives_on_sites() {
    let w = world();
    let c = TrackerClassifier::for_world(w);
    let mut checked = 0;
    for site in &w.sites {
        if w.is_tracker_domain(&site.domain) {
            continue; // google ccTLDs share tracker-owned eTLD+1 space
        }
        for host in &site.own_hosts {
            let id = c.identify(host, &site.domain);
            assert_eq!(id, Identification::NotTracker, "{host} flagged");
            checked += 1;
        }
    }
    assert!(checked > 3_000, "only {checked} first-party hosts checked");
}

#[test]
fn subdomain_requests_identify_like_their_parents() {
    let w = world();
    let c = TrackerClassifier::for_world(w);
    // Tracker FQDNs as the browser actually requests them.
    for fqdn in [
        "sync.crwdcntrl.net",
        "pixel.doubleclick.net",
        "cdn.googlesyndication.com",
        "deep.sub.taboola.com",
    ] {
        assert!(
            c.identify(&d(fqdn), &d("somesite.com")).is_tracker(),
            "{fqdn} missed"
        );
    }
}

#[test]
fn generated_lists_are_syntactically_valid_abp() {
    let w = world();
    for doc in [generate_easylist(w), generate_easyprivacy(w)] {
        assert!(doc.starts_with("[Adblock Plus 2.0]"));
        let set = gamma::trackers::FilterSet::parse_list(&doc);
        assert!(set.len() > 50, "only {} rules parsed", set.len());
        // Every non-comment line parses as a rule or a known skip.
        for line in doc.lines() {
            if line.is_empty() || line.starts_with('!') || line.starts_with('[') {
                continue;
            }
            assert!(
                gamma::trackers::Rule::parse(line).is_ok(),
                "unparseable rule: {line}"
            );
        }
    }
    let regional = generate_regional_lists(w);
    assert_eq!(regional.len(), 2, "India and Sri Lanka lists");
}

#[test]
fn org_attribution_matches_world_ground_truth() {
    let w = world();
    let c = TrackerClassifier::for_world(w);
    let mut checked = 0;
    for t in w.tracker_domains.iter().step_by(3) {
        let entry = c.orgs.lookup(&t.domain).expect("attributed");
        assert_eq!(entry.name, w.org(t.org).name, "{}", t.domain);
        checked += 1;
    }
    assert!(checked > 100);
}

#[test]
fn first_party_logic_follows_organization_identity() {
    let w = world();
    let c = TrackerClassifier::for_world(w);
    // Google tracker on a Google ccTLD property: first-party.
    assert!(c.is_first_party(w, &d("googletagmanager.com"), &d("google.com.eg")));
    // Google tracker on YouTube (also Google): first-party.
    assert!(c.is_first_party(w, &d("doubleclick.net"), &d("youtube.com")));
    // Google tracker on the BBC: third-party.
    assert!(!c.is_first_party(w, &d("doubleclick.net"), &d("bbc.com")));
    // Booking's own pixel on booking.com: first-party.
    assert!(c.is_first_party(w, &d("booking-pixel.net"), &d("booking.com")));
}

#[test]
fn brave_ablation_lists_vs_in_browser_blocking_agree() {
    // Brave blocks what the lists would flag: run the list engine over the
    // requests Chrome emitted and verify the flagged fraction roughly
    // matches Brave's suppression (both are driven by tracker status).
    let w = world();
    let c = TrackerClassifier::for_world(w);
    let vol =
        gamma::suite::Volunteer::for_country(w, gamma::geo::CountryCode::new("PK"), 17).unwrap();
    let chrome = gamma::suite::run_volunteer(w, &vol, &gamma::suite::GammaConfig::paper_default(9));
    let flagged = chrome
        .dns
        .iter()
        .filter(|o| {
            let request = gamma::dns::DomainName::parse(chrome.host(o.request)).unwrap();
            let site = gamma::dns::DomainName::parse(chrome.site_domain(o.site)).unwrap();
            c.identify(&request, &site).is_tracker()
        })
        .count();
    let total = chrome.dns.len();
    let frac = flagged as f64 / total as f64;
    assert!(
        (0.2..0.9).contains(&frac),
        "tracker fraction of requests {frac}"
    );
}
