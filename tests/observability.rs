//! The observability plane's cross-crate contract: counters are a pure
//! function of the seed, spans stay strictly outside the seeded data
//! path, and the `--metrics-out` report assembled from a real run passes
//! its own CI validation gate.
//!
//! Every test that runs a study takes `OBS_LOCK` — the instrument
//! registry is process-global, so concurrent studies in the same test
//! binary would mix their counter deltas.

use gamma::campaign::Options;
use gamma::core::Study;
use gamma::obs::{render_trace, MetricsReport};
use gamma::websim::WorldSpec;
use std::collections::BTreeMap;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn reduced_study(seed: u64) -> Study {
    let mut spec = WorldSpec::paper_default(seed);
    spec.countries
        .retain(|c| ["RW", "US", "NZ"].contains(&c.country.as_str()));
    spec.reg_sites_per_country = 15;
    spec.gov_sites_per_country = 5;
    Study::with_spec(spec)
}

#[test]
fn counter_deltas_are_a_pure_function_of_the_seed() {
    let _guard = OBS_LOCK.lock().unwrap();
    let registry = gamma::obs::global();

    let before_a = registry.snapshot();
    reduced_study(909).run();
    let after_a = registry.snapshot();

    let before_b = registry.snapshot();
    reduced_study(909).run();
    let after_b = registry.snapshot();

    // Deterministic counters (everything outside campaign.sched.*) must
    // match exactly between two identical sequential runs.
    let delta_a = after_a.counters_since(&before_a, true);
    let delta_b = after_b.counters_since(&before_b, true);
    assert_eq!(delta_a, delta_b);
    assert!(!delta_a.is_empty(), "a study run must move some counters");
    for ns in ["dns.", "geoloc.", "trackers.", "campaign."] {
        assert!(
            delta_a.keys().any(|k| k.starts_with(ns)),
            "no {ns}* counters moved: {delta_a:?}"
        );
    }
}

#[test]
fn assembled_report_passes_the_ci_gate_and_roundtrips() {
    let _guard = OBS_LOCK.lock().unwrap();
    let registry = gamma::obs::global();

    let before = registry.snapshot();
    let study = reduced_study(910);
    let started = std::time::Instant::now();
    let results = study.run_with(&Options::with_workers(1)).unwrap();
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let after = registry.snapshot();

    let totals = results.metrics.totals();
    let stages = BTreeMap::from([
        (
            "measure".to_owned(),
            totals.stage_wall.measure.as_secs_f64() * 1e3,
        ),
        (
            "geolocate".to_owned(),
            totals.stage_wall.geolocate.as_secs_f64() * 1e3,
        ),
        (
            "finalize".to_owned(),
            totals.stage_wall.finalize.as_secs_f64() * 1e3,
        ),
    ]);
    let report = MetricsReport::new(910, 1, 3, wall_ms, stages, &before, &after)
        .with_throughput("sites_per_sec", totals.sites_total as f64);

    // The acceptance bar: ≥ 10 distinct counters spanning the dns,
    // geoloc, trackers and campaign namespaces.
    report.validate(10).expect("report passes the CI gate");
    let parsed = MetricsReport::from_json(&report.to_json().unwrap()).unwrap();
    assert_eq!(parsed, report);
}

#[test]
fn tracing_does_not_perturb_the_seeded_data_path() {
    let _guard = OBS_LOCK.lock().unwrap();
    let registry = gamma::obs::global();

    registry.set_trace(false);
    registry.take_traces();
    let quiet = reduced_study(911).run();

    registry.set_trace(true);
    let traced = reduced_study(911).run();
    let roots = registry.take_traces();
    registry.set_trace(false);

    // Byte identity with the span sink armed: wall clock flows only
    // outward, never into the pipeline.
    assert_eq!(quiet.runs, traced.runs);
    assert_eq!(quiet.study, traced.study);
    assert_eq!(quiet.render_all(), traced.render_all());

    // The trace sink captured the run: one root per shard plus the
    // study-level build/assemble spans, each rendering a non-empty tree.
    assert!(!roots.is_empty(), "trace sink captured nothing");
    let names: Vec<&str> = roots.iter().map(|r| r.name.as_str()).collect();
    assert!(names.contains(&"shard"), "no shard spans in {names:?}");
    assert!(names.contains(&"study.build"), "no build span in {names:?}");
    for root in &roots {
        let text = render_trace(root);
        assert!(text.contains(&root.name));
        assert!(text.contains("ms"));
    }
}
