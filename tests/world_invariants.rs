//! World-level invariants, checked across several seeds. These are the
//! contracts the measurement pipeline silently relies on; a violation
//! would produce subtly wrong figures rather than crashes, so they get
//! their own sweep.

use gamma::dns::psl::registrable_domain;
use gamma::geo::{city, violates_sol};
use gamma::netsim::{synthesize_route, AccessQuality, FaultConfig, LatencyModel};
use gamma::websim::{worldgen, World, WorldSpec};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn worlds() -> Vec<World> {
    [3u64, 71, 2025]
        .iter()
        .map(|s| worldgen::generate(&WorldSpec::paper_default(*s)))
        .collect()
}

#[test]
fn steering_always_points_at_an_existing_replica() {
    for w in worlds() {
        for cs in &w.spec.countries {
            let vc = w.volunteer_city(cs.country).unwrap();
            for t in w.tracker_domains.iter().step_by(7) {
                let Some(&serve) = w.serving.get(&(t.org, cs.country)) else {
                    continue;
                };
                let rep = w
                    .resolve(&t.domain, vc)
                    .unwrap_or_else(|| panic!("{} unresolvable from {}", t.domain, cs.country));
                assert_eq!(rep.city, serve, "{}: {} off-steering", cs.country, t.domain);
                // The replica's address ground-truths to the serving city.
                assert_eq!(w.true_city(rep.addr), Some(serve));
            }
        }
    }
}

#[test]
fn every_resolved_address_is_in_the_registry() {
    for w in worlds() {
        for cs in &w.spec.countries {
            let vc = w.volunteer_city(cs.country).unwrap();
            let targets = &w.targets[&cs.country];
            for sid in targets.all().take(30) {
                let site = w.site(sid);
                for h in site.own_hosts.iter().chain(site.trackers.iter()) {
                    if let Some(rep) = w.resolve_fuzzy(h, vc) {
                        assert!(
                            w.true_city(rep.addr).is_some(),
                            "{h} resolved to unregistered {}",
                            rep.addr
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn simulated_rtts_never_violate_physics_at_the_true_location() {
    // The SOL constraint must only ever fire on WRONG claims.
    let model = LatencyModel::default();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    for w in worlds().iter().take(1) {
        for cs in w.spec.countries.iter().step_by(3) {
            let src = city(w.volunteer_city(cs.country).unwrap());
            for dep in w.hosting.iter().step_by(11) {
                let dst = city(dep.city);
                let route = synthesize_route(src, dst);
                for _ in 0..3 {
                    let rtt = model.sample(&route, AccessQuality::Poor, &mut rng).rtt_ms();
                    assert!(
                        !violates_sol(src.distance_km(dst), rtt),
                        "{} -> {}",
                        src.name,
                        dst.name
                    );
                }
            }
        }
    }
}

#[test]
fn traceroutes_to_true_locations_pass_the_source_constraint_mostly() {
    // End-to-end coherence of simulator + statistics: a traceroute to a
    // server's TRUE city, evaluated against that TRUE city as the claim,
    // passes the source constraint in the overwhelming majority of cases
    // (the paper's conservative rule costs a little genuine data, never
    // most of it).
    use gamma::geoloc::{evaluate_source, LatencyStats};
    let w = &worlds()[0];
    let model = LatencyModel::default();
    let stats = LatencyStats::default();
    let mut rng = ChaCha8Rng::seed_from_u64(10);
    let mut pass = 0usize;
    let mut total = 0usize;
    for cs in &w.spec.countries {
        let src_id = w.volunteer_city(cs.country).unwrap();
        let src = city(src_id);
        for dep in w.hosting.iter().step_by(17) {
            if dep.city == src_id {
                continue;
            }
            let dst = city(dep.city);
            let route = synthesize_route(src, dst);
            let result = gamma::netsim::run_traceroute(
                &route,
                dep.nets[0].nth(1).unwrap(),
                &model,
                cs.access,
                &FaultConfig::none(),
                &|c| w.router_ip_of(c),
                &mut rng,
            );
            let norm = gamma::suite::normalize::normalize_direct(&result);
            total += 1;
            if evaluate_source(&norm, src_id, dep.city, &stats, 0.8, true).passed() {
                pass += 1;
            }
        }
    }
    let rate = pass as f64 / total as f64;
    assert!(
        rate > 0.85,
        "genuine pass rate {rate} over {total} measurements"
    );
}

#[test]
fn target_lists_partition_cleanly() {
    for w in worlds() {
        for (cc, t) in &w.targets {
            let mut seen = std::collections::HashSet::new();
            for sid in t.all() {
                assert!(seen.insert(sid), "{cc}: {sid:?} appears twice in T_web");
            }
            for sid in &t.government {
                let s = w.site(*sid);
                assert_eq!(s.kind, gamma::websim::SiteKind::Government);
                assert_eq!(s.country, *cc, "{cc}: gov site {} foreign-owned", s.domain);
                assert!(
                    gamma::dns::is_gov_domain(&s.domain, *cc),
                    "{cc}: {} not under a gov TLD",
                    s.domain
                );
            }
            for sid in &t.regional {
                let s = w.site(*sid);
                assert_eq!(s.kind, gamma::websim::SiteKind::Regional);
            }
        }
    }
}

#[test]
fn every_tracker_domain_has_a_registrable_domain_and_owner() {
    for w in worlds().iter().take(1) {
        for t in &w.tracker_domains {
            assert!(
                registrable_domain(&t.domain).is_some() || t.domain.label_count() > 2,
                "{} unparseable",
                t.domain
            );
            let org = w.org_of_domain(&t.domain).expect("owned");
            assert_eq!(org, t.org, "{} attributed to the wrong org", t.domain);
        }
    }
}

#[test]
fn serving_respects_majors_serve_locally() {
    for w in worlds() {
        for cs in &w.spec.countries {
            if !cs.majors_serve_locally || !cs.org_dest_overrides.is_empty() {
                continue;
            }
            for org in &w.orgs {
                if org.kind != gamma::websim::OrgKind::MajorTracker {
                    continue;
                }
                let Some(&serve) = w.serving.get(&(org.id, cs.country)) else {
                    continue;
                };
                assert_eq!(
                    city(serve).country,
                    cs.country,
                    "{}: major {} serving from abroad despite majors_serve_locally",
                    cs.country,
                    org.name
                );
            }
        }
    }
}

#[test]
fn rdns_hints_never_contradict_ground_truth() {
    // PTR records are generated AT the deployment city, so a hint, when
    // present, must agree with the registry — the rDNS constraint's
    // soundness depends on this.
    for w in worlds().iter().take(2) {
        let mut checked = 0;
        for dep in w.hosting.iter().step_by(5) {
            for h in [1u64, 2, 3] {
                let Some(addr) = dep.nets[0].nth(h) else {
                    continue;
                };
                let Some(host) = w.rdns_of(addr) else {
                    continue;
                };
                let Some(hint) = gamma::dns::geo_hint(host) else {
                    continue;
                };
                assert_eq!(
                    hint.country,
                    city(dep.city).country,
                    "{host} hints {} but sits in {}",
                    hint.name,
                    city(dep.city).name
                );
                checked += 1;
            }
        }
        assert!(checked > 50, "only {checked} hinted PTRs checked");
    }
}
