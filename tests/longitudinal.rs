//! Longitudinal campaign integration: multi-round determinism across
//! worker counts, kill/resume across round boundaries, delta-snapshot
//! losslessness, and byte-reproducible diff reports.

use gamma::campaign::{CampaignCheckpoint, Options};
use gamma::chaos::FaultPlan;
use gamma::core::Study;
use gamma::longitudinal::{DeltaSnapshot, LongitudinalStudy};
use gamma::websim::WorldSpec;
use std::path::PathBuf;

fn reduced_study(seed: u64) -> Study {
    let mut spec = WorldSpec::paper_default(seed);
    spec.countries
        .retain(|c| ["RW", "US", "NZ"].contains(&c.country.as_str()));
    spec.reg_sites_per_country = 16;
    spec.gov_sites_per_country = 5;
    Study::with_spec(spec)
}

/// A temp checkpoint base path; cleans up the per-round files too.
struct CkptFile(PathBuf);

impl CkptFile {
    fn new(tag: &str) -> CkptFile {
        CkptFile(std::env::temp_dir().join(format!(
            "gamma-longitudinal-{}-{}.json",
            tag,
            std::process::id()
        )))
    }

    fn round(&self, epoch: u32) -> PathBuf {
        let mut s = self.0.clone().into_os_string();
        s.push(format!(".round{epoch}"));
        PathBuf::from(s)
    }
}

impl Drop for CkptFile {
    fn drop(&mut self) {
        for epoch in 0..8 {
            let _ = std::fs::remove_file(self.round(epoch));
        }
        let _ = std::fs::remove_file(&self.0);
    }
}

#[test]
fn three_rounds_are_worker_count_independent() {
    let lstudy = LongitudinalStudy::new(reduced_study(6021), 3);
    let sequential = lstudy.run();
    let parallel = lstudy
        .run_with(&Options::with_workers(4))
        .expect("parallel longitudinal campaign");

    assert_eq!(sequential.rounds.len(), 3);
    for (a, b) in sequential.rounds.iter().zip(&parallel.rounds) {
        assert_eq!(a.round_seed, b.round_seed);
        assert_eq!(a.runs, b.runs, "round {} datasets must match", a.epoch);
        assert_eq!(a.study, b.study);
        assert_eq!(a.quarantines, b.quarantines);
    }
    // Snapshots, deltas, and the rendered diff report are byte-identical.
    for (a, b) in sequential.snapshots.iter().zip(&parallel.snapshots) {
        assert_eq!(
            serde_json::to_string(a).expect("snapshot json"),
            serde_json::to_string(b).expect("snapshot json")
        );
    }
    for (a, b) in sequential.deltas.iter().zip(&parallel.deltas) {
        assert_eq!(
            serde_json::to_string(a).expect("delta json"),
            serde_json::to_string(b).expect("delta json")
        );
    }
    assert_eq!(sequential.render_report(), parallel.render_report());
    // Churn actually happened between rounds: the worlds differ, so at
    // least one round transition ships new rows.
    assert!(
        sequential.churn_log.iter().map(|c| c.total()).sum::<u32>() > 0,
        "default churn must move the world between rounds"
    );
}

#[test]
fn delta_chain_reconstructs_every_round() {
    let base = reduced_study(6022);
    let plain = base.run();
    let lstudy = LongitudinalStudy::new(base, 3);
    let results = lstudy.run();

    // Round 0 is the anchor: identical to a plain one-shot study.
    assert_eq!(results.rounds[0].runs, plain.runs);
    assert_eq!(results.rounds[0].study, plain.study);

    // The delta chain alone rebuilds every full snapshot losslessly.
    let mut prev = None;
    for (epoch, (delta, full)) in results.deltas.iter().zip(&results.snapshots).enumerate() {
        let decoded = delta.decode(prev).expect("delta decodes");
        assert_eq!(&decoded, full, "epoch {epoch} round-trips");
        prev = Some(full);
    }

    // Later rounds reuse most of the previous round's bytes.
    for (epoch, delta) in results.deltas.iter().enumerate().skip(1) {
        assert!(
            delta.rows_ref() > 0,
            "epoch {epoch} must back-reference unchanged rows"
        );
        let full = results.snapshots[epoch].json_bytes();
        assert!(
            delta.json_bytes() < full,
            "epoch {epoch}: delta ({} B) must be smaller than full ({} B)",
            delta.json_bytes(),
            full
        );
    }

    // A delta applied to the wrong base is rejected, not mis-decoded.
    let wrong_base = &results.snapshots[0];
    for delta in results.deltas.iter().skip(2) {
        let decoded = delta.decode(Some(wrong_base));
        let ok = decoded.map(|d| d == results.snapshots[2]).unwrap_or(false);
        assert!(!ok, "mismatched base must not silently reproduce round 2");
    }
}

#[test]
fn kill_mid_second_round_resumes_byte_identically() {
    let mut study = reduced_study(6023);
    // Hostile-Internet faults so quarantine ledgers are non-empty and
    // must survive checkpoint/resume.
    study.config.plan = FaultPlan::stress(6023);
    study.options.degraded_fallback = true;
    let lstudy = LongitudinalStudy::new(study, 3);

    let uninterrupted = lstudy.run();
    let quarantined: usize = uninterrupted
        .rounds
        .iter()
        .flat_map(|r| r.quarantines.iter())
        .map(|(_, q)| q.len())
        .sum();
    assert!(quarantined > 0, "stress profile must quarantine rows");

    // First process: killed while the second round (epoch 1) was in
    // flight — its checkpoint holds 2 of 3 shards; round 2 never started.
    let ckpt = CkptFile::new("kill");
    let first = lstudy
        .run_with(&Options::sequential().resumable(&ckpt.0))
        .expect("checkpointed longitudinal campaign");
    assert_eq!(first.render_report(), uninterrupted.render_report());
    let mut partial = CampaignCheckpoint::load(&ckpt.round(1)).expect("round-1 checkpoint");
    assert_eq!(partial.completed.len(), 3);
    partial.completed.pop();
    partial.save(&ckpt.round(1)).expect("tamper round-1");
    std::fs::remove_file(ckpt.round(2)).expect("drop round-2 checkpoint");

    // Second process: resumes round 0 wholesale, redoes one shard of
    // round 1, reruns round 2 — byte-identical to the uninterrupted run.
    let resumed = lstudy
        .run_with(&Options::sequential().resumable(&ckpt.0))
        .expect("resumed longitudinal campaign");
    assert_eq!(resumed.rounds.len(), uninterrupted.rounds.len());
    for (a, b) in resumed.rounds.iter().zip(&uninterrupted.rounds) {
        assert_eq!(a.runs, b.runs, "round {} datasets", a.epoch);
        assert_eq!(a.quarantines, b.quarantines, "round {} quarantine", a.epoch);
        assert_eq!(a.study, b.study);
    }
    for (a, b) in resumed.snapshots.iter().zip(&uninterrupted.snapshots) {
        assert_eq!(a, b);
    }
    assert_eq!(resumed.render_report(), uninterrupted.render_report());
    assert_eq!(
        resumed.rounds[0].metrics.resumed_shards, 3,
        "round 0 restores every shard from its finished checkpoint"
    );
    assert_eq!(
        resumed.rounds[1].metrics.resumed_shards, 2,
        "round 1 restores the two checkpointed shards"
    );
    assert_eq!(resumed.rounds[2].metrics.resumed_shards, 0);
}

#[test]
fn resuming_with_more_rounds_extends_the_campaign() {
    let lstudy3 = LongitudinalStudy::new(reduced_study(6024), 3);
    let uninterrupted = lstudy3.run();

    // First process asked for 2 rounds; a later one extends to 3. Rounds
    // 0 and 1 restore from their checkpoints, round 2 runs fresh.
    let ckpt = CkptFile::new("extend");
    let lstudy2 = LongitudinalStudy::new(reduced_study(6024), 2);
    lstudy2
        .run_with(&Options::sequential().resumable(&ckpt.0))
        .expect("two-round campaign");
    let extended = lstudy3
        .run_with(&Options::sequential().resumable(&ckpt.0))
        .expect("extended campaign");
    for (a, b) in extended.rounds.iter().zip(&uninterrupted.rounds) {
        assert_eq!(a.runs, b.runs, "round {} datasets", a.epoch);
    }
    assert_eq!(extended.render_report(), uninterrupted.render_report());
    assert_eq!(extended.rounds[0].metrics.resumed_shards, 3);
    assert_eq!(extended.rounds[1].metrics.resumed_shards, 3);
    assert_eq!(extended.rounds[2].metrics.resumed_shards, 0);
}

#[test]
fn longitudinal_counters_track_rounds_and_snapshot_bytes() {
    let rounds_before = gamma::obs::global().counter("longitudinal.rounds").get();
    let full_before = gamma::obs::global()
        .counter("longitudinal.snapshot.full_bytes")
        .get();
    let results = LongitudinalStudy::new(reduced_study(6025), 2).run();
    let rounds_after = gamma::obs::global().counter("longitudinal.rounds").get();
    let full_after = gamma::obs::global()
        .counter("longitudinal.snapshot.full_bytes")
        .get();
    assert!(rounds_after >= rounds_before + 2);
    assert!(full_after >= full_before + results.full_bytes() as u64);
    assert!(results.delta_bytes() < results.full_bytes());
    // A re-encode of the recorded rounds reproduces the stored deltas.
    let again = DeltaSnapshot::encode(None, &results.snapshots[0]);
    assert_eq!(again, results.deltas[0]);
}
