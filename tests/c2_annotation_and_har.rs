//! Integration of the auxiliary C1/C2 capabilities: HAR recording and the
//! annotation APIs, exercised over a real volunteer run.

use gamma::browser::{har_from_load, load_page, BrowserConfig};
use gamma::geo::CountryCode;
use gamma::suite::{Annotator, GammaConfig, ProbeKind, Volunteer};
use gamma::websim::{worldgen, World, WorldSpec};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::OnceLock;

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| worldgen::generate(&WorldSpec::paper_default(44)))
}

#[test]
fn har_documents_cover_a_full_crawl() {
    let w = world();
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let targets = &w.targets[&CountryCode::new("TH")];
    let mut pages = 0;
    let mut entries = 0;
    for sid in targets.all().take(40) {
        let load = load_page(w.site(sid), &BrowserConfig::paper_default(), 1.0, &mut rng);
        let har = har_from_load(&load, "2024-03-16T00:00:00Z");
        let js = serde_json::to_string(&har).expect("HAR serializes");
        assert!(js.contains("\"log\""));
        pages += har.log.pages.len();
        entries += har.log.entries.len();
    }
    assert_eq!(pages, 40);
    assert!(entries > 150, "only {entries} HAR entries over 40 pages");
}

#[test]
fn annotation_covers_every_observed_address() {
    let w = world();
    let v = Volunteer::for_country(w, CountryCode::new("RW"), 3).unwrap();
    let ds = gamma::suite::run_volunteer(w, &v, &GammaConfig::paper_default(2));
    let annotator = Annotator::new(w);
    let mut annotated = 0;
    for ip in ds.unique_ips() {
        let ann = annotator
            .annotate(ip)
            .unwrap_or_else(|| panic!("{ip} unannotatable"));
        assert!(!ann.as_name.is_empty());
        annotated += 1;
    }
    assert!(annotated > 200, "only {annotated} addresses annotated");
}

#[test]
fn cloud_census_shows_the_aws_dominance_of_section_6_5() {
    // "a majority of tracking networks are hosted within AWS or Google
    // Cloud ... 50 trackers hosted on AWS and 5 on Google Cloud", with the
    // Rwanda/Uganda trackers on Amazon addresses in Nairobi.
    let w = world();
    let annotator = Annotator::new(w);
    let mut tracker_ips = Vec::new();
    for cc in ["RW", "UG"] {
        let country = CountryCode::new(cc);
        let vc = w.volunteer_city(country).unwrap();
        for t in &w.tracker_domains {
            if let Some(rep) = w.resolve(&t.domain, vc) {
                if gamma::geo::city(rep.city).country != country {
                    tracker_ips.push(rep.addr);
                }
            }
        }
    }
    let census = annotator.cloud_census(tracker_ips.iter().copied());
    assert!(census.aws > census.google_cloud * 3, "{census:?}");
    assert!(census.aws > 20, "{census:?}");

    // And specifically: AWS-hosted trackers in Nairobi serving East Africa.
    let nairobi = gamma::geo::city_by_name("Nairobi").unwrap().id;
    let vc = w.volunteer_city(CountryCode::new("RW")).unwrap();
    let aws_in_nairobi = w
        .tracker_domains
        .iter()
        .filter_map(|t| w.resolve(&t.domain, vc))
        .filter(|rep| rep.city == nairobi)
        .filter_map(|rep| annotator.annotate(rep.addr))
        .filter(|a| a.as_name == "AMAZON-02")
        .count();
    assert!(
        aws_in_nairobi > 5,
        "{aws_in_nairobi} AWS-hosted Nairobi trackers"
    );
}

#[test]
fn probe_backends_match_volunteer_os() {
    let w = world();
    for (i, cs) in w.spec.countries.iter().enumerate() {
        let v = Volunteer::for_country(w, cs.country, i).unwrap();
        let backend = gamma::suite::select_backend(v.os, ProbeKind::Traceroute);
        match v.os {
            gamma::suite::Os::Windows => {
                assert_eq!(backend, gamma::suite::Backend::OsCommand);
                let cmd = gamma::suite::command_line(
                    v.os,
                    ProbeKind::Traceroute,
                    std::net::Ipv4Addr::new(20, 0, 0, 1),
                )
                .unwrap();
                assert!(cmd.starts_with("tracert"));
            }
            _ => assert_eq!(backend, gamma::suite::Backend::Scapy),
        }
    }
}
