//! The gamma-model contract across the whole pipeline: symbol ids are a
//! pure function of the seed (same assignment under any worker count and
//! across checkpoint/resume), the interned dataset round-trips through
//! serde with its table serialized once, and the decision cache bounds
//! filter-engine invocations by unique hosts rather than raw requests.
//!
//! Tests that read the process-global instrument registry take
//! `OBS_LOCK` so concurrent studies in this binary don't mix deltas.

use gamma::campaign::{CampaignError, FaultInjection, Options, RetryPolicy};
use gamma::core::Study;
use gamma::geo::CountryCode;
use gamma::suite::VolunteerDataset;
use gamma::websim::WorldSpec;
use std::path::PathBuf;
use std::sync::Mutex;

static OBS_LOCK: Mutex<()> = Mutex::new(());

fn reduced_study(seed: u64) -> Study {
    let mut spec = WorldSpec::paper_default(seed);
    spec.countries
        .retain(|c| ["RW", "US", "NZ"].contains(&c.country.as_str()));
    spec.reg_sites_per_country = 15;
    spec.gov_sites_per_country = 5;
    Study::with_spec(spec)
}

/// A temp checkpoint path that cleans itself up.
struct CkptFile(PathBuf);

impl CkptFile {
    fn new(tag: &str) -> CkptFile {
        CkptFile(std::env::temp_dir().join(format!(
            "gamma-model-{}-{}.json",
            tag,
            std::process::id()
        )))
    }
}

impl Drop for CkptFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn assert_same_symbols(
    a: &[(VolunteerDataset, gamma::geoloc::GeolocReport)],
    b: &[(VolunteerDataset, gamma::geoloc::GeolocReport)],
) {
    assert_eq!(a.len(), b.len());
    for ((da, _), (db, _)) in a.iter().zip(b) {
        assert_eq!(
            da.volunteer.country, db.volunteer.country,
            "shard order must match"
        );
        // Interner equality is string-table equality: every id maps to
        // the same text in both runs.
        assert_eq!(
            da.symbols, db.symbols,
            "{}: symbol assignment diverged",
            da.volunteer.country
        );
        for (oa, ob) in da.dns.iter().zip(&db.dns) {
            assert_eq!(da.host(oa.request), db.host(ob.request));
            assert_eq!(da.site_domain(oa.site), db.site_domain(ob.site));
        }
    }
}

#[test]
fn symbol_ids_are_identical_across_worker_counts() {
    let _guard = OBS_LOCK.lock().unwrap();
    let study = reduced_study(2121);
    let sequential = study.run_with(&Options::sequential()).unwrap();
    let parallel = study.run_with(&Options::with_workers(4)).unwrap();
    assert_same_symbols(&sequential.runs, &parallel.runs);
    assert_eq!(sequential.render_all(), parallel.render_all());
}

#[test]
fn checkpoint_resume_reproduces_identical_symbol_ids() {
    let _guard = OBS_LOCK.lock().unwrap();
    let study = reduced_study(2222);
    let uninterrupted = study.run();

    let ckpt = CkptFile::new("resume-ids");
    let mut first = Options::sequential().resumable(&ckpt.0);
    first.retry = RetryPolicy::no_retry();
    first.inject = FaultInjection::none().fail_first(CountryCode::new("US"), u32::MAX);
    match study.run_with(&first) {
        Err(CampaignError::ShardFailed { country, .. }) => {
            assert_eq!(country, CountryCode::new("US"));
        }
        other => panic!("expected the injected kill, got {:?}", other.is_ok()),
    }

    let resumed = study
        .run_with(&Options::sequential().resumable(&ckpt.0))
        .unwrap();
    // The Rwanda shard comes back from the checkpoint (interner and all);
    // the rest is re-measured. Ids must agree either way.
    assert_same_symbols(&resumed.runs, &uninterrupted.runs);
    assert_eq!(resumed.render_all(), uninterrupted.render_all());
}

#[test]
fn interned_dataset_round_trips_through_serde() {
    let _guard = OBS_LOCK.lock().unwrap();
    let study = reduced_study(2323);
    let results = study.run();
    let (ds, _) = &results.runs[0];
    assert!(!ds.dns.is_empty());

    let js = serde_json::to_string(ds).unwrap();
    let restored: VolunteerDataset = serde_json::from_str(&js).unwrap();
    assert_eq!(&restored, ds);
    for obs in &restored.dns {
        assert_eq!(restored.host(obs.request), ds.host(obs.request));
        assert_eq!(restored.site_domain(obs.site), ds.site_domain(obs.site));
    }

    // The table ships once: the DNS observations themselves carry only
    // ids (no hostname text), and each repeated host has exactly one
    // entry in the serialized symbol table.
    let (repeat, n) = ds
        .dns
        .iter()
        .fold(std::collections::HashMap::new(), |mut m, o| {
            *m.entry(o.request).or_insert(0usize) += 1;
            m
        })
        .into_iter()
        .max_by_key(|(sym, n)| (*n, std::cmp::Reverse(*sym)))
        .unwrap();
    assert!(n > 1, "expected at least one repeated request");
    let host = ds.host(repeat);
    let dns_js = serde_json::to_string(&ds.dns).unwrap();
    assert!(!dns_js.contains(host), "observations must be id-only");
    let table_js = serde_json::to_string(&ds.symbols).unwrap();
    assert_eq!(table_js.matches(&format!("\"{host}\"")).count(), 1);
}

#[test]
fn classification_touches_the_filter_engine_once_per_unique_host() {
    let _guard = OBS_LOCK.lock().unwrap();
    let registry = gamma::obs::global();

    let study = reduced_study(2424);
    let before = registry.snapshot();
    let results = study.run();
    let after = registry.snapshot();
    let delta = after.counters_since(&before, true);

    let evaluations = delta.get("trackers.abp.evaluations").copied().unwrap_or(0);
    let unique_hosts: usize = results
        .runs
        .iter()
        .map(|(ds, _)| ds.unique_domains().len())
        .sum();
    let requests: usize = results.runs.iter().map(|(ds, _)| ds.dns.len()).sum();

    assert!(evaluations > 0, "the engine must run at least once");
    assert!(
        evaluations <= unique_hosts as u64,
        "engine ran {evaluations} times for {unique_hosts} unique hosts"
    );
    assert!(
        (evaluations as usize) < requests,
        "memoization must beat the raw request count ({requests})"
    );
    let hits = delta
        .get("trackers.classify.cache_hits")
        .copied()
        .unwrap_or(0);
    assert!(hits > 0, "repeat hosts must come from the cache");
}
