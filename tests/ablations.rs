//! Ablation studies over the geolocation framework — the design-choice
//! experiments DESIGN.md calls out. Each toggles one element of §4.1's
//! multi-constraint method and measures the effect on foreign-server
//! identification precision against ground truth.

use gamma::core::Study;
use gamma::geoloc::{DiscardReason, ErrorSpec};
use gamma::websim::WorldSpec;

fn reduced_spec(seed: u64) -> WorldSpec {
    let mut spec = WorldSpec::paper_default(seed);
    // A mix of high-foreign, zero-foreign and firewalled countries keeps
    // the ablations fast while exercising every code path.
    spec.countries
        .retain(|c| ["RW", "PK", "US", "AU", "NZ"].contains(&c.country.as_str()));
    spec
}

fn precision_with(configure: impl Fn(&mut Study)) -> f64 {
    let mut study = Study::with_spec(reduced_spec(31));
    configure(&mut study);
    let results = study.run();
    results.overall_foreign_precision().unwrap_or(1.0)
}

#[test]
fn ablation_all_constraints_vs_none() {
    let full = precision_with(|_| {});
    let none = precision_with(|s| {
        s.options.enable_source_constraint = false;
        s.options.enable_destination_constraint = false;
        s.options.enable_rdns_constraint = false;
    });
    assert!(full > 0.97, "full framework precision {full}");
    assert!(
        none < full - 0.15,
        "database-only precision {none} should fall well below {full}"
    );
}

#[test]
fn ablation_constraints_are_partially_redundant_but_jointly_necessary() {
    // The latency constraints overlap (a probe near the claimed city
    // catches most of what the source-side check catches), so removing
    // one leaves precision high — but removing both latency checks leaves
    // only rDNS, which cannot see hint-free hosts, and precision drops.
    let full = precision_with(|_| {});
    let no_source = precision_with(|s| s.options.enable_source_constraint = false);
    let no_dest = precision_with(|s| s.options.enable_destination_constraint = false);
    let rdns_only = precision_with(|s| {
        s.options.enable_source_constraint = false;
        s.options.enable_destination_constraint = false;
    });
    assert!(full > 0.97, "full {full}");
    assert!(
        no_source > 0.90,
        "single-constraint resilience: {no_source}"
    );
    assert!(no_dest > 0.90, "single-constraint resilience: {no_dest}");
    assert!(
        rdns_only < full - 0.05,
        "rDNS alone ({rdns_only}) must fall short of the full framework ({full})"
    );
}

/// Fraction of confirmed-non-local addresses whose *claimed country*
/// matches the ground-truth country — stricter than foreign/local
/// precision, and the metric the rDNS constraint protects.
fn country_attribution_accuracy(results: &gamma::core::StudyResults) -> f64 {
    let mut total = 0usize;
    let mut correct = 0usize;
    for (_, report) in &results.runs {
        let mut seen = std::collections::HashSet::new();
        for v in report.confirmed() {
            if !seen.insert(v.ip) {
                continue;
            }
            if let gamma::geoloc::Classification::ConfirmedNonLocal { claimed, .. } =
                v.classification
            {
                total += 1;
                let claimed_cc = gamma::geo::city(claimed).country;
                if results.world.true_country(v.ip) == Some(claimed_cc) {
                    correct += 1;
                }
            }
        }
    }
    correct as f64 / total.max(1) as f64
}

#[test]
fn ablation_rdns_protects_country_attribution() {
    // Hinted border-proximity errors (the paper's Amsterdam/Zurich class)
    // sit inside every latency budget: a server claimed in Brussels that
    // really sits in Paris is still "foreign", so foreign/local precision
    // cannot see the error — but the *country attribution* behind Figures
    // 5-7 is wrong. Only the rDNS constraint catches these.
    let with_rdns = Study::with_spec(reduced_spec(31)).run();
    let mut no_rdns_study = Study::with_spec(reduced_spec(31));
    no_rdns_study.options.enable_rdns_constraint = false;
    let without = no_rdns_study.run();
    let a = country_attribution_accuracy(&with_rdns);
    let b = country_attribution_accuracy(&without);
    assert!(
        a > b,
        "rDNS off: attribution accuracy {b} should be below {a}"
    );
    assert!(a > 0.93, "with rDNS, attribution accuracy {a}");
}

#[test]
fn ablation_latency_floor_sweep() {
    // §4.1.1's conservative 80% rule: on a FIXED set of measurements the
    // pass count is exactly monotone in the floor (end-to-end runs add
    // RNG-stream noise from the probe traceroutes, so the sweep evaluates
    // the constraint directly).
    use gamma::geoloc::{evaluate_source, LatencyStats};
    use gamma::suite::{run_volunteer, GammaConfig, Volunteer};
    use gamma::websim::worldgen;

    let world = worldgen::generate(&reduced_spec(32));
    let v = Volunteer::for_country(&world, gamma::geo::CountryCode::new("PK"), 17).unwrap();
    let ds = run_volunteer(&world, &v, &GammaConfig::paper_default(32));
    let stats = LatencyStats::default();
    let claimed = gamma::geo::city_by_name("Frankfurt").unwrap().id;
    let mut counts = Vec::new();
    for floor in [0.0, 0.4, 0.8, 1.1, 2.0] {
        let pass = ds
            .traceroutes
            .iter()
            .filter(|t| {
                evaluate_source(&t.normalized, v.city, claimed, &stats, floor, true).passed()
            })
            .count();
        counts.push((floor, pass));
    }
    for w in counts.windows(2) {
        assert!(w[0].1 >= w[1].1, "not monotone: {counts:?}");
    }
    assert!(
        counts[0].1 > counts[4].1,
        "the rule has no teeth: {counts:?}"
    );
}

#[test]
fn ablation_first_hop_subtraction_is_a_deterministic_superset() {
    // Raw latency (no cleaning) is always >= cleaned latency, and both the
    // SOL bound and the 80% floor pass monotonically in latency — so on
    // identical measurements, everything the cleaned evaluation passes,
    // the raw evaluation passes too (the cleaning only ever makes the
    // constraint stricter, i.e. more conservative).
    use gamma::geoloc::{evaluate_source, LatencyStats};
    use gamma::suite::{run_volunteer, GammaConfig, Volunteer};
    use gamma::websim::worldgen;

    let world = worldgen::generate(&reduced_spec(40));
    let v = Volunteer::for_country(&world, gamma::geo::CountryCode::new("RW"), 3).unwrap();
    let ds = run_volunteer(&world, &v, &GammaConfig::paper_default(40));
    let stats = LatencyStats::default();
    let claimed = gamma::geo::city_by_name("Paris").unwrap().id;
    let mut cleaned_pass = 0;
    let mut raw_pass = 0;
    let mut violations = 0;
    for t in &ds.traceroutes {
        let c = evaluate_source(&t.normalized, v.city, claimed, &stats, 0.8, true);
        let r = evaluate_source(&t.normalized, v.city, claimed, &stats, 0.8, false);
        if c.passed() {
            cleaned_pass += 1;
            if !r.passed() {
                violations += 1;
            }
        }
        if r.passed() {
            raw_pass += 1;
        }
    }
    assert_eq!(violations, 0, "cleaned pass set must be a subset of raw");
    assert!(raw_pass >= cleaned_pass);
    assert!(cleaned_pass > 0, "no measurements passed at all");
}

#[test]
fn ablation_perfect_database_needs_no_rescue() {
    // With a perfect geolocation database, the constraints should discard
    // far less: every claim is genuine.
    let noisy = Study::with_spec(reduced_spec(34)).run();
    let mut perfect_study = Study::with_spec(reduced_spec(34));
    perfect_study.error_spec = ErrorSpec::perfect();
    let perfect = perfect_study.run();

    let discard_rate = |r: &gamma::core::StudyResults| -> f64 {
        let cand: usize = r
            .runs
            .iter()
            .map(|(_, rep)| rep.funnel.nonlocal_candidates)
            .sum();
        let kept: usize = r
            .runs
            .iter()
            .map(|(_, rep)| rep.funnel.after_rdns_constraint)
            .sum();
        1.0 - kept as f64 / cand.max(1) as f64
    };
    assert!(
        discard_rate(&perfect) < discard_rate(&noisy),
        "perfect {} vs noisy {}",
        discard_rate(&perfect),
        discard_rate(&noisy)
    );
    // And precision is perfect by construction.
    assert!(perfect.overall_foreign_precision().unwrap_or(1.0) > 0.999);
}

#[test]
fn discard_reasons_cover_the_documented_failure_modes() {
    // A full run must exercise unreachable traceroutes, SOL violations,
    // the 80% rule, destination inconsistencies and rDNS contradictions —
    // every reason §4.1 describes.
    let results = Study::with_spec(reduced_spec(35)).run();
    let mut seen = std::collections::HashSet::new();
    for (_, report) in &results.runs {
        for v in &report.verdicts {
            if let gamma::geoloc::Classification::Discarded { reason, .. } = &v.classification {
                seen.insert(*reason);
            }
        }
    }
    for expected in [
        DiscardReason::SourceTooFast,
        DiscardReason::DestInconsistent,
        DiscardReason::RdnsContradiction,
    ] {
        assert!(seen.contains(&expected), "never saw {expected:?}: {seen:?}");
    }
    assert!(
        seen.contains(&DiscardReason::SourceUnreached)
            || seen.contains(&DiscardReason::DestUnreached),
        "no unreachable-traceroute discards: {seen:?}"
    );
}

#[test]
fn documented_google_incidents_are_caught() {
    // §4.1.3's Pakistan case: Google addresses claimed at Al Fujairah with
    // rDNS evidence elsewhere must NOT survive to confirmed-non-local with
    // a UAE location.
    let mut spec = WorldSpec::paper_default(36);
    spec.countries.retain(|c| c.country.as_str() == "PK");
    let results = Study::with_spec(spec).run();
    let fujairah = gamma::geo::city_by_name("Al Fujairah").unwrap().id;
    for (_, report) in &results.runs {
        for v in report.confirmed() {
            if let gamma::geoloc::Classification::ConfirmedNonLocal { claimed, .. } =
                v.classification
            {
                if claimed == fujairah {
                    // A confirmed Fujairah claim must be genuinely in the UAE.
                    let true_cc = results.world.true_country(v.ip).unwrap();
                    assert_eq!(
                        true_cc.as_str(),
                        "AE",
                        "mislocated {} confirmed at Al Fujairah",
                        v.ip
                    );
                }
            }
        }
    }
}
