//! End-to-end integration: the full 23-country paper study, from world
//! generation through every analysis artifact.

use gamma::analysis::{
    continents, coverage, first_party, flows, funnel, hosting, orgs, per_site, policy, prevalence,
};
use gamma::core::{Study, StudyResults};
use gamma::geo::{Continent, CountryCode};
use std::sync::OnceLock;

fn study() -> &'static StudyResults {
    static S: OnceLock<StudyResults> = OnceLock::new();
    S.get_or_init(|| Study::paper_default(990).run())
}

#[test]
fn all_23_countries_produce_data() {
    let r = study();
    assert_eq!(r.runs.len(), 23);
    assert_eq!(r.study.countries.len(), 23);
    for c in &r.study.countries {
        assert!(!c.sites.is_empty(), "{}", c.country);
        assert!(c.funnel.observations > 100, "{}: {:?}", c.country, c.funnel);
    }
}

#[test]
fn headline_results_reproduce() {
    let r = study();

    // §1: foreign trackers in 21 of 23 countries.
    assert_eq!(prevalence::countries_with_foreign_trackers(&r.study), 21);

    // §6.1: means near 46%/40% with large dispersion and high correlation.
    let fig3 = prevalence::figure3(&r.study);
    assert!(
        (32.0..60.0).contains(&fig3.regional_mean),
        "{}",
        fig3.regional_mean
    );
    assert!(
        (26.0..54.0).contains(&fig3.government_mean),
        "{}",
        fig3.government_mean
    );
    assert!(fig3.reg_gov_correlation.unwrap() > 0.7);

    // §6.3: France is the dominant destination.
    let m = flows::figure5(&r.study);
    let ranked = m.ranked_destinations();
    let top3: Vec<&str> = ranked.iter().take(3).map(|(c, _)| c.as_str()).collect();
    assert!(top3.contains(&"FR"), "top destinations {top3:?}");

    // §6.4: Europe is the sole universal sink; Africa receives nothing
    // from outside.
    let cf = continents::figure6(&r.study);
    assert!(cf.inward_sources(Continent::Europe).len() >= 4);
    assert!(cf.inward_sources(Continent::Africa).is_empty());

    // §6.5: Google on top, ~70 orgs, US-dominated ownership.
    let ranked_orgs = orgs::ranked_orgs(&r.study);
    assert_eq!(ranked_orgs[0].0, "Google");
    let hq = orgs::hq_distribution(&r.study);
    assert_eq!(hq[0].0.as_str(), "US");

    // §6.6: Kenya/Germany/France lead hosting; the USA hosts few.
    let host = hosting::domains_by_hosting_country(&r.study);
    let top5: Vec<&str> = host.iter().take(5).map(|(c, _)| c.as_str()).collect();
    assert!(top5.contains(&"KE"), "{top5:?}");

    // §6.7: first-party non-local trackers are a small minority.
    let fp = first_party::first_party_analysis(&r.study);
    assert!(fp.sites_with_first_party * 5 < fp.sites_with_nonlocal);

    // Table 1: stricter policy does not mean fewer foreign trackers.
    let rows = policy::table1(&r.study);
    assert!(policy::strictness_rate_correlation(&rows).unwrap() > -0.1);
}

#[test]
fn funnel_shape_matches_section_5() {
    let r = study();
    let t = funnel::total_funnel(&r.study);
    assert!(t.observations > 10_000);
    assert!(t.nonlocal_candidates > t.after_sol_constraints);
    assert!(t.after_sol_constraints > t.after_rdns_constraint);
    assert!(t.confirmed_tracker_domains > 500);
    assert!(t.destination_traceroutes > 1_000);
}

#[test]
fn geolocation_precision_is_near_perfect() {
    // The multi-constraint framework's headline property ([48]: 100%
    // precision in identifying foreign servers).
    let r = study();
    let p = r
        .overall_foreign_precision()
        .expect("confirmed servers exist");
    assert!(p > 0.98, "precision {p}");
}

#[test]
fn figure2_coverage_and_composition() {
    let r = study();
    let rows = coverage::figure2(&r.study);
    let total: usize = rows.iter().map(|x| x.t_reg + x.t_gov).sum();
    assert!((1650..2400).contains(&total), "T_web total {total}");
    let jp = rows.iter().find(|x| x.country.as_str() == "JP").unwrap();
    assert!(jp.coverage_pct() < 80.0);
}

#[test]
fn per_site_distributions_have_the_papers_shape() {
    let r = study();
    let jo = per_site::country_mean(&r.study, CountryCode::new("JO")).unwrap();
    let au = per_site::country_mean(&r.study, CountryCode::new("AU")).unwrap_or(0.0);
    assert!(jo > au, "Jordan {jo} should exceed Australia {au}");
    let outliers = per_site::outlier_sites(&r.study, 5);
    assert!(outliers[0].2 >= 15, "top outlier {:?}", outliers[0]);
}

#[test]
fn study_is_deterministic() {
    let a = Study::paper_default(123).run();
    let b = Study::paper_default(123).run();
    assert_eq!(a.study, b.study);
    for ((da, ra), (db, rb)) in a.runs.iter().zip(&b.runs) {
        assert_eq!(da, db);
        assert_eq!(ra.funnel, rb.funnel);
    }
}

#[test]
fn different_seeds_produce_different_but_equally_shaped_worlds() {
    let a = Study::paper_default(123).run();
    let b = Study::paper_default(456).run();
    assert_ne!(a.study, b.study);
    // Same qualitative shape under either seed.
    for r in [&a, &b] {
        assert_eq!(prevalence::countries_with_foreign_trackers(&r.study), 21);
        let m = flows::figure5(&r.study);
        assert!(m.pct_websites_using(CountryCode::new("FR")) > 20.0);
    }
}

#[test]
fn dataset_serializes_to_json_and_back() {
    let r = study();
    let js = serde_json::to_string(&r.study).expect("serializes");
    let back: gamma::analysis::StudyDataset = serde_json::from_str(&js).expect("deserializes");
    assert_eq!(*&r.study, back);
}

#[test]
fn volunteer_ips_are_anonymized_in_results() {
    let r = study();
    for (ds, _) in &r.runs {
        assert!(
            ds.volunteer.ip.is_none(),
            "{} not anonymized",
            ds.volunteer.country
        );
    }
}
