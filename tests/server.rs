//! Service-plane integration: multi-tenant scheduling is byte-identical
//! to solo runs across worker counts and under pool saturation, server
//! restarts resume mid-round from namespaced checkpoints, retention
//! pruning is lossless for retained rounds, and equal master seeds
//! never alias tenant streams.

use gamma::campaign::CampaignCheckpoint;
use gamma::geo::CountryCode;
use gamma::server::{Retention, Server, ServerConfig, StudyConfig, TenantId};
use std::path::PathBuf;

fn study(name: &str, countries: &[&str]) -> StudyConfig {
    let mut c = StudyConfig::new(
        name,
        countries.iter().map(|c| CountryCode::new(c)).collect(),
    );
    c.reg_sites = Some(8);
    c.gov_sites = Some(3);
    c
}

/// A tenant's revision chain as canonical JSON, one string per delta.
fn chain_json(server: &Server, id: TenantId) -> Vec<String> {
    server
        .revisions(id)
        .expect("tenant exists")
        .deltas()
        .iter()
        .map(|d| serde_json::to_string(d).expect("delta json"))
        .collect()
}

/// A temp state directory for checkpointed servers; removed on drop.
struct StateDir(PathBuf);

impl StateDir {
    fn new(tag: &str) -> StateDir {
        let dir = std::env::temp_dir().join(format!("gamma-server-{}-{}", tag, std::process::id()));
        std::fs::create_dir_all(&dir).expect("create state dir");
        StateDir(dir)
    }

    fn ckpt(&self, tenant: u32, round: u32) -> PathBuf {
        self.0
            .join(format!("server.ckpt.tenant{tenant}.round{round}"))
    }
}

impl Drop for StateDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

#[test]
fn interleaved_tenants_match_solo_runs_under_saturation() {
    const MASTER: u64 = 7001;
    let configs = [
        study("alpha", &["RW", "NZ"]),
        study("beta", &["US", "NZ"]),
        study("gamma", &["RW", "US"]),
    ];

    // Control: each tenant alone on its own server, pinned to the id it
    // will hold in the shared run, four rounds each.
    let mut solo: Vec<Vec<String>> = Vec::new();
    for (id, config) in configs.iter().enumerate() {
        let mut server = Server::new(ServerConfig::new(MASTER));
        server
            .create_with_id(TenantId(id as u32), config.clone())
            .expect("solo registration");
        server.advance(4);
        assert_eq!(server.status()[0].rounds, 4, "solo tenant {id}");
        solo.push(chain_json(&server, TenantId(id as u32)));
    }

    // Shared runs: three tenants, queue capacity two — every tick is
    // oversubscribed, so admission control constantly reorders work —
    // across two worker counts on the shared pool.
    for workers in [1usize, 3] {
        let mut config = ServerConfig::new(MASTER);
        config.workers = workers;
        config.queue_capacity = 2;
        let mut server = Server::new(config);
        for (id, c) in configs.iter().enumerate() {
            server
                .create_with_id(TenantId(id as u32), c.clone())
                .expect("shared registration");
        }
        let fired_before = gamma::obs::global().counter("server.sched.fired").get();
        let reports = server.advance(6);
        let fired_after = gamma::obs::global().counter("server.sched.fired").get();
        assert!(fired_after >= fired_before + 12);

        let delayed: usize = reports.iter().map(|t| t.delayed.len()).sum();
        assert!(delayed > 0, "capacity 2 with 3 due tenants must delay");
        for (id, solo_chain) in solo.iter().enumerate() {
            let id = TenantId(id as u32);
            let status = server
                .status()
                .into_iter()
                .find(|s| s.id == id)
                .expect("tenant registered");
            assert_eq!(status.rounds, 4, "{id} under {workers} worker(s)");
            assert_eq!(
                &chain_json(&server, id),
                solo_chain,
                "{id} chain diverged from its solo run under {workers} worker(s)"
            );
        }
    }
}

#[test]
fn restarted_server_resumes_mid_round_byte_identically() {
    const MASTER: u64 = 7002;
    let config = study("resume", &["RW", "US", "NZ"]);

    // Uninterrupted control run, no checkpointing.
    let mut reference = Server::new(ServerConfig::new(MASTER));
    reference
        .create_with_id(TenantId(0), config.clone())
        .expect("reference registration");
    reference.advance(3);
    let want = chain_json(&reference, TenantId(0));
    assert_eq!(want.len(), 3);

    // First process: checkpointed under the state dir, then "killed".
    // We model the kill by tampering its on-disk state: the round-1
    // checkpoint loses one of its three shards (mid-round crash) and the
    // round-2 checkpoint never made it to disk.
    let dir = StateDir::new("kill");
    let mut server_config = ServerConfig::new(MASTER);
    server_config.state_dir = Some(dir.0.clone());
    let mut first = Server::new(server_config.clone());
    first
        .create_with_id(TenantId(0), config.clone())
        .expect("first registration");
    first.advance(3);
    assert_eq!(chain_json(&first, TenantId(0)), want);

    let mut partial = CampaignCheckpoint::load(&dir.ckpt(0, 1)).expect("round-1 checkpoint");
    assert_eq!(partial.completed.len(), 3);
    partial.completed.pop();
    partial.save(&dir.ckpt(0, 1)).expect("tamper round-1");
    std::fs::remove_file(dir.ckpt(0, 2)).expect("drop round-2 checkpoint");

    // Second process: a fresh server over the same master seed, state
    // dir, and registration restores round 0 wholesale, redoes one shard
    // of round 1, reruns round 2 — and lands on the same bytes.
    let mut second = Server::new(server_config);
    second
        .create_with_id(TenantId(0), config)
        .expect("second registration");
    let reports = second.advance(3);
    let resumed: Vec<usize> = reports
        .iter()
        .flat_map(|t| t.fired.iter())
        .map(|f| f.resumed_shards)
        .collect();
    assert_eq!(resumed, vec![3, 2, 0]);
    assert_eq!(chain_json(&second, TenantId(0)), want);
}

#[test]
fn retention_pruning_reconstructs_the_newest_round_byte_for_byte() {
    const MASTER: u64 = 7003;
    let keep_all_config = study("hist", &["RW", "NZ"]);
    let mut keep_two_config = keep_all_config.clone();
    keep_two_config.retention = Retention::KeepLast(2);

    let mut keep_all = Server::new(ServerConfig::new(MASTER));
    let mut keep_two = Server::new(ServerConfig::new(MASTER));
    keep_all
        .create_with_id(TenantId(0), keep_all_config)
        .expect("keep-all registration");
    keep_two
        .create_with_id(TenantId(0), keep_two_config)
        .expect("keep-two registration");
    keep_all.advance(4);
    keep_two.advance(4);

    let full = keep_all.revisions(TenantId(0)).expect("keep-all store");
    let pruned = keep_two.revisions(TenantId(0)).expect("keep-two store");
    assert_eq!(full.epochs(), vec![0, 1, 2, 3]);
    assert_eq!(pruned.epochs(), vec![2, 3]);
    for epoch in [2u32, 3] {
        assert_eq!(
            serde_json::to_string(&pruned.reconstruct(epoch).expect("retained"))
                .expect("snapshot json"),
            serde_json::to_string(&full.reconstruct(epoch).expect("retained"))
                .expect("snapshot json"),
            "epoch {epoch} changed across the re-base"
        );
    }
    assert!(pruned.reconstruct(0).is_err(), "epoch 0 was pruned");
    assert!(pruned.delta_bytes() < full.delta_bytes());
}

#[test]
fn equal_master_seeds_never_alias_tenant_streams() {
    const MASTER: u64 = 7004;
    let config = study("twin", &["RW", "NZ"]);

    // Two tenants with *identical* configs on one server: every round
    // seed and every snapshot must differ — the tenant id is the only
    // thing separating their streams.
    let mut shared = Server::new(ServerConfig::new(MASTER));
    shared
        .create_with_id(TenantId(0), config.clone())
        .expect("tenant 0");
    shared
        .create_with_id(TenantId(1), config.clone())
        .expect("tenant 1");
    let reports = shared.advance(2);
    for tick in &reports {
        assert_eq!(tick.fired.len(), 2);
        assert_ne!(
            tick.fired[0].round_seed, tick.fired[1].round_seed,
            "tick {} round seeds collided across tenants",
            tick.clock
        );
    }
    assert_ne!(
        chain_json(&shared, TenantId(0)),
        chain_json(&shared, TenantId(1)),
        "identical configs under different tenant ids must diverge"
    );

    // And tenant 1's stream is a function of its id, not of tenant 0's
    // presence: a server that only ever hosted tenant 1 replays it.
    let mut alone = Server::new(ServerConfig::new(MASTER));
    alone
        .create_with_id(TenantId(1), config)
        .expect("lone tenant 1");
    alone.advance(2);
    assert_eq!(
        chain_json(&alone, TenantId(1)),
        chain_json(&shared, TenantId(1))
    );
}
