//! Cross-crate scenario-engine properties: counterfactual runs inherit
//! every determinism guarantee of the plain pipeline, spec-identity
//! scenarios are byte-identities end to end, and behavioural modifiers
//! produce the flow changes they promise on real generated worlds.

use std::collections::BTreeSet;

use gamma::analysis::policy::PolicyType;
use gamma::campaign::{derive_round_seed, derive_scenario_seed, derive_tenant_seed, Options};
use gamma::core::Study;
use gamma::geo::CountryCode;
use gamma::scenario::{builtin, RegimeModifier, Scenario};
use gamma::websim::WorldSpec;

/// Two vantages with no EU-headquartered exclusive orgs, so the
/// eu-only-hubs differential below measures destination drain, not org
/// availability.
fn reduced_study(seed: u64) -> Study {
    let mut spec = WorldSpec::paper_default(seed);
    spec.countries
        .retain(|c| ["AZ", "RW"].contains(&c.country.as_str()));
    spec.reg_sites_per_country = 12;
    spec.gov_sites_per_country = 4;
    Study::with_spec(spec)
}

/// Third-party flow edges `(vantage, host)` whose hosting country is a
/// European hub candidate.
fn eu_third_party_edges(
    study: &gamma::analysis::dataset::StudyDataset,
) -> BTreeSet<(CountryCode, CountryCode)> {
    let euro: Vec<CountryCode> = [
        "FR", "DE", "GB", "NL", "IE", "ES", "IT", "FI", "BG", "CH", "AT",
    ]
    .iter()
    .map(|c| CountryCode::new(c))
    .collect();
    let mut edges = BTreeSet::new();
    for c in &study.countries {
        for site in c.all_loaded_sites() {
            for t in &site.nonlocal_trackers {
                if !t.first_party && euro.contains(&t.hosting_country()) {
                    edges.insert((c.country, t.hosting_country()));
                }
            }
        }
    }
    edges
}

#[test]
fn counterfactual_runs_are_byte_identical_across_worker_counts() {
    let scenario = builtin("eu-only-hubs").unwrap();
    let study = reduced_study(7001);
    let seq = study
        .run_counterfactual(&scenario, &Options::sequential())
        .unwrap();
    let par = study
        .run_counterfactual(&scenario, &Options::with_workers(4))
        .unwrap();

    assert_eq!(seq.baseline.study, par.baseline.study);
    assert_eq!(seq.counterfactual.study, par.counterfactual.study);
    assert_eq!(seq.baseline.runs, par.baseline.runs);
    assert_eq!(seq.counterfactual.runs, par.counterfactual.runs);
    assert_eq!(seq.render_report(), par.render_report());

    // The baseline half is the plain run, byte for byte.
    let plain = study.run();
    assert_eq!(plain.study, seq.baseline.study);
    assert_eq!(plain.render_all(), seq.baseline.render_all());

    // eu-only-hubs redirects AZ's all-European destination mix to the US:
    // the counterfactual world must show strictly fewer third-party flows
    // into Europe than the baseline, and introduce none.
    let base_edges = eu_third_party_edges(&seq.baseline.study);
    let cf_edges = eu_third_party_edges(&seq.counterfactual.study);
    assert!(
        !base_edges.is_empty(),
        "baseline world shows no EU third-party flows; differential is vacuous"
    );
    assert!(
        cf_edges.is_subset(&base_edges) && cf_edges.len() < base_edges.len(),
        "scenario edges {cf_edges:?} not a strict subset of baseline {base_edges:?}"
    );
}

#[test]
fn no_restrictions_counterfactual_matches_plain_run_end_to_end() {
    let scenario = builtin("no-restrictions").unwrap();
    let study = reduced_study(7002);
    let out = study
        .run_counterfactual(&scenario, &Options::with_workers(2))
        .unwrap();
    let plain = study.run();

    // A spec-identity scenario under the unchanged master seed reproduces
    // the baseline bytes in both halves.
    assert_eq!(out.baseline.study, plain.study);
    assert_eq!(out.counterfactual.study, plain.study);
    assert_eq!(out.baseline.runs, out.counterfactual.runs);

    let report = out.report();
    assert!(report.appeared.is_empty() && report.disappeared.is_empty());
    assert!(report
        .rates
        .iter()
        .all(|r| r.baseline_pct == r.counterfactual_pct));
    // Only the legal regime moved: every counterfactual Table 1 row is NR.
    assert!(report
        .counterfactual_table1
        .iter()
        .all(|row| row.policy == PolicyType::NR));
    assert!(report
        .baseline_table1
        .iter()
        .any(|row| row.policy != PolicyType::NR));
}

#[test]
fn blocked_orgs_disappear_from_the_counterfactual_world() {
    let scenario = Scenario {
        id: "ban-google".into(),
        name: "Google banned everywhere".into(),
        modifiers: vec![RegimeModifier::BlockOrgs {
            countries: vec![],
            orgs: vec!["Google".into()],
        }],
    };
    let out = reduced_study(7003)
        .run_counterfactual(&scenario, &Options::sequential())
        .unwrap();

    let google_flows = |half: &gamma::core::StudyResults| -> usize {
        half.study
            .countries
            .iter()
            .map(|c| {
                c.all_loaded_sites()
                    .flat_map(|s| s.nonlocal_trackers.iter())
                    .filter(|t| c.tracker_org(t) == Some("Google"))
                    .count()
            })
            .sum()
    };
    assert!(
        google_flows(&out.baseline) > 0,
        "baseline world attributes no flows to Google; ban is vacuous"
    );
    assert_eq!(google_flows(&out.counterfactual), 0);
}

#[test]
fn scenario_seed_stream_never_aliases_other_streams() {
    let master = 0xDEAD_BEEF;
    let a = derive_scenario_seed(master, "eu-only-hubs");
    let b = derive_scenario_seed(master, "egypt-cs-localization");
    assert_ne!(a, b, "different scenario ids must draw different streams");
    assert_ne!(a, master, "scenario stream must not alias the master seed");
    for epoch in 0..8 {
        assert_ne!(a, derive_round_seed(master, epoch));
    }
    for tenant in 0..8 {
        assert_ne!(a, derive_tenant_seed(master, tenant));
    }
    // Same inputs, same stream: the scenario seed is a pure derivation.
    assert_eq!(a, derive_scenario_seed(master, "eu-only-hubs"));
}
