#!/usr/bin/env bash
# CI gate: format, lint, build, test. Run from anywhere in the repo.
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> chaos smoke: stress fault profile on a small world"
cargo run --release --bin gamma-study -- \
  --seed 7 --small --fault-profile stress --quality-report > /dev/null

echo "==> longitudinal smoke: three rounds of churn with the diff report"
cargo run --release --bin gamma-study -- \
  --seed 7 --small --rounds 3 --diff > /dev/null

echo "==> columnar smoke: legacy and columnar snapshot formats render identical reports"
COL_DIR=/tmp/gamma-columnar-smoke-7
rm -rf "$COL_DIR"
cargo run --release --bin gamma-study -- \
  --seed 7 --small --rounds 3 --diff --snapshot-dir "$COL_DIR/legacy" \
  --snapshot-format legacy > /tmp/gamma-columnar-a.txt
cargo run --release --bin gamma-study -- \
  --seed 7 --small --rounds 3 --diff --snapshot-dir "$COL_DIR/columnar" \
  --snapshot-format columnar > /tmp/gamma-columnar-b.txt
cmp /tmp/gamma-columnar-a.txt /tmp/gamma-columnar-b.txt
# One-shot migration re-encodes the legacy anchor; the store must stay
# fsck-clean and a second migrate must be a no-op.
cargo run --release --bin gamma-study -- migrate-snapshots "$COL_DIR/legacy" 2> /dev/null
cargo run --release --bin gamma-study -- fsck "$COL_DIR/legacy" > /dev/null
cargo run --release --bin gamma-study -- migrate-snapshots "$COL_DIR/legacy" 2> /dev/null

echo "==> obs smoke: metrics report emitted and self-validated"
cargo run --release --bin gamma-study -- \
  --seed 7 --small --metrics-out /tmp/gamma-bench-7.json > /dev/null
cargo run --release --bin gamma-study -- \
  --check-metrics /tmp/gamma-bench-7.json --require-ns trackers. --require-ns model.

echo "==> compiled-engine smoke: cached engine reused, output byte-identical"
ENGINE_DIR=/tmp/gamma-engine-smoke-7
rm -rf "$ENGINE_DIR"
cargo run --release --bin gamma-study -- \
  --seed 7 --small --engine-cache "$ENGINE_DIR" > /tmp/gamma-engine-a.txt
ls "$ENGINE_DIR"/abp-*.engine > /dev/null
cargo run --release --bin gamma-study -- \
  --seed 7 --small --engine-cache "$ENGINE_DIR" > /tmp/gamma-engine-b.txt
cargo run --release --bin gamma-study -- \
  --seed 7 --small > /tmp/gamma-engine-c.txt
cmp /tmp/gamma-engine-a.txt /tmp/gamma-engine-b.txt
cmp /tmp/gamma-engine-a.txt /tmp/gamma-engine-c.txt

echo "==> server smoke: two tenants, three simulated-clock ticks, server metric families"
cargo run --release --bin gamma-study -- serve \
  --seed 7 \
  --register west:countries=GB+US+NZ,sites=8+3 \
  --register africa:cadence=2,countries=RW+UG,sites=8+3,retention=2 \
  --ticks 3 --workers 2 --report \
  --metrics-out /tmp/gamma-server-7.json > /dev/null
cargo run --release --bin gamma-study -- \
  --check-metrics /tmp/gamma-server-7.json \
  --require-ns server.sched. --require-ns server.tenant. --require-ns server.queue.

echo "==> store smoke: persisted rounds, corrupt a frame, fsck detects, --repair, resume"
STORE_DIR=/tmp/gamma-store-smoke-7
rm -rf "$STORE_DIR"
mkdir -p "$STORE_DIR"
cargo run --release --bin gamma-study -- \
  --seed 7 --small --rounds 3 --snapshot-dir "$STORE_DIR/snapshots" \
  --resume "$STORE_DIR/campaign.ckpt" \
  --metrics-out /tmp/gamma-store-7.json > /dev/null
cargo run --release --bin gamma-study -- \
  --check-metrics /tmp/gamma-store-7.json --require-ns store.
# Zero one payload byte mid-chain (offset 24 is inside the first frame's
# JSON, which never contains 0x00): a checksum failure, not a torn tail.
dd if=/dev/zero of="$STORE_DIR/snapshots/rounds.chain" \
  bs=1 seek=24 count=1 conv=notrunc status=none
if cargo run --release --bin gamma-study -- fsck "$STORE_DIR/snapshots" > /dev/null; then
  echo "fsck missed the corrupt frame" >&2
  exit 1
fi
cargo run --release --bin gamma-study -- fsck --repair "$STORE_DIR/snapshots" > /dev/null
cargo run --release --bin gamma-study -- fsck "$STORE_DIR/snapshots" > /dev/null
cargo run --release --bin gamma-study -- \
  --seed 7 --small --rounds 3 --snapshot-dir "$STORE_DIR/snapshots" \
  --resume "$STORE_DIR/campaign.ckpt" > /dev/null

echo "==> scenario smoke: counterfactual report renders, baseline stdout untouched"
rm -f /tmp/gamma-scenario-report.md
cargo run --release --bin gamma-study -- \
  --seed 7 --small > /tmp/gamma-scenario-plain.txt
cargo run --release --bin gamma-study -- \
  --seed 7 --small --scenario global-consent \
  --counterfactual-report /tmp/gamma-scenario-report.md \
  --metrics-out /tmp/gamma-scenario-7.json > /tmp/gamma-scenario-cf.txt
# The baseline half must be byte-identical to the scenario-less run.
cmp /tmp/gamma-scenario-plain.txt /tmp/gamma-scenario-cf.txt
grep -q "Counterfactual" /tmp/gamma-scenario-report.md
cargo run --release --bin gamma-study -- \
  --check-metrics /tmp/gamma-scenario-7.json --require-ns scenario.

echo "==> storage-chaos smoke: armed disk faults stay byte-identical across --jobs"
rm -f /tmp/gamma-storage-ckpt-a /tmp/gamma-storage-ckpt-b
cargo run --release --bin gamma-study -- \
  --seed 7 --small --fault-profile storage \
  --resume /tmp/gamma-storage-ckpt-a --jobs 2 > /tmp/gamma-storage-a.txt
cargo run --release --bin gamma-study -- \
  --seed 7 --small --fault-profile storage \
  --resume /tmp/gamma-storage-ckpt-b --jobs 4 > /tmp/gamma-storage-b.txt
cmp /tmp/gamma-storage-a.txt /tmp/gamma-storage-b.txt

echo "CI OK"
