#!/usr/bin/env bash
# CI gate: format, lint, build, test. Run from anywhere in the repo.
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "CI OK"
