#!/usr/bin/env bash
# CI gate: format, lint, build, test. Run from anywhere in the repo.
set -euo pipefail

cd "$(dirname "${BASH_SOURCE[0]}")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> chaos smoke: stress fault profile on a small world"
cargo run --release --bin gamma-study -- \
  --seed 7 --small --fault-profile stress --quality-report > /dev/null

echo "==> longitudinal smoke: three rounds of churn with the diff report"
cargo run --release --bin gamma-study -- \
  --seed 7 --small --rounds 3 --diff > /dev/null

echo "==> obs smoke: metrics report emitted and self-validated"
cargo run --release --bin gamma-study -- \
  --seed 7 --small --metrics-out /tmp/gamma-bench-7.json > /dev/null
cargo run --release --bin gamma-study -- \
  --check-metrics /tmp/gamma-bench-7.json

echo "==> server smoke: two tenants, three simulated-clock ticks, server metric families"
cargo run --release --bin gamma-study -- serve \
  --seed 7 \
  --register west:countries=GB+US+NZ,sites=8+3 \
  --register africa:cadence=2,countries=RW+UG,sites=8+3,retention=2 \
  --ticks 3 --workers 2 --report \
  --metrics-out /tmp/gamma-server-7.json > /dev/null
cargo run --release --bin gamma-study -- \
  --check-metrics /tmp/gamma-server-7.json \
  --require-ns server.sched. --require-ns server.tenant. --require-ns server.queue.

echo "CI OK"
