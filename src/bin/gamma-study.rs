//! `gamma-study` — run the complete 23-country study from the command
//! line: world generation, every volunteer, geolocation, identification,
//! and the rendered figures/tables (Box 2 of the paper's Figure 1).
//!
//! ```sh
//! # print every figure and table
//! gamma-study
//!
//! # different seed; dump the assembled analysis dataset as JSON
//! gamma-study --seed 7 --json study.json
//!
//! # four worker threads (output is byte-identical to --jobs 1)
//! gamma-study --jobs 4
//!
//! # checkpoint after every country; rerun with the same flag to resume
//! gamma-study --resume study.ckpt
//!
//! # ablation: run without the reverse-DNS constraint
//! gamma-study --no-rdns
//!
//! # chaos run: stress fault profile, print the data-quality section
//! gamma-study --fault-profile stress --quality-report
//!
//! # CI smoke: three countries only
//! gamma-study --small --fault-profile blackout:RW --quality-report
//!
//! # counterfactual: baseline + scenario campaigns on one shared pool;
//! # stdout stays byte-identical to a scenario-less run, the diff report
//! # (rate deltas, appeared/disappeared flow edges, re-ranked Table 1)
//! # goes to the file
//! gamma-study --small --scenario global-consent --counterfactual-report cf.md
//!
//! # longitudinal: three rounds of deterministic world churn, with the
//! # cross-round diff/trend report and snapshot-size ledger
//! gamma-study --small --rounds 3 --diff
//!
//! # observability: span tree on stderr, benchmark report as JSON
//! gamma-study --small --trace --metrics-out BENCH_2025.json
//!
//! # CI gate: validate a previously written benchmark report
//! gamma-study --check-metrics BENCH_2025.json
//!
//! # service plane: two registered studies on a shared two-worker pool,
//! # three simulated-clock ticks, per-tenant revision histories
//! gamma-study serve --register west:countries=GB+US+NZ \
//!     --register africa:cadence=2,countries=RW+UG \
//!     --ticks 3 --workers 2 --report
//! ```

use gamma::campaign::{render_campaign_report, Options};
use gamma::core::Study;
use gamma::obs::MetricsReport;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut seed = 2025u64;
    let mut json_out: Option<String> = None;
    let mut jobs = 1usize;
    let mut resume: Option<String> = None;
    let mut no_source = false;
    let mut no_dest = false;
    let mut no_rdns = false;
    let mut fault_profile: Option<String> = None;
    let mut quality_report = false;
    let mut small = false;
    let mut trace = false;
    let mut metrics_out: Option<String> = None;
    let mut check_metrics: Option<String> = None;
    let mut rounds = 1u32;
    let mut diff = false;
    let mut snapshot_dir: Option<String> = None;
    let mut snapshot_format: Option<gamma::longitudinal::SnapshotFormat> = None;
    let mut require_ns: Vec<String> = Vec::new();
    let mut engine_cache: Option<String> = None;
    let mut scenario_name: Option<String> = None;
    let mut scenario_file: Option<String> = None;
    let mut counterfactual_report: Option<String> = None;

    let mut argv = std::env::args().skip(1).peekable();
    if argv.peek().map(String::as_str) == Some("serve") {
        argv.next();
        return run_serve(argv);
    }
    if argv.peek().map(String::as_str) == Some("fsck") {
        argv.next();
        return run_fsck(argv);
    }
    if argv.peek().map(String::as_str) == Some("migrate-snapshots") {
        argv.next();
        return run_migrate(argv);
    }
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--seed" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--json" => match argv.next() {
                Some(v) => json_out = Some(v),
                None => return usage(),
            },
            "--jobs" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(v) => jobs = v,
                None => return usage(),
            },
            "--resume" => match argv.next() {
                Some(v) => resume = Some(v),
                None => return usage(),
            },
            "--no-source" => no_source = true,
            "--no-dest" => no_dest = true,
            "--no-rdns" => no_rdns = true,
            "--fault-profile" => match argv.next() {
                Some(v) => fault_profile = Some(v),
                None => return usage(),
            },
            "--quality-report" => quality_report = true,
            "--small" => small = true,
            "--trace" => trace = true,
            "--metrics-out" => match argv.next() {
                Some(v) => metrics_out = Some(v),
                None => return usage(),
            },
            "--check-metrics" => match argv.next() {
                Some(v) => check_metrics = Some(v),
                None => return usage(),
            },
            "--require-ns" => match argv.next() {
                Some(v) => require_ns.push(v),
                None => return usage(),
            },
            "--rounds" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => rounds = v,
                _ => return usage(),
            },
            "--diff" => diff = true,
            "--snapshot-dir" => match argv.next() {
                Some(v) => snapshot_dir = Some(v),
                None => return usage(),
            },
            "--snapshot-format" => match argv.next().as_deref() {
                Some("legacy") => {
                    snapshot_format = Some(gamma::longitudinal::SnapshotFormat::Legacy)
                }
                Some("columnar") => {
                    snapshot_format = Some(gamma::longitudinal::SnapshotFormat::Columnar)
                }
                _ => return usage(),
            },
            "--engine-cache" => match argv.next() {
                Some(v) => engine_cache = Some(v),
                None => return usage(),
            },
            "--scenario" => match argv.next() {
                Some(v) => scenario_name = Some(v),
                None => return usage(),
            },
            "--scenario-file" => match argv.next() {
                Some(v) => scenario_file = Some(v),
                None => return usage(),
            },
            "--counterfactual-report" => match argv.next() {
                Some(v) => counterfactual_report = Some(v),
                None => return usage(),
            },
            "--help" | "-h" => return usage(),
            _ => return usage(),
        }
    }

    // Standalone mode: validate a previously written benchmark report and
    // exit. This is the jq-free CI gate for `--metrics-out` artifacts.
    if let Some(path) = check_metrics {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = match MetricsReport::from_json(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{path} is not a valid metrics report: {e}");
                return ExitCode::FAILURE;
            }
        };
        let extra: Vec<&str> = require_ns.iter().map(String::as_str).collect();
        return match report
            .validate(10)
            .and_then(|()| report.require_namespaces(&extra))
        {
            Ok(()) => {
                eprintln!(
                    "{path}: ok (seed {}, {} counters, {} stage(s))",
                    report.seed,
                    report.counters.len(),
                    report.stages.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: invalid metrics report: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut study = Study::paper_default(seed);
    if small {
        study
            .spec
            .countries
            .retain(|c| ["RW", "US", "NZ"].contains(&c.country.as_str()));
    }
    study.engine_cache = engine_cache.map(std::path::PathBuf::from);
    study.options.enable_source_constraint = !no_source;
    study.options.enable_destination_constraint = !no_dest;
    study.options.enable_rdns_constraint = !no_rdns;
    if let Some(name) = &fault_profile {
        match gamma::chaos::FaultPlan::from_profile_name(name, seed) {
            Some(plan) => {
                // Under injected faults, let geolocation run on whatever
                // constraint subset survives instead of discarding.
                study.options.degraded_fallback = !plan.is_quiet();
                study.config.plan = plan;
            }
            None => {
                eprintln!("unknown fault profile {name:?}");
                return usage();
            }
        }
    }

    let mut options = Options::with_workers(jobs);
    if let Some(path) = resume {
        options = options.resumable(path);
    }

    // Counterfactual mode: resolve the scenario up front so bad names and
    // malformed files fail before any campaign runs.
    let scenario = match resolve_scenario(scenario_name.as_deref(), scenario_file.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if counterfactual_report.is_some() && scenario.is_none() {
        eprintln!("--counterfactual-report requires --scenario or --scenario-file");
        return usage();
    }
    if scenario.is_some() {
        if rounds > 1 || diff {
            eprintln!("--scenario runs a single-round counterfactual; it does not combine with --rounds/--diff");
            return usage();
        }
        if options.resume.is_some() {
            eprintln!(
                "--scenario does not combine with --resume: the baseline and counterfactual \
                 campaigns share one master seed and would collide on the checkpoint file"
            );
            return usage();
        }
    }

    if trace {
        gamma::obs::global().set_trace(true);
    }

    // Temporal mode: N rounds over one evolving world, each round its own
    // campaign under a derived round seed, snapshots delta-encoded round
    // over round. `--diff` prints the cross-round trend report.
    if rounds > 1 || diff {
        if quality_report {
            eprintln!("note: --quality-report applies to single-round runs; ignoring");
        }
        let lstudy = gamma::longitudinal::LongitudinalStudy::new(study.clone(), rounds);
        eprintln!(
            "running the {}-country study over {rounds} round(s) (seed {seed}, {} worker(s))...",
            study.spec.countries.len(),
            options.effective_workers()
        );
        let store = match &snapshot_dir {
            Some(dir) => {
                match gamma::longitudinal::SnapshotStore::open(std::path::Path::new(dir)) {
                    Ok(s) => Some(match snapshot_format {
                        Some(f) => s.with_format(f),
                        None => s,
                    }),
                    Err(e) => {
                        eprintln!("cannot open snapshot dir {dir}: {e}");
                        return ExitCode::FAILURE;
                    }
                }
            }
            None => None,
        };
        let before = gamma::obs::global().snapshot();
        let started = Instant::now();
        let run = match &store {
            Some(s) => lstudy.run_persisted(&options, s),
            None => lstudy.run_with(&options),
        };
        let results = match run {
            Ok(r) => r,
            Err(e) => {
                eprintln!("longitudinal campaign failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(dir) = &snapshot_dir {
            eprintln!("persisted round snapshots under {dir}");
        }
        let total_wall = started.elapsed();
        for out in &results.rounds {
            eprintln!("— round {} (seed {}) —", out.epoch, out.round_seed);
            eprintln!("{}", render_campaign_report(&out.metrics));
        }

        if trace {
            for root in gamma::obs::global().take_traces() {
                eprint!("{}", gamma::obs::render_trace(&root));
            }
        }

        if let Some(path) = metrics_out {
            let mut measure = std::time::Duration::ZERO;
            let mut geolocate = std::time::Duration::ZERO;
            let mut finalize = std::time::Duration::ZERO;
            let mut sites_total = 0usize;
            for out in &results.rounds {
                let t = out.metrics.totals();
                measure += t.stage_wall.measure;
                geolocate += t.stage_wall.geolocate;
                finalize += t.stage_wall.finalize;
                sites_total += t.sites_total;
            }
            let stages = BTreeMap::from([
                ("measure".to_owned(), as_ms(measure)),
                ("geolocate".to_owned(), as_ms(geolocate)),
                ("finalize".to_owned(), as_ms(finalize)),
            ]);
            let after = gamma::obs::global().snapshot();
            let report = MetricsReport::new(
                seed,
                options.effective_workers(),
                study.spec.countries.len(),
                total_wall.as_secs_f64() * 1e3,
                stages,
                &before,
                &after,
            )
            .with_throughput("sites_per_sec", sites_total as f64);
            match report.to_json() {
                Ok(js) => {
                    if let Err(e) = write_atomic(&path, js.as_bytes()) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote metrics report {path}");
                }
                Err(e) => {
                    eprintln!("metrics serialization failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }

        if diff {
            println!("{}", results.render_report());
        } else {
            for (out, snap) in results.rounds.iter().zip(&results.snapshots) {
                let delta_bytes = results
                    .deltas
                    .get(out.epoch as usize)
                    .map(|d| d.json_bytes())
                    .unwrap_or(0);
                println!(
                    "round {}: seed {} | {} countries | snapshot {} B full / {} B delta",
                    out.epoch,
                    out.round_seed,
                    out.runs.len(),
                    snap.json_bytes(),
                    delta_bytes
                );
            }
        }

        if let Some(path) = json_out {
            let studies: Vec<_> = results.rounds.iter().map(|r| &r.study).collect();
            match serde_json::to_string_pretty(&studies) {
                Ok(js) => {
                    if let Err(e) = write_atomic(&path, js.as_bytes()) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {path} (one dataset per round)");
                }
                Err(e) => {
                    eprintln!("serialization failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "running the {}-country study (seed {seed}, {} worker(s))...",
        study.spec.countries.len(),
        options.effective_workers()
    );
    let before = gamma::obs::global().snapshot();
    let started = Instant::now();

    // Counterfactual mode: baseline + scenario campaigns on one shared
    // pool. Stdout stays byte-identical to a scenario-less run (baseline
    // figures, quality, precision); the diff report goes to
    // `--counterfactual-report` (or stdout, appended, without one).
    if let Some(sc) = scenario {
        eprintln!("counterfactual scenario: {} — {}", sc.id, sc.name);
        let out = match study.run_counterfactual(&sc, &options) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("campaign failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let total_wall = started.elapsed();
        eprintln!("— baseline campaign —");
        eprintln!("{}", render_campaign_report(&out.baseline.metrics));
        eprintln!("— counterfactual campaign —");
        eprintln!("{}", render_campaign_report(&out.counterfactual.metrics));

        if trace {
            for root in gamma::obs::global().take_traces() {
                eprint!("{}", gamma::obs::render_trace(&root));
            }
        }

        // Render the diff report before the metrics snapshot so the
        // `scenario.report.*` counters it increments land in the report.
        let report_text = out.render_report();

        if let Some(path) = metrics_out {
            let bt = out.baseline.metrics.totals();
            let ct = out.counterfactual.metrics.totals();
            let stages = BTreeMap::from([
                (
                    "measure".to_owned(),
                    as_ms(bt.stage_wall.measure + ct.stage_wall.measure),
                ),
                (
                    "geolocate".to_owned(),
                    as_ms(bt.stage_wall.geolocate + ct.stage_wall.geolocate),
                ),
                (
                    "finalize".to_owned(),
                    as_ms(bt.stage_wall.finalize + ct.stage_wall.finalize),
                ),
            ]);
            let after = gamma::obs::global().snapshot();
            let report = MetricsReport::new(
                seed,
                options.effective_workers(),
                study.spec.countries.len(),
                total_wall.as_secs_f64() * 1e3,
                stages,
                &before,
                &after,
            )
            .with_throughput("sites_per_sec", (bt.sites_total + ct.sites_total) as f64);
            match report.to_json() {
                Ok(js) => {
                    if let Err(e) = write_atomic(&path, js.as_bytes()) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote metrics report {path}");
                }
                Err(e) => {
                    eprintln!("metrics serialization failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }

        println!("{}", out.baseline.render_all());
        if quality_report {
            println!("{}", out.baseline.render_quality());
        }
        if let Some(p) = out.baseline.overall_foreign_precision() {
            println!(
                "foreign-identification precision vs ground truth: {:.2}%",
                p * 100.0
            );
        }

        match &counterfactual_report {
            Some(path) => {
                if let Err(e) = write_atomic(path, report_text.as_bytes()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote counterfactual report {path}");
            }
            None => println!("{report_text}"),
        }

        if let Some(path) = json_out {
            // Both halves, baseline first.
            match serde_json::to_string_pretty(&[&out.baseline.study, &out.counterfactual.study]) {
                Ok(js) => {
                    if let Err(e) = write_atomic(&path, js.as_bytes()) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {path} (baseline + counterfactual datasets)");
                }
                Err(e) => {
                    eprintln!("serialization failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    let results = match study.run_with(&options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let total_wall = started.elapsed();
    eprintln!("{}", render_campaign_report(&results.metrics));

    if trace {
        for root in gamma::obs::global().take_traces() {
            eprint!("{}", gamma::obs::render_trace(&root));
        }
    }

    if let Some(path) = metrics_out {
        let totals = results.metrics.totals();
        let stages = BTreeMap::from([
            ("measure".to_owned(), as_ms(totals.stage_wall.measure)),
            ("geolocate".to_owned(), as_ms(totals.stage_wall.geolocate)),
            ("finalize".to_owned(), as_ms(totals.stage_wall.finalize)),
        ]);
        let after = gamma::obs::global().snapshot();
        let report = MetricsReport::new(
            seed,
            options.effective_workers(),
            study.spec.countries.len(),
            total_wall.as_secs_f64() * 1e3,
            stages,
            &before,
            &after,
        )
        .with_throughput("sites_per_sec", totals.sites_total as f64);
        match report.to_json() {
            Ok(js) => {
                if let Err(e) = write_atomic(&path, js.as_bytes()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote metrics report {path}");
            }
            Err(e) => {
                eprintln!("metrics serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{}", results.render_all());
    if quality_report {
        println!("{}", results.render_quality());
    }
    if let Some(p) = results.overall_foreign_precision() {
        println!(
            "foreign-identification precision vs ground truth: {:.2}%",
            p * 100.0
        );
    }

    if let Some(path) = json_out {
        match serde_json::to_string_pretty(&results.study) {
            Ok(js) => {
                if let Err(e) = write_atomic(&path, js.as_bytes()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            Err(e) => {
                eprintln!("serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

/// The `serve` subcommand: a multi-tenant continuous-measurement server
/// on a simulated clock. Registers every `--register` spec, advances the
/// clock `--ticks` times (rounds from all tenants share one worker
/// pool), then prints the registry status and, with `--report`, each
/// tenant's revision history.
fn run_serve(mut argv: impl Iterator<Item = String>) -> ExitCode {
    use gamma::server::{AdmissionPolicy, Server, ServerConfig, StudyConfig};

    let mut seed = 2025u64;
    let mut specs: Vec<String> = Vec::new();
    let mut ticks = 1u64;
    let mut workers = 1usize;
    let mut queue = 0usize;
    let mut admission = AdmissionPolicy::Delay;
    let mut state_dir: Option<String> = None;
    let mut restore = false;
    let mut report_revisions = false;
    let mut metrics_out: Option<String> = None;

    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--seed" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage_serve(),
            },
            "--register" => match argv.next() {
                Some(v) => specs.push(v),
                None => return usage_serve(),
            },
            "--ticks" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(v) => ticks = v,
                None => return usage_serve(),
            },
            "--workers" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => workers = v,
                _ => return usage_serve(),
            },
            "--queue" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(v) => queue = v,
                None => return usage_serve(),
            },
            "--admission" => match argv.next().as_deref().and_then(AdmissionPolicy::parse) {
                Some(v) => admission = v,
                None => return usage_serve(),
            },
            "--state-dir" => match argv.next() {
                Some(v) => state_dir = Some(v),
                None => return usage_serve(),
            },
            "--restore" => restore = true,
            "--report" => report_revisions = true,
            "--metrics-out" => match argv.next() {
                Some(v) => metrics_out = Some(v),
                None => return usage_serve(),
            },
            "--help" | "-h" => return usage_serve(),
            _ => return usage_serve(),
        }
    }
    if specs.is_empty() {
        eprintln!("serve: at least one --register SPEC is required");
        return usage_serve();
    }

    let mut config = ServerConfig::new(seed);
    config.workers = workers;
    config.queue_capacity = queue;
    config.admission = admission;
    config.state_dir = state_dir.map(std::path::PathBuf::from);
    config.restore = restore;
    if restore && config.state_dir.is_none() {
        eprintln!("serve: --restore requires --state-dir");
        return usage_serve();
    }
    if let Some(dir) = &config.state_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("cannot create state dir {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    let mut server = Server::new(config);
    for spec in &specs {
        let study = match StudyConfig::parse_spec(spec) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("bad study spec {spec:?}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match server.create(study) {
            Ok(id) => eprintln!("registered {id}: {spec}"),
            Err(e) => {
                eprintln!("cannot register {spec:?}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    // Unreadable tenant stores were set aside, not fatal: say so.
    for reason in &server.storage_quarantine().entries {
        eprintln!("storage quarantine: {reason:?}");
    }

    let before = gamma::obs::global().snapshot();
    let started = Instant::now();
    let tick_reports = server.advance(ticks);
    let total_wall = started.elapsed();
    for tr in &tick_reports {
        let fired: Vec<String> = tr
            .fired
            .iter()
            .map(|f| format!("{} round {} ({} B delta)", f.tenant, f.epoch, f.delta_bytes))
            .collect();
        eprintln!(
            "tick {}: fired [{}] | delayed {} | shed {} | failed {}",
            tr.clock,
            fired.join(", "),
            tr.delayed.len(),
            tr.shed.len(),
            tr.failures.len()
        );
        for (id, why) in &tr.failures {
            eprintln!("  {id} failed: {why}");
        }
    }

    println!(
        "clock {} | {} tenant(s) registered",
        server.clock(),
        server.status().len()
    );
    for s in server.status() {
        println!(
            "{} {:<12} {} round(s) done | {} retained | next due tick {}{}",
            s.id,
            s.name,
            s.rounds,
            s.retained,
            s.next_due,
            if s.paused { " (paused)" } else { "" }
        );
    }
    if report_revisions {
        for s in server.status() {
            let store = server.revisions(s.id).expect("status lists live tenants");
            println!("— {} ({}) revision history —", s.id, s.name);
            for delta in store.deltas() {
                println!(
                    "  epoch {}: {} B delta ({} rows by reference / {} in full)",
                    delta.epoch,
                    delta.json_bytes(),
                    delta.rows_ref(),
                    delta.rows_new()
                );
            }
        }
    }

    if let Some(path) = metrics_out {
        let after = gamma::obs::global().snapshot();
        let countries: usize = server
            .status()
            .iter()
            .filter_map(|s| server.study_config(s.id).map(|c| c.countries.len()))
            .sum();
        let rounds_fired: usize = tick_reports.iter().map(|t| t.fired.len()).sum();
        let stages = BTreeMap::from([("serve".to_owned(), as_ms(total_wall))]);
        let report = MetricsReport::new(
            seed,
            workers,
            countries,
            total_wall.as_secs_f64() * 1e3,
            stages,
            &before,
            &after,
        )
        .with_throughput("rounds_per_sec", rounds_fired as f64);
        match report.to_json() {
            Ok(js) => {
                if let Err(e) = write_atomic(&path, js.as_bytes()) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote metrics report {path}");
            }
            Err(e) => {
                eprintln!("metrics serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn as_ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Resolves `--scenario` / `--scenario-file` into a validated scenario.
/// File-defined scenarios take precedence over the built-in library; a
/// file without `--scenario` works when it defines exactly one scenario.
fn resolve_scenario(
    name: Option<&str>,
    file: Option<&str>,
) -> Result<Option<gamma::scenario::Scenario>, String> {
    use gamma::scenario::{builtin, builtin_names, Scenario};
    let from_file: Vec<Scenario> = match file {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read scenario file {path}: {e}"))?;
            Scenario::from_json(&text).map_err(|e| format!("{path}: {e}"))?
        }
        None => Vec::new(),
    };
    match (name, file) {
        (None, None) => Ok(None),
        (None, Some(path)) => {
            if from_file.len() == 1 {
                return Ok(from_file.into_iter().next());
            }
            let ids: Vec<&str> = from_file.iter().map(|s| s.id.as_str()).collect();
            Err(format!(
                "{path} defines {} scenarios ({}); pick one with --scenario NAME",
                ids.len(),
                ids.join(", ")
            ))
        }
        (Some(n), _) => {
            if let Some(s) = from_file.iter().find(|s| s.id == n) {
                return Ok(Some(s.clone()));
            }
            if let Some(s) = builtin(n) {
                return Ok(Some(s));
            }
            Err(format!(
                "unknown scenario {n:?}; built-ins: {}{}",
                builtin_names().join(", "),
                file.map(|p| format!(" (and none matched in {p})"))
                    .unwrap_or_default()
            ))
        }
    }
}

/// Every report/dataset write goes through the store's atomic protocol
/// (temp file + rename), so an interrupted run never leaves a
/// half-written JSON artifact for CI to parse.
fn write_atomic(path: &str, bytes: &[u8]) -> Result<(), String> {
    gamma::store::atomic_write_bytes(
        std::path::Path::new(path),
        bytes,
        &gamma::store::WriteOptions::default(),
    )
    .map_err(|e| e.to_string())
}

/// The `fsck` subcommand: scan every store artifact under DIR, report
/// its health, and with `--repair` truncate torn tails, clear stale
/// temp files, and re-base corrupt snapshot chains from their intact
/// `latest.snap` anchor.
fn run_fsck(mut argv: impl Iterator<Item = String>) -> ExitCode {
    use gamma::store::fsck;

    let mut repair = false;
    let mut dir: Option<String> = None;
    for arg in argv.by_ref() {
        match arg.as_str() {
            "--repair" => repair = true,
            "--help" | "-h" => return usage_fsck(),
            other if dir.is_none() && !other.starts_with('-') => dir = Some(other.to_string()),
            _ => return usage_fsck(),
        }
    }
    let Some(dir) = dir else {
        return usage_fsck();
    };
    let root = std::path::Path::new(&dir);
    let report = match fsck::scan_dir(root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fsck: cannot scan {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    print!("{}", fsck::render(&report, root));
    if !repair {
        return if report.problems() == 0 {
            ExitCode::SUCCESS
        } else {
            eprintln!(
                "fsck: {} problem(s); re-run with --repair",
                report.problems()
            );
            ExitCode::FAILURE
        };
    }

    // Chain-aware pass first: a corrupt `rounds.chain` with an intact
    // sibling `latest.snap` re-bases (one all-new delta of the newest
    // round) instead of silently truncating history.
    let mut rebased: Vec<std::path::PathBuf> = Vec::new();
    for entry in report.needs_rebase() {
        let is_chain = entry
            .path
            .file_name()
            .is_some_and(|n| n == gamma::longitudinal::store::CHAIN_FILE);
        let parent = entry.path.parent();
        if !is_chain || parent.is_none() {
            continue;
        }
        let parent = parent.expect("checked above");
        if let Ok(store) = gamma::longitudinal::SnapshotStore::open(parent) {
            match store.recover() {
                Ok(gamma::longitudinal::Recovery::Rebased(state)) => {
                    eprintln!(
                        "rebased   {}  from latest.snap (epoch {})",
                        entry.path.display(),
                        state.snapshots.last().map_or(0, |s| s.epoch)
                    );
                    rebased.push(entry.path.clone());
                }
                // A merely-torn chain needs no re-base: the generic
                // repair pass below truncates its tail in place.
                Ok(gamma::longitudinal::Recovery::Chain(_)) => {}
                Err(e) => eprintln!("cannot rebase {}: {e}", entry.path.display()),
            }
        }
    }
    let rest = fsck::FsckReport {
        entries: report
            .entries
            .into_iter()
            .filter(|e| !rebased.contains(&e.path))
            .collect(),
    };
    match fsck::repair(&rest) {
        Ok(s) => eprintln!(
            "repaired: {} truncated, {} stale tmp removed, {} byte(s) dropped, {} chain(s) rebased",
            s.truncated,
            s.tmp_removed,
            s.bytes_dropped,
            rebased.len()
        ),
        Err(e) => {
            eprintln!("fsck: repair failed: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Verify the directory scans clean after surgery.
    match fsck::scan_dir(root) {
        Ok(after) if after.problems() == 0 => {
            eprintln!("fsck: {} artifact(s) clean", after.intact());
            ExitCode::SUCCESS
        }
        Ok(after) => {
            eprintln!("fsck: {} problem(s) remain after repair", after.problems());
            print!("{}", fsck::render(&after, root));
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("fsck: cannot rescan {dir}: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The `migrate-snapshots` subcommand: one-shot re-encode of a snapshot
/// directory's legacy serde `latest.snap` anchor into the columnar
/// layout. The delta chain is format-independent and is left untouched.
fn run_migrate(mut argv: impl Iterator<Item = String>) -> ExitCode {
    let mut dir: Option<String> = None;
    for arg in argv.by_ref() {
        match arg.as_str() {
            "--help" | "-h" => return usage_migrate(),
            other if dir.is_none() && !other.starts_with('-') => dir = Some(other.to_string()),
            _ => return usage_migrate(),
        }
    }
    let Some(dir) = dir else {
        return usage_migrate();
    };
    let store = match gamma::longitudinal::SnapshotStore::open(std::path::Path::new(&dir)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot open snapshot dir {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    use gamma::longitudinal::MigrateOutcome;
    match store.migrate_latest() {
        Ok(MigrateOutcome::Missing) => {
            eprintln!("{dir}: no latest.snap to migrate");
            ExitCode::SUCCESS
        }
        Ok(MigrateOutcome::AlreadyColumnar) => {
            eprintln!("{dir}: latest.snap is already columnar");
            ExitCode::SUCCESS
        }
        Ok(MigrateOutcome::Migrated {
            epoch,
            bytes_before,
            bytes_after,
        }) => {
            eprintln!(
                "{dir}: migrated latest.snap (epoch {epoch}): {bytes_before} -> {bytes_after} bytes"
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{dir}: migration failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage_migrate() -> ExitCode {
    eprintln!("usage: gamma-study migrate-snapshots DIR");
    eprintln!(
        "  one-shot: re-encode DIR's legacy serde latest.snap into the columnar          snapshot layout (already-columnar and missing anchors are no-ops)"
    );
    ExitCode::FAILURE
}

fn usage_fsck() -> ExitCode {
    eprintln!("usage: gamma-study fsck [--repair] DIR");
    eprintln!("  scan every gamma-store artifact under DIR: checksums, tears, stale tmps");
    eprintln!("  --repair  truncate torn tails, remove stale tmps, re-base corrupt chains");
    ExitCode::FAILURE
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: gamma-study [--seed N] [--json FILE] [--jobs N] [--resume FILE] \
         [--no-source] [--no-dest] [--no-rdns] \
         [--fault-profile NAME] [--quality-report] [--small] \
         [--trace] [--metrics-out FILE] [--check-metrics FILE] \
         [--require-ns PREFIX] [--rounds N] [--diff] [--snapshot-dir DIR] \
         [--snapshot-format legacy|columnar] [--engine-cache DIR] \
         [--scenario NAME] [--scenario-file FILE] [--counterfactual-report FILE]"
    );
    eprintln!(
        "       gamma-study serve ... (run `gamma-study serve --help` for the service plane)"
    );
    eprintln!("  --jobs N       run country shards on N worker threads (0 = all cores)");
    eprintln!("  --resume FILE  checkpoint after every country; resume from FILE if it exists");
    eprintln!(
        "  --fault-profile NAME  inject faults: none, paper, stress, or blackout:CC \
         (paper baseline plus one fully blacked-out country)"
    );
    eprintln!("  --quality-report      print the per-country data-quality section");
    eprintln!("  --small               three-country world (RW, US, NZ) for smoke runs");
    eprintln!("  --trace               print the hierarchical span tree on stderr");
    eprintln!("  --metrics-out FILE    write the machine-readable benchmark report as JSON");
    eprintln!("  --check-metrics FILE  validate a benchmark report and exit (CI gate)");
    eprintln!(
        "  --require-ns PREFIX   with --check-metrics: also require counters under \
         PREFIX* (repeatable)"
    );
    eprintln!(
        "  --rounds N            temporal campaign: N rounds over one world evolving \
         under deterministic churn"
    );
    eprintln!("  --diff                print the cross-round trend report and snapshot sizes");
    eprintln!(
        "  --snapshot-dir DIR    with --rounds: persist each round's delta chain and \
         latest full snapshot under DIR (crash-safe, fsck-able)"
    );
    eprintln!(
        "  --snapshot-format F   with --snapshot-dir: write latest.snap as columnar \
         (default) or legacy serde JSON; both formats read back transparently"
    );
    eprintln!(
        "  --engine-cache DIR    reuse the compiled filter engine across runs via a \
         digest-keyed store artifact under DIR (decisions are identical either way)"
    );
    eprintln!(
        "  --scenario NAME       counterfactual mode: run the baseline AND the scenario- \
         modified world on one shared pool; built-ins: egypt-cs-localization, \
         eu-only-hubs, global-consent, no-restrictions"
    );
    eprintln!(
        "  --scenario-file FILE  load user-defined scenarios (JSON, one object or an \
         array); file scenarios take precedence over built-ins"
    );
    eprintln!(
        "  --counterfactual-report FILE  write the baseline-vs-scenario diff report to \
         FILE (without it the report is appended to stdout); stdout's baseline half \
         stays byte-identical to a scenario-less run"
    );
    eprintln!("       gamma-study fsck [--repair] DIR   check/repair store artifacts");
    eprintln!(
        "       gamma-study migrate-snapshots DIR  re-encode a legacy latest.snap as columnar"
    );
    ExitCode::FAILURE
}

fn usage_serve() -> ExitCode {
    eprintln!(
        "usage: gamma-study serve --register SPEC [--register SPEC ...] [--seed N] \
         [--ticks N] [--workers N] [--queue N] [--admission delay|shed] \
         [--state-dir DIR] [--restore] [--report] [--metrics-out FILE]"
    );
    eprintln!(
        "  --register SPEC   study registration, \
         name:cadence=N,countries=RW+US+NZ,faults=NAME,churn=paper|none,retention=N|all,sites=REG+GOV"
    );
    eprintln!("  --ticks N         advance the simulated clock N ticks (default 1)");
    eprintln!("  --workers N       shared worker-pool threads across all tenants");
    eprintln!("  --queue N         admitted rounds per tick; 0 = unbounded");
    eprintln!(
        "  --admission MODE  overflow policy: delay (FIFO backlog) or shed (skip occurrence)"
    );
    eprintln!("  --state-dir DIR   checkpoint each tenant's in-flight round under DIR");
    eprintln!(
        "  --restore         resume tenants from the revision stores in --state-dir \
         (unreadable stores are quarantined, not fatal)"
    );
    eprintln!("  --report          print each tenant's revision history after the run");
    eprintln!("  --metrics-out FILE  write the benchmark report (validate with --check-metrics)");
    ExitCode::FAILURE
}
