//! `gamma-study` — run the complete 23-country study from the command
//! line: world generation, every volunteer, geolocation, identification,
//! and the rendered figures/tables (Box 2 of the paper's Figure 1).
//!
//! ```sh
//! # print every figure and table
//! gamma-study
//!
//! # different seed; dump the assembled analysis dataset as JSON
//! gamma-study --seed 7 --json study.json
//!
//! # four worker threads (output is byte-identical to --jobs 1)
//! gamma-study --jobs 4
//!
//! # checkpoint after every country; rerun with the same flag to resume
//! gamma-study --resume study.ckpt
//!
//! # ablation: run without the reverse-DNS constraint
//! gamma-study --no-rdns
//!
//! # chaos run: stress fault profile, print the data-quality section
//! gamma-study --fault-profile stress --quality-report
//!
//! # CI smoke: three countries only
//! gamma-study --small --fault-profile blackout:RW --quality-report
//!
//! # longitudinal: three rounds of deterministic world churn, with the
//! # cross-round diff/trend report and snapshot-size ledger
//! gamma-study --small --rounds 3 --diff
//!
//! # observability: span tree on stderr, benchmark report as JSON
//! gamma-study --small --trace --metrics-out BENCH_2025.json
//!
//! # CI gate: validate a previously written benchmark report
//! gamma-study --check-metrics BENCH_2025.json
//! ```

use gamma::campaign::{render_campaign_report, Options};
use gamma::core::Study;
use gamma::obs::MetricsReport;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut seed = 2025u64;
    let mut json_out: Option<String> = None;
    let mut jobs = 1usize;
    let mut resume: Option<String> = None;
    let mut no_source = false;
    let mut no_dest = false;
    let mut no_rdns = false;
    let mut fault_profile: Option<String> = None;
    let mut quality_report = false;
    let mut small = false;
    let mut trace = false;
    let mut metrics_out: Option<String> = None;
    let mut check_metrics: Option<String> = None;
    let mut rounds = 1u32;
    let mut diff = false;

    let mut argv = std::env::args().skip(1);
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--seed" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(v) => seed = v,
                None => return usage(),
            },
            "--json" => match argv.next() {
                Some(v) => json_out = Some(v),
                None => return usage(),
            },
            "--jobs" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(v) => jobs = v,
                None => return usage(),
            },
            "--resume" => match argv.next() {
                Some(v) => resume = Some(v),
                None => return usage(),
            },
            "--no-source" => no_source = true,
            "--no-dest" => no_dest = true,
            "--no-rdns" => no_rdns = true,
            "--fault-profile" => match argv.next() {
                Some(v) => fault_profile = Some(v),
                None => return usage(),
            },
            "--quality-report" => quality_report = true,
            "--small" => small = true,
            "--trace" => trace = true,
            "--metrics-out" => match argv.next() {
                Some(v) => metrics_out = Some(v),
                None => return usage(),
            },
            "--check-metrics" => match argv.next() {
                Some(v) => check_metrics = Some(v),
                None => return usage(),
            },
            "--rounds" => match argv.next().and_then(|v| v.parse().ok()) {
                Some(v) if v >= 1 => rounds = v,
                _ => return usage(),
            },
            "--diff" => diff = true,
            "--help" | "-h" => return usage(),
            _ => return usage(),
        }
    }

    // Standalone mode: validate a previously written benchmark report and
    // exit. This is the jq-free CI gate for `--metrics-out` artifacts.
    if let Some(path) = check_metrics {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let report = match MetricsReport::from_json(&text) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{path} is not a valid metrics report: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match report.validate(10) {
            Ok(()) => {
                eprintln!(
                    "{path}: ok (seed {}, {} counters, {} stage(s))",
                    report.seed,
                    report.counters.len(),
                    report.stages.len()
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("{path}: invalid metrics report: {e}");
                ExitCode::FAILURE
            }
        };
    }

    let mut study = Study::paper_default(seed);
    if small {
        study
            .spec
            .countries
            .retain(|c| ["RW", "US", "NZ"].contains(&c.country.as_str()));
    }
    study.options.enable_source_constraint = !no_source;
    study.options.enable_destination_constraint = !no_dest;
    study.options.enable_rdns_constraint = !no_rdns;
    if let Some(name) = &fault_profile {
        match gamma::chaos::FaultPlan::from_profile_name(name, seed) {
            Some(plan) => {
                // Under injected faults, let geolocation run on whatever
                // constraint subset survives instead of discarding.
                study.options.degraded_fallback = !plan.is_quiet();
                study.config.plan = plan;
            }
            None => {
                eprintln!("unknown fault profile {name:?}");
                return usage();
            }
        }
    }

    let mut options = Options::with_workers(jobs);
    if let Some(path) = resume {
        options = options.resumable(path);
    }

    if trace {
        gamma::obs::global().set_trace(true);
    }

    // Temporal mode: N rounds over one evolving world, each round its own
    // campaign under a derived round seed, snapshots delta-encoded round
    // over round. `--diff` prints the cross-round trend report.
    if rounds > 1 || diff {
        if quality_report {
            eprintln!("note: --quality-report applies to single-round runs; ignoring");
        }
        let lstudy = gamma::longitudinal::LongitudinalStudy::new(study.clone(), rounds);
        eprintln!(
            "running the {}-country study over {rounds} round(s) (seed {seed}, {} worker(s))...",
            study.spec.countries.len(),
            options.effective_workers()
        );
        let before = gamma::obs::global().snapshot();
        let started = Instant::now();
        let results = match lstudy.run_with(&options) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("longitudinal campaign failed: {e}");
                return ExitCode::FAILURE;
            }
        };
        let total_wall = started.elapsed();
        for out in &results.rounds {
            eprintln!("— round {} (seed {}) —", out.epoch, out.round_seed);
            eprintln!("{}", render_campaign_report(&out.metrics));
        }

        if trace {
            for root in gamma::obs::global().take_traces() {
                eprint!("{}", gamma::obs::render_trace(&root));
            }
        }

        if let Some(path) = metrics_out {
            let mut measure = std::time::Duration::ZERO;
            let mut geolocate = std::time::Duration::ZERO;
            let mut finalize = std::time::Duration::ZERO;
            let mut sites_total = 0usize;
            for out in &results.rounds {
                let t = out.metrics.totals();
                measure += t.stage_wall.measure;
                geolocate += t.stage_wall.geolocate;
                finalize += t.stage_wall.finalize;
                sites_total += t.sites_total;
            }
            let stages = BTreeMap::from([
                ("measure".to_owned(), as_ms(measure)),
                ("geolocate".to_owned(), as_ms(geolocate)),
                ("finalize".to_owned(), as_ms(finalize)),
            ]);
            let after = gamma::obs::global().snapshot();
            let report = MetricsReport::new(
                seed,
                options.effective_workers(),
                study.spec.countries.len(),
                total_wall.as_secs_f64() * 1e3,
                stages,
                &before,
                &after,
            )
            .with_throughput("sites_per_sec", sites_total as f64);
            match report.to_json() {
                Ok(js) => {
                    if let Err(e) = std::fs::write(&path, js) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote metrics report {path}");
                }
                Err(e) => {
                    eprintln!("metrics serialization failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }

        if diff {
            println!("{}", results.render_report());
        } else {
            for (out, snap) in results.rounds.iter().zip(&results.snapshots) {
                let delta_bytes = results
                    .deltas
                    .get(out.epoch as usize)
                    .map(|d| d.json_bytes())
                    .unwrap_or(0);
                println!(
                    "round {}: seed {} | {} countries | snapshot {} B full / {} B delta",
                    out.epoch,
                    out.round_seed,
                    out.runs.len(),
                    snap.json_bytes(),
                    delta_bytes
                );
            }
        }

        if let Some(path) = json_out {
            let studies: Vec<_> = results.rounds.iter().map(|r| &r.study).collect();
            match serde_json::to_string_pretty(&studies) {
                Ok(js) => {
                    if let Err(e) = std::fs::write(&path, js) {
                        eprintln!("cannot write {path}: {e}");
                        return ExitCode::FAILURE;
                    }
                    eprintln!("wrote {path} (one dataset per round)");
                }
                Err(e) => {
                    eprintln!("serialization failed: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
        return ExitCode::SUCCESS;
    }

    eprintln!(
        "running the {}-country study (seed {seed}, {} worker(s))...",
        study.spec.countries.len(),
        options.effective_workers()
    );
    let before = gamma::obs::global().snapshot();
    let started = Instant::now();
    let results = match study.run_with(&options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("campaign failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let total_wall = started.elapsed();
    eprintln!("{}", render_campaign_report(&results.metrics));

    if trace {
        for root in gamma::obs::global().take_traces() {
            eprint!("{}", gamma::obs::render_trace(&root));
        }
    }

    if let Some(path) = metrics_out {
        let totals = results.metrics.totals();
        let stages = BTreeMap::from([
            ("measure".to_owned(), as_ms(totals.stage_wall.measure)),
            ("geolocate".to_owned(), as_ms(totals.stage_wall.geolocate)),
            ("finalize".to_owned(), as_ms(totals.stage_wall.finalize)),
        ]);
        let after = gamma::obs::global().snapshot();
        let report = MetricsReport::new(
            seed,
            options.effective_workers(),
            study.spec.countries.len(),
            total_wall.as_secs_f64() * 1e3,
            stages,
            &before,
            &after,
        )
        .with_throughput("sites_per_sec", totals.sites_total as f64);
        match report.to_json() {
            Ok(js) => {
                if let Err(e) = std::fs::write(&path, js) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote metrics report {path}");
            }
            Err(e) => {
                eprintln!("metrics serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("{}", results.render_all());
    if quality_report {
        println!("{}", results.render_quality());
    }
    if let Some(p) = results.overall_foreign_precision() {
        println!(
            "foreign-identification precision vs ground truth: {:.2}%",
            p * 100.0
        );
    }

    if let Some(path) = json_out {
        match serde_json::to_string_pretty(&results.study) {
            Ok(js) => {
                if let Err(e) = std::fs::write(&path, js) {
                    eprintln!("cannot write {path}: {e}");
                    return ExitCode::FAILURE;
                }
                eprintln!("wrote {path}");
            }
            Err(e) => {
                eprintln!("serialization failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn as_ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: gamma-study [--seed N] [--json FILE] [--jobs N] [--resume FILE] \
         [--no-source] [--no-dest] [--no-rdns] \
         [--fault-profile NAME] [--quality-report] [--small] \
         [--trace] [--metrics-out FILE] [--check-metrics FILE] \
         [--rounds N] [--diff]"
    );
    eprintln!("  --jobs N       run country shards on N worker threads (0 = all cores)");
    eprintln!("  --resume FILE  checkpoint after every country; resume from FILE if it exists");
    eprintln!(
        "  --fault-profile NAME  inject faults: none, paper, stress, or blackout:CC \
         (paper baseline plus one fully blacked-out country)"
    );
    eprintln!("  --quality-report      print the per-country data-quality section");
    eprintln!("  --small               three-country world (RW, US, NZ) for smoke runs");
    eprintln!("  --trace               print the hierarchical span tree on stderr");
    eprintln!("  --metrics-out FILE    write the machine-readable benchmark report as JSON");
    eprintln!("  --check-metrics FILE  validate a benchmark report and exit (CI gate)");
    eprintln!(
        "  --rounds N            temporal campaign: N rounds over one world evolving \
         under deterministic churn"
    );
    eprintln!("  --diff                print the cross-round trend report and snapshot sizes");
    ExitCode::FAILURE
}
