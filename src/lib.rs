//! # gamma
//!
//! Umbrella crate for the reproduction of *"Where in the World Are My
//! Trackers? Mapping Web Tracking Flow Across Diverse Geographic Regions"*
//! (IMC 2025). Re-exports every subsystem crate under one roof and hosts the
//! runnable examples and cross-crate integration tests.
//!
//! Start with [`core::Study`] (`gamma::core::Study`) — the high-level entry
//! point that builds the paper-calibrated world, runs the Gamma suite from
//! all 23 volunteer vantage points, applies the multi-constraint geolocation
//! pipeline and tracker identification, and exposes every figure and table
//! of the paper's evaluation.

pub use gamma_analysis as analysis;
pub use gamma_atlas as atlas;
pub use gamma_browser as browser;
pub use gamma_campaign as campaign;
pub use gamma_chaos as chaos;
pub use gamma_core as core;
pub use gamma_dns as dns;
pub use gamma_geo as geo;
pub use gamma_geoloc as geoloc;
pub use gamma_longitudinal as longitudinal;
pub use gamma_model as model;
pub use gamma_netsim as netsim;
pub use gamma_obs as obs;
pub use gamma_scenario as scenario;
pub use gamma_server as server;
pub use gamma_store as store;
pub use gamma_suite as suite;
pub use gamma_trackers as trackers;
pub use gamma_websim as websim;
