//! Why the paper insists on *in-country volunteer vantages* instead of
//! VPNs or cloud proxies (§2.2): GeoDNS answers depend on where you ask
//! from, and relayed paths inflate latency, which breaks latency-based
//! geolocation. This example measures the same Thai target list twice —
//! once from the real Bangkok vantage and once through a synthetic
//! London "VPN exit" — and quantifies both distortions.
//!
//! ```sh
//! cargo run --release --example vantage_distortion
//! ```

use gamma::dns::DomainName;
use gamma::geo::{city_by_name, violates_sol};
use gamma::netsim::{synthesize_route, AccessQuality, LatencyModel};
use gamma::websim::{worldgen, WorldSpec};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let world = worldgen::generate(&WorldSpec::paper_default(3));
    let bangkok = city_by_name("Bangkok").expect("catalog city");
    let london = city_by_name("London").expect("catalog city");

    // --- Distortion 1: GeoDNS answers change with the querying location.
    let mut diverging: Vec<(DomainName, &str, &str)> = Vec::new();
    let mut checked = 0;
    for t in &world.tracker_domains {
        let (Some(a), Some(b)) = (
            world.resolve(&t.domain, bangkok.id),
            world.resolve(&t.domain, london.id),
        ) else {
            continue;
        };
        checked += 1;
        if a.city != b.city {
            diverging.push((
                t.domain.clone(),
                gamma::geo::city(a.city).name,
                gamma::geo::city(b.city).name,
            ));
        }
    }
    println!("== GeoDNS divergence: Bangkok vs London client ==");
    println!(
        "{} of {} tracker domains resolve to different cities",
        diverging.len(),
        checked
    );
    for (d, a, b) in diverging.iter().take(8) {
        println!("  {d:<38} Bangkok→{a:<14} London→{b}");
    }

    // --- Distortion 2: a VPN relay inflates RTT and breaks the SOL check.
    let model = LatencyModel::default();
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    println!("\n== Latency distortion through a London exit ==");
    println!(
        "{:<16} {:>12} {:>12} {:>22}",
        "server city", "direct ms", "via VPN ms", "SOL check (as London)"
    );
    let mut broken = 0;
    let mut total = 0;
    for server in [
        "Singapore",
        "Kuala Lumpur",
        "Hong Kong",
        "Tokyo",
        "Frankfurt",
    ] {
        let dst = city_by_name(server).expect("catalog city");
        let direct = model
            .sample(
                &synthesize_route(bangkok, dst),
                AccessQuality::Good,
                &mut rng,
            )
            .rtt_ms();
        // The relayed path: user -> exit, then exit -> server.
        let leg1 = model
            .sample(
                &synthesize_route(bangkok, london),
                AccessQuality::Good,
                &mut rng,
            )
            .rtt_ms();
        let leg2 = model
            .sample(
                &synthesize_route(london, dst),
                AccessQuality::Good,
                &mut rng,
            )
            .rtt_ms();
        let vpn = leg1 + leg2;
        // A measurement study that believes its vantage is London will test
        // the observed RTT against London-server distances.
        let claimed_distance = london.distance_km(dst);
        let violated = violates_sol(claimed_distance, vpn);
        total += 1;
        if claimed_distance / vpn > 100.0 || vpn > 2.5 * direct {
            broken += 1;
        }
        println!(
            "{:<16} {:>10.1} {:>12.1} {:>22}",
            server,
            direct,
            vpn,
            if violated { "violates" } else { "distorted" }
        );
    }
    println!(
        "\n{broken}/{total} measurements unusable for latency-based geolocation via the relay \
         — the paper's case for real in-country vantage points."
    );
}
