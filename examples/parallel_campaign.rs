//! Parallel campaign: run the paper's full 23-country study across a
//! worker pool and print the campaign metrics report — per-shard stage
//! timings, retries, sites/requests/traceroutes — followed by the study's
//! figures and tables.
//!
//! Because every country shard consumes its own derived RNG stream, the
//! study output here is byte-identical to a sequential run; only the
//! wall-clock (first line of the report) changes with the worker count.
//!
//! ```sh
//! cargo run --release --example parallel_campaign            # 4 workers
//! cargo run --release --example parallel_campaign -- 8       # 8 workers
//! cargo run --release --example parallel_campaign -- 8 1234  # + seed
//! ```

use gamma::campaign::{render_campaign_report, Options};
use gamma::core::Study;

fn main() {
    let mut args = std::env::args().skip(1);
    let workers: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let seed: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(2025);

    eprintln!("running the 23-country study on {workers} worker(s) (seed {seed})...");
    let results = Study::paper_default(seed)
        .run_with(&Options::with_workers(workers))
        .expect("campaign");

    println!("{}", render_campaign_report(&results.metrics));
    println!("{}", results.render_all());

    if let Some(p) = results.overall_foreign_precision() {
        println!(
            "foreign-server identification precision vs ground truth: {:.1}%",
            p * 100.0
        );
    }
}
