//! Why the pipeline trusts no single geolocation database (§4.1): rank
//! the vendor family (RIPE IPmap, MaxMind, DB-IP, IPinfo, NetAcuity) by
//! accuracy against ground truth, then show what each one's errors would
//! do to a naive study — and how the multi-constraint framework repairs
//! the damage.
//!
//! ```sh
//! cargo run --release --example geodb_reliability
//! ```

use gamma::core::Study;
use gamma::geoloc::{compare_vendors, GeoVendor};
use gamma::websim::{worldgen, WorldSpec};

fn main() {
    let world = worldgen::generate(&WorldSpec::paper_default(17));

    println!("== Vendor accuracy vs ground truth ==\n");
    println!(
        "{:<12} {:>9} {:>14} {:>17}",
        "vendor", "coverage", "city accuracy", "country accuracy"
    );
    for acc in compare_vendors(&world, 17) {
        println!(
            "{:<12} {:>8.1}% {:>13.1}% {:>16.1}%",
            acc.vendor.name(),
            acc.coverage * 100.0,
            acc.city_accuracy * 100.0,
            acc.country_accuracy * 100.0
        );
    }
    println!(
        "\nRIPE IPmap ranks first — the paper's reason for using it as the\n\
         primary source — yet even it errs, which is why the pipeline layers\n\
         the speed-of-light and reverse-DNS constraints on top.\n"
    );

    // Quantify the repair: database-only vs full framework on a small study.
    let mut spec = WorldSpec::paper_default(17);
    spec.countries
        .retain(|c| ["RW", "PK", "US"].contains(&c.country.as_str()));
    let full = Study::with_spec(spec.clone()).run();
    let mut naive_study = Study::with_spec(spec);
    naive_study.options.enable_source_constraint = false;
    naive_study.options.enable_destination_constraint = false;
    naive_study.options.enable_rdns_constraint = false;
    let naive = naive_study.run();

    println!("== Foreign-identification precision (RW, PK, US) ==");
    println!(
        "database only:       {:.1}%",
        naive.overall_foreign_precision().unwrap_or(1.0) * 100.0
    );
    println!(
        "full framework:      {:.1}%",
        full.overall_foreign_precision().unwrap_or(1.0) * 100.0
    );

    // And the famous incident: what does each vendor say about Google's
    // addresses serving Pakistan?
    let g = world
        .orgs
        .iter()
        .find(|o| o.name == "Google")
        .expect("Google")
        .id;
    let serve = world.serving[&(g, gamma::geo::CountryCode::new("PK"))];
    let dep = world.hosting.get(g, serve).expect("deployment");
    let addr = dep.nets[0].nth(1).expect("host");
    println!("\n== Google address serving Pakistan ({addr}) ==");
    println!(
        "ground truth: {}",
        gamma::geo::city(world.true_city(addr).expect("allocated")).name
    );
    for vendor in GeoVendor::ALL {
        let db = vendor.build(&world, 17);
        let claimed = db
            .claimed_city(addr)
            .map(|c| gamma::geo::city(c).name)
            .unwrap_or("unmapped");
        println!("{:<12} claims {claimed}", vendor.name());
    }
}
