//! The Kenya-hub scenario (§6.3/§7 of the paper): Ugandan and Rwandan
//! websites send most of their tracking data to servers in Nairobi —
//! minor ad-tech firms riding AWS's Kenyan edge — while the remainder
//! flows to Europe. This example runs just the East-African vantages plus
//! a European control, and walks through the flow evidence:
//! per-destination website shares, the hosted-domain counts behind
//! Figure 7, and which organizations' trackers sit in Nairobi.
//!
//! ```sh
//! cargo run --release --example east_africa_hub
//! ```

use gamma::analysis::{flows, hosting, orgs};
use gamma::core::Study;
use gamma::geo::CountryCode;
use gamma::websim::WorldSpec;

fn main() {
    let mut spec = WorldSpec::paper_default(7);
    spec.countries
        .retain(|c| ["UG", "RW", "GB"].contains(&c.country.as_str()));
    let results = Study::with_spec(spec).run();

    let m = flows::figure5(&results.study);
    let ke = CountryCode::new("KE");

    println!("== East-African tracking flows ==\n");
    for src in ["UG", "RW", "GB"] {
        let source = CountryCode::new(src);
        let total = m
            .nonlocal_sites_per_source
            .get(&source)
            .copied()
            .unwrap_or(0);
        let to_kenya = m.website_flows.get(&(source, ke)).copied().unwrap_or(0);
        println!(
            "{src}: {total} sites with non-local trackers; {to_kenya} of them use a Kenya-hosted tracker"
        );
    }

    println!(
        "\nKenya's share of all websites with non-local trackers: {:.1}%",
        m.pct_websites_using(ke)
    );

    println!("\n== Unique tracking domains by hosting country (Figure 7 view) ==");
    for (cc, n) in hosting::domains_by_hosting_country(&results.study)
        .iter()
        .take(8)
    {
        println!("  {:<4} {n}", cc.as_str());
    }

    println!("\n== Who hosts in Nairobi? ==");
    let mut nairobi_orgs: Vec<String> = Vec::new();
    for c in &results.study.countries {
        for s in &c.sites {
            for t in &s.nonlocal_trackers {
                if t.hosting_country() == ke {
                    if let Some(org) = c.tracker_org(t) {
                        if !nairobi_orgs.iter().any(|o| o == org) {
                            nairobi_orgs.push(org.to_string());
                        }
                    }
                }
            }
        }
    }
    nairobi_orgs.sort();
    println!(
        "  {} organizations: {}",
        nairobi_orgs.len(),
        nairobi_orgs.join(", ")
    );

    println!("\n== Organization flows (Figure 8 view) ==");
    for (org, n) in orgs::ranked_orgs(&results.study).iter().take(10) {
        println!("  {org:<20} {n} websites");
    }
}
