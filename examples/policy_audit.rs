//! The policymaker's view (§7 / Table 1): does data-localization law
//! predict the prevalence of foreign trackers? The paper's answer is no —
//! if anything the trend runs the wrong way — and it recommends exactly
//! the kind of technical audit this binary performs: empirical
//! quantification of overseas data flows per country, grouped by the
//! strictness of the local regime.
//!
//! ```sh
//! cargo run --release --example policy_audit
//! ```

use gamma::analysis::policy::{strictness_rate_correlation, table1, PolicyType};
use gamma::analysis::stats::mean;
use gamma::core::Study;

fn main() {
    let results = Study::paper_default(11).run();
    let rows = table1(&results.study);

    println!("== Table 1: policy regime vs measured non-local tracker rate ==\n");
    println!(
        "{:<8} {:<6} {:<8} {:>10}",
        "country", "type", "enacted", "non-local%"
    );
    for r in &rows {
        let pct = match r.nonlocal_pct {
            Some(p) => format!("{p:>9.2}%"),
            None => format!("{:>10}", "(no data)"),
        };
        println!(
            "{:<8} {:<6} {:<8} {pct}{}",
            r.country.as_str(),
            r.policy.label(),
            if r.enacted { "yes" } else { "no" },
            r.footnote
                .as_deref()
                .map(|f| format!("   ({f})"))
                .unwrap_or_default()
        );
    }

    println!("\n== Mean non-local rate per policy class ==");
    for p in [
        PolicyType::CS,
        PolicyType::PA,
        PolicyType::AC,
        PolicyType::TA,
        PolicyType::NR,
    ] {
        let rates: Vec<f64> = rows
            .iter()
            .filter(|r| r.policy == p)
            .filter_map(|r| r.nonlocal_pct)
            .collect();
        if !rates.is_empty() {
            println!(
                "  {} (strictness {}): {:>5.1}% over {} countries",
                p.label(),
                p.strictness(),
                mean(&rates),
                rates.len()
            );
        }
    }

    if let Some(r) = strictness_rate_correlation(&rows) {
        println!("\nSpearman correlation, strictness vs non-local rate: {r:.2}");
        if r >= -0.1 {
            println!(
                "=> no deterrent effect of stricter localization law on foreign trackers\n\
                 (the paper's conclusion: adherence is driven by infrastructure, not law)"
            );
        }
    }
}
