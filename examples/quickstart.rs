//! Quickstart: run the paper's full 23-country study and print every
//! figure and table of the evaluation.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Pass a seed to explore different (but equally calibrated) worlds:
//!
//! ```sh
//! cargo run --release --example quickstart -- 1234
//! ```

use gamma::core::Study;

fn main() {
    let seed = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2025u64);

    eprintln!("generating world + running Gamma from 23 vantage points (seed {seed})...");
    let results = Study::paper_default(seed).run();

    println!("{}", results.render_all());

    if let Some(p) = results.overall_foreign_precision() {
        println!(
            "foreign-server identification precision vs ground truth: {:.1}%",
            p * 100.0
        );
    }
}
