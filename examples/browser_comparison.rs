//! Gamma "supports running measurements across major browsers, including
//! Chrome, Firefox, and privacy-focused Brave" (§3, C1). This example
//! crawls one country's target list under all three browsers and compares
//! what each one exposes: Chrome's webdriver background-request artifact
//! (which the analysis must strip, §5) and Brave's in-browser tracker
//! blocking (which suppresses the very requests the study measures).
//!
//! ```sh
//! cargo run --release --example browser_comparison
//! ```

use gamma::browser::{is_webdriver_noise_host, BrowserConfig, BrowserKind};
use gamma::geo::CountryCode;
use gamma::suite::{run_volunteer, GammaConfig, Volunteer};
use gamma::websim::{worldgen, WorldSpec};

fn main() {
    let world = worldgen::generate(&WorldSpec::paper_default(5));
    let volunteer =
        Volunteer::for_country(&world, CountryCode::new("TH"), 8).expect("Thailand is in the spec");

    println!(
        "{:<10} {:>8} {:>10} {:>14} {:>12}",
        "browser", "loads", "requests", "webdriver-noise", "traceroutes"
    );
    for kind in [
        BrowserKind::Chrome,
        BrowserKind::Firefox,
        BrowserKind::Brave,
    ] {
        let config = GammaConfig {
            browser: BrowserConfig {
                kind,
                ..BrowserConfig::paper_default()
            },
            ..GammaConfig::paper_default(5)
        };
        let ds = run_volunteer(&world, &volunteer, &config);
        let requests = ds.dns.len();
        let noise = ds
            .dns
            .iter()
            .filter(|d| is_webdriver_noise_host(ds.host(d.request)))
            .count();
        println!(
            "{:<10} {:>8} {:>10} {:>14} {:>12}",
            format!("{kind:?}"),
            ds.loaded_count(),
            requests,
            noise,
            ds.traceroutes.len()
        );
    }

    println!(
        "\nChrome emits vendor background requests the pipeline removes before analysis;\n\
         Brave's blocker suppresses third-party tracker fires, shrinking the request\n\
         volume — the reason the study standardized on isolated Chrome sessions."
    );
}
