//! The `Study` builder and its results.

use gamma_analysis::StudyDataset;
use gamma_atlas::AtlasPlatform;
use gamma_campaign::{
    Campaign, CampaignEnv, CampaignError, CampaignMetrics, CampaignOutcome, Options,
};
use gamma_geo::CountryCode;
use gamma_geoloc::{ErrorSpec, GeoDatabase, GeolocReport, PipelineOptions};
use gamma_suite::{GammaConfig, Quarantine, VolunteerDataset};
use gamma_trackers::TrackerClassifier;
use gamma_websim::{worldgen, World, WorldSpec};

/// A configured end-to-end study. Construct with [`Study::paper_default`]
/// (the 23-country configuration calibrated to the paper) or
/// [`Study::with_spec`] for custom worlds, adjust the public fields, then
/// [`Study::run`].
#[derive(Debug, Clone)]
pub struct Study {
    /// World calibration (countries, rates, destination mixes).
    pub spec: WorldSpec,
    /// Geolocation-database error model.
    pub error_spec: ErrorSpec,
    /// Constraint toggles and tunables (the ablation surface).
    pub options: PipelineOptions,
    /// Gamma tool configuration (browser, components, probe faults).
    pub config: GammaConfig,
    /// Master seed for everything downstream.
    pub seed: u64,
    /// Directory for compiled filter-engine artifacts. When set, the
    /// classifier's engine is deserialized from a digest-keyed
    /// `gamma-store` container instead of regenerating and reparsing
    /// list text (and is persisted there after a cache miss). Purely a
    /// build-time accelerator: decisions are identical either way.
    pub engine_cache: Option<std::path::PathBuf>,
}

impl Study {
    /// The paper's configuration: 23 countries, Chrome with §3.1 timings,
    /// all constraints on, default database error model.
    pub fn paper_default(seed: u64) -> Study {
        Study {
            spec: WorldSpec::paper_default(seed),
            error_spec: ErrorSpec::default(),
            options: PipelineOptions::default(),
            config: GammaConfig::paper_default(seed),
            seed,
            engine_cache: None,
        }
    }

    /// A study over a custom world specification.
    pub fn with_spec(spec: WorldSpec) -> Study {
        let seed = spec.seed;
        Study {
            spec,
            error_spec: ErrorSpec::default(),
            options: PipelineOptions::default(),
            config: GammaConfig::paper_default(seed),
            seed,
            engine_cache: None,
        }
    }

    /// Runs the full pipeline: world → volunteers → geolocation →
    /// identification → assembled dataset.
    ///
    /// This is the one-worker case of [`Study::run_with`]; because every
    /// country's shard consumes its own derived RNG stream, it produces
    /// exactly the bytes any parallel configuration would.
    pub fn run(&self) -> StudyResults {
        self.run_with(&Options::sequential())
            .expect("sequential study campaign")
    }

    /// Runs the full pipeline as a campaign: the per-country shards
    /// execute on `options.workers` work-stealing threads, with retry,
    /// fault injection and checkpoint/resume as configured. Output is
    /// byte-identical for every worker count.
    pub fn run_with(&self, options: &Options) -> Result<StudyResults, CampaignError> {
        let build_span = gamma_obs::span!("study.build");
        let world = worldgen::generate(&self.spec);
        let geodb = GeoDatabase::build(&world, &self.error_spec, self.seed);
        let atlas = AtlasPlatform::generate(self.seed);
        let classifier = TrackerClassifier::for_world_cached(&world, self.engine_cache.as_deref());
        drop(build_span);

        let env = CampaignEnv {
            world: &world,
            geodb: &geodb,
            atlas: &atlas,
            config: &self.config,
            pipeline_options: self.options,
            master_seed: self.seed,
        };
        let outcome = Campaign::new(env, options.clone()).run()?;
        let (runs, quarantines, metrics) = outcome.into_parts();

        let assemble_span = gamma_obs::span!("study.assemble");
        let study = StudyDataset::assemble(&world, &classifier, &runs);
        drop(assemble_span);
        Ok(StudyResults {
            world,
            geodb,
            atlas,
            runs,
            quarantines,
            study,
            metrics,
        })
    }

    /// Runs one round of a temporal campaign against an externally-owned
    /// (already evolved) world.
    ///
    /// The round's master seed comes from
    /// [`gamma_campaign::derive_round_seed`], so every downstream stream —
    /// geolocation database error draws, Atlas probe population, shard
    /// RNGs, the fault plan — is re-derived per round and independent of
    /// worker count. Epoch 0 is the anchor: with the world freshly
    /// generated from `self.spec`, `run_round(&world, 0, options)`
    /// produces byte-for-byte what [`Study::run_with`] produces.
    pub fn run_round(
        &self,
        world: &World,
        epoch: u32,
        options: &Options,
    ) -> Result<RoundOutputs, CampaignError> {
        let ctx = self.prepare_round(world, epoch);
        let outcome = Campaign::new(ctx.env(world), options.clone()).run()?;
        Ok(ctx.assemble(world, outcome))
    }

    /// Runs the baseline study AND a counterfactual study under the given
    /// scenario, the two campaigns' shards multiplexed onto one shared
    /// work-stealing pool with [`gamma_campaign::run_campaigns`] (the way
    /// a multi-tenant server shares its pool across tenants).
    ///
    /// Both campaigns run under the *unchanged* master seed — the scenario
    /// only rewrites the world specification before generation (its private
    /// randomness comes from the derived scenario stream), so the baseline
    /// half is byte-identical to [`Study::run_with`] at any worker count,
    /// and a spec-identity scenario (e.g. `no-restrictions`) produces a
    /// counterfactual half byte-identical to the baseline too.
    ///
    /// `options.checkpoint`/`options.resume` must be unset: the two
    /// campaigns share a master seed and would collide on one checkpoint
    /// file.
    pub fn run_counterfactual(
        &self,
        scenario: &gamma_scenario::Scenario,
        options: &Options,
    ) -> Result<CounterfactualOutcome, CampaignError> {
        assert!(
            options.checkpoint.is_none() && options.resume.is_none(),
            "counterfactual runs do not support checkpoint/resume"
        );
        scenario
            .validate()
            .map_err(|e| CampaignError::InvalidConfig(format!("scenario: {e}")))?;
        gamma_obs::global()
            .counter("scenario.counterfactual_runs")
            .inc();

        let build_span = gamma_obs::span!("study.counterfactual.build");
        let cf_spec = scenario.apply_spec(&self.spec);
        let base_world = worldgen::generate(&self.spec);
        let cf_world = worldgen::generate(&cf_spec);
        let base_geodb = GeoDatabase::build(&base_world, &self.error_spec, self.seed);
        let cf_geodb = GeoDatabase::build(&cf_world, &self.error_spec, self.seed);
        // The probe platform is a pure function of the master seed, which
        // both halves share; generate one per half so each result owns its
        // own copy, bytes identical.
        let base_atlas = AtlasPlatform::generate(self.seed);
        let cf_atlas = AtlasPlatform::generate(self.seed);
        let base_classifier =
            TrackerClassifier::for_world_cached(&base_world, self.engine_cache.as_deref());
        let cf_classifier =
            TrackerClassifier::for_world_cached(&cf_world, self.engine_cache.as_deref());
        drop(build_span);

        let env = |world, geodb, atlas| CampaignEnv {
            world,
            geodb,
            atlas,
            config: &self.config,
            pipeline_options: self.options,
            master_seed: self.seed,
        };
        let campaigns = [
            Campaign::new(env(&base_world, &base_geodb, &base_atlas), options.clone()),
            Campaign::new(env(&cf_world, &cf_geodb, &cf_atlas), options.clone()),
        ];
        let mut outcomes = gamma_campaign::run_campaigns(&campaigns, options.effective_workers());
        let cf_outcome = outcomes.pop().expect("counterfactual campaign slot")?;
        let base_outcome = outcomes.pop().expect("baseline campaign slot")?;
        drop(campaigns);

        let assemble_span = gamma_obs::span!("study.counterfactual.assemble");
        let assemble = |world: World,
                        geodb: GeoDatabase,
                        atlas: AtlasPlatform,
                        classifier: &TrackerClassifier,
                        outcome: CampaignOutcome| {
            let (runs, quarantines, metrics) = outcome.into_parts();
            let study = StudyDataset::assemble(&world, classifier, &runs);
            StudyResults {
                world,
                geodb,
                atlas,
                runs,
                quarantines,
                study,
                metrics,
            }
        };
        let baseline = assemble(
            base_world,
            base_geodb,
            base_atlas,
            &base_classifier,
            base_outcome,
        );
        let counterfactual = assemble(cf_world, cf_geodb, cf_atlas, &cf_classifier, cf_outcome);
        drop(assemble_span);

        let mut policy_db = gamma_analysis::policy::PolicyDb::paper();
        scenario.apply_policy(&mut policy_db);
        Ok(CounterfactualOutcome {
            scenario: scenario.clone(),
            baseline,
            counterfactual,
            policy_db,
        })
    }

    /// Builds everything round `epoch` needs *before* any shard runs: the
    /// derived round seed, the round's geolocation database, probe
    /// platform, tracker classifier, and the round-scoped tool config
    /// (seed and fault plan re-derived via `for_round`).
    ///
    /// [`Study::run_round`] is `prepare_round` → one campaign →
    /// [`RoundContext::assemble`]; the split exists so a multi-tenant
    /// server can prepare several tenants' rounds, multiplex all their
    /// shards onto one shared pool with
    /// [`gamma_campaign::run_campaigns`], and assemble each tenant's
    /// outputs afterward — with bytes identical to the solo path, because
    /// everything here is a pure function of `(self, world, epoch)`.
    pub fn prepare_round(&self, world: &World, epoch: u32) -> RoundContext {
        let round_seed = gamma_campaign::derive_round_seed(self.seed, epoch);
        let build_span = gamma_obs::span!("study.round.build");
        let geodb = GeoDatabase::build(world, &self.error_spec, round_seed);
        let atlas = AtlasPlatform::generate(round_seed);
        let classifier = TrackerClassifier::for_world_cached(world, self.engine_cache.as_deref());
        let mut config = self.config.clone();
        config.seed = round_seed;
        config.plan = self.config.plan.for_round(epoch);
        drop(build_span);
        RoundContext {
            epoch,
            round_seed,
            geodb,
            atlas,
            classifier,
            config,
            pipeline_options: self.options,
        }
    }
}

/// The prepared, pre-campaign state of one temporal round: everything
/// [`Study::run_round`] derives from `(study, world, epoch)` before the
/// shards execute. Borrow a [`CampaignEnv`] with [`RoundContext::env`],
/// run it (solo or on a shared multi-campaign pool), then feed the
/// outcome back through [`RoundContext::assemble`].
pub struct RoundContext {
    /// Which round this context was prepared for (0-based).
    pub epoch: u32,
    /// The derived master seed the round runs under.
    pub round_seed: u64,
    /// The round's geolocation database (pure function of the seed).
    pub geodb: GeoDatabase,
    /// The round's probe platform (pure function of the seed).
    pub atlas: AtlasPlatform,
    /// The world's tracker classifier.
    pub classifier: TrackerClassifier,
    /// Tool config with round-scoped seed and fault plan installed.
    pub config: GammaConfig,
    /// Constraint toggles, copied from the study.
    pub pipeline_options: PipelineOptions,
}

impl RoundContext {
    /// The campaign environment for this round over `world` — the same
    /// world the context was prepared against.
    pub fn env<'w>(&'w self, world: &'w World) -> CampaignEnv<'w> {
        CampaignEnv {
            world,
            geodb: &self.geodb,
            atlas: &self.atlas,
            config: &self.config,
            pipeline_options: self.pipeline_options,
            master_seed: self.round_seed,
        }
    }

    /// Assembles a finished campaign's outcome into [`RoundOutputs`].
    pub fn assemble(&self, world: &World, outcome: CampaignOutcome) -> RoundOutputs {
        let (runs, quarantines, metrics) = outcome.into_parts();
        let assemble_span = gamma_obs::span!("study.round.assemble");
        let study = StudyDataset::assemble(world, &self.classifier, &runs);
        drop(assemble_span);
        RoundOutputs {
            epoch: self.epoch,
            round_seed: self.round_seed,
            runs,
            quarantines,
            study,
            metrics,
        }
    }
}

/// One round of a temporal campaign: everything [`StudyResults`] carries
/// except the world (owned by the longitudinal driver, which keeps
/// evolving it) and the per-round geo database / probe platform (pure
/// functions of the round seed, rebuildable on demand).
pub struct RoundOutputs {
    /// Which round this is (0-based).
    pub epoch: u32,
    /// The derived master seed the round ran under.
    pub round_seed: u64,
    /// Per-country raw datasets and geolocation reports, in spec order.
    pub runs: Vec<(VolunteerDataset, GeolocReport)>,
    /// Per-country quarantine ledgers for the round.
    pub quarantines: Vec<(CountryCode, Quarantine)>,
    /// The assembled analysis dataset for the round.
    pub study: StudyDataset,
    /// The round's campaign metrics ledger.
    pub metrics: CampaignMetrics,
}

/// A finished counterfactual run: the baseline and scenario halves plus
/// the legal landscape the scenario's `AdoptPolicy` modifiers produced.
pub struct CounterfactualOutcome {
    /// The scenario the counterfactual half ran under.
    pub scenario: gamma_scenario::Scenario,
    /// The unmodified study (byte-identical to [`Study::run_with`]).
    pub baseline: StudyResults,
    /// The study over the scenario-rewritten world.
    pub counterfactual: StudyResults,
    /// Paper policy database with the scenario's regime changes applied.
    pub policy_db: gamma_analysis::policy::PolicyDb,
}

impl CounterfactualOutcome {
    /// Joins the two halves into the diff report.
    pub fn report(&self) -> gamma_analysis::counterfactual::CounterfactualReport {
        gamma_analysis::counterfactual::counterfactual_report(
            &self.baseline.study,
            &self.counterfactual.study,
            &self.scenario.id,
            &self.policy_db,
        )
    }

    /// Renders the diff report as deterministic text.
    pub fn render_report(&self) -> String {
        gamma_analysis::counterfactual::render_counterfactual(&self.report())
    }
}

/// Everything a finished study produced.
pub struct StudyResults {
    /// The generated world (ground truth; not visible to the pipeline's
    /// decisions, available for accuracy evaluation).
    pub world: World,
    /// The geolocation database the pipeline consulted.
    pub geodb: GeoDatabase,
    /// The probe platform.
    pub atlas: AtlasPlatform,
    /// Per-country raw datasets and geolocation reports, in spec order.
    pub runs: Vec<(VolunteerDataset, GeolocReport)>,
    /// Per-country quarantine ledgers: what each shard's suite run
    /// quarantined instead of shipping (empty under a quiet fault plan).
    pub quarantines: Vec<(CountryCode, Quarantine)>,
    /// The assembled analysis dataset behind every figure and table.
    pub study: StudyDataset,
    /// The campaign's per-shard/per-stage metrics ledger (render with
    /// [`gamma_campaign::render_campaign_report`]).
    pub metrics: CampaignMetrics,
}

impl StudyResults {
    /// Renders every figure and table of the evaluation as text — the
    /// same rows/series the paper reports.
    pub fn render_all(&self) -> String {
        use gamma_analysis::render::*;
        let mut out = String::new();
        out.push_str(&render_figure2(&gamma_analysis::coverage::figure2(
            &self.study,
        )));
        out.push('\n');
        out.push_str(&render_figure3(&gamma_analysis::prevalence::figure3(
            &self.study,
        )));
        out.push('\n');
        out.push_str(&render_figure4(&gamma_analysis::per_site::figure4(
            &self.study,
        )));
        out.push('\n');
        out.push_str(&render_figure5(&gamma_analysis::flows::figure5(
            &self.study,
        )));
        out.push('\n');
        out.push_str(&render_figure6(&gamma_analysis::continents::figure6(
            &self.study,
        )));
        out.push('\n');
        out.push_str(&render_figure7(
            &gamma_analysis::hosting::domains_by_hosting_country(&self.study),
        ));
        out.push('\n');
        out.push_str(&render_figure8(
            &gamma_analysis::orgs::ranked_orgs(&self.study),
            &gamma_analysis::orgs::hq_distribution(&self.study),
            &gamma_analysis::orgs::exclusive_orgs(&self.study),
        ));
        out.push('\n');
        out.push_str(&render_figure9(&gamma_analysis::freq::global_frequency(
            &self.study,
        )));
        out.push('\n');
        let rows = gamma_analysis::policy::table1(&self.study);
        let corr = gamma_analysis::policy::strictness_rate_correlation(&rows);
        out.push_str(&render_table1(&rows, corr));
        out.push('\n');
        out.push_str(&render_first_party(
            &gamma_analysis::first_party::first_party_analysis(&self.study),
        ));
        out.push('\n');
        out.push_str(&render_funnel(&gamma_analysis::funnel::total_funnel(
            &self.study,
        )));
        out
    }

    /// Renders the per-country data-quality section: pages killed, DNS
    /// failures, lost traceroutes, degraded-confidence confirmations.
    /// Kept out of [`StudyResults::render_all`] so quiet-plan reports stay
    /// byte-identical to pre-chaos output.
    pub fn render_quality(&self) -> String {
        let rows = gamma_analysis::quality::data_quality(&self.runs, &self.quarantines);
        gamma_analysis::quality::render_quality(&rows)
    }

    /// Foreign-identification precision across all countries (the
    /// framework of \[48\] reports 100%): confirmed-non-local addresses
    /// whose true country really differs from the measurement country.
    pub fn overall_foreign_precision(&self) -> Option<f64> {
        let mut confirmed = 0usize;
        let mut truly_foreign = 0usize;
        for (_, report) in &self.runs {
            let mut seen = std::collections::HashSet::new();
            for v in report.confirmed() {
                if !seen.insert(v.ip) {
                    continue;
                }
                confirmed += 1;
                if self.world.true_country(v.ip) != Some(report.country) {
                    truly_foreign += 1;
                }
            }
        }
        if confirmed == 0 {
            return None;
        }
        Some(truly_foreign as f64 / confirmed as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full end-to-end study is exercised heavily by the integration
    // tests and the analysis fixture; here we keep one smoke test on a
    // reduced spec to keep the unit suite fast.
    fn small_study() -> Study {
        let mut spec = WorldSpec::paper_default(77);
        spec.countries
            .retain(|c| ["RW", "US", "NZ"].contains(&c.country.as_str()));
        Study::with_spec(spec)
    }

    #[test]
    fn reduced_study_runs_end_to_end() {
        let results = small_study().run();
        assert_eq!(results.runs.len(), 3);
        assert_eq!(results.study.countries.len(), 3);
        // Volunteer addresses were anonymized.
        for (ds, _) in &results.runs {
            assert!(ds.volunteer.ip.is_none());
        }
        // Rwanda confirms foreign trackers, the US does not.
        let rw = results
            .study
            .country(gamma_geo::CountryCode::new("RW"))
            .unwrap();
        assert!(rw.sites.iter().any(|s| s.has_nonlocal_tracker()));
        let us = results
            .study
            .country(gamma_geo::CountryCode::new("US"))
            .unwrap();
        assert!(!us.sites.iter().any(|s| s.has_nonlocal_tracker()));
    }

    #[test]
    fn parallel_run_matches_sequential_byte_for_byte() {
        let study = small_study();
        let seq = study.run();
        let par = study
            .run_with(&gamma_campaign::Options::with_workers(4))
            .unwrap();
        assert_eq!(seq.runs, par.runs);
        assert_eq!(seq.study, par.study);
        assert_eq!(seq.render_all(), par.render_all());
        assert_eq!(par.metrics.workers, 4);
        assert_eq!(par.metrics.shards.len(), 3);
    }

    #[test]
    fn round_zero_is_byte_identical_to_a_plain_study() {
        let study = small_study();
        let plain = study.run();
        let world = worldgen::generate(&study.spec);
        let round = study.run_round(&world, 0, &Options::sequential()).unwrap();
        assert_eq!(round.round_seed, study.seed);
        assert_eq!(plain.runs, round.runs);
        assert_eq!(plain.study, round.study);
        assert_eq!(
            plain.quarantines, round.quarantines,
            "round-0 quarantine ledger diverged"
        );
    }

    #[test]
    fn later_rounds_are_worker_count_independent() {
        let study = small_study();
        let world = worldgen::generate(&study.spec);
        let seq = study.run_round(&world, 2, &Options::sequential()).unwrap();
        let par = study
            .run_round(&world, 2, &Options::with_workers(4))
            .unwrap();
        assert_eq!(seq.runs, par.runs);
        assert_eq!(seq.study, par.study);
        assert_eq!(seq.round_seed, par.round_seed);
        // And the round really ran under a different stream than round 0.
        let base = study.run_round(&world, 0, &Options::sequential()).unwrap();
        assert_ne!(base.round_seed, seq.round_seed);
    }

    #[test]
    fn counterfactual_baseline_matches_plain_run_at_any_worker_count() {
        let study = small_study();
        let plain = study.run();
        let scenario = gamma_scenario::Scenario {
            id: "rw-localization".into(),
            name: "Rwanda localizes".into(),
            modifiers: vec![gamma_scenario::RegimeModifier::ForceLocalization {
                country: gamma_geo::CountryCode::new("RW"),
            }],
        };
        let seq = study
            .run_counterfactual(&scenario, &Options::sequential())
            .unwrap();
        let par = study
            .run_counterfactual(&scenario, &Options::with_workers(4))
            .unwrap();
        assert_eq!(plain.runs, seq.baseline.runs);
        assert_eq!(plain.study, seq.baseline.study);
        assert_eq!(seq.baseline.study, par.baseline.study);
        assert_eq!(seq.counterfactual.study, par.counterfactual.study);
        assert_eq!(seq.render_report(), par.render_report());
        // Localizing Rwanda really changes the measured world: its
        // baseline foreign edges disappear in the counterfactual.
        let report = seq.report();
        assert!(
            report
                .disappeared
                .iter()
                .any(|(src, _)| *src == gamma_geo::CountryCode::new("RW")),
            "RW edges should disappear: {report:?}"
        );
    }

    #[test]
    fn no_restrictions_counterfactual_is_byte_identical_to_baseline() {
        let study = small_study();
        let scenario = gamma_scenario::builtin("no-restrictions").unwrap();
        let out = study
            .run_counterfactual(&scenario, &Options::sequential())
            .unwrap();
        assert_eq!(out.baseline.runs, out.counterfactual.runs);
        assert_eq!(out.baseline.study, out.counterfactual.study);
        let report = out.report();
        assert!(report.appeared.is_empty() && report.disappeared.is_empty());
        // Only the legal regime moved: everything NR, table re-ranked.
        for row in &report.counterfactual_table1 {
            assert_eq!(row.policy, gamma_analysis::policy::PolicyType::NR);
        }
    }

    #[test]
    fn quiet_plan_reports_clean_quality() {
        let results = small_study().run();
        assert_eq!(results.quarantines.len(), 3);
        assert!(results.quarantines.iter().all(|(_, q)| q.is_empty()));
        let text = results.render_quality();
        assert!(text.contains("data quality"), "missing header: {text}");
        assert!(
            text.contains("no losses"),
            "quiet plan should be clean: {text}"
        );
    }

    #[test]
    fn precision_is_near_perfect() {
        let results = small_study().run();
        let p = results.overall_foreign_precision().unwrap();
        assert!(p > 0.97, "foreign precision {p}");
    }

    #[test]
    fn render_all_contains_every_artifact() {
        let results = small_study().run();
        let text = results.render_all();
        for needle in [
            "Figure 2",
            "Figure 3",
            "Figure 4",
            "Figure 5",
            "Figure 6",
            "Figure 7",
            "Figure 8",
            "Figure 9",
            "Table 1",
            "first-party",
            "funnel",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
