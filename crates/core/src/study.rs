//! The `Study` builder and its results.

use gamma_analysis::StudyDataset;
use gamma_atlas::AtlasPlatform;
use gamma_geoloc::{ErrorSpec, GeoDatabase, GeolocPipeline, GeolocReport, PipelineOptions};
use gamma_suite::{run_volunteer, GammaConfig, Volunteer, VolunteerDataset};
use gamma_trackers::TrackerClassifier;
use gamma_websim::{worldgen, World, WorldSpec};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A configured end-to-end study. Construct with [`Study::paper_default`]
/// (the 23-country configuration calibrated to the paper) or
/// [`Study::with_spec`] for custom worlds, adjust the public fields, then
/// [`Study::run`].
#[derive(Debug, Clone)]
pub struct Study {
    /// World calibration (countries, rates, destination mixes).
    pub spec: WorldSpec,
    /// Geolocation-database error model.
    pub error_spec: ErrorSpec,
    /// Constraint toggles and tunables (the ablation surface).
    pub options: PipelineOptions,
    /// Gamma tool configuration (browser, components, probe faults).
    pub config: GammaConfig,
    /// Master seed for everything downstream.
    pub seed: u64,
}

impl Study {
    /// The paper's configuration: 23 countries, Chrome with §3.1 timings,
    /// all constraints on, default database error model.
    pub fn paper_default(seed: u64) -> Study {
        Study {
            spec: WorldSpec::paper_default(seed),
            error_spec: ErrorSpec::default(),
            options: PipelineOptions::default(),
            config: GammaConfig::paper_default(seed),
            seed,
        }
    }

    /// A study over a custom world specification.
    pub fn with_spec(spec: WorldSpec) -> Study {
        let seed = spec.seed;
        Study {
            spec,
            error_spec: ErrorSpec::default(),
            options: PipelineOptions::default(),
            config: GammaConfig::paper_default(seed),
            seed,
        }
    }

    /// Runs the full pipeline: world → volunteers → geolocation →
    /// identification → assembled dataset.
    pub fn run(&self) -> StudyResults {
        let world = worldgen::generate(&self.spec);
        let geodb = GeoDatabase::build(&world, &self.error_spec, self.seed);
        let atlas = AtlasPlatform::generate(self.seed);
        let classifier = TrackerClassifier::for_world(&world);
        let mut pipeline = GeolocPipeline::new(&world, &geodb, &atlas);
        pipeline.options = self.options;

        let mut rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x57_0d7);
        let mut runs: Vec<(VolunteerDataset, GeolocReport)> = Vec::new();
        for (i, cs) in world.spec.countries.iter().enumerate() {
            let volunteer =
                Volunteer::for_country(&world, cs.country, i).expect("spec country has volunteer");
            let mut dataset = run_volunteer(&world, &volunteer, &self.config);
            let report = pipeline.classify_dataset(&dataset, &mut rng);
            // §3.5: volunteer addresses are anonymized once analysis is done.
            dataset.anonymize();
            runs.push((dataset, report));
        }
        let study = StudyDataset::assemble(&world, &classifier, &runs);
        StudyResults {
            world,
            geodb,
            atlas,
            runs,
            study,
        }
    }
}

/// Everything a finished study produced.
pub struct StudyResults {
    /// The generated world (ground truth; not visible to the pipeline's
    /// decisions, available for accuracy evaluation).
    pub world: World,
    /// The geolocation database the pipeline consulted.
    pub geodb: GeoDatabase,
    /// The probe platform.
    pub atlas: AtlasPlatform,
    /// Per-country raw datasets and geolocation reports, in spec order.
    pub runs: Vec<(VolunteerDataset, GeolocReport)>,
    /// The assembled analysis dataset behind every figure and table.
    pub study: StudyDataset,
}

impl StudyResults {
    /// Renders every figure and table of the evaluation as text — the
    /// same rows/series the paper reports.
    pub fn render_all(&self) -> String {
        use gamma_analysis::render::*;
        let mut out = String::new();
        out.push_str(&render_figure2(&gamma_analysis::coverage::figure2(&self.study)));
        out.push('\n');
        out.push_str(&render_figure3(&gamma_analysis::prevalence::figure3(&self.study)));
        out.push('\n');
        out.push_str(&render_figure4(&gamma_analysis::per_site::figure4(&self.study)));
        out.push('\n');
        out.push_str(&render_figure5(&gamma_analysis::flows::figure5(&self.study)));
        out.push('\n');
        out.push_str(&render_figure6(&gamma_analysis::continents::figure6(&self.study)));
        out.push('\n');
        out.push_str(&render_figure7(&gamma_analysis::hosting::domains_by_hosting_country(
            &self.study,
        )));
        out.push('\n');
        out.push_str(&render_figure8(
            &gamma_analysis::orgs::ranked_orgs(&self.study),
            &gamma_analysis::orgs::hq_distribution(&self.study),
            &gamma_analysis::orgs::exclusive_orgs(&self.study),
        ));
        out.push('\n');
        out.push_str(&render_figure9(&gamma_analysis::freq::global_frequency(&self.study)));
        out.push('\n');
        let rows = gamma_analysis::policy::table1(&self.study);
        let corr = gamma_analysis::policy::strictness_rate_correlation(&rows);
        out.push_str(&render_table1(&rows, corr));
        out.push('\n');
        out.push_str(&render_first_party(&gamma_analysis::first_party::first_party_analysis(
            &self.study,
        )));
        out.push('\n');
        out.push_str(&render_funnel(&gamma_analysis::funnel::total_funnel(&self.study)));
        out
    }

    /// Foreign-identification precision across all countries (the
    /// framework of \[48\] reports 100%): confirmed-non-local addresses
    /// whose true country really differs from the measurement country.
    pub fn overall_foreign_precision(&self) -> Option<f64> {
        let mut confirmed = 0usize;
        let mut truly_foreign = 0usize;
        for (_, report) in &self.runs {
            let mut seen = std::collections::HashSet::new();
            for v in report.confirmed() {
                if !seen.insert(v.ip) {
                    continue;
                }
                confirmed += 1;
                if self.world.true_country(v.ip) != Some(report.country) {
                    truly_foreign += 1;
                }
            }
        }
        if confirmed == 0 {
            return None;
        }
        Some(truly_foreign as f64 / confirmed as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full end-to-end study is exercised heavily by the integration
    // tests and the analysis fixture; here we keep one smoke test on a
    // reduced spec to keep the unit suite fast.
    fn small_study() -> Study {
        let mut spec = WorldSpec::paper_default(77);
        spec.countries.retain(|c| {
            ["RW", "US", "NZ"].contains(&c.country.as_str())
        });
        Study::with_spec(spec)
    }

    #[test]
    fn reduced_study_runs_end_to_end() {
        let results = small_study().run();
        assert_eq!(results.runs.len(), 3);
        assert_eq!(results.study.countries.len(), 3);
        // Volunteer addresses were anonymized.
        for (ds, _) in &results.runs {
            assert!(ds.volunteer.ip.is_none());
        }
        // Rwanda confirms foreign trackers, the US does not.
        let rw = results
            .study
            .country(gamma_geo::CountryCode::new("RW"))
            .unwrap();
        assert!(rw.sites.iter().any(|s| s.has_nonlocal_tracker()));
        let us = results
            .study
            .country(gamma_geo::CountryCode::new("US"))
            .unwrap();
        assert!(!us.sites.iter().any(|s| s.has_nonlocal_tracker()));
    }

    #[test]
    fn precision_is_near_perfect() {
        let results = small_study().run();
        let p = results.overall_foreign_precision().unwrap();
        assert!(p > 0.97, "foreign precision {p}");
    }

    #[test]
    fn render_all_contains_every_artifact() {
        let results = small_study().run();
        let text = results.render_all();
        for needle in [
            "Figure 2", "Figure 3", "Figure 4", "Figure 5", "Figure 6", "Figure 7", "Figure 8",
            "Figure 9", "Table 1", "first-party", "funnel",
        ] {
            assert!(text.contains(needle), "missing {needle}");
        }
    }
}
