//! # gamma-core
//!
//! The high-level entry point of the reproduction. A [`Study`] wires every
//! subsystem the paper describes, end to end:
//!
//! 1. generate the calibrated synthetic world ([`gamma_websim`]),
//! 2. run the *Gamma* suite from all 23 volunteer vantage points
//!    ([`gamma_suite`]: browser C1, DNS/rDNS C2, traceroutes C3),
//! 3. geolocate every observed server with the multi-constraint framework
//!    ([`gamma_geoloc`]: IPmap-style DB, source/destination SOL
//!    constraints, reverse-DNS constraint),
//! 4. identify trackers with filter lists + manual labels
//!    ([`gamma_trackers`]) and
//! 5. assemble the analysis dataset behind every figure and table
//!    ([`gamma_analysis`]).
//!
//! ```
//! use gamma_core::Study;
//!
//! let results = Study::paper_default(42).run();
//! let fig3 = gamma_analysis::prevalence::figure3(&results.study);
//! assert!(fig3.regional_mean > 0.0);
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod study;

pub use study::{CounterfactualOutcome, RoundContext, RoundOutputs, Study, StudyResults};
