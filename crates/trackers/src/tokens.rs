//! URL/pattern tokenisation for the compiled ABP engine.
//!
//! The engine (see [`crate::engine`]) follows the adblock-rust /
//! uBlock-Origin design: it never scans the whole rule list. Instead,
//! each rule contributes one *token* — the hash of an alphanumeric run
//! drawn from its literals — to an index, and at match time the URL is
//! cut into its own runs so only the rules indexed under a token the URL
//! actually contains are evaluated.
//!
//! Soundness rests on one invariant: **a rule's token must be the hash
//! of a run that appears as a complete alphanumeric run in every URL the
//! rule can match.** A literal fragment that could sit mid-run in a URL
//! (e.g. the `ads` of the pattern `ads` matching `…/loads.js`? — no:
//! `loads` hashes differently) would make the index drop true matches,
//! so only *bounded* runs qualify:
//!
//! - every label of a `||domain` anchor (the rule requires the domain to
//!   match the host at label boundaries, and the match-time token set
//!   includes the host's labels);
//! - runs bounded inside a literal by non-alphanumeric bytes;
//! - a literal's leading run when the pattern is start-anchored or the
//!   previous pattern token is `^` (both force a non-alphanumeric or
//!   string-start boundary in the URL);
//! - a literal's trailing run when followed by `^` or the end anchor.
//!
//! Runs longer than [`TOKEN_MAX_BYTES`] hash only their prefix — on both
//! the rule and URL sides, so truncation can only *add* candidates,
//! never lose one.

/// Hash at most this many leading bytes of a run. Keeps token hashing
/// O(1) per run; rule-side and URL-side truncation agree, so a long run
/// can only collide into extra candidates, never miss one.
pub const TOKEN_MAX_BYTES: usize = 8;

/// Runs shorter than this are not worth indexing on the rule side
/// (`js`, `ad`, `www` are near-universal in URLs and would put most of
/// the list back into every evaluation). URL-side tokenisation keeps
/// them so rule-side choices remain free to use short runs when a rule
/// has nothing better — it simply prefers longer ones.
pub const TOKEN_MIN_BYTES: usize = 4;

/// FNV-1a over the first [`TOKEN_MAX_BYTES`] bytes of a run. Input is
/// expected lowercase (both rules and prepared requests are normalized
/// before hashing).
pub fn token_hash(run: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in run.iter().take(TOKEN_MAX_BYTES) {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn is_run_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric()
}

/// Calls `f` on each complete alphanumeric run of `bytes`. The one
/// run-splitting definition shared by the URL side, the rule side, and
/// the index fallback — any divergence between them files rules under
/// tokens no request can carry.
pub(crate) fn for_each_run<'a>(bytes: &'a [u8], mut f: impl FnMut(&'a [u8])) {
    let mut start = None;
    for (i, &b) in bytes.iter().enumerate() {
        match (is_run_byte(b), start) {
            (true, None) => start = Some(i),
            (false, Some(s)) => {
                f(&bytes[s..i]);
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        f(&bytes[s..]);
    }
}

/// Cuts `text` into complete alphanumeric runs and pushes each run's
/// hash. This is the match-time side: every complete run of the URL (and
/// of the host) is a potential token.
pub fn tokenize_text(text: &str, out: &mut Vec<u64>) {
    for_each_run(text.as_bytes(), |run| out.push(token_hash(run)));
}

/// Extracts the *safe* tokens of one pattern literal: hashes of the runs
/// guaranteed to appear as complete runs in any URL region the literal
/// matches. `bounded_left`/`bounded_right` declare whether the pattern
/// guarantees a non-alphanumeric (or string-edge) boundary immediately
/// before/after the literal.
pub fn literal_tokens(lit: &str, bounded_left: bool, bounded_right: bool, out: &mut Vec<u64>) {
    let bytes = lit.as_bytes();
    let mut start: Option<usize> = None;
    for (i, &b) in bytes.iter().enumerate() {
        match (is_run_byte(b), start) {
            (true, None) => start = Some(i),
            (false, Some(s)) => {
                // Bounded on the right by a non-run byte inside the
                // literal; on the left by either an interior byte or the
                // declared left boundary.
                if s > 0 || bounded_left {
                    push_long_enough(&bytes[s..i], out);
                }
                start = None;
            }
            _ => {}
        }
    }
    if let Some(s) = start {
        if (s > 0 || bounded_left) && bounded_right {
            push_long_enough(&bytes[s..], out);
        }
    }
}

fn push_long_enough(run: &[u8], out: &mut Vec<u64>) {
    if run.len() >= TOKEN_MIN_BYTES {
        out.push(token_hash(run));
    }
}

/// The deduplicated token set of one request, shared by the index lookup
/// and by per-literal gating during evaluation. Backed by a sorted vec:
/// requests carry a few dozen tokens at most, and binary search beats a
/// hash set at that size.
#[derive(Debug, Clone, Default)]
pub struct TokenSet(Vec<u64>);

impl TokenSet {
    /// Tokenizes a request: every complete run of the lowercased URL plus
    /// every complete run of the lowercased host. The host is tokenized
    /// separately because a `||domain` anchor only guarantees its labels
    /// are complete runs *of the host* — the host may sit at a non-run
    /// boundary inside the URL (or not appear verbatim at all).
    pub fn for_request(url: &str, host: &str) -> TokenSet {
        let mut v = Vec::with_capacity(24);
        tokenize_text(url, &mut v);
        tokenize_text(host, &mut v);
        v.sort_unstable();
        v.dedup();
        TokenSet(v)
    }

    pub fn contains(&self, token: u64) -> bool {
        self.0.binary_search(&token).is_ok()
    }

    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.0.iter().copied()
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// Tokens of a `||domain` anchor: one per alphanumeric run of the
/// domain. Sound because the rule only matches hosts carrying the
/// domain at label boundaries, and the engine tokenizes the request
/// *host* as well as the URL — every run of a matching host is a
/// complete run of the host string. Splitting on every non-run byte
/// (not just `.`) matters: a hyphenated label like `google-analytics`
/// tokenizes as `google` + `analytics` on the request side, so hashing
/// the raw label would index the rule under a token no request can
/// ever carry.
pub fn domain_tokens(domain: &str, out: &mut Vec<u64>) {
    for_each_run(domain.as_bytes(), |run| push_long_enough(run, out));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<u64> {
        let mut v = Vec::new();
        tokenize_text(s, &mut v);
        v
    }

    #[test]
    fn url_runs_are_complete_alnum_spans() {
        let url = "https://stats.g.doubleclick.net/pixel?id=42";
        let got = toks(url);
        let expect: Vec<u64> = ["https", "stats", "g", "doubleclick", "net", "pixel", "id", "42"]
            .iter()
            .map(|r| token_hash(r.as_bytes()))
            .collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn long_runs_truncate_identically_on_both_sides() {
        // Rule-side "doubleclick" and URL-side "doubleclick" agree even
        // though only 8 bytes are hashed; a differing 9th byte is
        // invisible (collision, caught by rule evaluation).
        assert_eq!(
            token_hash(b"doubleclick"),
            token_hash(b"doubleclicked"),
            "prefix-capped hashing must collide, not miss"
        );
        assert_ne!(token_hash(b"doublecl"), token_hash(b"doublecX"));
    }

    #[test]
    fn literal_tokens_respect_boundaries() {
        let mut out = Vec::new();
        // `/banner./` — "banner" is interior-bounded on both sides.
        literal_tokens("/banner./x", false, false, &mut out);
        assert_eq!(out, vec![token_hash(b"banner")]);

        // Unbounded trailing run is skipped...
        out.clear();
        literal_tokens("/beacon.js", false, false, &mut out);
        assert_eq!(out, vec![token_hash(b"beacon")]);

        // ...but kept when the pattern guarantees a right boundary.
        out.clear();
        literal_tokens("/tracking", false, true, &mut out);
        assert_eq!(out, vec![token_hash(b"tracking")]);

        // Leading run needs a left boundary.
        out.clear();
        literal_tokens("track.gif", false, false, &mut out);
        assert_eq!(out, Vec::<u64>::new(), "{out:?}");
        out.clear();
        literal_tokens("track.gif", true, false, &mut out);
        assert_eq!(out, vec![token_hash(b"track")]);
    }

    #[test]
    fn short_runs_are_not_indexed() {
        let mut out = Vec::new();
        literal_tokens("/js/ad/pixel/", false, false, &mut out);
        assert_eq!(out, vec![token_hash(b"pixel")]);
        out.clear();
        domain_tokens("g.ads.doubleclick.net", &mut out);
        assert_eq!(out, vec![token_hash(b"doubleclick")]);
    }

    #[test]
    fn domain_labels_each_token() {
        // A label containing '-' is NOT a single run in URL tokenisation —
        // the host "region-ads.example" tokenizes as ["region", "ads",
        // "example"] — so domain_tokens must split labels into runs too,
        // or the rule is indexed under a token no request can carry.
        let mut out = Vec::new();
        domain_tokens("region-ads.example", &mut out);
        assert_eq!(
            out,
            vec![token_hash(b"region"), token_hash(b"example")],
            "runs >= TOKEN_MIN_BYTES, in order; 'ads' too short"
        );
        let host_runs = toks("region-ads.example");
        for t in &out {
            assert!(host_runs.contains(t), "token not derivable from host runs");
        }

        let mut out = Vec::new();
        domain_tokens("google-analytics.com", &mut out);
        assert_eq!(out, vec![token_hash(b"google"), token_hash(b"analytics")]);
        let host_runs = toks("sub.google-analytics.com");
        for t in &out {
            assert!(host_runs.contains(t), "token not derivable from host runs");
        }
    }
}
