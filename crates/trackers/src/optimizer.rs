//! Filter optimizer: fuses same-shape rules into bulk-evaluable compiled
//! rules before the engine indexes them.
//!
//! The generated lists (and the real EasyList family) are dominated by
//! two shapes: `||domain^` / `||domain^$third-party` network rules, and
//! short unanchored substring patterns. Evaluating those one [`Rule`] at
//! a time re-runs the same option checks and the same separator logic per
//! rule; fusing every rule of a shape into one compiled rule turns the
//! whole group into a single hash-map walk (domains) or a literal sweep
//! (substrings) — evaluated at most once per request.
//!
//! Fusion must stay bit-identical to walking the legacy list, so each
//! fused entry carries its source rule's insertion index and raw text,
//! and an evaluation reports the *walk-order key* `(chain_rank,
//! insertion)` of the earliest entry that matched. `chain_rank` encodes
//! where the legacy walk would have visited the rule: the legacy matcher
//! visits `||domain` buckets longest-host-suffix first (more labels =
//! earlier), then generic rules; `u32::MAX - label_count` for anchored
//! rules and `u32::MAX` for generics reproduces that order for any fixed
//! host, and insertion order breaks ties exactly as the legacy loops do.
//!
//! One legacy quirk is preserved deliberately: a `||domain` rule whose
//! domain has fewer than two labels (`||com^`, `||^`) is *dead* in set
//! context — the legacy domain-chain walk only produces keys with at
//! least two labels, so such rules are never tried. The optimizer drops
//! them rather than let the engine match more than the reference.

use crate::abp::{is_separator, PreparedRequest, Rule};
use crate::tokens::TokenSet;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Walk-order rank of generic (non-domain-anchored) rules: after every
/// domain bucket.
pub(crate) const GENERIC_RANK: u32 = u32::MAX;

/// Rank of a `||domain` rule: buckets with more labels are visited
/// earlier in the legacy host-suffix walk.
pub(crate) fn domain_rank(labels: u32) -> u32 {
    u32::MAX - labels
}

/// A match reported by a compiled rule: enough to resolve "first match in
/// legacy walk order" across all candidates of an evaluation.
pub(crate) struct RuleHit<'a> {
    pub chain_rank: u32,
    pub insertion: u32,
    pub raw: &'a str,
    pub exception: bool,
}

impl RuleHit<'_> {
    pub(crate) fn order_key(&self) -> (u32, u32) {
        (self.chain_rank, self.insertion)
    }
}

/// One fused `||domain^`-shaped entry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct FusedDomain {
    pub insertion: u32,
    /// Label count of the domain (chain rank ingredient).
    pub labels: u32,
    /// Source rule text, carried into `Decision`.
    pub raw: String,
}

/// One fused substring literal.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) struct FusedLiteral {
    pub lit: String,
    pub insertion: u32,
    pub raw: String,
    /// Safe tokens of the literal (see [`crate::tokens::literal_tokens`]):
    /// every one must be present in the request's token set for the
    /// literal to possibly match, so absence lets the sweep skip the
    /// `contains` check entirely.
    pub tokens: Vec<u64>,
}

/// A rule as the engine evaluates it: either a lone legacy rule or a
/// whole fused group of one shape.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub(crate) enum CompiledRule {
    /// Any rule the optimizer did not fuse; evaluated through
    /// [`Rule::matches_prepared`], bit-identical by construction.
    Single {
        rule: Rule,
        insertion: u32,
        chain_rank: u32,
    },
    /// All `||domain^`-shaped rules (pattern exactly `^`, no `$domain=`)
    /// sharing one `(exception, third_party)` polarity: one map walk over
    /// the host's suffixes replaces the whole group.
    DomainSep {
        exception: bool,
        third_party: Option<bool>,
        domains: BTreeMap<String, FusedDomain>,
    },
    /// All single-literal unanchored rules of one polarity: a literal
    /// sweep with per-literal token gating.
    Substring {
        exception: bool,
        third_party: Option<bool>,
        literals: Vec<FusedLiteral>,
    },
}

impl CompiledRule {
    /// Evaluates against a prepared request, reporting the earliest
    /// matching entry in legacy walk order (or `None`).
    pub(crate) fn evaluate<'a>(
        &'a self,
        req: &PreparedRequest<'_>,
        request_tokens: &TokenSet,
    ) -> Option<RuleHit<'a>> {
        match self {
            CompiledRule::Single {
                rule,
                insertion,
                chain_rank,
            } => rule.matches_prepared(req).then(|| RuleHit {
                chain_rank: *chain_rank,
                insertion: *insertion,
                raw: &rule.raw,
                exception: rule.exception,
            }),
            CompiledRule::DomainSep {
                exception,
                third_party,
                domains,
            } => {
                if let Some(tp) = third_party {
                    if req.is_third_party != *tp {
                        return None;
                    }
                }
                // Every entry shares the pattern `^` anchored right after
                // the host inside the URL: check it once for the group.
                let url = req.url();
                let host = req.host();
                let end = req.host_pos()? + host.len();
                if end < url.len() && !is_separator(url.as_bytes()[end]) {
                    return None;
                }
                // Walk the host's label suffixes longest-first — the
                // legacy bucket order — and return the first entry hit:
                // within one group the longest matching domain is the
                // earliest-visited bucket.
                let mut pos = 0usize;
                loop {
                    let key = &host[pos..];
                    let Some(dot) = key.find('.') else {
                        return None;
                    };
                    if let Some(entry) = domains.get(key) {
                        return Some(RuleHit {
                            chain_rank: domain_rank(entry.labels),
                            insertion: entry.insertion,
                            raw: &entry.raw,
                            exception: *exception,
                        });
                    }
                    pos += dot + 1;
                }
            }
            CompiledRule::Substring {
                exception,
                third_party,
                literals,
            } => {
                if let Some(tp) = third_party {
                    if req.is_third_party != *tp {
                        return None;
                    }
                }
                let url = req.url();
                let mut best: Option<&FusedLiteral> = None;
                for entry in literals {
                    if let Some(b) = best {
                        if b.insertion < entry.insertion {
                            // `literals` keeps insertion order, so no
                            // later entry can improve on the best hit.
                            break;
                        }
                    }
                    if !entry.tokens.iter().all(|&t| request_tokens.contains(t)) {
                        continue;
                    }
                    if url.contains(entry.lit.as_str()) {
                        best = Some(entry);
                    }
                }
                best.map(|entry| RuleHit {
                    chain_rank: GENERIC_RANK,
                    insertion: entry.insertion,
                    raw: &entry.raw,
                    exception: *exception,
                })
            }
        }
    }
}

/// Optimizer output: the compiled rules plus bookkeeping for stats.
pub(crate) struct Optimized {
    pub rules: Vec<CompiledRule>,
    /// Source rules fused into `DomainSep`/`Substring` groups.
    pub fused_rules: u32,
    /// `||domain` rules with fewer than two labels, unreachable in the
    /// legacy walk and therefore dropped.
    pub dead_rules: u32,
    pub site_scoped: bool,
}

/// Shape key of fusable rules: polarity only (shapes with `$domain=`
/// scoping are never fused).
type GroupKey = (bool, Option<bool>);

/// Fuses same-shape rules; everything else compiles as-is. Rules arrive
/// in insertion order (the legacy tie-break order), and every compiled
/// entry remembers its insertion index so evaluation can resolve the
/// legacy first-match.
pub(crate) fn optimize(rules: &[Rule]) -> Optimized {
    use crate::abp::{Anchor, Tok};

    let mut out = Vec::new();
    let mut domain_groups: BTreeMap<GroupKey, BTreeMap<String, FusedDomain>> = BTreeMap::new();
    let mut substring_groups: BTreeMap<GroupKey, Vec<FusedLiteral>> = BTreeMap::new();
    let mut fused_rules = 0u32;
    let mut dead_rules = 0u32;
    let mut site_scoped = false;

    for (i, rule) in rules.iter().enumerate() {
        let insertion = u32::try_from(i).unwrap_or(u32::MAX);
        site_scoped |= rule.is_site_scoped();
        match &rule.anchor {
            Anchor::Domain(d) => {
                let labels = u32::try_from(d.split('.').count()).unwrap_or(u32::MAX);
                if !d.contains('.') {
                    // Dead in set context: the legacy walk never
                    // produces a sub-two-label bucket key.
                    dead_rules += 1;
                    continue;
                }
                if !rule.is_site_scoped() && rule.tokens == [Tok::Sep] {
                    let key = (rule.exception, rule.third_party);
                    let group = domain_groups.entry(key).or_default();
                    // Duplicate domains in one group are behaviorally
                    // identical; the legacy walk surfaces the first.
                    group.entry(d.clone()).or_insert_with(|| FusedDomain {
                        insertion,
                        labels,
                        raw: rule.raw.clone(),
                    });
                    fused_rules += 1;
                    continue;
                }
                out.push(CompiledRule::Single {
                    rule: rule.clone(),
                    insertion,
                    chain_rank: domain_rank(labels),
                });
            }
            Anchor::None if !rule.is_site_scoped() && single_literal(&rule.tokens).is_some() => {
                let lit = single_literal(&rule.tokens).expect("guard");
                let mut tokens = Vec::new();
                // Unanchored literal: neither edge is guaranteed a run
                // boundary in the URL, so only interior runs gate it.
                crate::tokens::literal_tokens(lit, false, false, &mut tokens);
                tokens.sort_unstable();
                tokens.dedup();
                substring_groups
                    .entry((rule.exception, rule.third_party))
                    .or_default()
                    .push(FusedLiteral {
                        lit: lit.to_string(),
                        insertion,
                        raw: rule.raw.clone(),
                        tokens,
                    });
                fused_rules += 1;
            }
            _ => out.push(CompiledRule::Single {
                rule: rule.clone(),
                insertion,
                chain_rank: GENERIC_RANK,
            }),
        }
    }

    for ((exception, third_party), domains) in domain_groups {
        out.push(CompiledRule::DomainSep {
            exception,
            third_party,
            domains,
        });
    }
    for ((exception, third_party), literals) in substring_groups {
        out.push(CompiledRule::Substring {
            exception,
            third_party,
            literals,
        });
    }

    Optimized {
        rules: out,
        fused_rules,
        dead_rules,
        site_scoped,
    }
}

/// The literal of a pattern consisting of exactly one `Lit` token.
fn single_literal(tokens: &[crate::abp::Tok]) -> Option<&str> {
    match tokens {
        [crate::abp::Tok::Lit(l)] => Some(l.as_str()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abp::{host_request, MatchContext};

    fn prepared<'a>(ctx: &MatchContext<'a>) -> (PreparedRequest<'a>, TokenSet) {
        let req = PreparedRequest::new(ctx);
        let toks = TokenSet::for_request(req.url(), req.host());
        (req, toks)
    }

    fn compile(lines: &[&str]) -> Optimized {
        let rules: Vec<Rule> = lines.iter().map(|l| Rule::parse(l).unwrap()).collect();
        optimize(&rules)
    }

    #[test]
    fn domain_sep_rules_fuse_per_polarity() {
        let opt = compile(&[
            "||ads.example^$third-party",
            "||trk.example^$third-party",
            "||pix.example^",
            "@@||ok.example^",
        ]);
        // Three groups (block/3p, block/any, exception/any), no singles.
        assert_eq!(opt.rules.len(), 3, "{:?}", opt.rules);
        assert_eq!(opt.fused_rules, 4);
        assert!(opt
            .rules
            .iter()
            .all(|r| matches!(r, CompiledRule::DomainSep { .. })));
    }

    #[test]
    fn fused_domain_walk_matches_longest_suffix_first() {
        let opt = compile(&["||ads.example^", "||deep.ads.example^"]);
        let [rule] = &opt.rules[..] else {
            panic!("one fused group expected, got {:?}", opt.rules);
        };
        let ctx = host_request(
            "https://x.deep.ads.example/t",
            "x.deep.ads.example",
            "site.org",
        );
        let (req, toks) = prepared(&ctx);
        let hit = rule.evaluate(&req, &toks).expect("must match");
        // The deeper (later-inserted) domain is the earlier bucket.
        assert_eq!(hit.raw, "||deep.ads.example^");
        assert_eq!(hit.insertion, 1);
        assert!(hit.chain_rank < GENERIC_RANK);
    }

    #[test]
    fn sub_two_label_domains_are_dead() {
        let opt = compile(&["||com^", "||ads.example^"]);
        assert_eq!(opt.dead_rules, 1);
        let ctx = host_request("https://x.com/", "x.com", "site.org");
        let (req, toks) = prepared(&ctx);
        for r in &opt.rules {
            assert!(r.evaluate(&req, &toks).is_none(), "dead rule matched");
        }
    }

    #[test]
    fn substring_sweep_reports_earliest_insertion() {
        let opt = compile(&["/pixel.gif?", "/beacon.js", "-adserver."]);
        let [rule] = &opt.rules[..] else {
            panic!("one fused group expected, got {:?}", opt.rules);
        };
        let ctx = host_request(
            "https://cdn.example/x-adserver.io/beacon.js",
            "cdn.example",
            "site.org",
        );
        let (req, toks) = prepared(&ctx);
        let hit = rule.evaluate(&req, &toks).expect("must match");
        // Both `/beacon.js` (insertion 1) and `-adserver.` (insertion 2)
        // match; the legacy generic loop surfaces insertion order.
        assert_eq!(hit.raw, "/beacon.js");
        assert_eq!(hit.insertion, 1);
        assert_eq!(hit.chain_rank, GENERIC_RANK);
    }

    #[test]
    fn site_scoped_and_complex_rules_stay_single() {
        let opt = compile(&[
            "||scoped.example^$domain=one.com",
            "/ads/*/banner.",
            "|https://tracker.",
            "track.js|",
        ]);
        assert_eq!(opt.fused_rules, 0);
        assert!(opt.site_scoped);
        assert_eq!(opt.rules.len(), 4);
        assert!(opt
            .rules
            .iter()
            .all(|r| matches!(r, CompiledRule::Single { .. })));
    }
}
