//! The tracker-identification pipeline (§4.2) and first/third-party
//! attribution (§6.7).

use crate::abp::{host_request, same_party, Decision};
use crate::engine::{engine_for_world, CompiledEngine};
use crate::manual::ManualStore;
use crate::whotracksme::WhoTracksMe;
use gamma_dns::psl::registrable_domain;
use gamma_dns::DomainName;
use gamma_model::{HostId, Interner};
use gamma_websim::World;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::OnceLock;

fn classify_cache_hits() -> &'static gamma_obs::Counter {
    static COUNTER: OnceLock<gamma_obs::Counter> = OnceLock::new();
    COUNTER.get_or_init(|| gamma_obs::global().counter("trackers.classify.cache_hits"))
}

/// How a domain was identified as a tracker, if at all.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Identification {
    /// Matched a filter-list rule (carries the rule text).
    ByList(String),
    /// Labeled through the manual-inspection pass.
    ByManual,
    /// Not identified as an ad/tracking domain.
    NotTracker,
}

impl Identification {
    pub fn is_tracker(&self) -> bool {
        !matches!(self, Identification::NotTracker)
    }
}

/// The assembled classifier: lists → manual labels → org attribution.
#[derive(Debug, Clone)]
pub struct TrackerClassifier {
    /// The compiled (token-indexed) filter engine; decisions are pinned
    /// bit-identical to the legacy [`crate::abp::FilterSet`] walk.
    pub engine: CompiledEngine,
    pub manual: ManualStore,
    pub orgs: WhoTracksMe,
}

impl TrackerClassifier {
    /// Builds the classifier the way the study assembled its tooling:
    /// public lists plus regional lists, a manual-label store, and the
    /// WhoTracksMe organization database.
    pub fn for_world(world: &World) -> Self {
        Self::for_world_cached(world, None)
    }

    /// [`TrackerClassifier::for_world`] through the compiled-engine
    /// cache: when a directory is given, the filter engine is
    /// deserialized from a digest-keyed artifact instead of regenerating
    /// and reparsing list text (and is persisted there on a miss).
    pub fn for_world_cached(world: &World, engine_cache: Option<&std::path::Path>) -> Self {
        TrackerClassifier {
            engine: engine_for_world(world, engine_cache),
            manual: ManualStore::from_world(world),
            orgs: WhoTracksMe::from_world(world),
        }
    }

    /// Identifies one requested domain observed on `site`.
    pub fn identify(&self, request: &DomainName, site: &DomainName) -> Identification {
        self.identify_with_party(request, &site_first_party(site))
    }

    /// Identifies a requested domain against an already-computed
    /// first-party registrable domain (see [`site_first_party`]). This is
    /// the uncached engine invocation both [`TrackerClassifier::identify`]
    /// and the decision cache's miss path share.
    pub fn identify_with_party(&self, request: &DomainName, first_party: &str) -> Identification {
        let host = request.as_str();
        let url = format!("https://{host}/");
        let identification = match self.engine.matches(&host_request(&url, host, first_party)) {
            Decision::Blocked(rule) => Identification::ByList(rule),
            Decision::Allowed(_) => Identification::NotTracker,
            Decision::None => {
                if self.manual.contains(request) {
                    Identification::ByManual
                } else {
                    Identification::NotTracker
                }
            }
        };
        let outcome = match &identification {
            Identification::ByList(_) => "trackers.identified.list",
            Identification::ByManual => "trackers.identified.manual",
            Identification::NotTracker => "trackers.identified.none",
        };
        gamma_obs::global().counter(outcome).inc();
        identification
    }

    /// Cache-fronted identification for interned hosts: each unique
    /// `(host, party)` pair reaches the filter engine at most once per
    /// cache lifetime. Sound because, absent `$domain=`-scoped rules, a
    /// decision is a pure function of the host and the party bit — when
    /// the list does carry site-scoped rules the cache is bypassed
    /// entirely rather than risk a stale verdict.
    pub fn identify_cached(
        &self,
        cache: &mut DecisionCache,
        symbols: &Interner,
        request: HostId,
        first_party: &str,
    ) -> Identification {
        let host = request.resolve(symbols);
        if self.engine.has_site_scoped_rules() {
            let name = DomainName::from_normalized(host.to_string());
            return self.identify_with_party(&name, first_party);
        }
        let third_party = !same_party(host, first_party);
        if let Some(hit) = cache.decisions.get(&(request, third_party)) {
            classify_cache_hits().inc();
            return hit.clone();
        }
        let name = DomainName::from_normalized(host.to_string());
        let identification = self.identify_with_party(&name, first_party);
        cache
            .decisions
            .insert((request, third_party), identification.clone());
        identification
    }

    /// First-party if the tracker and the site belong to the same
    /// organization ("A tracker is deemed first-party if it belongs to the
    /// same organization as the website", §6.7). Unknown ownership on
    /// either side means third-party.
    pub fn is_first_party(&self, world: &World, request: &DomainName, site: &DomainName) -> bool {
        let (Some(site_org), Some(tracker_org)) =
            (world.org_of_domain(site), world.org_of_domain(request))
        else {
            return false;
        };
        site_org == tracker_org
    }
}

/// The first-party registrable domain of a site, as the identification
/// pipeline defines it: the PSL registrable domain, falling back to the
/// site itself when the PSL yields nothing.
pub fn site_first_party(site: &DomainName) -> String {
    registrable_domain(site)
        .map(|d| d.as_str().to_string())
        .unwrap_or_else(|| site.as_str().to_string())
}

/// Memoized identification verdicts keyed by `(host, is_third_party)`.
/// Scope one cache per symbol table (in practice: per country dataset) —
/// ids from different tables must not share a cache.
#[derive(Debug, Default)]
pub struct DecisionCache {
    decisions: HashMap<(HostId, bool), Identification>,
}

impl DecisionCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized verdicts.
    pub fn len(&self) -> usize {
        self.decisions.len()
    }

    pub fn is_empty(&self) -> bool {
        self.decisions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_websim::{worldgen, WorldSpec};

    fn setup() -> (World, TrackerClassifier) {
        let w = worldgen::generate(&WorldSpec::paper_default(51));
        let c = TrackerClassifier::for_world(&w);
        (w, c)
    }

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn listed_trackers_identify_by_list() {
        let (_, c) = setup();
        let id = c.identify(&d("pixel.doubleclick.net"), &d("somesite.com"));
        assert!(matches!(id, Identification::ByList(_)), "{id:?}");
    }

    #[test]
    fn ozone_identifies_by_manual() {
        let (_, c) = setup();
        let id = c.identify(&d("theozone-project.com"), &d("somesite.co.uk"));
        assert_eq!(id, Identification::ByManual);
    }

    #[test]
    fn first_party_hosts_are_not_trackers() {
        let (w, c) = setup();
        // Generated regional sites' own hosts never classify as trackers.
        let site = w
            .sites
            .iter()
            .find(|s| !s.global && !w.is_tracker_domain(&s.domain))
            .unwrap();
        for h in &site.own_hosts {
            let id = c.identify(h, &site.domain);
            assert_eq!(id, Identification::NotTracker, "{h}");
        }
    }

    #[test]
    fn ground_truth_recall_is_high() {
        // Every ground-truth tracker domain must be identified when seen as
        // a third-party request (lists + manual combined = the paper's 505).
        let (w, c) = setup();
        let mut missed = Vec::new();
        for t in &w.tracker_domains {
            let id = c.identify(&t.domain, &d("unrelated-site.com"));
            if !id.is_tracker() {
                missed.push(t.domain.to_string());
            }
        }
        assert!(missed.is_empty(), "missed trackers: {missed:?}");
    }

    #[test]
    fn google_cctld_site_with_google_tracker_is_first_party() {
        let (w, c) = setup();
        assert!(c.is_first_party(&w, &d("google-analytics.com"), &d("google.com.eg")));
        assert!(!c.is_first_party(&w, &d("google-analytics.com"), &d("manoramaonline.com")));
    }

    #[test]
    fn facebook_tracker_on_google_site_is_third_party() {
        let (w, c) = setup();
        assert!(!c.is_first_party(&w, &d("facebook.net"), &d("google.com.eg")));
    }

    #[test]
    fn unknown_ownership_defaults_to_third_party() {
        let (w, c) = setup();
        assert!(!c.is_first_party(&w, &d("mystery-tracker.xyz"), &d("unknown-site.xyz")));
    }

    #[test]
    fn cached_identification_matches_uncached() {
        let (_, c) = setup();
        assert!(
            !c.engine.has_site_scoped_rules(),
            "study lists are party-scoped only; the cache must be active"
        );
        let mut symbols = Interner::new();
        let mut cache = DecisionCache::new();
        let site = d("somesite.com");
        let fp = site_first_party(&site);
        let hosts = [
            "pixel.doubleclick.net",
            "theozone-project.com",
            "plain.example.org",
            "pixel.doubleclick.net", // repeat: must come from the cache
        ];
        for host in hosts {
            let id = HostId::intern(&mut symbols, host);
            let cached = c.identify_cached(&mut cache, &symbols, id, &fp);
            let direct = c.identify(&d(host), &site);
            assert_eq!(cached, direct, "{host}");
        }
        assert_eq!(cache.len(), 3, "three unique hosts, one repeat");
    }

    #[test]
    fn site_scoped_lists_bypass_the_cache() {
        use crate::abp::Rule;
        let (w, mut c) = setup();
        let mut set = crate::lists::combined_filter_set(&w);
        set.add(Rule::parse("||scoped-ads.net^$domain=onesite.com").unwrap());
        c.engine = CompiledEngine::compile(&set);
        let mut symbols = Interner::new();
        let mut cache = DecisionCache::new();
        let id = HostId::intern(&mut symbols, "pixel.doubleclick.net");
        let verdict = c.identify_cached(&mut cache, &symbols, id, "somesite.com");
        assert!(verdict.is_tracker());
        assert!(
            cache.is_empty(),
            "site-scoped rules must disable memoization"
        );
    }
}
