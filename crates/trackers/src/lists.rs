//! Filter-list content generation.
//!
//! The real study downloads EasyList, EasyPrivacy, and regional lists
//! (India, Sri Lanka); offline, we generate equivalent list *documents* in
//! genuine ABP syntax covering the synthetic tracker ecosystem, then feed
//! them through the same parser/matcher a real consumer would use. The
//! split mirrors the lists' charters: EasyList carries ad-serving rules
//! (AdTech orgs), EasyPrivacy carries analytics/tracking rules, and the
//! regional lists carry domains of locally-HQ'd organizations.

use crate::abp::FilterSet;
use gamma_websim::{OrgKind, World};

/// EasyList-style document: ad-serving domains plus generic ad-path rules.
pub fn generate_easylist(world: &World) -> String {
    let mut out = String::from("[Adblock Plus 2.0]\n! Title: EasyList (synthetic)\n");
    out.push_str("! Generic ad-serving patterns\n");
    out.push_str("/ads/*/banner.\n&ad_unit=\n-adserver.\n");
    for t in &world.tracker_domains {
        if !t.in_filter_lists {
            continue;
        }
        let org = world.org(t.org);
        if matches!(org.kind, OrgKind::AdTech | OrgKind::MajorTracker)
            && !regional_org(world, t.org)
        {
            out.push_str(&format!("||{}^$third-party\n", t.domain));
        }
    }
    out
}

/// EasyPrivacy-style document: analytics/measurement/social tracking.
pub fn generate_easyprivacy(world: &World) -> String {
    let mut out = String::from("[Adblock Plus 2.0]\n! Title: EasyPrivacy (synthetic)\n");
    out.push_str("! Generic tracking patterns\n");
    out.push_str("/pixel.gif?\n/beacon.js\n||googletagmanager.com^\n");
    for t in &world.tracker_domains {
        if !t.in_filter_lists {
            continue;
        }
        let org = world.org(t.org);
        if matches!(org.kind, OrgKind::Analytics | OrgKind::Social) && !regional_org(world, t.org) {
            out.push_str(&format!("||{}^\n", t.domain));
        }
    }
    out
}

/// Regional lists (the paper uses India's and Sri Lanka's): one document
/// per country, carrying locally-HQ'd tracker orgs' domains.
pub fn generate_regional_lists(world: &World) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for cc in ["IN", "LK"] {
        let mut doc = format!("[Adblock Plus 2.0]\n! Title: regional list {cc}\n");
        let mut any = false;
        for t in &world.tracker_domains {
            if !t.in_filter_lists {
                continue;
            }
            if world.org(t.org).hq.as_str() == cc {
                doc.push_str(&format!("||{}^\n", t.domain));
                any = true;
            }
        }
        if any {
            out.push((cc.to_string(), doc));
        }
    }
    out
}

/// Every list document the identification pipeline applies, in the
/// pipeline's canonical order (easylist, easyprivacy, regional lists).
/// The order is load-bearing twice over: rule insertion order breaks
/// matcher ties, and the documents' digest keys the compiled-engine
/// cache (see [`crate::engine::engine_for_world`]).
pub fn list_documents(world: &World) -> Vec<String> {
    let mut docs = vec![generate_easylist(world), generate_easyprivacy(world)];
    for (_, doc) in generate_regional_lists(world) {
        docs.push(doc);
    }
    docs
}

/// The union filter set the identification pipeline applies (§4.2 combines
/// easylist, easyprivacy and the regional lists).
pub fn combined_filter_set(world: &World) -> FilterSet {
    let mut set = FilterSet::new();
    for doc in list_documents(world) {
        set.extend_from(&FilterSet::parse_list(&doc));
    }
    set
}

fn regional_org(world: &World, org: gamma_websim::OrgId) -> bool {
    matches!(world.org(org).hq.as_str(), "IN" | "LK")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abp::{host_request, Decision};
    use gamma_websim::{worldgen, WorldSpec};

    fn world() -> World {
        worldgen::generate(&WorldSpec::paper_default(21))
    }

    #[test]
    fn lists_parse_into_many_rules() {
        let w = world();
        let set = combined_filter_set(&w);
        // 441-ish listed domains plus generic rules.
        assert!(set.len() > 350, "only {} rules", set.len());
    }

    #[test]
    fn listed_tracker_domains_are_blocked() {
        let w = world();
        let set = combined_filter_set(&w);
        let mut misses = Vec::new();
        for t in &w.tracker_domains {
            if !t.in_filter_lists {
                continue;
            }
            let host = t.domain.as_str();
            let url = format!("https://{host}/collect");
            let d = set.matches(&host_request(&url, host, "some-news-site.com"));
            if !matches!(d, Decision::Blocked(_)) {
                misses.push(host.to_string());
            }
        }
        assert!(misses.is_empty(), "listed domains not blocked: {misses:?}");
    }

    #[test]
    fn manual_only_domains_are_not_blocked() {
        let w = world();
        let set = combined_filter_set(&w);
        let oz = "theozone-project.com";
        let url = format!("https://{oz}/tag.js");
        let d = set.matches(&host_request(&url, oz, "some-news-site.com"));
        assert_eq!(d, Decision::None, "{oz} must require manual labeling");
    }

    #[test]
    fn ordinary_sites_are_not_blocked() {
        let w = world();
        let set = combined_filter_set(&w);
        for site in w.sites.iter().take(200) {
            if w.is_tracker_domain(&site.domain) {
                continue; // google ccTLD sites share tracker eTLD+1s
            }
            let host = site.domain.as_str();
            let url = format!("https://{host}/");
            let d = set.matches(&host_request(&url, host, host));
            assert_eq!(d, Decision::None, "{host} wrongly blocked");
        }
    }

    #[test]
    fn regional_lists_cover_adstudio_and_vwo() {
        let w = world();
        let lists = generate_regional_lists(&w);
        assert_eq!(lists.len(), 2);
        let all: String = lists.iter().map(|(_, d)| d.clone()).collect();
        assert!(
            all.contains("adstudio.cloud"),
            "Sri Lanka list misses adstudio"
        );
        assert!(
            all.contains("visualwebsiteoptimizer.com"),
            "India list misses VWO"
        );
    }

    #[test]
    fn easylist_rules_are_third_party_scoped() {
        let w = world();
        let el = generate_easylist(&w);
        // Ad-serving rules carry the conventional $third-party option.
        let rule_lines: Vec<&str> = el.lines().filter(|l| l.starts_with("||")).collect();
        assert!(!rule_lines.is_empty());
        assert!(rule_lines.iter().all(|l| l.ends_with("$third-party")));
    }
}
