//! The tokenised ABP matching engine (the production matcher).
//!
//! Modelled on brave/adblock-rust: at compile time every rule is reduced
//! to one or more *index tokens* — 4–8-byte hashes of alphanumeric runs
//! the rule's literals guarantee to appear in any matching URL (see
//! [`crate::tokens`]) — and each rule is filed under its globally rarest
//! token. At match time the URL and host are tokenised once, the token
//! index yields a handful of candidate rules, and only those candidates
//! are evaluated; everything else on the list is never touched. The
//! [`crate::optimizer`] first fuses the dominant rule shapes
//! (`||domain^`, bare substrings) so a "candidate" is often an entire
//! fused group answered by one hash-map walk.
//!
//! Decisions are bit-identical to the legacy [`FilterSet::matches`]
//! walk — including *which* rule text a [`Decision`] carries. The legacy
//! matcher returns the first matching exception in walk order, else the
//! first matching block; candidates here arrive in index order instead,
//! so every hit reports its legacy walk-order key `(chain_rank,
//! insertion)` and the engine keeps the minimum per polarity. A
//! differential proptest pins the equivalence.
//!
//! Counters: `trackers.abp.evaluations` (one per engine invocation),
//! `trackers.abp.rules_tried` (candidates evaluated — the number the
//! token index exists to crush), `trackers.abp.token_hits` (request
//! tokens that hit a non-empty index bucket).
//!
//! A compiled engine serializes into a `gamma-store` framed container
//! ([`ArtifactKind::CompiledEngine`]) with its own format version, so a
//! campaign can deserialize one prebuilt engine per country instead of
//! regenerating and reparsing list text (see [`engine_for_world`]).

use crate::abp::{Anchor, Decision, FilterSet, MatchContext, PreparedRequest, Tok};
use crate::optimizer::{optimize, CompiledRule};
use crate::tokens::{domain_tokens, literal_tokens, token_hash, TokenSet};
use gamma_store::{ArtifactKind, LoadError, WriteError, WriteOptions};
use gamma_websim::World;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::OnceLock;

/// Version of the serialized engine payload (bump on any change to the
/// compiled layout or to token semantics — a cached engine built by a
/// different tokenizer must not load).
///
/// v2: `||domain` tokens split labels into alphanumeric runs (hyphenated
/// labels previously hashed whole, indexing rules under tokens no
/// request carries).
pub const ENGINE_FORMAT_VERSION: u32 = 2;

struct EngineCounters {
    evaluations: gamma_obs::Counter,
    rules_tried: gamma_obs::Counter,
    token_hits: gamma_obs::Counter,
}

fn engine_counters() -> &'static EngineCounters {
    static COUNTERS: OnceLock<EngineCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = gamma_obs::global();
        EngineCounters {
            evaluations: reg.counter("trackers.abp.evaluations"),
            rules_tried: reg.counter("trackers.abp.rules_tried"),
            token_hits: reg.counter("trackers.abp.token_hits"),
        }
    })
}

/// Per-evaluation work report, for benches and differential tests that
/// must not touch the global counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Candidate compiled rules evaluated (deduplicated).
    pub candidates: u64,
    /// Request tokens that hit a non-empty index bucket.
    pub token_hits: u64,
}

/// Compile-time shape summary, serialized with the engine.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct CompileStats {
    /// Rules in the source [`FilterSet`].
    pub source_rules: u32,
    /// Compiled rules after fusion (index entries point at these).
    pub compiled_rules: u32,
    /// Source rules absorbed into fused groups.
    pub fused_rules: u32,
    /// `||domain` rules unreachable in the legacy walk, dropped.
    pub dead_rules: u32,
}

/// A compiled, token-indexed filter engine.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledEngine {
    rules: Vec<CompiledRule>,
    /// token → indices into `rules`. A `BTreeMap` keeps serialization
    /// (and therefore the on-disk artifact) deterministic.
    index: BTreeMap<u64, Vec<u32>>,
    /// Rules with no safe token: evaluated on every request.
    always: Vec<u32>,
    site_scoped: bool,
    /// FNV digest of the source list text (0 when compiled from an
    /// in-memory set); keys the on-disk cache.
    source_digest: u64,
    stats: CompileStats,
}

impl CompiledEngine {
    /// Compiles a parsed filter set: fuse shapes, extract safe tokens,
    /// file every index entry under its rarest token.
    pub fn compile(set: &FilterSet) -> CompiledEngine {
        Self::compile_with_digest(set, 0)
    }

    /// [`CompiledEngine::compile`] with a source-text digest recorded for
    /// cache validation.
    pub fn compile_with_digest(set: &FilterSet, source_digest: u64) -> CompiledEngine {
        let optimized = optimize(set.rules());
        let rules = optimized.rules;

        // Pass 1: candidate token lists. Each compiled rule contributes
        // one or more index entries (a fused group indexes per domain /
        // per literal); an entry with no safe token forces the rule onto
        // the always-evaluate list.
        let mut entries: Vec<(u32, Vec<u64>)> = Vec::new();
        for (i, rule) in rules.iter().enumerate() {
            let i = i as u32;
            match rule {
                CompiledRule::Single { rule, .. } => {
                    let mut cands = pattern_candidates(
                        &rule.tokens,
                        matches!(rule.anchor, Anchor::Start),
                    );
                    if let Anchor::Domain(d) = &rule.anchor {
                        domain_candidates(d, &mut cands);
                    }
                    entries.push((i, cands));
                }
                CompiledRule::DomainSep { domains, .. } => {
                    for d in domains.keys() {
                        let mut cands = Vec::new();
                        domain_candidates(d, &mut cands);
                        entries.push((i, cands));
                    }
                }
                CompiledRule::Substring { literals, .. } => {
                    for l in literals {
                        entries.push((i, l.tokens.clone()));
                    }
                }
            }
        }

        // Pass 2: global frequency of every candidate token, so each
        // entry can pick its rarest.
        let mut freq: BTreeMap<u64, u32> = BTreeMap::new();
        for (_, cands) in &entries {
            for &t in cands {
                *freq.entry(t).or_default() += 1;
            }
        }

        let mut index: BTreeMap<u64, Vec<u32>> = BTreeMap::new();
        let mut always: Vec<u32> = Vec::new();
        for (i, cands) in &entries {
            match cands.iter().min_by_key(|&&t| (freq[&t], t)) {
                Some(&t) => index.entry(t).or_default().push(*i),
                None => always.push(*i),
            }
        }
        for bucket in index.values_mut() {
            bucket.sort_unstable();
            bucket.dedup();
        }
        always.sort_unstable();
        always.dedup();

        let stats = CompileStats {
            source_rules: set.len() as u32,
            compiled_rules: rules.len() as u32,
            fused_rules: optimized.fused_rules,
            dead_rules: optimized.dead_rules,
        };
        CompiledEngine {
            rules,
            index,
            always,
            site_scoped: optimized.site_scoped,
            source_digest,
            stats,
        }
    }

    /// Evaluates a request; bumps the global `trackers.abp.*` counters.
    pub fn matches(&self, ctx: &MatchContext<'_>) -> Decision {
        let (decision, stats) = self.matches_counted(ctx);
        let c = engine_counters();
        c.evaluations.inc();
        c.rules_tried.add(stats.candidates);
        c.token_hits.add(stats.token_hits);
        decision
    }

    /// Evaluates a request and reports per-evaluation work, without
    /// touching the global counters.
    pub fn matches_counted(&self, ctx: &MatchContext<'_>) -> (Decision, MatchStats) {
        let req = PreparedRequest::new(ctx);
        let request_tokens = TokenSet::for_request(req.url(), req.host());

        let mut candidates: Vec<u32> = self.always.clone();
        let mut token_hits = 0u64;
        for t in request_tokens.iter() {
            if let Some(bucket) = self.index.get(&t) {
                token_hits += 1;
                candidates.extend_from_slice(bucket);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();

        // Candidates arrive in index order, not legacy walk order; keep
        // the minimum walk-order key per polarity and resolve at the end
        // (exceptions beat blocks, exactly like the legacy early return).
        let mut best_exception: Option<((u32, u32), &str)> = None;
        let mut best_block: Option<((u32, u32), &str)> = None;
        for &i in &candidates {
            if let Some(hit) = self.rules[i as usize].evaluate(&req, &request_tokens) {
                let slot = if hit.exception {
                    &mut best_exception
                } else {
                    &mut best_block
                };
                if slot.map_or(true, |(key, _)| hit.order_key() < key) {
                    *slot = Some((hit.order_key(), hit.raw));
                }
            }
        }
        let decision = if let Some((_, raw)) = best_exception {
            Decision::Allowed(raw.to_string())
        } else if let Some((_, raw)) = best_block {
            Decision::Blocked(raw.to_string())
        } else {
            Decision::None
        };
        (
            decision,
            MatchStats {
                candidates: candidates.len() as u64,
                token_hits,
            },
        )
    }

    /// Whether any source rule was `$domain=`-scoped (drives the
    /// decision-cache bypass, same contract as
    /// [`FilterSet::has_site_scoped_rules`]).
    pub fn has_site_scoped_rules(&self) -> bool {
        self.site_scoped
    }

    /// Digest of the source list text this engine was compiled from
    /// (0 for in-memory compiles).
    pub fn source_digest(&self) -> u64 {
        self.source_digest
    }

    /// Compile-time shape summary.
    pub fn stats(&self) -> CompileStats {
        self.stats
    }

    /// Atomically persists the engine as a versioned
    /// [`ArtifactKind::CompiledEngine`] container.
    pub fn save(&self, path: &Path) -> Result<(), WriteError> {
        let doc = PersistedEngine {
            version: ENGINE_FORMAT_VERSION,
            engine: self.clone(),
        };
        gamma_store::save_doc(
            path,
            ArtifactKind::CompiledEngine,
            &doc,
            &WriteOptions::default(),
        )
    }

    /// Loads a persisted engine, failing typed on store-level damage or
    /// an engine-format version this build cannot interpret.
    pub fn load(path: &Path) -> Result<CompiledEngine, EngineLoadError> {
        let loaded = gamma_store::load_doc::<PersistedEngine>(path, ArtifactKind::CompiledEngine)
            .map_err(EngineLoadError::Store)?;
        if loaded.value.version != ENGINE_FORMAT_VERSION {
            return Err(EngineLoadError::VersionMismatch {
                found: loaded.value.version,
            });
        }
        Ok(loaded.value.engine)
    }
}

/// On-disk payload: engine-format version outside the engine body, so a
/// reader rejects foreign layouts before deserializing them.
#[derive(Serialize, Deserialize)]
struct PersistedEngine {
    version: u32,
    engine: CompiledEngine,
}

/// Why a persisted engine did not load.
#[derive(Debug)]
pub enum EngineLoadError {
    /// Container-level failure (missing, torn, corrupt, wrong kind).
    Store(LoadError),
    /// Valid container, but written by a different engine format.
    VersionMismatch { found: u32 },
}

impl std::fmt::Display for EngineLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineLoadError::Store(e) => write!(f, "engine container: {e}"),
            EngineLoadError::VersionMismatch { found } => write!(
                f,
                "engine format v{found}, this build reads v{ENGINE_FORMAT_VERSION}"
            ),
        }
    }
}

impl std::error::Error for EngineLoadError {}

/// Safe tokens of a rule's pattern: every literal contributes its runs
/// that the surrounding pattern tokens bound (see
/// [`crate::tokens::literal_tokens`] for the boundary rules).
fn pattern_candidates(tokens: &[Tok], start_anchored: bool) -> Vec<u64> {
    let mut out = Vec::new();
    for (j, t) in tokens.iter().enumerate() {
        if let Tok::Lit(l) = t {
            let bounded_left = if j == 0 {
                start_anchored
            } else {
                matches!(tokens[j - 1], Tok::Sep)
            };
            let bounded_right = matches!(tokens.get(j + 1), Some(Tok::Sep) | Some(Tok::End));
            literal_tokens(l, bounded_left, bounded_right, &mut out);
        }
    }
    out
}

/// Candidate tokens of a `||domain` anchor: its indexable runs, falling
/// back to the longest alphanumeric run when every run is shorter than
/// the token minimum ("g.co" still gets a token rather than an
/// always-evaluate slot). The fallback must be a *run*, not a raw
/// label — for "a-b.co" the longest label "a-b" never appears as a
/// request token, so hashing it would file the rule under an impossible
/// token. Domains with no runs at all yield nothing and land on the
/// always-evaluate list.
fn domain_candidates(domain: &str, out: &mut Vec<u64>) {
    let before = out.len();
    domain_tokens(domain, out);
    if out.len() == before {
        let mut longest: Option<&[u8]> = None;
        crate::tokens::for_each_run(domain.as_bytes(), |run| {
            if longest.map_or(true, |l| run.len() > l.len()) {
                longest = Some(run);
            }
        });
        if let Some(run) = longest {
            out.push(token_hash(run));
        }
    }
}

/// FNV-1a over a sequence of list documents (0xFF-separated so document
/// boundaries shift the digest).
pub fn digest_documents<S: AsRef<str>>(docs: &[S]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |b: u8| {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for d in docs {
        for &b in d.as_ref().as_bytes() {
            eat(b);
        }
        eat(0xFF);
    }
    h
}

/// Builds the combined per-world engine, through the on-disk cache when
/// one is configured: a digest-named artifact per distinct list content,
/// so a campaign's shards deserialize one prebuilt engine instead of
/// regenerating and reparsing list text. Any cache miss — absent file,
/// torn/corrupt container, foreign format version, digest collision —
/// silently falls back to compiling (and refreshing the cache entry).
pub fn engine_for_world(world: &World, cache_dir: Option<&Path>) -> CompiledEngine {
    let docs = crate::lists::list_documents(world);
    let digest = digest_documents(&docs);
    let cache_path = cache_dir.map(|d| d.join(format!("abp-{digest:016x}.engine")));
    if let Some(path) = &cache_path {
        if let Ok(engine) = CompiledEngine::load(path) {
            if engine.source_digest() == digest {
                gamma_obs::global()
                    .counter("trackers.abp.engine_cache_hits")
                    .inc();
                return engine;
            }
        }
    }
    let mut set = FilterSet::new();
    for doc in &docs {
        set.extend_from(&FilterSet::parse_list(doc));
    }
    let engine = CompiledEngine::compile_with_digest(&set, digest);
    gamma_obs::global()
        .counter("trackers.abp.engine_compiles")
        .inc();
    if let Some(path) = &cache_path {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if engine.save(path).is_err() {
            // The engine itself is fine; only resumption speed degrades.
            gamma_obs::global()
                .counter("trackers.abp.engine_cache_write_failures")
                .inc();
        }
    }
    engine
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::abp::host_request;
    use gamma_websim::{worldgen, WorldSpec};
    use proptest::prelude::*;

    fn engine_and_set(lines: &[String]) -> (FilterSet, CompiledEngine) {
        let text = lines.join("\n");
        let set = FilterSet::parse_list(&text);
        let engine = CompiledEngine::compile(&set);
        (set, engine)
    }

    #[test]
    fn engine_decisions_match_legacy_on_generated_lists() {
        let w = worldgen::generate(&WorldSpec::paper_default(33));
        let set = crate::lists::combined_filter_set(&w);
        let engine = CompiledEngine::compile(&set);
        let mut checked = 0usize;
        for t in w.tracker_domains.iter().take(120) {
            let host = t.domain.as_str();
            let url = format!("https://{host}/collect?id=1");
            let ctx = host_request(&url, host, "some-news-site.com");
            assert_eq!(set.matches_counted(&ctx).0, engine.matches_counted(&ctx).0, "{host}");
            checked += 1;
        }
        for s in w.sites.iter().take(120) {
            let host = s.domain.as_str();
            let url = format!("https://{host}/");
            let ctx = host_request(&url, host, host);
            assert_eq!(set.matches_counted(&ctx).0, engine.matches_counted(&ctx).0, "{host}");
            checked += 1;
        }
        assert!(checked > 100);
    }

    #[test]
    fn token_index_crushes_candidates_at_10x_scale() {
        // A 10×-sized synthetic list in the generated lists' dominant
        // shapes; the acceptance bar is a ≥10× drop in per-evaluation
        // rules tried versus the legacy walk.
        let mut lines: Vec<String> = Vec::new();
        for i in 0..4000u32 {
            let tail = if i % 3 == 0 { "$third-party" } else { "" };
            lines.push(format!("||tracker{i:04}.example-ads.net^{tail}"));
        }
        for i in 0..400u32 {
            lines.push(format!("/gen{i:03}pattern/collect."));
        }
        let (set, engine) = engine_and_set(&lines);
        let mut legacy = 0u64;
        let mut tokenised = 0u64;
        let mut evals = 0u64;
        for i in 0..50u32 {
            // Mostly-miss traffic, plus some listed hosts.
            let host = if i % 10 == 0 {
                format!("tracker{:04}.example-ads.net", i * 13)
            } else {
                format!("cdn{i}.plain-site{i}.org")
            };
            let url = format!("https://{host}/page?x={i}");
            let ctx = host_request(&url, &host, "reader-site.com");
            let (ld, lt) = set.matches_counted(&ctx);
            let (ed, es) = engine.matches_counted(&ctx);
            assert_eq!(ld, ed, "{host}");
            legacy += lt;
            tokenised += es.candidates;
            evals += 1;
        }
        let legacy_avg = legacy as f64 / evals as f64;
        let engine_avg = (tokenised as f64 / evals as f64).max(1.0);
        assert!(
            legacy_avg / engine_avg >= 10.0,
            "legacy {legacy_avg:.1} vs engine {engine_avg:.1} rules/eval"
        );
    }

    #[test]
    fn hyphenated_domains_stay_reachable_through_the_index() {
        // Regression: raw-label hashing indexed "google-analytics" under
        // a token that never appears in request token sets (hosts split
        // into alphanumeric runs), so the engine silently under-blocked.
        // "a-b.co" additionally pins the fallback path: every run is
        // below TOKEN_MIN_BYTES, so the longest *run* ("co"), not the
        // longest raw label ("a-b"), must carry the rule.
        let (set, engine) = engine_and_set(&[
            "||google-analytics.com^".to_string(),
            "||a-b.co^".to_string(),
        ]);
        for (url, host) in [
            (
                "https://www.google-analytics.com/collect?v=1",
                "www.google-analytics.com",
            ),
            ("https://a-b.co/x.js", "a-b.co"),
        ] {
            let ctx = host_request(url, host, "reader-site.com");
            let legacy = set.matches_counted(&ctx).0;
            assert!(matches!(legacy, Decision::Blocked(_)), "{url}");
            assert_eq!(legacy, engine.matches_counted(&ctx).0, "{url}");
        }
    }

    #[test]
    fn dead_rules_and_fusion_are_reported() {
        let lines = vec![
            "||com^".to_string(),
            "||ads.example^".to_string(),
            "||trk.example^".to_string(),
            "/pixel.gif?".to_string(),
        ];
        let (_, engine) = engine_and_set(&lines);
        let stats = engine.stats();
        assert_eq!(stats.dead_rules, 1);
        assert_eq!(stats.fused_rules, 3);
        assert!(stats.compiled_rules < stats.source_rules);
    }

    #[test]
    fn persisted_engine_roundtrips_and_rejects_foreign_versions() {
        let w = worldgen::generate(&WorldSpec::paper_default(33));
        let engine = engine_for_world(&w, None);
        let dir = std::env::temp_dir().join(format!("gamma-engine-rt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.engine");
        engine.save(&path).unwrap();
        let back = CompiledEngine::load(&path).unwrap();
        assert_eq!(back.source_digest(), engine.source_digest());
        assert_eq!(back.stats(), engine.stats());
        for t in w.tracker_domains.iter().take(40) {
            let host = t.domain.as_str();
            let url = format!("https://{host}/x.js");
            let ctx = host_request(&url, host, "reader-site.com");
            assert_eq!(engine.matches_counted(&ctx).0, back.matches_counted(&ctx).0);
        }
        // A bumped payload version must fail typed, not mis-deserialize.
        let doc = PersistedEngine {
            version: ENGINE_FORMAT_VERSION + 1,
            engine: engine.clone(),
        };
        gamma_store::save_doc(
            &path,
            ArtifactKind::CompiledEngine,
            &doc,
            &WriteOptions::default(),
        )
        .unwrap();
        match CompiledEngine::load(&path) {
            Err(EngineLoadError::VersionMismatch { found }) => {
                assert_eq!(found, ENGINE_FORMAT_VERSION + 1)
            }
            other => panic!("expected version mismatch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn engine_cache_hits_skip_recompilation() {
        let w = worldgen::generate(&WorldSpec::paper_default(33));
        let dir = std::env::temp_dir().join(format!("gamma-engine-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let first = engine_for_world(&w, Some(&dir));
        assert_ne!(first.source_digest(), 0);
        let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().collect();
        assert_eq!(entries.len(), 1, "one digest-named cache artifact");
        let second = engine_for_world(&w, Some(&dir));
        assert_eq!(second.source_digest(), first.source_digest());
        let ctx = host_request("https://pixel.doubleclick.net/c", "pixel.doubleclick.net", "a.com");
        assert_eq!(first.matches_counted(&ctx).0, second.matches_counted(&ctx).0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    // ---- differential property: engine ≡ legacy on random corpora ----

    fn arb_label() -> impl Strategy<Value = &'static str> {
        // Hyphenated and underscored labels are load-bearing here: they
        // exercise the run-boundary handling in domain token extraction
        // (a raw-label hash would be unreachable in request token sets).
        prop::sample::select(vec![
            "ads", "trk", "pixel4", "example", "x", "co", "net", "deep", "track",
            "region-ads", "x-y", "google-analytics", "ad_server",
        ])
    }

    fn arb_domain() -> impl Strategy<Value = String> {
        prop::collection::vec(arb_label(), 1..4).prop_map(|ls| ls.join("."))
    }

    fn arb_rule_line() -> impl Strategy<Value = String> {
        let lit = prop::sample::select(vec![
            "/pixel.gif?", "/beacon.js", "-adserver.", "track.js", "&ad_unit=", "/x/",
        ]);
        prop_oneof![
            arb_domain().prop_map(|d| format!("||{d}^")),
            arb_domain().prop_map(|d| format!("||{d}^$third-party")),
            arb_domain().prop_map(|d| format!("@@||{d}^")),
            arb_domain().prop_map(|d| format!("||{d}^$~third-party")),
            (arb_domain(), arb_domain())
                .prop_map(|(d, s)| format!("||{d}^$domain={s}|~deep.{s}")),
            arb_domain().prop_map(|d| format!("||{d}")),
            arb_domain().prop_map(|d| format!("|https://{d}/")),
            lit.clone().prop_map(|l| l.to_string()),
            lit.clone().prop_map(|l| format!("@@{l}")),
            lit.clone().prop_map(|l| format!("{l}|")),
            lit.prop_map(|l| format!("/seg/*{l}")),
        ]
    }

    fn arb_request() -> impl Strategy<Value = (String, String, String, bool)> {
        (
            prop::collection::vec(arb_label(), 1..4),
            prop::sample::select(vec!["/", "/pixel.gif?id=1", "/a/beacon.js", "/seg/9/x/track.js"]),
            arb_domain(),
            any::<bool>(),
        )
            .prop_map(|(host_labels, path, fp, upper)| {
                let host = host_labels.join(".");
                let url = format!("https://{host}{path}");
                let url = if upper { url.to_ascii_uppercase() } else { url };
                let host = if upper { host.to_ascii_uppercase() } else { host };
                (url, host, fp.to_string(), upper)
            })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]
        #[test]
        fn engine_is_bit_identical_to_legacy(
            lines in prop::collection::vec(arb_rule_line(), 0..40),
            requests in prop::collection::vec(arb_request(), 1..12),
        ) {
            let (set, engine) = engine_and_set(&lines);
            for (url, host, fp, _) in &requests {
                let ctx = host_request(url, host, fp);
                let legacy = set.matches_counted(&ctx).0;
                let (tokenised, _) = engine.matches_counted(&ctx);
                prop_assert_eq!(
                    &legacy, &tokenised,
                    "divergence on {} (host {}, fp {}) under {:?}",
                    url, host, fp, lines
                );
            }
        }
    }
}
