//! # gamma-trackers
//!
//! Tracker identification (§4.2 of the paper): non-local domains are first
//! matched against EasyList/EasyPrivacy-style filter lists (plus regional
//! lists where available), and the remainder is checked against a
//! WhoTracksMe-style organization database standing in for the authors'
//! manual inspection. The crate implements the Adblock Plus filter syntax
//! for real — parsing, domain-anchored matching, separators, wildcards,
//! exceptions, and the `third-party`/`domain=` options — and generates
//! list *content* covering the synthetic tracker ecosystem.
//!
//! Identification is memoizable per unique host: absent `$domain=`-scoped
//! rules a verdict depends only on the host and its party bit, so a
//! [`DecisionCache`] in front of the engine classifies each unique
//! `(host, party)` pair exactly once per country dataset.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod abp;
pub mod classify;
pub mod lists;
pub mod manual;
pub mod whotracksme;

pub use abp::{same_party, Decision, FilterSet, MatchContext, Rule};
pub use classify::{site_first_party, DecisionCache, Identification, TrackerClassifier};
pub use lists::{generate_easylist, generate_easyprivacy, generate_regional_lists};
pub use manual::ManualStore;
pub use whotracksme::WhoTracksMe;
