//! # gamma-trackers
//!
//! Tracker identification (§4.2 of the paper): non-local domains are first
//! matched against EasyList/EasyPrivacy-style filter lists (plus regional
//! lists where available), and the remainder is checked against a
//! WhoTracksMe-style organization database standing in for the authors'
//! manual inspection. The crate implements the Adblock Plus filter syntax
//! for real — parsing, domain-anchored matching, separators, wildcards,
//! exceptions, and the `third-party`/`domain=` options — and generates
//! list *content* covering the synthetic tracker ecosystem.
//!
//! Identification is memoizable per unique host: absent `$domain=`-scoped
//! rules a verdict depends only on the host and its party bit, so a
//! [`DecisionCache`] in front of the engine classifies each unique
//! `(host, party)` pair exactly once per country dataset.
//!
//! Matching itself goes through the tokenised [`CompiledEngine`]
//! ([`engine`]): rules are fused by shape ([`optimizer`]), indexed by
//! their rarest safe hash token ([`tokens`]), and an evaluation touches
//! only the candidate rules whose token the URL actually contains — with
//! decisions pinned bit-identical to the legacy [`FilterSet`] walk. A
//! compiled engine serializes into a `gamma-store` container so repeated
//! campaigns deserialize it instead of reparsing list text.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod abp;
pub mod classify;
pub mod engine;
pub mod lists;
pub mod manual;
mod optimizer;
pub mod tokens;
pub mod whotracksme;

pub use abp::{same_party, Decision, FilterSet, MatchContext, PreparedRequest, Rule};
pub use classify::{site_first_party, DecisionCache, Identification, TrackerClassifier};
pub use engine::{
    digest_documents, engine_for_world, CompileStats, CompiledEngine, EngineLoadError, MatchStats,
    ENGINE_FORMAT_VERSION,
};
pub use lists::{
    generate_easylist, generate_easyprivacy, generate_regional_lists, list_documents,
};
pub use manual::ManualStore;
pub use whotracksme::WhoTracksMe;
