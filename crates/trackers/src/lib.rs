//! # gamma-trackers
//!
//! Tracker identification (§4.2 of the paper): non-local domains are first
//! matched against EasyList/EasyPrivacy-style filter lists (plus regional
//! lists where available), and the remainder is checked against a
//! WhoTracksMe-style organization database standing in for the authors'
//! manual inspection. The crate implements the Adblock Plus filter syntax
//! for real — parsing, domain-anchored matching, separators, wildcards,
//! exceptions, and the `third-party`/`domain=` options — and generates
//! list *content* covering the synthetic tracker ecosystem.

pub mod abp;
pub mod classify;
pub mod lists;
pub mod manual;
pub mod whotracksme;

pub use abp::{Decision, FilterSet, MatchContext, Rule};
pub use classify::{Identification, TrackerClassifier};
pub use lists::{generate_easylist, generate_easyprivacy, generate_regional_lists};
pub use manual::ManualStore;
pub use whotracksme::WhoTracksMe;
