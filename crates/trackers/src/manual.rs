//! Manual tracker labels.
//!
//! Filter lists "may not capture all regional ad and tracking domains.
//! Therefore, for the remaining non-local domains, we conducted a manual
//! inspection using WhoTracksMe ... along with a cursory Internet search"
//! (§4.2) — 64 of the study's 505 tracker domains came from this step,
//! including `theozone-project.com`. The store below plays the role of
//! that human labeling pass: a curated set of confirmed-tracker domains
//! that the lists miss.

use gamma_dns::psl::registrable_domain;
use gamma_dns::DomainName;
use gamma_websim::World;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// The curated manual-label set.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ManualStore {
    domains: HashSet<DomainName>,
}

impl ManualStore {
    pub fn new() -> Self {
        Self::default()
    }

    /// The labels the study's researchers would have produced: every
    /// ground-truth tracker domain the lists do not carry.
    pub fn from_world(world: &World) -> Self {
        ManualStore {
            domains: world
                .tracker_domains
                .iter()
                .filter(|t| !t.in_filter_lists)
                .map(|t| t.domain.clone())
                .collect(),
        }
    }

    /// Adds one label (the workflow is incremental in practice).
    pub fn label(&mut self, domain: DomainName) {
        self.domains.insert(domain);
    }

    /// Whether a domain (or its registrable domain / any parent) carries a
    /// manual tracker label.
    pub fn contains(&self, domain: &DomainName) -> bool {
        if self.domains.contains(domain) {
            return true;
        }
        if let Some(reg) = registrable_domain(domain) {
            if self.domains.contains(&reg) {
                return true;
            }
        }
        let mut cur = domain.parent();
        while let Some(d) = cur {
            if self.domains.contains(&d) {
                return true;
            }
            cur = d.parent();
        }
        false
    }

    pub fn len(&self) -> usize {
        self.domains.len()
    }

    pub fn is_empty(&self) -> bool {
        self.domains.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_websim::{worldgen, WorldSpec};

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn ozone_project_is_in_the_store() {
        let w = worldgen::generate(&WorldSpec::paper_default(41));
        let store = ManualStore::from_world(&w);
        assert!(store.contains(&d("theozone-project.com")));
        assert!(store.contains(&d("cdn.theozone-project.com")), "subdomain");
    }

    #[test]
    fn scale_matches_the_64_manual_labels() {
        let w = worldgen::generate(&WorldSpec::paper_default(41));
        let store = ManualStore::from_world(&w);
        assert!(
            (35..=90).contains(&store.len()),
            "{} manual labels",
            store.len()
        );
    }

    #[test]
    fn listed_domains_are_not_in_the_store() {
        let w = worldgen::generate(&WorldSpec::paper_default(41));
        let store = ManualStore::from_world(&w);
        assert!(!store.contains(&d("googletagmanager.com")));
    }

    #[test]
    fn incremental_labeling_works() {
        let mut store = ManualStore::new();
        assert!(!store.contains(&d("new-tracker.io")));
        store.label(d("new-tracker.io"));
        assert!(store.contains(&d("new-tracker.io")));
        assert!(store.contains(&d("px.new-tracker.io")));
        assert_eq!(store.len(), 1);
    }
}
