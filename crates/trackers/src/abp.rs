//! Adblock Plus filter syntax: parser and matching engine.
//!
//! Supports the subset of the syntax that EasyList and EasyPrivacy rely on
//! for network-request blocking (the lists "are designed to block ad
//! scripts, ad images, analytics scripts, fingerprinting ..." — §4.2):
//!
//! - `! comment` and `[Adblock Plus 2.0]` headers
//! - `||domain^...` domain-anchored rules (match at hostname label
//!   boundaries, including subdomains)
//! - `|https://...` start-anchored rules and trailing `|` end anchors
//! - plain substring rules with `*` wildcards and `^` separator class
//! - `@@` exception rules (take precedence over blocks)
//! - `$third-party`, `$~third-party`, `$domain=a.com|~b.com` options;
//!   resource-type options (`script`, `image`, ...) are parsed and ignored
//! - element-hiding rules (`##`, `#@#`) are recognized and skipped
//!
//! Rules with an unrecognized `$` option are *rejected*
//! ([`ParseOutcome::UnsupportedOption`]) rather than silently stripped:
//! treating `track$ing` as the substring rule `track` would over-block.
//!
//! This module is the *legacy* walk-the-list matcher, kept as the
//! reference implementation; production matching goes through the
//! tokenised [`crate::engine::CompiledEngine`], whose decisions are
//! pinned bit-identical to [`FilterSet::matches`] by differential tests.

use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::sync::OnceLock;

/// Cached handles for the matching-engine counters; the matching loop is
/// the hottest path in the crate. `trackers.abp.evaluations` counts
/// engine invocations (one per request the engine actually sees — the
/// number the per-host decision cache drives down); the per-rule work
/// inside an invocation is `trackers.abp.rules_tried`.
struct AbpCounters {
    evaluations: gamma_obs::Counter,
    rules_tried: gamma_obs::Counter,
}

fn abp_counters() -> &'static AbpCounters {
    static COUNTERS: OnceLock<AbpCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = gamma_obs::global();
        AbpCounters {
            evaluations: reg.counter("trackers.abp.evaluations"),
            rules_tried: reg.counter("trackers.abp.rules_tried"),
        }
    })
}

/// A parsed filter rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// Original text, for reporting.
    pub raw: String,
    /// `@@` exception?
    pub exception: bool,
    pub(crate) anchor: Anchor,
    pub(crate) tokens: Vec<Tok>,
    /// `Some(true)` = only third-party requests; `Some(false)` = only
    /// first-party.
    pub(crate) third_party: Option<bool>,
    pub(crate) include_domains: Vec<String>,
    pub(crate) exclude_domains: Vec<String>,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Anchor {
    /// `||domain` — match at a hostname label boundary.
    Domain(String),
    /// `|prefix` — match at the start of the URL.
    Start,
    /// Unanchored substring.
    None,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub(crate) enum Tok {
    Lit(String),
    /// `*`
    Star,
    /// `^` — any separator character or the end of the URL.
    Sep,
    /// trailing `|`
    End,
}

/// Why a line did not produce a rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    Comment,
    Header,
    ElementHiding,
    Empty,
    /// The `$` options list contains an option this engine does not
    /// implement. Such rules are rejected rather than silently stripped
    /// to their pattern: `track$ing` must not become the far-broader
    /// substring rule `track`. Carries the offending option text.
    UnsupportedOption(String),
}

/// `$` resource-type options that are recognized and deliberately ignored
/// (the pipeline classifies hosts, not individual resource loads). A `~`
/// prefix negates a type option and is tolerated the same way.
const IGNORED_TYPE_OPTIONS: &[&str] = &[
    "script",
    "image",
    "stylesheet",
    "object",
    "xmlhttprequest",
    "subdocument",
    "document",
    "websocket",
    "webrtc",
    "ping",
    "beacon",
    "font",
    "media",
    "imageset",
    "object-subrequest",
    "popup",
    "other",
];

fn is_known_type_option(opt: &str) -> bool {
    let name = opt.strip_prefix('~').unwrap_or(opt);
    IGNORED_TYPE_OPTIONS.contains(&name)
}

/// Matching context for one network request.
#[derive(Debug, Clone, Copy)]
pub struct MatchContext<'a> {
    /// Full request URL.
    pub url: &'a str,
    /// Request hostname.
    pub host: &'a str,
    /// Registrable domain of the page the request fired from.
    pub first_party: &'a str,
    /// Whether the request is third-party relative to the page.
    pub is_third_party: bool,
}

/// The verdict for a request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// A blocking rule matched (and no exception): the request is an
    /// ad/tracking request. Carries the rule text.
    Blocked(String),
    /// An exception rule matched.
    Allowed(String),
    /// No rule matched.
    None,
}

impl Rule {
    /// Parses one filter line. `Ok(None)`-like outcomes (comments, headers,
    /// cosmetic rules) come back as `Err(ParseOutcome)`.
    pub fn parse(line: &str) -> Result<Rule, ParseOutcome> {
        let line = line.trim();
        if line.is_empty() {
            return Err(ParseOutcome::Empty);
        }
        if line.starts_with('!') {
            return Err(ParseOutcome::Comment);
        }
        if line.starts_with('[') && line.ends_with(']') {
            return Err(ParseOutcome::Header);
        }
        if line.contains("##") || line.contains("#@#") || line.contains("#?#") {
            return Err(ParseOutcome::ElementHiding);
        }
        let raw = line.to_string();
        let (mut body, exception) = match line.strip_prefix("@@") {
            Some(rest) => (rest, true),
            None => (line, false),
        };

        let mut third_party = None;
        let mut include_domains = Vec::new();
        let mut exclude_domains = Vec::new();
        if let Some(dollar) = body.rfind('$') {
            // Only treat as options when the tail looks like options (avoids
            // mangling URLs containing `$`).
            let (head, opts) = body.split_at(dollar);
            let opts = &opts[1..];
            if opts.split(',').all(|o| {
                !o.is_empty()
                    && o.chars()
                        .all(|c| c.is_ascii_alphanumeric() || "~-=|._".contains(c))
            }) {
                for opt in opts.split(',') {
                    match opt {
                        "third-party" => third_party = Some(true),
                        "~third-party" => third_party = Some(false),
                        _ => {
                            if let Some(domains) = opt.strip_prefix("domain=") {
                                for d in domains.split('|') {
                                    match d.strip_prefix('~') {
                                        Some(ex) => exclude_domains.push(ex.to_ascii_lowercase()),
                                        None => include_domains.push(d.to_ascii_lowercase()),
                                    }
                                }
                            } else if !is_known_type_option(opt) {
                                // An option this engine does not implement:
                                // reject the whole rule. Stripping it would
                                // turn e.g. `track$ing` into the far-broader
                                // substring rule `track`.
                                return Err(ParseOutcome::UnsupportedOption(opt.to_string()));
                            }
                            // Known type options (script, image,
                            // xmlhttprequest, popup, ...) are accepted and
                            // ignored: the pipeline classifies hosts, not
                            // individual resource loads.
                        }
                    }
                }
                body = head;
            }
        }

        let (anchor, rest) = if let Some(r) = body.strip_prefix("||") {
            // The domain part runs until the first special character.
            let cut = r
                .find(|c: char| c == '^' || c == '*' || c == '/' || c == '|')
                .unwrap_or(r.len());
            let (domain, tail) = r.split_at(cut);
            (Anchor::Domain(domain.to_ascii_lowercase()), tail)
        } else if let Some(r) = body.strip_prefix('|') {
            (Anchor::Start, r)
        } else {
            (Anchor::None, body)
        };

        let mut tokens = Vec::new();
        let mut lit = String::new();
        let mut chars = rest.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '*' => {
                    flush(&mut tokens, &mut lit);
                    if tokens.last() != Some(&Tok::Star) {
                        tokens.push(Tok::Star);
                    }
                }
                '^' => {
                    flush(&mut tokens, &mut lit);
                    tokens.push(Tok::Sep);
                }
                '|' if chars.peek().is_none() => {
                    flush(&mut tokens, &mut lit);
                    tokens.push(Tok::End);
                }
                _ => lit.push(c.to_ascii_lowercase()),
            }
        }
        flush(&mut tokens, &mut lit);

        Ok(Rule {
            raw,
            exception,
            anchor,
            tokens,
            third_party,
            include_domains,
            exclude_domains,
        })
    }

    /// Whether the rule's verdict depends on *which page* issued the
    /// request beyond first/third-party-ness (`$domain=` options). A set
    /// containing such rules cannot be fronted by a per-(host, party)
    /// decision cache.
    pub fn is_site_scoped(&self) -> bool {
        !self.include_domains.is_empty() || !self.exclude_domains.is_empty()
    }

    /// The anchored domain, if this is a `||domain` rule (used to index).
    pub fn anchored_domain(&self) -> Option<&str> {
        match &self.anchor {
            Anchor::Domain(d) => Some(d),
            _ => None,
        }
    }

    /// Whether this rule matches the request. Convenience wrapper that
    /// normalizes the context once; loops over many rules should build one
    /// [`PreparedRequest`] and call [`Rule::matches_prepared`] instead —
    /// this was the innermost-loop allocation bug the tokenised engine
    /// rode in with (one `to_ascii_lowercase` per rule per request).
    pub fn matches(&self, ctx: &MatchContext<'_>) -> bool {
        self.matches_prepared(&PreparedRequest::new(ctx))
    }

    /// Whether this rule matches an already-normalized request. Performs
    /// no allocation.
    pub fn matches_prepared(&self, req: &PreparedRequest<'_>) -> bool {
        if let Some(tp) = self.third_party {
            if req.is_third_party != tp {
                return false;
            }
        }
        if !self.include_domains.is_empty()
            && !self
                .include_domains
                .iter()
                .any(|d| domain_or_subdomain(req.first_party(), d))
        {
            return false;
        }
        if self
            .exclude_domains
            .iter()
            .any(|d| domain_or_subdomain(req.first_party(), d))
        {
            return false;
        }
        let url = req.url();
        match &self.anchor {
            Anchor::Domain(d) => {
                if !domain_or_subdomain(req.host(), d) {
                    return false;
                }
                // The anchored domain is a suffix of the host, so the
                // pattern tail begins right after the host within the URL.
                let Some(host_pos) = req.host_pos() else {
                    return false;
                };
                match_tokens(&self.tokens, url.as_bytes(), host_pos + req.host().len())
            }
            Anchor::Start => match_tokens(&self.tokens, url.as_bytes(), 0),
            Anchor::None => {
                if self.tokens.is_empty() {
                    return true;
                }
                // Try every start position (first literal narrows this in
                // practice; URLs are short).
                (0..=url.len()).any(|i| match_tokens(&self.tokens, url.as_bytes(), i))
            }
        }
    }
}

/// A request normalized once per evaluation: URL, host and first-party
/// lowercased (borrowing when already lowercase), with the host's
/// position inside the URL precomputed. Every per-rule check is
/// allocation-free against this.
#[derive(Debug, Clone)]
pub struct PreparedRequest<'a> {
    url: Cow<'a, str>,
    host: Cow<'a, str>,
    first_party: Cow<'a, str>,
    /// Whether the request is third-party relative to the page.
    pub is_third_party: bool,
    /// Byte offset of the first occurrence of `host` in `url`, if any
    /// (what every `||domain` rule anchors its pattern tail to).
    host_pos: Option<usize>,
}

/// Lowercases only when needed, borrowing already-lowercase input.
fn lower(s: &str) -> Cow<'_, str> {
    if s.bytes().any(|b| b.is_ascii_uppercase()) {
        Cow::Owned(s.to_ascii_lowercase())
    } else {
        Cow::Borrowed(s)
    }
}

impl<'a> PreparedRequest<'a> {
    /// Normalizes a match context: three lowercase passes and one
    /// substring search, total, for however many rules follow.
    pub fn new(ctx: &MatchContext<'a>) -> PreparedRequest<'a> {
        let url = lower(ctx.url);
        let host = lower(ctx.host);
        let host_pos = url.find(host.as_ref());
        PreparedRequest {
            url,
            host,
            first_party: lower(ctx.first_party),
            is_third_party: ctx.is_third_party,
            host_pos,
        }
    }

    /// The lowercased request URL.
    pub fn url(&self) -> &str {
        &self.url
    }

    /// The lowercased request hostname.
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The lowercased first-party registrable domain.
    pub fn first_party(&self) -> &str {
        &self.first_party
    }

    /// Byte offset of the host within the URL, if present.
    pub fn host_pos(&self) -> Option<usize> {
        self.host_pos
    }
}

fn flush(tokens: &mut Vec<Tok>, lit: &mut String) {
    if !lit.is_empty() {
        tokens.push(Tok::Lit(std::mem::take(lit)));
    }
}

/// Whether `host` is first-party relative to `first_party` under the
/// engine's notion of party-ness (equal or subdomain) — the exact
/// predicate [`host_request`] uses. Exposed so callers can compute a
/// request's party bit without building a context, e.g. as half of a
/// per-(host, party) decision-cache key.
pub fn same_party(host: &str, first_party: &str) -> bool {
    domain_or_subdomain(host, first_party)
}

/// `host` equals `domain` or is a subdomain of it (label boundary).
/// `domain` is expected lowercase (rule domains are lowercased at parse);
/// `host` is compared case-insensitively without allocating.
fn domain_or_subdomain(host: &str, domain: &str) -> bool {
    let (h, d) = (host.as_bytes(), domain.as_bytes());
    h.eq_ignore_ascii_case(d)
        || (h.len() > d.len()
            && h[h.len() - d.len()..].eq_ignore_ascii_case(d)
            && h[h.len() - d.len() - 1] == b'.')
}

/// ABP separator class: anything that is not alphanumeric, `_`, `-`, `.`,
/// or `%`; also matches the end of the URL.
pub(crate) fn is_separator(b: u8) -> bool {
    !(b.is_ascii_alphanumeric() || b == b'_' || b == b'-' || b == b'.' || b == b'%')
}

/// Token matcher with `*` backtracking.
fn match_tokens(tokens: &[Tok], s: &[u8], at: usize) -> bool {
    match tokens.first() {
        None => true,
        Some(Tok::End) => at == s.len(),
        Some(Tok::Sep) => {
            if at == s.len() {
                // `^` may match end-of-address; remaining tokens must also
                // accept emptiness.
                tokens[1..]
                    .iter()
                    .all(|t| matches!(t, Tok::Star | Tok::Sep | Tok::End))
            } else if is_separator(s[at]) {
                match_tokens(&tokens[1..], s, at + 1)
            } else {
                false
            }
        }
        Some(Tok::Star) => (at..=s.len()).any(|i| match_tokens(&tokens[1..], s, i)),
        Some(Tok::Lit(l)) => {
            let lb = l.as_bytes();
            at + lb.len() <= s.len()
                && &s[at..at + lb.len()] == lb
                && match_tokens(&tokens[1..], s, at + lb.len())
        }
    }
}

/// A compiled filter list with a domain index for fast lookups.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FilterSet {
    rules: Vec<Rule>,
    /// `||domain` rules indexed by their anchored domain.
    #[serde(skip)]
    domain_index: std::collections::HashMap<String, Vec<usize>>,
    /// Rules that must be tried against every request.
    #[serde(skip)]
    generic: Vec<usize>,
    /// Whether any rule is `$domain=`-scoped (see [`Rule::is_site_scoped`]).
    #[serde(skip)]
    site_scoped: bool,
}

impl FilterSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses a whole list document, ignoring comments/headers/cosmetics.
    /// Rules rejected for carrying an unsupported `$` option are counted
    /// under `trackers.abp.skipped_rules`.
    pub fn parse_list(text: &str) -> FilterSet {
        let mut set = FilterSet::new();
        let mut skipped = 0u64;
        for line in text.lines() {
            match Rule::parse(line) {
                Ok(rule) => set.add(rule),
                Err(ParseOutcome::UnsupportedOption(_)) => skipped += 1,
                Err(_) => {}
            }
        }
        if skipped > 0 {
            gamma_obs::global()
                .counter("trackers.abp.skipped_rules")
                .add(skipped);
        }
        set
    }

    /// Merges another list into this one (easylist + easyprivacy +
    /// regional lists are applied as a union, §4.2).
    pub fn extend_from(&mut self, other: &FilterSet) {
        for r in &other.rules {
            self.add(r.clone());
        }
    }

    pub fn add(&mut self, rule: Rule) {
        let idx = self.rules.len();
        self.site_scoped |= rule.is_site_scoped();
        match rule.anchored_domain() {
            Some(d) => self
                .domain_index
                .entry(d.to_string())
                .or_default()
                .push(idx),
            None => self.generic.push(idx),
        }
        self.rules.push(rule);
    }

    /// Whether any rule's verdict depends on the requesting page beyond
    /// party-ness. When false, a decision is a pure function of
    /// `(host, is_third_party)` and may be cached per unique host.
    pub fn has_site_scoped_rules(&self) -> bool {
        self.site_scoped
    }

    pub fn len(&self) -> usize {
        self.rules.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The parsed rules, in insertion order (the order every tie-break in
    /// the matching engines resolves by).
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// Evaluates a request. Exceptions win over blocks.
    pub fn matches(&self, ctx: &MatchContext<'_>) -> Decision {
        // Per-rule work is tallied locally and flushed with a single
        // atomic add, keeping the per-rule inner loop free of shared
        // state.
        let (decision, tried) = self.matches_counted(ctx);
        let c = abp_counters();
        c.evaluations.inc();
        c.rules_tried.add(tried);
        decision
    }

    /// Evaluates a request and reports how many rules were tried, without
    /// touching the global counters. The differential tests and the
    /// `abp_engine` bench group use the count to compare per-evaluation
    /// work against the tokenised engine's candidate count.
    pub fn matches_counted(&self, ctx: &MatchContext<'_>) -> (Decision, u64) {
        let mut tried = 0u64;
        let decision = self.matches_counting(ctx, &mut tried);
        (decision, tried)
    }

    fn matches_counting(&self, ctx: &MatchContext<'_>, evals: &mut u64) -> Decision {
        let req = PreparedRequest::new(ctx);
        let mut blocked: Option<&Rule> = None;
        // Walk the host's domain chain through the index: each key is a
        // suffix slice of the once-lowercased host (≥ 2 labels), looked up
        // by `&str` with no per-level allocation.
        let host = req.host();
        let mut pos = 0usize;
        loop {
            let key = &host[pos..];
            let Some(dot) = key.find('.') else {
                break; // fewer than two labels left
            };
            if let Some(idxs) = self.domain_index.get(key) {
                for &i in idxs {
                    let rule = &self.rules[i];
                    *evals += 1;
                    if rule.matches_prepared(&req) {
                        if rule.exception {
                            return Decision::Allowed(rule.raw.clone());
                        }
                        blocked.get_or_insert(rule);
                    }
                }
            }
            pos += dot + 1;
        }
        for &i in &self.generic {
            let rule = &self.rules[i];
            *evals += 1;
            if rule.matches_prepared(&req) {
                if rule.exception {
                    return Decision::Allowed(rule.raw.clone());
                }
                blocked.get_or_insert(rule);
            }
        }
        match blocked {
            Some(r) => Decision::Blocked(r.raw.clone()),
            None => Decision::None,
        }
    }

    /// Rebuilds indexes after deserialization.
    pub fn rebuild_index(&mut self) {
        self.domain_index.clear();
        self.generic.clear();
        self.site_scoped = self.rules.iter().any(Rule::is_site_scoped);
        for (idx, rule) in self.rules.iter().enumerate() {
            match rule.anchored_domain() {
                Some(d) => self
                    .domain_index
                    .entry(d.to_string())
                    .or_default()
                    .push(idx),
                None => self.generic.push(idx),
            }
        }
    }
}

/// Convenience: evaluate a bare host as if requested from a page.
pub fn host_request<'a>(url: &'a str, host: &'a str, first_party: &'a str) -> MatchContext<'a> {
    MatchContext {
        url,
        host,
        first_party,
        is_third_party: !domain_or_subdomain(host, first_party),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn ctx<'a>(url: &'a str, host: &'a str, fp: &'a str) -> MatchContext<'a> {
        host_request(url, host, fp)
    }

    #[test]
    fn comments_and_headers_are_skipped() {
        assert_eq!(Rule::parse("! EasyList"), Err(ParseOutcome::Comment));
        assert_eq!(Rule::parse("[Adblock Plus 2.0]"), Err(ParseOutcome::Header));
        assert_eq!(
            Rule::parse("example.com##.ad"),
            Err(ParseOutcome::ElementHiding)
        );
        assert_eq!(Rule::parse("   "), Err(ParseOutcome::Empty));
    }

    #[test]
    fn domain_anchor_matches_domain_and_subdomains() {
        let r = Rule::parse("||doubleclick.net^").unwrap();
        assert!(r.matches(&ctx(
            "https://doubleclick.net/ad",
            "doubleclick.net",
            "news.com"
        )));
        assert!(r.matches(&ctx(
            "https://stats.g.doubleclick.net/pixel",
            "stats.g.doubleclick.net",
            "news.com"
        )));
        assert!(!r.matches(&ctx(
            "https://notdoubleclick.net/x",
            "notdoubleclick.net",
            "news.com"
        )));
    }

    #[test]
    fn separator_semantics() {
        let r = Rule::parse("||ads.example.com^").unwrap();
        // `^` matches '/', ':', '?' and end-of-address...
        assert!(r.matches(&ctx(
            "http://ads.example.com/banner",
            "ads.example.com",
            "a.com"
        )));
        assert!(r.matches(&ctx("http://ads.example.com", "ads.example.com", "a.com")));
        assert!(r.matches(&ctx(
            "http://ads.example.com:8080/x",
            "ads.example.com",
            "a.com"
        )));
        // ...but not ordinary hostname characters.
        assert!(!r.matches(&ctx(
            "http://ads.example.company.org/x",
            "ads.example.company.org",
            "a.com"
        )));
    }

    #[test]
    fn wildcard_rules() {
        let r = Rule::parse("/ads/*/banner.").unwrap();
        assert!(r.matches(&ctx(
            "https://cdn.site.com/ads/2024/banner.png",
            "cdn.site.com",
            "site.com"
        )));
        assert!(!r.matches(&ctx(
            "https://cdn.site.com/ads/x.js",
            "cdn.site.com",
            "site.com"
        )));
    }

    #[test]
    fn start_and_end_anchors() {
        let start = Rule::parse("|https://tracker.").unwrap();
        assert!(start.matches(&ctx("https://tracker.io/t", "tracker.io", "a.com")));
        assert!(!start.matches(&ctx("https://www.tracker.io/t", "www.tracker.io", "a.com")));
        let end = Rule::parse("track.js|").unwrap();
        assert!(end.matches(&ctx("https://x.com/track.js", "x.com", "a.com")));
        assert!(!end.matches(&ctx("https://x.com/track.js?v=1", "x.com", "a.com")));
    }

    #[test]
    fn third_party_option() {
        let r = Rule::parse("||social-widgets.net^$third-party").unwrap();
        assert!(r.matches(&ctx(
            "https://social-widgets.net/btn",
            "social-widgets.net",
            "blog.com"
        )));
        // First-party use of the same host is exempt.
        assert!(!r.matches(&ctx(
            "https://social-widgets.net/btn",
            "social-widgets.net",
            "social-widgets.net"
        )));
        let fp_only = Rule::parse("||self-analytics.io^$~third-party").unwrap();
        assert!(fp_only.matches(&ctx(
            "https://self-analytics.io/x",
            "self-analytics.io",
            "self-analytics.io"
        )));
        assert!(!fp_only.matches(&ctx(
            "https://self-analytics.io/x",
            "self-analytics.io",
            "other.com"
        )));
    }

    #[test]
    fn domain_option_includes_and_excludes() {
        let r = Rule::parse("||regionads.com^$domain=news-eg.com|~sports-eg.com").unwrap();
        assert!(r.matches(&ctx(
            "https://regionads.com/t",
            "regionads.com",
            "news-eg.com"
        )));
        assert!(!r.matches(&ctx(
            "https://regionads.com/t",
            "regionads.com",
            "sports-eg.com"
        )));
        assert!(!r.matches(&ctx(
            "https://regionads.com/t",
            "regionads.com",
            "unrelated.com"
        )));
    }

    #[test]
    fn exceptions_override_blocks() {
        let mut set = FilterSet::new();
        set.add(Rule::parse("||cdn.example.net^").unwrap());
        set.add(Rule::parse("@@||cdn.example.net/fonts/$~third-party").unwrap());
        let blocked = set.matches(&ctx(
            "https://cdn.example.net/ads/x.js",
            "cdn.example.net",
            "a.com",
        ));
        assert!(matches!(blocked, Decision::Blocked(_)));
        let allowed = set.matches(&ctx(
            "https://cdn.example.net/fonts/a.woff",
            "cdn.example.net",
            "example.net",
        ));
        assert!(matches!(allowed, Decision::Allowed(_)));
    }

    #[test]
    fn type_options_are_tolerated() {
        let r = Rule::parse("||adimg.net^$image,script,third-party").unwrap();
        assert!(r.matches(&ctx("https://adimg.net/1.gif", "adimg.net", "a.com")));
    }

    #[test]
    fn unknown_options_reject_the_rule_instead_of_widening_it() {
        // `track$ing` must NOT silently become the substring rule `track`.
        assert_eq!(
            Rule::parse("track$ing"),
            Err(ParseOutcome::UnsupportedOption("ing".into()))
        );
        assert_eq!(
            Rule::parse("||ads.example.com^$websocket,match-case"),
            Err(ParseOutcome::UnsupportedOption("match-case".into()))
        );
        assert_eq!(
            Rule::parse("@@||cdn.example.com^$generichide"),
            Err(ParseOutcome::UnsupportedOption("generichide".into()))
        );
        // Negated type options stay tolerated.
        assert!(Rule::parse("||adimg.net^$~image,~script").is_ok());
        // A `$` tail that does not look like an options list stays part of
        // the pattern (URLs containing `$`).
        let r = Rule::parse("/path$with/dollar").unwrap();
        assert!(r.matches(&ctx(
            "https://x.com/path$with/dollar",
            "x.com",
            "a.com"
        )));
    }

    #[test]
    fn unsupported_option_lines_are_skipped_by_list_parsing() {
        let set = FilterSet::parse_list("||real.example^\ntrack$ing\n||other.example^$rewrite=x\n");
        assert_eq!(set.len(), 1, "only the clean rule survives");
        let d = set.matches(&ctx("https://real.example/", "real.example", "a.com"));
        assert!(matches!(d, Decision::Blocked(_)));
        // The widened-substring bug this pins: `track` must not match.
        let d = set.matches(&ctx("https://x.com/track/it", "x.com", "a.com"));
        assert_eq!(d, Decision::None);
    }

    #[test]
    fn prepared_request_matches_like_the_wrapper() {
        let rules = [
            Rule::parse("||doubleclick.net^").unwrap(),
            Rule::parse("/ads/*/banner.").unwrap(),
            Rule::parse("|https://tracker.").unwrap(),
            Rule::parse("track.js|").unwrap(),
            Rule::parse("||social.net^$third-party,domain=blog.com|~other.com").unwrap(),
        ];
        let contexts = [
            ctx(
                "https://STATS.G.DOUBLECLICK.NET/Ads/2/banner.png",
                "STATS.G.DOUBLECLICK.NET",
                "news.com",
            ),
            ctx("https://tracker.io/track.js", "tracker.io", "blog.com"),
            ctx("https://social.net/w", "social.net", "blog.com"),
        ];
        for c in &contexts {
            let prepared = PreparedRequest::new(c);
            for r in &rules {
                assert_eq!(
                    r.matches(c),
                    r.matches_prepared(&prepared),
                    "{} on {}",
                    r.raw,
                    c.url
                );
            }
        }
    }

    #[test]
    fn mixed_case_hosts_walk_the_domain_chain() {
        let set = FilterSet::parse_list("||googlesyndication.com^\n");
        let d = set.matches(&ctx(
            "https://Safeframe.GoogleSyndication.COM/sf.html",
            "Safeframe.GoogleSyndication.COM",
            "news.com",
        ));
        assert!(matches!(d, Decision::Blocked(_)));
    }

    #[test]
    fn filter_set_walks_the_domain_chain() {
        let set = FilterSet::parse_list(
            "! test list\n||googlesyndication.com^\n||smaato.net^$third-party\n",
        );
        assert_eq!(set.len(), 2);
        let d = set.matches(&ctx(
            "https://693.safeframe.googlesyndication.com/sf.html",
            "693.safeframe.googlesyndication.com",
            "news.com",
        ));
        assert!(matches!(d, Decision::Blocked(r) if r.contains("googlesyndication")));
        assert_eq!(
            set.matches(&ctx("https://example.org/", "example.org", "news.com")),
            Decision::None
        );
    }

    #[test]
    fn serde_roundtrip_with_index_rebuild() {
        let set = FilterSet::parse_list("||tracker.io^\nbanner-rotator\n");
        let js = serde_json::to_string(&set).unwrap();
        let mut back: FilterSet = serde_json::from_str(&js).unwrap();
        back.rebuild_index();
        let d = back.matches(&ctx("https://tracker.io/", "tracker.io", "a.com"));
        assert!(matches!(d, Decision::Blocked(_)));
        let g = back.matches(&ctx("https://x.com/banner-rotator.js", "x.com", "a.com"));
        assert!(matches!(g, Decision::Blocked(_)));
    }

    #[test]
    fn site_scoped_rules_are_detected_and_survive_rebuild() {
        let mut set = FilterSet::parse_list("||tracker.io^\n@@||cdn.io^$third-party\n");
        assert!(!set.has_site_scoped_rules());
        set.add(Rule::parse("||regionads.com^$domain=news-eg.com").unwrap());
        assert!(set.has_site_scoped_rules());
        let js = serde_json::to_string(&set).unwrap();
        let mut back: FilterSet = serde_json::from_str(&js).unwrap();
        back.rebuild_index();
        assert!(back.has_site_scoped_rules());
    }

    #[test]
    fn same_party_matches_the_context_builder() {
        assert!(same_party("cdn.example.com", "example.com"));
        assert!(same_party("example.com", "example.com"));
        assert!(!same_party("notexample.com", "example.com"));
        let c = host_request(
            "https://cdn.example.com/x",
            "cdn.example.com",
            "example.com",
        );
        assert!(!c.is_third_party);
    }

    proptest! {
        #[test]
        fn exceptions_always_override_blocks(dom in "[a-z]{3,10}", sub in "[a-z]{1,6}") {
            let mut set = FilterSet::new();
            set.add(Rule::parse(&format!("||{dom}.com^")).unwrap());
            set.add(Rule::parse(&format!("@@||{dom}.com^")).unwrap());
            let host = format!("{sub}.{dom}.com");
            let url = format!("https://{host}/x.js");
            let d = set.matches(&ctx(&url, &host, "site.org"));
            prop_assert!(matches!(d, Decision::Allowed(_)), "{:?}", d);
        }

        #[test]
        fn separator_never_matches_hostname_chars(c in "[a-z0-9]") {
            // `^` must not match ordinary hostname characters.
            let rule = Rule::parse("||ads.example.com^").unwrap();
            let host = format!("ads.example.com{c}x.org");
            let url = format!("https://{host}/");
            prop_assert!(!rule.matches(&ctx(&url, &host, "a.com")));
        }

        #[test]
        fn third_party_rules_never_fire_first_party(dom in "[a-z]{3,10}") {
            let rule = Rule::parse(&format!("||{dom}.net^$third-party")).unwrap();
            let host = format!("cdn.{dom}.net");
            let url = format!("https://{host}/w.js");
            // First-party page on the same registrable domain.
            let fp = format!("{dom}.net");
            prop_assert!(!rule.matches(&ctx(&url, &host, &fp)));
            // Third-party page: fires.
            prop_assert!(rule.matches(&ctx(&url, &host, "other.org")));
        }

        #[test]
        fn domain_rules_never_match_unrelated_hosts(
            dom in "[a-z]{3,10}", tld in "(com|net|io)", other in "[a-z]{3,10}"
        ) {
            prop_assume!(dom != other);
            let rule = Rule::parse(&format!("||{dom}.{tld}^")).unwrap();
            let host = format!("{other}.{tld}");
            let url = format!("https://{host}/x");
            prop_assert!(!rule.matches(&ctx(&url, &host, "site.com")));
        }

        #[test]
        fn domain_rules_always_match_their_subdomains(
            dom in "[a-z]{3,10}", sub in "[a-z]{1,8}"
        ) {
            let rule = Rule::parse(&format!("||{dom}.com^")).unwrap();
            let host = format!("{sub}.{dom}.com");
            let url = format!("https://{host}/path?q=1");
            prop_assert!(rule.matches(&ctx(&url, &host, "unrelated.org")));
        }

        #[test]
        fn parse_never_panics(line in ".{0,80}") {
            let _ = Rule::parse(&line);
        }
    }
}
