//! WhoTracksMe-style organization database.
//!
//! §6.5: "We performed manual inspection of all the organizations owning
//! non-local tracking domains using whotracksme and Internet search." The
//! database maps a tracking domain (eTLD+1 or full host) to the operating
//! organization and its headquarters country.

use gamma_dns::psl::registrable_domain;
use gamma_dns::DomainName;
use gamma_geo::CountryCode;
use gamma_websim::World;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One organization entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrgEntry {
    pub name: String,
    pub hq: CountryCode,
}

/// The database.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct WhoTracksMe {
    by_domain: HashMap<DomainName, OrgEntry>,
}

impl WhoTracksMe {
    /// Builds the database from a world's ground-truth tracker table —
    /// the role WhoTracksMe plays for the real Internet.
    pub fn from_world(world: &World) -> Self {
        let mut by_domain = HashMap::new();
        for t in &world.tracker_domains {
            let org = world.org(t.org);
            by_domain.insert(
                t.domain.clone(),
                OrgEntry {
                    name: org.name.clone(),
                    hq: org.hq,
                },
            );
        }
        WhoTracksMe { by_domain }
    }

    /// Looks up the organization for a domain: exact host first, then the
    /// registrable domain, then parent walks (subdomains inherit).
    pub fn lookup(&self, domain: &DomainName) -> Option<&OrgEntry> {
        if let Some(e) = self.by_domain.get(domain) {
            return Some(e);
        }
        if let Some(reg) = registrable_domain(domain) {
            if let Some(e) = self.by_domain.get(&reg) {
                return Some(e);
            }
        }
        let mut cur = domain.parent();
        while let Some(d) = cur {
            if let Some(e) = self.by_domain.get(&d) {
                return Some(e);
            }
            cur = d.parent();
        }
        None
    }

    pub fn len(&self) -> usize {
        self.by_domain.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_domain.is_empty()
    }

    /// Distinct organization names in the database, sorted.
    pub fn org_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.by_domain.values().map(|e| e.name.clone()).collect();
        names.sort();
        names.dedup();
        names
    }

    /// Whether any domain attributes to the named organization.
    pub fn contains_org(&self, name: &str) -> bool {
        self.by_domain.values().any(|e| e.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_websim::{worldgen, WorldSpec};

    fn db() -> WhoTracksMe {
        WhoTracksMe::from_world(&worldgen::generate(&WorldSpec::paper_default(31)))
    }

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn majors_resolve_with_us_hq() {
        let db = db();
        let e = db.lookup(&d("doubleclick.net")).unwrap();
        assert_eq!(e.name, "Google");
        assert_eq!(e.hq, CountryCode::new("US"));
        assert_eq!(db.lookup(&d("twimg.com")).unwrap().name, "Twitter");
    }

    #[test]
    fn subdomains_inherit_ownership() {
        let db = db();
        let e = db.lookup(&d("sync.pixel.smaato.net")).unwrap();
        assert_eq!(e.name, "Smaato");
        assert_eq!(e.hq, CountryCode::new("DE"));
    }

    #[test]
    fn fqdn_entries_match_directly() {
        let db = db();
        let e = db.lookup(&d("safeframe.googlesyndication.com")).unwrap();
        assert_eq!(e.name, "Google");
    }

    #[test]
    fn unknown_domains_return_none() {
        let db = db();
        assert!(db.lookup(&d("innocent-blog.org")).is_none());
    }

    #[test]
    fn database_scale_matches_tracker_table() {
        let db = db();
        assert!(db.len() > 400, "only {} entries", db.len());
    }

    #[test]
    fn org_names_enumerates_sorted_and_contains_org_agrees() {
        let db = db();
        let names = db.org_names();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(names.iter().any(|n| n == "Google"));
        assert!(db.contains_org("Google"));
        assert!(!db.contains_org("No Such Org Inc"));
    }
}
