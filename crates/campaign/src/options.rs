//! Campaign execution options.

use crate::retry::{FaultInjection, RetryPolicy};
use std::path::PathBuf;

/// How a campaign runs: pool size, retry schedule, checkpoint plumbing.
///
/// `Options::default()` is the sequential case — one worker, default
/// retries, no checkpointing — which is what `Study::run` uses.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Worker threads. `1` runs shards inline on the calling thread;
    /// `0` auto-sizes to the machine's available parallelism.
    pub workers: usize,
    /// Retry-with-backoff schedule for transient shard faults.
    pub retry: RetryPolicy,
    /// Write a campaign checkpoint here after every completed shard.
    pub checkpoint: Option<PathBuf>,
    /// Resume from this checkpoint if the file exists (a missing file
    /// starts a fresh campaign, so first runs and reruns share a CLI).
    pub resume: Option<PathBuf>,
    /// Deterministic transient-fault injection (tests and drills).
    pub inject: FaultInjection,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            workers: 1,
            retry: RetryPolicy::default(),
            checkpoint: None,
            resume: None,
            inject: FaultInjection::none(),
        }
    }
}

impl Options {
    /// The one-worker configuration `Study::run` delegates to.
    pub fn sequential() -> Self {
        Options::default()
    }

    /// A pool of `workers` threads, everything else default.
    pub fn with_workers(workers: usize) -> Self {
        Options {
            workers,
            ..Options::default()
        }
    }

    /// Checkpoint to `path` and resume from it when it already exists —
    /// the crash-rerun cycle of `gamma-study --resume`.
    pub fn resumable(mut self, path: impl Into<PathBuf>) -> Self {
        let path = path.into();
        self.checkpoint = Some(path.clone());
        self.resume = Some(path);
        self
    }

    /// The same options re-pointed at round-scoped checkpoint files.
    ///
    /// A longitudinal campaign runs one checkpointed campaign per round;
    /// sharing one file across rounds would let round N resume from round
    /// N-1's shards. Suffixing the configured paths with `.round{epoch}`
    /// keeps each round's crash-rerun cycle isolated while the CLI still
    /// takes a single `--resume` path.
    pub fn for_round(&self, epoch: u32) -> Options {
        let suffix = |p: &PathBuf| -> PathBuf {
            let mut s = p.clone().into_os_string();
            s.push(format!(".round{epoch}"));
            PathBuf::from(s)
        };
        Options {
            checkpoint: self.checkpoint.as_ref().map(suffix),
            resume: self.resume.as_ref().map(suffix),
            ..self.clone()
        }
    }

    /// The same options re-pointed at tenant-scoped checkpoint files.
    ///
    /// A multi-tenant server runs many concurrent studies out of one
    /// state directory; un-namespaced checkpoint paths would let tenant A
    /// resume from (and clobber) tenant B's shards — and with them B's
    /// quarantine ledgers, which ride inside the checkpoint records.
    /// Suffixing with `.tenant{id}` *before* the per-round suffix keeps
    /// every `(tenant, round)` crash-rerun cycle in its own file:
    /// `state/server.ckpt.tenant3.round2`.
    pub fn for_tenant(&self, tenant: u32) -> Options {
        let suffix = |p: &PathBuf| -> PathBuf {
            let mut s = p.clone().into_os_string();
            s.push(format!(".tenant{tenant}"));
            PathBuf::from(s)
        };
        Options {
            checkpoint: self.checkpoint.as_ref().map(suffix),
            resume: self.resume.as_ref().map(suffix),
            ..self.clone()
        }
    }

    /// Worker count after auto-sizing (`0` → available parallelism).
    pub fn effective_workers(&self) -> usize {
        if self.workers == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        } else {
            self.workers
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential_without_checkpointing() {
        let o = Options::default();
        assert_eq!(o.workers, 1);
        assert_eq!(o.effective_workers(), 1);
        assert!(o.checkpoint.is_none());
        assert!(o.resume.is_none());
        assert!(o.inject.is_empty());
    }

    #[test]
    fn zero_workers_auto_sizes() {
        assert!(Options::with_workers(0).effective_workers() >= 1);
    }

    #[test]
    fn resumable_sets_both_sides_of_the_checkpoint() {
        let o = Options::sequential().resumable("/tmp/c.json");
        assert_eq!(o.checkpoint, o.resume);
        assert!(o.checkpoint.is_some());
    }

    #[test]
    fn for_round_scopes_checkpoint_paths_per_epoch() {
        let o = Options::with_workers(3).resumable("/tmp/c.json");
        let r0 = o.for_round(0);
        let r2 = o.for_round(2);
        assert_eq!(r0.checkpoint, Some(PathBuf::from("/tmp/c.json.round0")));
        assert_eq!(r2.checkpoint, Some(PathBuf::from("/tmp/c.json.round2")));
        assert_eq!(r2.checkpoint, r2.resume);
        assert_eq!(r2.workers, 3);
        // No checkpointing configured → rounds stay checkpoint-free.
        let plain = Options::sequential().for_round(1);
        assert!(plain.checkpoint.is_none() && plain.resume.is_none());
    }

    #[test]
    fn for_tenant_namespaces_checkpoint_paths_per_tenant() {
        // Two tenants sharing one state dir must never share a
        // checkpoint file, for any round.
        let o = Options::sequential().resumable("/tmp/state/server.ckpt");
        let t1r0 = o.for_tenant(1).for_round(0);
        let t2r0 = o.for_tenant(2).for_round(0);
        assert_eq!(
            t1r0.checkpoint,
            Some(PathBuf::from("/tmp/state/server.ckpt.tenant1.round0"))
        );
        assert_eq!(
            t2r0.checkpoint,
            Some(PathBuf::from("/tmp/state/server.ckpt.tenant2.round0"))
        );
        assert_ne!(t1r0.checkpoint, t2r0.checkpoint);
        assert_eq!(t1r0.checkpoint, t1r0.resume);
        // No checkpointing configured → tenants stay checkpoint-free.
        let plain = Options::sequential().for_tenant(7);
        assert!(plain.checkpoint.is_none() && plain.resume.is_none());
    }
}
