//! Retry policy and deterministic fault injection.
//!
//! Volunteer machines hit transient trouble — a page load that times out
//! wholesale, a probe batch the kernel refuses — and the study's answer
//! was simply to run the affected chunk again (§3.3). The campaign engine
//! retries a failed shard with exponential backoff; because every shard's
//! RNG stream is derived from its identity (see [`crate::rng`]), a retry
//! that succeeds produces exactly the bytes an untroubled first attempt
//! would have.

use gamma_geo::CountryCode;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Retry-with-backoff schedule for transient shard faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per shard (first try included). Clamped to ≥ 1.
    pub max_attempts: u32,
    /// Pause before the first retry.
    pub base_backoff: Duration,
    /// Multiplier applied per further retry.
    pub backoff_multiplier: u32,
    /// Ceiling on any single pause.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            base_backoff: Duration::from_millis(25),
            backoff_multiplier: 2,
            max_backoff: Duration::from_secs(1),
        }
    }
}

impl RetryPolicy {
    /// A policy that fails a shard on its first fault.
    pub fn no_retry() -> Self {
        RetryPolicy {
            max_attempts: 1,
            ..RetryPolicy::default()
        }
    }

    /// The default schedule with all pauses removed — for tests that
    /// exercise retries without sleeping.
    pub fn immediate() -> Self {
        RetryPolicy {
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
            ..RetryPolicy::default()
        }
    }

    /// Effective attempt budget (at least one).
    pub fn attempts(&self) -> u32 {
        self.max_attempts.max(1)
    }

    /// Pause before `attempt` (0-based; attempt 0 never waits).
    pub fn backoff_before(&self, attempt: u32) -> Duration {
        if attempt == 0 {
            return Duration::ZERO;
        }
        let factor = self.backoff_multiplier.max(1).saturating_pow(attempt - 1);
        self.base_backoff
            .saturating_mul(factor)
            .min(self.max_backoff)
    }
}

/// Deterministic transient-fault source, for exercising the retry and
/// checkpoint paths: the listed countries fail their first `n` attempts.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultInjection {
    failures: Vec<(CountryCode, u32)>,
}

impl FaultInjection {
    /// No injected faults (the default).
    pub fn none() -> Self {
        FaultInjection::default()
    }

    /// Fails `country`'s first `attempts` attempts.
    pub fn fail_first(mut self, country: CountryCode, attempts: u32) -> Self {
        self.failures.push((country, attempts));
        self
    }

    /// Whether `attempt` (0-based) of `country`'s shard should fault.
    pub fn should_fail(&self, country: CountryCode, attempt: u32) -> bool {
        self.failures
            .iter()
            .any(|(c, n)| *c == country && attempt < *n)
    }

    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_exponentially_and_caps() {
        let p = RetryPolicy {
            max_attempts: 6,
            base_backoff: Duration::from_millis(100),
            backoff_multiplier: 2,
            max_backoff: Duration::from_millis(350),
        };
        assert_eq!(p.backoff_before(0), Duration::ZERO);
        assert_eq!(p.backoff_before(1), Duration::from_millis(100));
        assert_eq!(p.backoff_before(2), Duration::from_millis(200));
        assert_eq!(p.backoff_before(3), Duration::from_millis(350));
        assert_eq!(p.backoff_before(5), Duration::from_millis(350));
    }

    #[test]
    fn attempt_budget_is_at_least_one() {
        let p = RetryPolicy {
            max_attempts: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(p.attempts(), 1);
        assert_eq!(RetryPolicy::no_retry().attempts(), 1);
    }

    #[test]
    fn injection_fails_exactly_the_first_n_attempts() {
        let rw = CountryCode::new("RW");
        let inj = FaultInjection::none().fail_first(rw, 2);
        assert!(inj.should_fail(rw, 0));
        assert!(inj.should_fail(rw, 1));
        assert!(!inj.should_fail(rw, 2));
        assert!(!inj.should_fail(CountryCode::new("US"), 0));
        assert!(FaultInjection::none().is_empty());
    }
}
