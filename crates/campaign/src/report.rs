//! Renders the campaign metrics ledger as a text report.

use crate::metrics::{CampaignMetrics, ShardMetrics};
use std::fmt::Write as _;
use std::time::Duration;

fn ms(d: Duration) -> String {
    format!("{:.1}", d.as_secs_f64() * 1000.0)
}

fn row(out: &mut String, s: &ShardMetrics) {
    let flag = if s.resumed {
        " (resumed)"
    } else if s.attempts > 1 {
        " (retried)"
    } else {
        ""
    };
    let _ = writeln!(
        out,
        "  {}  att {}  sites {:>3}/{:<3}  req {:>5}  tr {:>4}  ok {:>4}  drop {:>4}  \
         measure {:>8}ms  geoloc {:>8}ms  final {:>6}ms{}",
        s.country,
        s.attempts,
        s.sites_loaded,
        s.sites_total,
        s.requests_captured,
        s.traceroutes_run,
        s.constraints_passed,
        s.constraints_failed,
        ms(s.stages.measure),
        ms(s.stages.geolocate),
        ms(s.stages.finalize),
        flag,
    );
}

/// The campaign report: a header line, one row per shard in plan order,
/// and a totals row.
pub fn render_campaign_report(m: &CampaignMetrics) -> String {
    let mut out = String::new();
    let t = m.totals();
    let _ = writeln!(
        out,
        "campaign: {} shard(s), {} worker(s), wall {}ms, {} resumed, {} retried",
        m.shards.len(),
        m.workers,
        ms(m.total_wall),
        m.resumed_shards,
        m.shards.iter().filter(|s| s.attempts > 1).count(),
    );
    for s in &m.shards {
        row(&mut out, s);
    }
    let _ = writeln!(
        out,
        "  total  sites {}/{}  requests {}  traceroutes {}  confirmed {}  discarded {}  \
         retries {}  stage wall {}ms (measure {} / geolocate {} / finalize {})",
        t.sites_loaded,
        t.sites_total,
        t.requests_captured,
        t.traceroutes_run,
        t.constraints_passed,
        t.constraints_failed,
        t.retries,
        ms(t.stage_wall.total()),
        ms(t.stage_wall.measure),
        ms(t.stage_wall.geolocate),
        ms(t.stage_wall.finalize),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::StageTimings;
    use gamma_geo::CountryCode;

    fn ledger() -> CampaignMetrics {
        let entry = |country: &str, attempts: u32, resumed: bool| ShardMetrics {
            country: CountryCode::new(country),
            attempts,
            backoff_total: Duration::ZERO,
            sites_total: 16,
            sites_loaded: 15,
            requests_captured: 300,
            traceroutes_run: 90,
            constraints_passed: 12,
            constraints_failed: 5,
            quarantined: 0,
            degraded: 2,
            stages: StageTimings {
                measure: Duration::from_millis(30),
                geolocate: Duration::from_millis(12),
                finalize: Duration::from_micros(400),
            },
            resumed,
        };
        CampaignMetrics {
            workers: 4,
            total_wall: Duration::from_millis(55),
            resumed_shards: 1,
            shards: vec![
                entry("RW", 1, true),
                entry("US", 3, false),
                entry("NZ", 1, false),
            ],
        }
    }

    #[test]
    fn report_has_header_rows_and_totals() {
        let text = render_campaign_report(&ledger());
        assert!(text.starts_with("campaign: 3 shard(s), 4 worker(s)"));
        assert!(text.contains("1 resumed, 1 retried"));
        for needle in [
            "RW",
            "US",
            "NZ",
            "(resumed)",
            "(retried)",
            "total  sites 45/48",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        assert_eq!(text.lines().count(), 5);
    }

    #[test]
    fn clean_shards_carry_no_flag() {
        let text = render_campaign_report(&ledger());
        let nz = text.lines().find(|l| l.contains("NZ")).unwrap();
        assert!(!nz.contains("(resumed)") && !nz.contains("(retried)"));
    }
}
