//! The campaign metrics ledger.
//!
//! Every shard records what its stages did — sites loaded, requests
//! captured, traceroutes run, constraint pass/fail counts — and how long
//! each stage took. The engine assembles the per-shard ledgers, in spec
//! order, into a [`CampaignMetrics`] that [`crate::report`] renders.

use gamma_geo::CountryCode;
use gamma_geoloc::GeolocReport;
use gamma_suite::VolunteerDataset;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Wall-clock per pipeline stage of one shard.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// The volunteer's Gamma run (C1 page loads, C2 DNS, C3 probes).
    pub measure: Duration,
    /// The multi-constraint geolocation pipeline over the dataset.
    pub geolocate: Duration,
    /// Post-analysis anonymization and bookkeeping.
    pub finalize: Duration,
}

impl StageTimings {
    pub fn total(&self) -> Duration {
        self.measure + self.geolocate + self.finalize
    }
}

/// One shard's ledger entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardMetrics {
    pub country: CountryCode,
    /// Attempts consumed (1 = clean first try).
    pub attempts: u32,
    /// Total backoff waited across retries.
    pub backoff_total: Duration,
    /// Target sites attempted.
    pub sites_total: usize,
    /// Target sites that loaded successfully.
    pub sites_loaded: usize,
    /// Network requests captured across all page loads (C1).
    pub requests_captured: usize,
    /// Traceroutes run: the volunteer's own plus the pipeline's Atlas
    /// source fallbacks and destination probes.
    pub traceroutes_run: usize,
    /// Non-local candidates that survived every enabled constraint.
    pub constraints_passed: usize,
    /// Unique addresses discarded (constraint failures + unmapped).
    pub constraints_failed: usize,
    /// Wall-clock per stage.
    pub stages: StageTimings,
    /// Whether this shard was restored from a campaign checkpoint rather
    /// than executed in this run.
    pub resumed: bool,
    /// Records the suite quarantined (killed pages, failed DNS, lost
    /// traceroutes) instead of shipping.
    #[serde(default)]
    pub quarantined: usize,
    /// Confirmed-non-local addresses carrying a degraded confidence.
    #[serde(default)]
    pub degraded: usize,
}

impl ShardMetrics {
    /// Builds the ledger entry for a finished shard from its outputs.
    pub fn from_outputs(
        country: CountryCode,
        dataset: &VolunteerDataset,
        report: &GeolocReport,
        stages: StageTimings,
    ) -> ShardMetrics {
        let funnel = &report.funnel;
        ShardMetrics {
            country,
            attempts: 1,
            backoff_total: Duration::ZERO,
            sites_total: dataset.loads.len(),
            sites_loaded: dataset.loaded_count(),
            requests_captured: dataset.loads.iter().map(|l| l.requests.len()).sum(),
            traceroutes_run: dataset.traceroutes.len()
                + funnel.source_traceroutes_atlas
                + funnel.destination_traceroutes,
            constraints_passed: funnel.after_rdns_constraint,
            constraints_failed: funnel.unique_ips - funnel.local - funnel.after_rdns_constraint,
            stages,
            resumed: false,
            quarantined: 0,
            degraded: funnel.degraded_confirmations,
        }
    }
}

/// Aggregates over a whole campaign.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CampaignTotals {
    pub sites_total: usize,
    pub sites_loaded: usize,
    pub requests_captured: usize,
    pub traceroutes_run: usize,
    pub constraints_passed: usize,
    pub constraints_failed: usize,
    /// Records quarantined across all shards.
    pub quarantined: usize,
    /// Degraded-confidence confirmations across all shards.
    pub degraded: usize,
    /// Retries consumed beyond first attempts.
    pub retries: u32,
    /// Sum of per-shard stage wall-clock (CPU-time-like; exceeds the
    /// campaign wall when workers overlap).
    pub stage_wall: StageTimings,
}

/// The assembled campaign ledger, shards in spec order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignMetrics {
    /// Worker threads the pool ran with.
    pub workers: usize,
    /// End-to-end campaign wall-clock.
    pub total_wall: Duration,
    /// Shards restored from a checkpoint instead of executed.
    pub resumed_shards: usize,
    pub shards: Vec<ShardMetrics>,
}

impl CampaignMetrics {
    pub fn totals(&self) -> CampaignTotals {
        let mut t = CampaignTotals::default();
        for s in &self.shards {
            t.sites_total += s.sites_total;
            t.sites_loaded += s.sites_loaded;
            t.requests_captured += s.requests_captured;
            t.traceroutes_run += s.traceroutes_run;
            t.constraints_passed += s.constraints_passed;
            t.constraints_failed += s.constraints_failed;
            t.quarantined += s.quarantined;
            t.degraded += s.degraded;
            t.retries += s.attempts.saturating_sub(1);
            t.stage_wall.measure += s.stages.measure;
            t.stage_wall.geolocate += s.stages.geolocate;
            t.stage_wall.finalize += s.stages.finalize;
        }
        t
    }

    /// Ledger entry for one country, when present.
    pub fn shard(&self, country: CountryCode) -> Option<&ShardMetrics> {
        self.shards.iter().find(|s| s.country == country)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(country: &str, attempts: u32) -> ShardMetrics {
        ShardMetrics {
            country: CountryCode::new(country),
            attempts,
            backoff_total: Duration::ZERO,
            sites_total: 50,
            sites_loaded: 45,
            requests_captured: 900,
            traceroutes_run: 120,
            constraints_passed: 30,
            constraints_failed: 12,
            stages: StageTimings {
                measure: Duration::from_millis(80),
                geolocate: Duration::from_millis(40),
                finalize: Duration::from_millis(1),
            },
            resumed: false,
            quarantined: 3,
            degraded: 2,
        }
    }

    #[test]
    fn totals_sum_the_ledger() {
        let m = CampaignMetrics {
            workers: 2,
            total_wall: Duration::from_millis(200),
            resumed_shards: 0,
            shards: vec![entry("RW", 1), entry("US", 3)],
        };
        let t = m.totals();
        assert_eq!(t.sites_total, 100);
        assert_eq!(t.sites_loaded, 90);
        assert_eq!(t.requests_captured, 1800);
        assert_eq!(t.traceroutes_run, 240);
        assert_eq!(t.constraints_passed, 60);
        assert_eq!(t.constraints_failed, 24);
        assert_eq!(t.quarantined, 6);
        assert_eq!(t.degraded, 4);
        assert_eq!(t.retries, 2);
        assert_eq!(t.stage_wall.measure, Duration::from_millis(160));
        assert_eq!(t.stage_wall.total(), Duration::from_millis(242));
    }

    #[test]
    fn shard_lookup_by_country() {
        let m = CampaignMetrics {
            workers: 1,
            total_wall: Duration::ZERO,
            resumed_shards: 0,
            shards: vec![entry("RW", 1)],
        };
        assert!(m.shard(CountryCode::new("RW")).is_some());
        assert!(m.shard(CountryCode::new("US")).is_none());
    }

    #[test]
    fn ledger_roundtrips_through_json() {
        let m = CampaignMetrics {
            workers: 4,
            total_wall: Duration::from_millis(5),
            resumed_shards: 1,
            shards: vec![entry("TH", 2)],
        };
        let js = serde_json::to_string(&m).expect("metrics serialize");
        let back: CampaignMetrics = serde_json::from_str(&js).expect("metrics parse");
        assert_eq!(back, m);
    }
}
