//! Campaign-level checkpoint/resume.
//!
//! `gamma_suite::Checkpoint` marks one volunteer's progress through their
//! target list (§3.3's "resume from where it was last stopped"). The
//! campaign checkpoint layers on top of it: one completed-shard record per
//! finished country — the suite-level marker plus the shard's outputs and
//! ledger entry — so a campaign killed after K of N countries resumes by
//! skipping the K and produces a `StudyDataset` identical to an
//! uninterrupted run.
//!
//! The file is JSON, written atomically (temp file + rename) after every
//! completed shard.

use crate::engine::CampaignError;
use crate::metrics::ShardMetrics;
use gamma_geo::CountryCode;
use gamma_geoloc::GeolocReport;
use gamma_suite::{Checkpoint, Quarantine, VolunteerDataset};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One finished country: the suite-level progress marker, the shard's
/// outputs (already anonymized), and its metrics ledger entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedShard {
    /// The per-volunteer marker this record is layered on.
    pub marker: Checkpoint,
    pub dataset: VolunteerDataset,
    pub report: GeolocReport,
    pub metrics: ShardMetrics,
    /// Records the suite quarantined instead of shipping (defaults empty
    /// so pre-chaos checkpoints still load).
    #[serde(default)]
    pub quarantine: Quarantine,
}

/// Resumable campaign state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    /// Master seed of the interrupted campaign; must match on resume.
    pub master_seed: u64,
    /// The full campaign plan, in execution-spec order.
    pub plan: Vec<CountryCode>,
    /// Finished shards, kept in plan order.
    pub completed: Vec<CompletedShard>,
}

impl CampaignCheckpoint {
    pub fn new(master_seed: u64, plan: Vec<CountryCode>) -> Self {
        CampaignCheckpoint {
            master_seed,
            plan,
            completed: Vec::new(),
        }
    }

    /// Whether this checkpoint can resume a campaign with the given
    /// parameters: same master seed, same plan (countries and order).
    pub fn compatible_with(&self, master_seed: u64, plan: &[CountryCode]) -> bool {
        self.master_seed == master_seed && self.plan == plan
    }

    /// Whether `country` already finished.
    pub fn is_complete(&self, country: CountryCode) -> bool {
        self.completed.iter().any(|d| d.marker.country == country)
    }

    /// Records a finished shard, replacing any stale record for the same
    /// country, and keeps `completed` in plan order.
    pub fn record(&mut self, done: CompletedShard) {
        let country = done.marker.country;
        if let Some(existing) = self
            .completed
            .iter_mut()
            .find(|d| d.marker.country == country)
        {
            *existing = done;
        } else {
            self.completed.push(done);
        }
        let plan = self.plan.clone();
        self.completed.sort_by_key(|d| {
            plan.iter()
                .position(|c| *c == d.marker.country)
                .unwrap_or(usize::MAX)
        });
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("campaign checkpoint serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("corrupt campaign checkpoint: {e}"))
    }

    /// Reads and parses the on-disk checkpoint.
    pub fn load(path: &Path) -> Result<Self, CampaignError> {
        let text = std::fs::read_to_string(path).map_err(|e| CampaignError::Checkpoint {
            path: path.to_path_buf(),
            reason: e.to_string(),
        })?;
        Self::from_json(&text).map_err(|reason| CampaignError::Checkpoint {
            path: path.to_path_buf(),
            reason,
        })
    }

    /// Writes atomically: temp file in the same directory, then rename,
    /// so a crash mid-write never corrupts an existing checkpoint.
    pub fn save(&self, path: &Path) -> Result<(), CampaignError> {
        let io_err = |e: std::io::Error| CampaignError::Checkpoint {
            path: path.to_path_buf(),
            reason: e.to_string(),
        };
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::write(&tmp, self.to_json()).map_err(io_err)?;
        std::fs::rename(&tmp, path).map_err(io_err)
    }
}

/// Thread-safe write-through sink the scheduler records completions into.
pub(crate) struct CheckpointSink {
    path: PathBuf,
    state: Mutex<CampaignCheckpoint>,
}

impl CheckpointSink {
    pub(crate) fn new(path: PathBuf, state: CampaignCheckpoint) -> CheckpointSink {
        CheckpointSink {
            path,
            state: Mutex::new(state),
        }
    }

    /// Records one finished shard and persists the updated checkpoint.
    pub(crate) fn record(&self, done: &CompletedShard) -> Result<(), CampaignError> {
        let mut state = self.state.lock().expect("checkpoint sink lock");
        state.record(done.clone());
        state.save(&self.path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::StageTimings;
    use gamma_suite::VolunteerMeta;

    fn dummy_completed(country: &str) -> CompletedShard {
        let cc = CountryCode::new(country);
        let dataset = VolunteerDataset {
            volunteer: VolunteerMeta {
                country: cc,
                city: gamma_geo::CityId(0),
                os: gamma_suite::Os::Linux,
                asn: gamma_netsim::Asn(7000),
                ip: None,
            },
            symbols: Default::default(),
            loads: Vec::new(),
            dns: Vec::new(),
            traceroutes: Vec::new(),
            opted_out: Vec::new(),
            probes_enabled: true,
        };
        let report = GeolocReport {
            country: cc,
            verdicts: Vec::new(),
            funnel: Default::default(),
        };
        let metrics = ShardMetrics::from_outputs(cc, &dataset, &report, StageTimings::default());
        let mut marker = Checkpoint::new(cc, 9);
        marker.completed_sites = 0;
        CompletedShard {
            marker,
            dataset,
            report,
            metrics,
            quarantine: Quarantine::default(),
        }
    }

    #[test]
    fn records_keep_plan_order_and_replace_stale_entries() {
        let plan = vec![
            CountryCode::new("RW"),
            CountryCode::new("US"),
            CountryCode::new("NZ"),
        ];
        let mut cp = CampaignCheckpoint::new(9, plan);
        cp.record(dummy_completed("NZ"));
        cp.record(dummy_completed("RW"));
        assert_eq!(cp.completed[0].marker.country, CountryCode::new("RW"));
        assert_eq!(cp.completed[1].marker.country, CountryCode::new("NZ"));
        assert!(cp.is_complete(CountryCode::new("NZ")));
        assert!(!cp.is_complete(CountryCode::new("US")));
        cp.record(dummy_completed("NZ"));
        assert_eq!(cp.completed.len(), 2);
    }

    #[test]
    fn roundtrips_through_json() {
        let mut cp = CampaignCheckpoint::new(7, vec![CountryCode::new("RW")]);
        cp.record(dummy_completed("RW"));
        let back = CampaignCheckpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(CampaignCheckpoint::from_json("{not json").is_err());
        assert!(CampaignCheckpoint::from_json("{}").is_err());
    }

    #[test]
    fn compatibility_requires_seed_and_plan() {
        let plan = vec![CountryCode::new("RW"), CountryCode::new("US")];
        let cp = CampaignCheckpoint::new(9, plan.clone());
        assert!(cp.compatible_with(9, &plan));
        assert!(!cp.compatible_with(8, &plan));
        assert!(!cp.compatible_with(9, &plan[..1]));
        let reversed: Vec<_> = plan.iter().rev().copied().collect();
        assert!(!cp.compatible_with(9, &reversed));
    }

    #[test]
    fn save_and_load_are_atomic_roundtrips() {
        let mut cp = CampaignCheckpoint::new(3, vec![CountryCode::new("TH")]);
        cp.record(dummy_completed("TH"));
        let path = std::env::temp_dir().join(format!(
            "gamma-campaign-checkpoint-test-{}.json",
            std::process::id()
        ));
        cp.save(&path).unwrap();
        let back = CampaignCheckpoint::load(&path).unwrap();
        assert_eq!(back, cp);
        let _ = std::fs::remove_file(&path);
    }
}
