//! Campaign-level checkpoint/resume.
//!
//! `gamma_suite::Checkpoint` marks one volunteer's progress through their
//! target list (§3.3's "resume from where it was last stopped"). The
//! campaign checkpoint layers on top of it: one completed-shard record per
//! finished country — the suite-level marker plus the shard's outputs and
//! ledger entry — so a campaign killed after K of N countries resumes by
//! skipping the K and produces a `StudyDataset` identical to an
//! uninterrupted run.
//!
//! The file is a `gamma-store` framed container
//! ([`ArtifactKind::CampaignCheckpoint`]): frame 0 carries the campaign
//! identity (master seed + plan), each following frame one JSON
//! [`CompletedShard`]. Every save is a full atomic rewrite (temp file +
//! rename) after every completed shard, and every frame is CRC-checked
//! on load, so a crash mid-write never corrupts an existing checkpoint
//! and a torn tail costs at most the shards in the lost frames — which
//! simply re-run.

use crate::engine::CampaignError;
use crate::metrics::ShardMetrics;
use gamma_geo::CountryCode;
use gamma_geoloc::GeolocReport;
use gamma_obs as obs;
use gamma_store::{
    read_container, write_frames, ArtifactKind, ReadError, WriteError, WriteOptions,
};
use gamma_suite::{Checkpoint, Quarantine, VolunteerDataset};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One finished country: the suite-level progress marker, the shard's
/// outputs (already anonymized), and its metrics ledger entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompletedShard {
    /// The per-volunteer marker this record is layered on.
    pub marker: Checkpoint,
    pub dataset: VolunteerDataset,
    pub report: GeolocReport,
    pub metrics: ShardMetrics,
    /// Records the suite quarantined instead of shipping (defaults empty
    /// so pre-chaos checkpoints still load).
    #[serde(default)]
    pub quarantine: Quarantine,
}

/// Resumable campaign state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignCheckpoint {
    /// Master seed of the interrupted campaign; must match on resume.
    pub master_seed: u64,
    /// The full campaign plan, in execution-spec order.
    pub plan: Vec<CountryCode>,
    /// Finished shards, kept in plan order.
    pub completed: Vec<CompletedShard>,
}

impl CampaignCheckpoint {
    pub fn new(master_seed: u64, plan: Vec<CountryCode>) -> Self {
        CampaignCheckpoint {
            master_seed,
            plan,
            completed: Vec::new(),
        }
    }

    /// Whether this checkpoint can resume a campaign with the given
    /// parameters: same master seed, same plan (countries and order).
    pub fn compatible_with(&self, master_seed: u64, plan: &[CountryCode]) -> bool {
        self.master_seed == master_seed && self.plan == plan
    }

    /// Whether `country` already finished.
    pub fn is_complete(&self, country: CountryCode) -> bool {
        self.completed.iter().any(|d| d.marker.country == country)
    }

    /// Records a finished shard, replacing any stale record for the same
    /// country, and keeps `completed` in plan order.
    pub fn record(&mut self, done: CompletedShard) {
        let country = done.marker.country;
        if let Some(existing) = self
            .completed
            .iter_mut()
            .find(|d| d.marker.country == country)
        {
            *existing = done;
        } else {
            self.completed.push(done);
        }
        let plan = self.plan.clone();
        self.completed.sort_by_key(|d| {
            plan.iter()
                .position(|c| *c == d.marker.country)
                .unwrap_or(usize::MAX)
        });
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("campaign checkpoint serializes")
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("corrupt campaign checkpoint: {e}"))
    }

    /// Reads the on-disk checkpoint, distinguishing a missing file (a
    /// fresh start) from a corrupt one (which must fail loudly — never
    /// silently restart and clobber the evidence).
    pub fn restore(path: &Path) -> Result<CheckpointState, CampaignError> {
        let err = |reason: String| CampaignError::Checkpoint {
            path: path.to_path_buf(),
            reason,
        };
        let container = match read_container(path, Some(ArtifactKind::CampaignCheckpoint)) {
            Ok(c) => c,
            Err(ReadError::Missing) => return Ok(CheckpointState::Missing),
            Err(e) => return Err(err(e.to_string())),
        };
        let recovered_torn = container.torn.is_some();
        // Torn before the first complete frame: the crash hit the very
        // first write. Nothing durable was lost — treat as fresh.
        let Some((meta, shards)) = container.frames.split_first() else {
            return Ok(CheckpointState::Missing);
        };
        let meta: CheckpointMeta = serde_json::from_slice(meta)
            .map_err(|e| err(format!("corrupt checkpoint meta frame: {e}")))?;
        let mut checkpoint = CampaignCheckpoint::new(meta.master_seed, meta.plan);
        for (i, frame) in shards.iter().enumerate() {
            let done: CompletedShard = serde_json::from_slice(frame)
                .map_err(|e| err(format!("corrupt shard frame {}: {e}", i + 1)))?;
            checkpoint.record(done);
        }
        Ok(CheckpointState::Loaded {
            checkpoint,
            recovered_torn,
        })
    }

    /// Reads and parses the on-disk checkpoint; a missing file is an
    /// error here (use [`CampaignCheckpoint::restore`] when "no file
    /// yet" is an expected state).
    pub fn load(path: &Path) -> Result<Self, CampaignError> {
        match Self::restore(path)? {
            CheckpointState::Loaded { checkpoint, .. } => Ok(checkpoint),
            CheckpointState::Missing => Err(CampaignError::Checkpoint {
                path: path.to_path_buf(),
                reason: "checkpoint not found".into(),
            }),
        }
    }

    /// Writes atomically through the store: full framed image to a temp
    /// file, then rename, so a crash mid-write never corrupts an
    /// existing checkpoint.
    pub fn save(&self, path: &Path) -> Result<(), CampaignError> {
        self.save_with(path, &WriteOptions::default())
    }

    /// [`CampaignCheckpoint::save`] with explicit durability/fault
    /// options (the write-through sink threads the campaign fault plan
    /// here so storage chaos drills exercise this exact path).
    pub fn save_with(&self, path: &Path, opts: &WriteOptions) -> Result<(), CampaignError> {
        self.save_raw(path, opts)
            .map_err(|e| CampaignError::Checkpoint {
                path: path.to_path_buf(),
                reason: e.to_string(),
            })
    }

    /// [`save_with`](CampaignCheckpoint::save_with) keeping the store's
    /// typed error, so callers can tell an injected chaos fault from a
    /// real I/O failure.
    fn save_raw(&self, path: &Path, opts: &WriteOptions) -> Result<(), WriteError> {
        let meta = CheckpointMeta {
            master_seed: self.master_seed,
            plan: self.plan.clone(),
        };
        let mut frames: Vec<Vec<u8>> =
            vec![serde_json::to_vec(&meta).expect("checkpoint meta serializes")];
        for done in &self.completed {
            frames.push(serde_json::to_vec(done).expect("completed shard serializes"));
        }
        let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();
        write_frames(path, ArtifactKind::CampaignCheckpoint, &refs, opts)
    }
}

/// Frame 0 of the checkpoint container: the campaign identity the rest
/// of the frames belong to.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CheckpointMeta {
    master_seed: u64,
    plan: Vec<CountryCode>,
}

/// What [`CampaignCheckpoint::restore`] found on disk.
#[derive(Debug, Clone, PartialEq)]
pub enum CheckpointState {
    /// No checkpoint (or a tear before the first durable frame): start
    /// fresh.
    Missing,
    /// A checkpoint was read back, possibly after truncating a torn
    /// tail (`recovered_torn`) — the shards in the lost frames simply
    /// re-run.
    Loaded {
        checkpoint: CampaignCheckpoint,
        recovered_torn: bool,
    },
}

/// A write failure is tolerated this many times in a row before the
/// sink concludes the checkpoint path is permanently broken (read-only
/// directory, mistyped `--checkpoint`, unclearing ENOSPC) and fails the
/// campaign loudly instead of silently losing resumability.
const MAX_CONSECUTIVE_WRITE_FAILURES: u32 = 3;

/// Thread-safe write-through sink the scheduler records completions into.
pub(crate) struct CheckpointSink {
    path: PathBuf,
    opts: WriteOptions,
    state: Mutex<CampaignCheckpoint>,
    consecutive_failures: std::sync::atomic::AtomicU32,
}

impl CheckpointSink {
    pub(crate) fn new(
        path: PathBuf,
        state: CampaignCheckpoint,
        opts: WriteOptions,
    ) -> CheckpointSink {
        CheckpointSink {
            path,
            opts,
            state: Mutex::new(state),
            consecutive_failures: std::sync::atomic::AtomicU32::new(0),
        }
    }

    /// Records one finished shard and persists the updated checkpoint.
    ///
    /// A failed *write* is non-fatal at first: the in-memory state stays
    /// correct and the next completion retries the full rewrite, so a
    /// transient failure degrades resumability without killing a
    /// campaign that is otherwise producing good data. Each failure
    /// counts `store.write_degraded` and the first in a streak is
    /// logged to stderr. Real I/O failures (a read-only or mistyped
    /// checkpoint directory, unclearing ENOSPC) escalate to a typed
    /// error after [`MAX_CONSECUTIVE_WRITE_FAILURES`] in a row;
    /// injected chaos faults never escalate — they model transient
    /// crash weather, and their firing pattern depends on completion
    /// order, which must not perturb `--jobs N` byte-identity.
    pub(crate) fn record(&self, done: &CompletedShard) -> Result<(), CampaignError> {
        use std::sync::atomic::Ordering;
        let mut state = self.state.lock().expect("checkpoint sink lock");
        state.record(done.clone());
        match state.save_raw(&self.path, &self.opts) {
            Ok(()) => {
                self.consecutive_failures.store(0, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                obs::global().counter("store.write_degraded").inc();
                if matches!(e, WriteError::Injected(_)) {
                    // Injected weather is already visible as
                    // `store.write_faults`; it is not evidence the path
                    // is broken.
                    self.consecutive_failures.store(0, Ordering::Relaxed);
                    return Ok(());
                }
                let streak = self.consecutive_failures.fetch_add(1, Ordering::Relaxed) + 1;
                if streak == 1 {
                    eprintln!(
                        "warning: checkpoint write to {} failed ({e}); \
                         resumability degraded, retrying on next shard",
                        self.path.display()
                    );
                }
                if streak >= MAX_CONSECUTIVE_WRITE_FAILURES {
                    return Err(CampaignError::Checkpoint {
                        path: self.path.clone(),
                        reason: format!(
                            "{streak} consecutive checkpoint write failures, last: {e}"
                        ),
                    });
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::StageTimings;
    use gamma_suite::VolunteerMeta;

    fn dummy_completed(country: &str) -> CompletedShard {
        let cc = CountryCode::new(country);
        let dataset = VolunteerDataset {
            volunteer: VolunteerMeta {
                country: cc,
                city: gamma_geo::CityId(0),
                os: gamma_suite::Os::Linux,
                asn: gamma_netsim::Asn(7000),
                ip: None,
            },
            symbols: Default::default(),
            loads: Vec::new(),
            dns: Vec::new(),
            traceroutes: Vec::new(),
            opted_out: Vec::new(),
            probes_enabled: true,
        };
        let report = GeolocReport {
            country: cc,
            verdicts: Vec::new(),
            funnel: Default::default(),
        };
        let metrics = ShardMetrics::from_outputs(cc, &dataset, &report, StageTimings::default());
        let mut marker = Checkpoint::new(cc, 9);
        marker.completed_sites = 0;
        CompletedShard {
            marker,
            dataset,
            report,
            metrics,
            quarantine: Quarantine::default(),
        }
    }

    #[test]
    fn records_keep_plan_order_and_replace_stale_entries() {
        let plan = vec![
            CountryCode::new("RW"),
            CountryCode::new("US"),
            CountryCode::new("NZ"),
        ];
        let mut cp = CampaignCheckpoint::new(9, plan);
        cp.record(dummy_completed("NZ"));
        cp.record(dummy_completed("RW"));
        assert_eq!(cp.completed[0].marker.country, CountryCode::new("RW"));
        assert_eq!(cp.completed[1].marker.country, CountryCode::new("NZ"));
        assert!(cp.is_complete(CountryCode::new("NZ")));
        assert!(!cp.is_complete(CountryCode::new("US")));
        cp.record(dummy_completed("NZ"));
        assert_eq!(cp.completed.len(), 2);
    }

    #[test]
    fn roundtrips_through_json() {
        let mut cp = CampaignCheckpoint::new(7, vec![CountryCode::new("RW")]);
        cp.record(dummy_completed("RW"));
        let back = CampaignCheckpoint::from_json(&cp.to_json()).unwrap();
        assert_eq!(back, cp);
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(CampaignCheckpoint::from_json("{not json").is_err());
        assert!(CampaignCheckpoint::from_json("{}").is_err());
    }

    #[test]
    fn compatibility_requires_seed_and_plan() {
        let plan = vec![CountryCode::new("RW"), CountryCode::new("US")];
        let cp = CampaignCheckpoint::new(9, plan.clone());
        assert!(cp.compatible_with(9, &plan));
        assert!(!cp.compatible_with(8, &plan));
        assert!(!cp.compatible_with(9, &plan[..1]));
        let reversed: Vec<_> = plan.iter().rev().copied().collect();
        assert!(!cp.compatible_with(9, &reversed));
    }

    #[test]
    fn save_and_load_are_atomic_roundtrips() {
        let mut cp = CampaignCheckpoint::new(3, vec![CountryCode::new("TH")]);
        cp.record(dummy_completed("TH"));
        let path = std::env::temp_dir().join(format!(
            "gamma-campaign-checkpoint-test-{}.json",
            std::process::id()
        ));
        cp.save(&path).unwrap();
        let back = CampaignCheckpoint::load(&path).unwrap();
        assert_eq!(back, cp);
        let _ = std::fs::remove_file(&path);
    }

    fn scratch(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("gamma-ckpt-{tag}-{}.gsf", std::process::id()))
    }

    #[test]
    fn restore_reports_a_missing_file_as_a_fresh_start() {
        let path = scratch("missing");
        let _ = std::fs::remove_file(&path);
        assert_eq!(
            CampaignCheckpoint::restore(&path).unwrap(),
            CheckpointState::Missing
        );
        // But `load` — whose callers expect a file — treats it as an error.
        assert!(CampaignCheckpoint::load(&path).is_err());
    }

    #[test]
    fn restore_refuses_corrupt_checkpoints_instead_of_clobbering() {
        let plan = vec![CountryCode::new("RW"), CountryCode::new("US")];
        let mut cp = CampaignCheckpoint::new(5, plan);
        cp.record(dummy_completed("RW"));
        let path = scratch("corrupt");
        cp.save(&path).unwrap();

        // Flip one payload byte mid-file: a bit-rot fault, not a tear.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        let err = CampaignCheckpoint::restore(&path).unwrap_err();
        assert!(
            matches!(&err, CampaignError::Checkpoint { reason, .. } if reason.contains("frame")),
            "corruption must surface as a typed checkpoint error: {err}"
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn restore_truncates_torn_tails_to_the_completed_prefix() {
        let plan = vec![CountryCode::new("RW"), CountryCode::new("US")];
        let mut cp = CampaignCheckpoint::new(5, plan);
        cp.record(dummy_completed("RW"));
        cp.record(dummy_completed("US"));
        let path = scratch("torn");
        cp.save(&path).unwrap();

        // Chop into the last frame: a crash artifact the reader heals.
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 7]).unwrap();

        match CampaignCheckpoint::restore(&path).unwrap() {
            CheckpointState::Loaded {
                checkpoint,
                recovered_torn,
            } => {
                assert!(recovered_torn);
                assert_eq!(checkpoint.completed.len(), 1, "lost shard re-runs");
                assert!(checkpoint.is_complete(CountryCode::new("RW")));
                assert!(!checkpoint.is_complete(CountryCode::new("US")));
            }
            other => panic!("expected a recovered prefix, got {other:?}"),
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn sink_escalates_after_persistent_real_write_failures() {
        // A path whose parent directory does not exist fails with a real
        // I/O error on every save — the read-only-dir / mistyped
        // `--checkpoint` shape. The first failures degrade, the streak
        // escalates to a typed error instead of silently losing
        // resumability for the whole campaign.
        let path = std::env::temp_dir()
            .join(format!("gamma-ckpt-noexist-{}", std::process::id()))
            .join("deep")
            .join("ckpt.gsf");
        let sink = CheckpointSink::new(
            path,
            CampaignCheckpoint::new(3, vec![CountryCode::new("TH")]),
            WriteOptions::default(),
        );
        let done = dummy_completed("TH");
        for i in 1..MAX_CONSECUTIVE_WRITE_FAILURES {
            assert!(sink.record(&done).is_ok(), "failure {i} must only degrade");
        }
        let err = sink.record(&done).unwrap_err();
        assert!(
            matches!(&err, CampaignError::Checkpoint { reason, .. }
                if reason.contains("consecutive")),
            "persistent write failure must escalate typed: {err}"
        );
    }

    #[test]
    fn sink_failure_streak_resets_on_a_successful_save() {
        let dir = std::env::temp_dir().join(format!("gamma-ckpt-streak-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("ckpt.gsf");
        let sink = CheckpointSink::new(
            path.clone(),
            CampaignCheckpoint::new(3, vec![CountryCode::new("TH")]),
            WriteOptions::default(),
        );
        let done = dummy_completed("TH");
        // A transient outage one save short of the limit…
        std::fs::remove_dir_all(&dir).unwrap();
        for _ in 1..MAX_CONSECUTIVE_WRITE_FAILURES {
            assert!(sink.record(&done).is_ok());
        }
        // …clears; the streak must restart from zero, not accumulate.
        std::fs::create_dir_all(&dir).unwrap();
        assert!(sink.record(&done).is_ok());
        assert!(path.exists(), "cleared outage persists the checkpoint");
        std::fs::remove_dir_all(&dir).unwrap();
        for _ in 1..MAX_CONSECUTIVE_WRITE_FAILURES {
            assert!(sink.record(&done).is_ok(), "reset streak re-tolerates");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
