//! One shard: a country's full measurement + geolocation pass.
//!
//! A shard is the campaign's unit of work. Executing one runs the three
//! Gamma components for the country's volunteer, classifies the dataset
//! through the multi-constraint pipeline with the shard's own derived RNG
//! stream, anonymizes, and emits a [`CompletedShard`] ready for the
//! checkpoint and the assembler. Faults — injected, panics, empty
//! datasets — surface as [`ShardError`] so the retry loop can decide
//! whether another attempt is worthwhile.

use crate::checkpoint::CompletedShard;
use crate::engine::{CampaignEnv, CampaignError};
use crate::metrics::{ShardMetrics, StageTimings};
use crate::options::Options;
use crate::rng::{derive_rng, STREAM_GEOLOCATE};
use gamma_geo::CountryCode;
use gamma_geoloc::GeolocPipeline;
use gamma_obs as obs;
use gamma_suite::{run_volunteer_checked, Checkpoint, Volunteer};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// A unit of campaign work: one country and its stable volunteer slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Shard {
    /// Stable volunteer index (see [`volunteer_slot`]).
    pub slot: usize,
    pub country: CountryCode,
}

/// Why one attempt at a shard failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardError {
    /// A configured [`crate::FaultInjection`] fired.
    Injected { attempt: u32 },
    /// The country has no volunteer in this world.
    NoVolunteer(CountryCode),
    /// The suite refused to start: configuration or spec problem (injected
    /// faults never produce this — they degrade into the quarantine).
    Spec(String),
    /// The volunteer ran but produced an unusable dataset.
    Unhealthy(String),
    /// A stage panicked; the worker caught it and stayed alive.
    Panicked(String),
}

impl ShardError {
    /// Whether another attempt could plausibly succeed. A missing
    /// volunteer or a rejected configuration is a spec problem, not
    /// weather.
    pub fn is_transient(&self) -> bool {
        !matches!(self, ShardError::NoVolunteer(_) | ShardError::Spec(_))
    }
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShardError::Injected { attempt } => {
                write!(f, "injected transient fault on attempt {attempt}")
            }
            ShardError::NoVolunteer(c) => write!(f, "no volunteer available for {c}"),
            ShardError::Spec(why) => write!(f, "suite refused to start: {why}"),
            ShardError::Unhealthy(why) => write!(f, "unusable volunteer dataset: {why}"),
            ShardError::Panicked(why) => write!(f, "stage panicked: {why}"),
        }
    }
}

/// The stable volunteer index for a country.
///
/// `Study::run` used to number volunteers by spec position, which made a
/// volunteer's OS, ASN and address depend on where their country happened
/// to sit in the spec. Numbering by the fixed Table-1 position instead
/// (then by catalog position for non-measurement countries) keeps every
/// volunteer's identity a pure function of their country — a prerequisite
/// for shard results being independent of plan order.
///
/// For the paper-default spec the two numberings coincide, so existing
/// full-study outputs are unchanged.
pub fn volunteer_slot(country: CountryCode) -> usize {
    if let Some(i) = gamma_geo::MEASUREMENT_COUNTRIES
        .iter()
        .position(|c| *c == country)
    {
        return i;
    }
    if let Some(i) = gamma_geo::countries().position(|c| c.code == country) {
        return gamma_geo::MEASUREMENT_COUNTRIES.len() + i;
    }
    // Unknown code: still deterministic, clear of the catalog range.
    1000 + usize::from(country.0[0]) * 256 + usize::from(country.0[1])
}

/// Extracts a panic payload's message, if it carried one.
fn panic_text(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One attempt at a shard, all three stages timed. Stage wall clocks come
/// from the span layer: each stage runs inside an [`obs::span!`] and its
/// [`obs::ActiveSpan::finish`] duration fills the pre-existing
/// [`StageTimings`] ledger (the serialized checkpoint shape is unchanged).
/// A shard runs entirely on one worker thread, so the three stage spans
/// nest under one `shard` root and render as a tree under `--trace`.
fn execute(
    env: &CampaignEnv<'_>,
    shard: Shard,
    attempt: u32,
    options: &Options,
) -> Result<CompletedShard, ShardError> {
    if options.inject.should_fail(shard.country, attempt) {
        return Err(ShardError::Injected { attempt });
    }
    let volunteer = Volunteer::for_country(env.world, shard.country, shard.slot)
        .ok_or(ShardError::NoVolunteer(shard.country))?;

    let _shard_span = obs::span!("shard", country = shard.country.as_str());
    let mut stages = StageTimings::default();

    // Stage 1 — measure: the volunteer's Gamma run (C1/C2/C3). Degraded
    // records land in the quarantine ledger rather than failing the shard.
    let span = obs::span!("measure");
    let (mut dataset, quarantine) = catch_unwind(AssertUnwindSafe(|| {
        run_volunteer_checked(env.world, &volunteer, env.config, 0)
    }))
    .map_err(|p| ShardError::Panicked(panic_text(p)))?
    .map_err(|e| ShardError::Spec(e.to_string()))?;
    stages.measure = span.finish();
    if dataset.loads.is_empty() {
        return Err(ShardError::Unhealthy("no page loads recorded".into()));
    }

    // Stage 2 — geolocate: the multi-constraint pipeline, on this shard's
    // own derived stream so scheduling order cannot perturb the bits.
    let span = obs::span!("geolocate");
    let mut pipeline = GeolocPipeline::new(env.world, env.geodb, env.atlas);
    pipeline.options = env.pipeline_options;
    pipeline.plan = env.config.plan.clone();
    let mut rng = derive_rng(env.master_seed, shard.country, STREAM_GEOLOCATE);
    let report = catch_unwind(AssertUnwindSafe(|| {
        pipeline.classify_dataset(&dataset, &mut rng)
    }))
    .map_err(|p| ShardError::Panicked(panic_text(p)))?;
    stages.geolocate = span.finish();

    // Stage 3 — finalize: anonymize (§3.5) and settle the ledger.
    let span = obs::span!("finalize");
    dataset.anonymize();
    let mut marker = Checkpoint::new(shard.country, env.config.seed);
    marker.completed_sites = dataset.loads.len();
    stages.finalize = span.finish();

    let mut metrics = ShardMetrics::from_outputs(shard.country, &dataset, &report, stages);
    metrics.quarantined = quarantine.len();
    Ok(CompletedShard {
        marker,
        dataset,
        report,
        metrics,
        quarantine,
    })
}

/// Runs a shard under the campaign's retry policy. Transient faults back
/// off and retry; permanent faults and exhausted budgets become
/// [`CampaignError::ShardFailed`].
pub(crate) fn run_with_retry(
    env: &CampaignEnv<'_>,
    shard: Shard,
    options: &Options,
) -> Result<CompletedShard, CampaignError> {
    let budget = options.retry.attempts();
    let mut backoff_total = Duration::ZERO;
    let mut attempt = 0;
    loop {
        let pause = options.retry.backoff_before(attempt);
        if !pause.is_zero() {
            // The counter records the *configured* pause, not measured
            // sleep time, so it stays a pure function of the seed.
            obs::global()
                .counter("campaign.backoff_ms")
                .add(pause.as_millis() as u64);
            std::thread::sleep(pause);
            backoff_total += pause;
        }
        match execute(env, shard, attempt, options) {
            Ok(mut done) => {
                done.metrics.attempts = attempt + 1;
                done.metrics.backoff_total = backoff_total;
                obs::global().counter("campaign.shards.completed").inc();
                return Ok(done);
            }
            Err(e) if e.is_transient() && attempt + 1 < budget => {
                obs::global().counter("campaign.retries").inc();
                attempt += 1;
            }
            Err(e) => {
                return Err(CampaignError::ShardFailed {
                    country: shard.country,
                    attempts: attempt + 1,
                    reason: e.to_string(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_countries_get_table_one_slots() {
        assert_eq!(volunteer_slot(CountryCode::new("AZ")), 0);
        assert_eq!(volunteer_slot(CountryCode::new("EG")), 2);
        assert_eq!(volunteer_slot(CountryCode::new("RW")), 3);
        assert_eq!(volunteer_slot(CountryCode::new("AU")), 11);
        assert_eq!(volunteer_slot(CountryCode::new("US")), 21);
        assert_eq!(volunteer_slot(CountryCode::new("LB")), 22);
    }

    #[test]
    fn catalog_countries_get_slots_past_the_study() {
        let slot = volunteer_slot(CountryCode::new("LU"));
        assert!(slot >= gamma_geo::MEASUREMENT_COUNTRIES.len());
    }

    #[test]
    fn slots_are_unique_across_the_catalog() {
        let mut seen = std::collections::HashSet::new();
        for c in gamma_geo::countries() {
            assert!(
                seen.insert(volunteer_slot(c.code)),
                "duplicate slot for {}",
                c.code
            );
        }
    }

    #[test]
    fn unknown_codes_are_deterministic_and_out_of_range() {
        let a = volunteer_slot(CountryCode::new("XX"));
        assert_eq!(a, volunteer_slot(CountryCode::new("XX")));
        assert!(a >= 1000);
    }

    #[test]
    fn shard_errors_classify_transience() {
        assert!(ShardError::Injected { attempt: 0 }.is_transient());
        assert!(ShardError::Unhealthy("x".into()).is_transient());
        assert!(ShardError::Panicked("y".into()).is_transient());
        assert!(!ShardError::NoVolunteer(CountryCode::new("XX")).is_transient());
        assert!(!ShardError::Spec("bad config".into()).is_transient());
    }
}
