//! The campaign engine: plan → shards → retries → checkpoint → outcome.
//!
//! A [`Campaign`] borrows a prebuilt measurement environment (world,
//! geolocation database, probe platform, Gamma configuration), derives a
//! plan (one shard per measurement country), executes it across the
//! worker pool, and returns per-country results **in plan order** with a
//! campaign-wide metrics ledger. Shard outputs are pure functions of
//! `(master_seed, country)`, so the outcome is byte-identical whether the
//! pool had one worker or sixteen.

use crate::checkpoint::{CampaignCheckpoint, CheckpointSink, CheckpointState, CompletedShard};
use crate::metrics::CampaignMetrics;
use crate::options::Options;
use crate::scheduler::{run_shards, run_shards_multi, JobSpec};
use crate::shard::{volunteer_slot, Shard};
use gamma_atlas::AtlasPlatform;
use gamma_geo::CountryCode;
use gamma_geoloc::{GeoDatabase, GeolocReport, PipelineOptions};
use gamma_obs as obs;
use gamma_suite::{GammaConfig, Quarantine, VolunteerDataset};
use gamma_websim::World;
use std::path::PathBuf;
use std::time::Instant;

/// Everything a shard needs, borrowed from the caller. Build the world,
/// database and platform once; shards share them read-only.
#[derive(Clone, Copy)]
pub struct CampaignEnv<'w> {
    pub world: &'w World,
    pub geodb: &'w GeoDatabase,
    pub atlas: &'w AtlasPlatform,
    pub config: &'w GammaConfig,
    /// Constraint toggles for the geolocation pipeline.
    pub pipeline_options: PipelineOptions,
    /// Seed every shard stream derives from.
    pub master_seed: u64,
}

/// A failed campaign.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignError {
    /// The Gamma configuration failed validation.
    InvalidConfig(String),
    /// A shard exhausted its retry budget (or hit a permanent fault).
    ShardFailed {
        country: CountryCode,
        attempts: u32,
        reason: String,
    },
    /// Assembly found no result for a planned country (engine bug guard).
    ShardMissing(CountryCode),
    /// The checkpoint file could not be read, parsed or written.
    Checkpoint { path: PathBuf, reason: String },
    /// The checkpoint on disk belongs to a different campaign.
    IncompatibleCheckpoint(String),
}

impl std::fmt::Display for CampaignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CampaignError::InvalidConfig(why) => write!(f, "invalid Gamma configuration: {why}"),
            CampaignError::ShardFailed {
                country,
                attempts,
                reason,
            } => write!(
                f,
                "shard {country} failed after {attempts} attempt(s): {reason}"
            ),
            CampaignError::ShardMissing(c) => write!(f, "no result assembled for {c}"),
            CampaignError::Checkpoint { path, reason } => {
                write!(f, "checkpoint {}: {reason}", path.display())
            }
            CampaignError::IncompatibleCheckpoint(why) => {
                write!(f, "incompatible checkpoint: {why}")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

/// A finished campaign: per-country results in plan order, plus the
/// metrics ledger.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignOutcome {
    /// One completed shard per planned country, in plan order.
    pub shards: Vec<CompletedShard>,
    pub metrics: CampaignMetrics,
}

impl CampaignOutcome {
    /// Splits into the `(dataset, report)` pairs the analysis assembler
    /// consumes, and the ledger.
    pub fn into_runs(self) -> (Vec<(VolunteerDataset, GeolocReport)>, CampaignMetrics) {
        let (runs, _, metrics) = self.into_parts();
        (runs, metrics)
    }

    /// Like [`CampaignOutcome::into_runs`], but also surfaces each shard's
    /// quarantine ledger keyed by country — the raw material of the
    /// per-country data-quality report.
    #[allow(clippy::type_complexity)]
    pub fn into_parts(
        self,
    ) -> (
        Vec<(VolunteerDataset, GeolocReport)>,
        Vec<(CountryCode, Quarantine)>,
        CampaignMetrics,
    ) {
        let mut runs = Vec::with_capacity(self.shards.len());
        let mut quarantines = Vec::with_capacity(self.shards.len());
        for d in self.shards {
            quarantines.push((d.marker.country, d.quarantine));
            runs.push((d.dataset, d.report));
        }
        (runs, quarantines, self.metrics)
    }
}

/// A campaign over one environment.
#[derive(Clone)]
pub struct Campaign<'w> {
    pub env: CampaignEnv<'w>,
    pub options: Options,
    plan: Vec<CountryCode>,
}

impl<'w> Campaign<'w> {
    /// Plans one shard per spec country, in spec order.
    pub fn new(env: CampaignEnv<'w>, options: Options) -> Campaign<'w> {
        let plan = env.world.spec.countries.iter().map(|c| c.country).collect();
        Campaign { env, options, plan }
    }

    /// Plans an explicit country list (subset or reordering; results come
    /// back in this order).
    pub fn with_plan(
        env: CampaignEnv<'w>,
        options: Options,
        plan: Vec<CountryCode>,
    ) -> Campaign<'w> {
        Campaign { env, options, plan }
    }

    pub fn plan(&self) -> &[CountryCode] {
        &self.plan
    }

    /// Executes the campaign: resume, schedule, retry, checkpoint,
    /// assemble.
    pub fn run(&self) -> Result<CampaignOutcome, CampaignError> {
        let prepared = self.prepare()?;
        obs::global()
            .gauge("campaign.workers")
            .set(self.options.effective_workers() as i64);
        let fresh = run_shards(
            &self.env,
            prepared.pending.clone(),
            &self.options,
            prepared.sink.as_ref(),
        )?;
        prepared.assemble(self, fresh)
    }

    /// Validates the configuration, restores completed shards from the
    /// resume checkpoint, and computes the still-pending shard set. The
    /// execution half (a pool over [`Prepared::pending`]) is either this
    /// campaign's own worker pool ([`Campaign::run`]) or a shared
    /// multi-campaign pool ([`run_campaigns`]).
    fn prepare(&self) -> Result<Prepared, CampaignError> {
        let started = Instant::now();
        self.env
            .config
            .validate()
            .map_err(CampaignError::InvalidConfig)?;

        // Resume: pull completed shards out of an existing checkpoint.
        // The typed restore distinguishes a missing file (fresh start)
        // from a torn one (recovered prefix; lost shards re-run) from a
        // corrupt one (a hard error — silently restarting would clobber
        // the only evidence of what went wrong).
        let mut restored: Vec<CompletedShard> = Vec::new();
        if let Some(path) = &self.options.resume {
            match CampaignCheckpoint::restore(path)? {
                CheckpointState::Missing => {}
                CheckpointState::Loaded {
                    checkpoint: cp,
                    recovered_torn,
                } => {
                    if recovered_torn {
                        obs::global()
                            .counter("campaign.checkpoint.recovered_torn")
                            .inc();
                    }
                    if !cp.compatible_with(self.env.master_seed, &self.plan) {
                        return Err(CampaignError::IncompatibleCheckpoint(format!(
                            "{} was written by a campaign with a different seed or plan \
                             (checkpoint seed {}, ours {})",
                            path.display(),
                            cp.master_seed,
                            self.env.master_seed,
                        )));
                    }
                    for mut done in cp.completed {
                        if done.marker.seed != self.env.config.seed {
                            return Err(CampaignError::IncompatibleCheckpoint(format!(
                                "shard {} in {} ran under Gamma seed {}, ours is {}",
                                done.marker.country,
                                path.display(),
                                done.marker.seed,
                                self.env.config.seed,
                            )));
                        }
                        done.metrics.resumed = true;
                        restored.push(done);
                    }
                }
            }
        }
        if !restored.is_empty() {
            obs::global()
                .counter("campaign.shards.resumed")
                .add(restored.len() as u64);
        }

        let pending: Vec<Shard> = self
            .plan
            .iter()
            .filter(|c| !restored.iter().any(|d| d.marker.country == **c))
            .map(|&country| Shard {
                slot: volunteer_slot(country),
                country,
            })
            .collect();

        // The write-through sink starts from the restored state so a
        // resumed campaign's checkpoint stays complete at every step.
        // It writes under the campaign's fault plan: storage chaos
        // drills tear and flip exactly these writes.
        let sink = self.options.checkpoint.as_ref().map(|path| {
            let mut state = CampaignCheckpoint::new(self.env.master_seed, self.plan.clone());
            for done in &restored {
                state.record(done.clone());
            }
            let opts = gamma_store::WriteOptions::with_plan(self.env.config.plan.clone());
            CheckpointSink::new(path.clone(), state, opts)
        });

        Ok(Prepared {
            restored,
            pending,
            sink,
            started,
        })
    }
}

/// A campaign past its resume/validation phase, waiting on a pool to run
/// its pending shards.
struct Prepared {
    restored: Vec<CompletedShard>,
    pending: Vec<Shard>,
    sink: Option<CheckpointSink>,
    started: Instant,
}

impl Prepared {
    /// Merges restored and freshly-run shards back into plan order and
    /// settles the metrics ledger.
    fn assemble(
        self,
        campaign: &Campaign<'_>,
        fresh: Vec<CompletedShard>,
    ) -> Result<CampaignOutcome, CampaignError> {
        let resumed_shards = self.restored.len();
        let mut pool = self.restored;
        pool.extend(fresh);
        let mut shards = Vec::with_capacity(campaign.plan.len());
        for &country in &campaign.plan {
            let idx = pool
                .iter()
                .position(|d| d.marker.country == country)
                .ok_or(CampaignError::ShardMissing(country))?;
            shards.push(pool.swap_remove(idx));
        }

        let metrics = CampaignMetrics {
            workers: campaign.options.effective_workers(),
            total_wall: self.started.elapsed(),
            resumed_shards,
            shards: shards.iter().map(|d| d.metrics.clone()).collect(),
        };
        Ok(CampaignOutcome { shards, metrics })
    }
}

/// Runs several campaigns' shards on **one shared worker pool**.
///
/// This is the service plane's execution primitive: N concurrent studies
/// (different worlds, seeds, fault plans, checkpoints) multiplex onto a
/// single pool of `pool_workers` work-stealing threads, shards from all
/// campaigns interleaved in whatever order the pool picks. Because every
/// shard's output is a pure function of `(its campaign's master_seed,
/// country)`, the interleaving affects only wall-clock: each returned
/// outcome is byte-identical to what `campaigns[i].run()` alone would
/// produce (modulo the per-campaign `workers` knob, which only the solo
/// path reads).
///
/// Failures are isolated per campaign: one campaign exhausting its retry
/// budget yields `Err` in its slot while the others keep running —
/// unlike [`Campaign::run`], which aborts its own pool on first failure.
pub fn run_campaigns<'w>(
    campaigns: &[Campaign<'w>],
    pool_workers: usize,
) -> Vec<Result<CampaignOutcome, CampaignError>> {
    obs::global()
        .gauge("campaign.pool.workers")
        .set(pool_workers.max(1) as i64);
    let prepared: Vec<Result<Prepared, CampaignError>> =
        campaigns.iter().map(|c| c.prepare()).collect();

    // One task per (campaign, pending shard); campaigns whose prepare
    // failed contribute none and keep their error slot. Job slots are
    // assigned in campaign order over the successfully-prepared subset.
    let mut tasks: Vec<(usize, Shard)> = Vec::new();
    let mut jobs: Vec<JobSpec<'_, 'w>> = Vec::new();
    for (campaign, p) in campaigns.iter().zip(&prepared) {
        if let Ok(p) = p {
            for shard in &p.pending {
                tasks.push((jobs.len(), *shard));
            }
            jobs.push(JobSpec {
                env: &campaign.env,
                options: &campaign.options,
                sink: p.sink.as_ref(),
            });
        }
    }

    let fresh = run_shards_multi(&jobs, tasks, pool_workers);

    let mut fresh = fresh.into_iter();
    prepared
        .into_iter()
        .zip(campaigns)
        .map(|(p, campaign)| {
            let p = p?; // prepare failure: no job slot was assigned
            let done = fresh.next().expect("one pool result per prepared job")?;
            p.assemble(campaign, done)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::{FaultInjection, RetryPolicy};
    use gamma_geoloc::ErrorSpec;
    use gamma_websim::{worldgen, WorldSpec};
    use std::sync::OnceLock;

    const SEED: u64 = 41;

    struct Fixture {
        world: World,
        geodb: GeoDatabase,
        atlas: AtlasPlatform,
        config: GammaConfig,
    }

    fn fixture() -> &'static Fixture {
        static F: OnceLock<Fixture> = OnceLock::new();
        F.get_or_init(|| {
            let mut spec = WorldSpec::paper_default(SEED);
            spec.countries
                .retain(|c| ["RW", "US", "NZ"].contains(&c.country.as_str()));
            spec.reg_sites_per_country = 12;
            spec.gov_sites_per_country = 4;
            let world = worldgen::generate(&spec);
            let geodb = GeoDatabase::build(&world, &ErrorSpec::default(), SEED);
            let atlas = AtlasPlatform::generate(SEED);
            let config = GammaConfig::paper_default(SEED);
            Fixture {
                world,
                geodb,
                atlas,
                config,
            }
        })
    }

    fn env() -> CampaignEnv<'static> {
        let f = fixture();
        CampaignEnv {
            world: &f.world,
            geodb: &f.geodb,
            atlas: &f.atlas,
            config: &f.config,
            pipeline_options: PipelineOptions::default(),
            master_seed: SEED,
        }
    }

    fn payload(outcome: &CampaignOutcome) -> Vec<(CountryCode, &VolunteerDataset, &GeolocReport)> {
        outcome
            .shards
            .iter()
            .map(|d| (d.marker.country, &d.dataset, &d.report))
            .collect()
    }

    #[test]
    fn parallel_output_is_identical_to_sequential() {
        let sequential = Campaign::new(env(), Options::sequential()).run().unwrap();
        let parallel = Campaign::new(env(), Options::with_workers(4))
            .run()
            .unwrap();
        assert_eq!(payload(&sequential), payload(&parallel));
        assert_eq!(sequential.metrics.workers, 1);
        assert_eq!(parallel.metrics.workers, 4);
    }

    #[test]
    fn plan_order_and_subsets_do_not_change_per_country_results() {
        let cc = CountryCode::new;
        let forward = Campaign::with_plan(
            env(),
            Options::sequential(),
            vec![cc("RW"), cc("US"), cc("NZ")],
        )
        .run()
        .unwrap();
        let reversed = Campaign::with_plan(
            env(),
            Options::sequential(),
            vec![cc("NZ"), cc("US"), cc("RW")],
        )
        .run()
        .unwrap();
        let solo = Campaign::with_plan(env(), Options::sequential(), vec![cc("RW")])
            .run()
            .unwrap();
        for (country, ds, rep) in payload(&forward) {
            let find = |o: &CampaignOutcome| {
                o.shards
                    .iter()
                    .position(|d| d.marker.country == country)
                    .map(|i| (o.shards[i].dataset.clone(), o.shards[i].report.clone()))
            };
            let (rds, rrep) = find(&reversed).unwrap();
            assert_eq!((ds, rep), (&rds, &rrep), "{country} differs when reordered");
            if country == cc("RW") {
                let (sds, srep) = find(&solo).unwrap();
                assert_eq!((ds, rep), (&sds, &srep), "RW differs when run alone");
            }
        }
    }

    #[test]
    fn transient_faults_are_retried_to_success() {
        let rw = CountryCode::new("RW");
        let clean = Campaign::new(env(), Options::sequential()).run().unwrap();
        let mut options = Options::sequential();
        options.retry = RetryPolicy::immediate();
        options.inject = FaultInjection::none().fail_first(rw, 1);
        let retried = Campaign::new(env(), options).run().unwrap();
        assert_eq!(payload(&clean), payload(&retried));
        assert_eq!(retried.metrics.shard(rw).unwrap().attempts, 2);
        assert_eq!(retried.metrics.totals().retries, 1);
    }

    #[test]
    fn exhausted_retry_budgets_fail_the_campaign() {
        let rw = CountryCode::new("RW");
        let mut options = Options::sequential();
        options.retry = RetryPolicy::immediate();
        options.inject = FaultInjection::none().fail_first(rw, 99);
        match Campaign::new(env(), options).run() {
            Err(CampaignError::ShardFailed {
                country, attempts, ..
            }) => {
                assert_eq!(country, rw);
                assert_eq!(attempts, RetryPolicy::immediate().attempts());
            }
            other => panic!("expected ShardFailed, got {other:?}"),
        }
    }

    #[test]
    fn countries_outside_the_world_fail_without_retries() {
        let mut options = Options::sequential();
        options.retry = RetryPolicy::immediate();
        let plan = vec![CountryCode::new("TH")];
        match Campaign::with_plan(env(), options, plan).run() {
            Err(CampaignError::ShardFailed {
                country, attempts, ..
            }) => {
                assert_eq!(country, CountryCode::new("TH"));
                assert_eq!(attempts, 1, "permanent faults must not burn retries");
            }
            other => panic!("expected ShardFailed, got {other:?}"),
        }
    }

    #[test]
    fn shared_pool_outcomes_match_solo_runs() {
        let cc = CountryCode::new;
        // Two "studies" with different plans multiplexed onto one pool.
        let a = Campaign::with_plan(env(), Options::sequential(), vec![cc("RW"), cc("US")]);
        let b = Campaign::with_plan(env(), Options::sequential(), vec![cc("NZ"), cc("RW")]);
        let solo_a = a.run().unwrap();
        let solo_b = b.run().unwrap();
        for pool_workers in [1, 4] {
            let shared = run_campaigns(&[a.clone(), b.clone()], pool_workers);
            let [ra, rb]: [_; 2] = shared.try_into().ok().unwrap();
            assert_eq!(
                payload(&ra.unwrap()),
                payload(&solo_a),
                "{pool_workers} workers"
            );
            assert_eq!(
                payload(&rb.unwrap()),
                payload(&solo_b),
                "{pool_workers} workers"
            );
        }
    }

    #[test]
    fn shared_pool_contains_failures_per_campaign() {
        let cc = CountryCode::new;
        let good = Campaign::with_plan(env(), Options::sequential(), vec![cc("RW"), cc("NZ")]);
        let mut bad_options = Options::sequential();
        bad_options.retry = RetryPolicy::immediate();
        bad_options.inject = FaultInjection::none().fail_first(cc("US"), 99);
        let bad = Campaign::with_plan(env(), bad_options, vec![cc("US")]);
        for pool_workers in [1, 3] {
            let results = run_campaigns(&[good.clone(), bad.clone()], pool_workers);
            let solo = good.run().unwrap();
            assert_eq!(payload(results[0].as_ref().unwrap()), payload(&solo));
            assert!(
                matches!(results[1], Err(CampaignError::ShardFailed { country, .. }) if country == cc("US")),
                "failing campaign must keep its own error: {:?}",
                results[1]
            );
        }
    }

    #[test]
    fn invalid_configurations_are_rejected_up_front() {
        let f = fixture();
        let bad = GammaConfig {
            gather_network_info: false,
            ..f.config.clone()
        };
        let env = CampaignEnv {
            config: &bad,
            ..env()
        };
        assert!(matches!(
            Campaign::new(env, Options::sequential()).run(),
            Err(CampaignError::InvalidConfig(_))
        ));
    }
}
