//! The work-stealing shard scheduler.
//!
//! Shards go into a global injector; each worker owns a FIFO deque and
//! steals from its peers when both its deque and the injector run dry.
//! Because every shard's output is a pure function of `(master_seed,
//! country)` — see [`crate::rng`] — the schedule affects only wall-clock,
//! never bytes: the engine reassembles results into plan order afterward.
//!
//! With one worker the scheduler degenerates to an in-order loop on the
//! calling thread, which is exactly the old sequential `Study::run`.

use crate::checkpoint::{CheckpointSink, CompletedShard};
use crate::engine::{CampaignEnv, CampaignError};
use crate::options::Options;
use crate::shard::{run_with_retry, Shard};
use crossbeam::deque::{Injector, Steal, Stealer, Worker};
use gamma_obs as obs;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Cached handles for the scheduling counters. These live under the
/// `campaign.sched.*` namespace on purpose: they count *scheduling*
/// events, which legitimately vary run-to-run under parallelism, and are
/// therefore excluded from counter-determinism comparisons (see
/// `gamma_obs::Snapshot::counters_since`).
struct SchedCounters {
    injector_pops: obs::Counter,
    steals: obs::Counter,
}

fn sched() -> &'static SchedCounters {
    static COUNTERS: OnceLock<SchedCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| SchedCounters {
        injector_pops: obs::global().counter("campaign.sched.injector_pops"),
        steals: obs::global().counter("campaign.sched.steals"),
    })
}

/// The canonical crossbeam-deque scavenging order: own deque, then a
/// batch from the injector, then a steal from a peer. Generic over the
/// task type: the single-campaign pool schedules bare [`Shard`]s, the
/// shared multi-campaign pool `(job, Shard)` pairs.
fn find_task<T>(local: &Worker<T>, global: &Injector<T>, stealers: &[Stealer<T>]) -> Option<T> {
    if let Some(task) = local.pop() {
        return Some(task);
    }
    loop {
        match global.steal_batch_and_pop(local) {
            Steal::Success(task) => {
                sched().injector_pops.inc();
                return Some(task);
            }
            Steal::Retry => continue,
            Steal::Empty => {}
        }
        match stealers.iter().map(|s| s.steal()).collect::<Steal<T>>() {
            Steal::Success(task) => {
                sched().steals.inc();
                return Some(task);
            }
            Steal::Retry => continue,
            Steal::Empty => return None,
        }
    }
}

/// Runs every pending shard (with retries) and returns their results in
/// completion order; the engine re-sorts into plan order. The first shard
/// failure aborts the pool — other workers finish their current shard and
/// stop — and already-completed shards are still in the checkpoint.
pub(crate) fn run_shards(
    env: &CampaignEnv<'_>,
    pending: Vec<Shard>,
    options: &Options,
    sink: Option<&CheckpointSink>,
) -> Result<Vec<CompletedShard>, CampaignError> {
    if pending.is_empty() {
        return Ok(Vec::new());
    }
    if options.effective_workers() <= 1 {
        return run_sequential(env, pending, options, sink);
    }
    run_pool(env, pending, options, sink)
}

fn run_sequential(
    env: &CampaignEnv<'_>,
    pending: Vec<Shard>,
    options: &Options,
    sink: Option<&CheckpointSink>,
) -> Result<Vec<CompletedShard>, CampaignError> {
    let mut results = Vec::with_capacity(pending.len());
    for shard in pending {
        let done = run_with_retry(env, shard, options)?;
        if let Some(sink) = sink {
            sink.record(&done)?;
        }
        results.push(done);
    }
    Ok(results)
}

/// One campaign's slice of a shared pool: where its shards execute
/// against, how they retry, and where completions are checkpointed.
pub(crate) struct JobSpec<'a, 'w> {
    pub env: &'a CampaignEnv<'w>,
    pub options: &'a Options,
    pub sink: Option<&'a CheckpointSink>,
}

/// Runs shards from several campaigns on one shared work-stealing pool.
///
/// `tasks` pairs each shard with the index of its job in `jobs`; the pool
/// interleaves them freely. Failures are contained per job: a shard
/// failure records the job's error and makes the pool *skip* (not abort)
/// that job's remaining tasks, while every other job runs to completion.
/// Results come back per job, in whatever order the pool finished —
/// callers re-sort into plan order during assembly.
pub(crate) fn run_shards_multi(
    jobs: &[JobSpec<'_, '_>],
    tasks: Vec<(usize, Shard)>,
    pool_workers: usize,
) -> Vec<Result<Vec<CompletedShard>, CampaignError>> {
    let mut results: Vec<Result<Vec<CompletedShard>, CampaignError>> =
        (0..jobs.len()).map(|_| Ok(Vec::new())).collect();
    if tasks.is_empty() {
        return results;
    }
    if pool_workers <= 1 {
        // The sequential degenerate case: in task order on this thread.
        for (job, shard) in tasks {
            if results[job].is_err() {
                continue;
            }
            let spec = &jobs[job];
            match run_with_retry(spec.env, shard, spec.options) {
                Ok(done) => {
                    let recorded = match spec.sink {
                        Some(sink) => sink.record(&done),
                        None => Ok(()),
                    };
                    match recorded {
                        Ok(()) => {
                            if let Ok(list) = &mut results[job] {
                                list.push(done);
                            }
                        }
                        Err(e) => results[job] = Err(e),
                    }
                }
                Err(e) => results[job] = Err(e),
            }
        }
        return results;
    }

    let workers = pool_workers.min(tasks.len());
    let injector: Injector<(usize, Shard)> = Injector::new();
    for task in tasks {
        injector.push(task);
    }
    let locals: Vec<Worker<(usize, Shard)>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<(usize, Shard)>> = locals.iter().map(Worker::stealer).collect();

    let slots: Vec<Mutex<Result<Vec<CompletedShard>, CampaignError>>> = (0..jobs.len())
        .map(|_| Mutex::new(Ok(Vec::new())))
        .collect();

    crossbeam::thread::scope(|scope| {
        let injector = &injector;
        let stealers = &stealers[..];
        let slots = &slots[..];
        for local in locals {
            scope.spawn(move |_| {
                while let Some((job, shard)) = find_task(&local, injector, stealers) {
                    let spec = &jobs[job];
                    if slots[job].lock().expect("job slot lock").is_err() {
                        continue; // job already failed; skip its leftovers
                    }
                    match run_with_retry(spec.env, shard, spec.options) {
                        Ok(done) => {
                            let recorded = match spec.sink {
                                Some(sink) => sink.record(&done),
                                None => Ok(()),
                            };
                            let mut slot = slots[job].lock().expect("job slot lock");
                            match recorded {
                                Ok(()) => {
                                    if let Ok(list) = &mut *slot {
                                        list.push(done);
                                    }
                                }
                                Err(e) => {
                                    if slot.is_ok() {
                                        *slot = Err(e);
                                    }
                                }
                            }
                        }
                        Err(e) => {
                            let mut slot = slots[job].lock().expect("job slot lock");
                            if slot.is_ok() {
                                *slot = Err(e);
                            }
                        }
                    }
                }
            });
        }
    })
    .expect("shared pool worker threads joined");

    for (i, slot) in slots.into_iter().enumerate() {
        results[i] = slot.into_inner().expect("job slot lock");
    }
    results
}

fn run_pool(
    env: &CampaignEnv<'_>,
    pending: Vec<Shard>,
    options: &Options,
    sink: Option<&CheckpointSink>,
) -> Result<Vec<CompletedShard>, CampaignError> {
    // `pending` is non-empty here, so the clamp keeps at least one worker.
    let workers = options.effective_workers().min(pending.len());

    let injector = Injector::new();
    for shard in pending {
        injector.push(shard);
    }
    let locals: Vec<Worker<Shard>> = (0..workers).map(|_| Worker::new_fifo()).collect();
    let stealers: Vec<Stealer<Shard>> = locals.iter().map(Worker::stealer).collect();

    let results: Mutex<Vec<CompletedShard>> = Mutex::new(Vec::new());
    let failure: Mutex<Option<CampaignError>> = Mutex::new(None);
    let abort = AtomicBool::new(false);

    crossbeam::thread::scope(|scope| {
        let injector = &injector;
        let stealers = &stealers[..];
        let results = &results;
        let failure = &failure;
        let abort = &abort;
        for local in locals {
            scope.spawn(move |_| {
                while !abort.load(Ordering::Relaxed) {
                    let Some(shard) = find_task(&local, injector, stealers) else {
                        break;
                    };
                    match run_with_retry(env, shard, options) {
                        Ok(done) => {
                            let recorded = match sink {
                                Some(sink) => sink.record(&done),
                                None => Ok(()),
                            };
                            match recorded {
                                Ok(()) => results.lock().expect("results lock").push(done),
                                Err(e) => {
                                    abort.store(true, Ordering::Relaxed);
                                    failure.lock().expect("failure lock").get_or_insert(e);
                                }
                            }
                        }
                        Err(e) => {
                            abort.store(true, Ordering::Relaxed);
                            failure.lock().expect("failure lock").get_or_insert(e);
                        }
                    }
                }
            });
        }
    })
    .expect("campaign worker threads joined");

    if let Some(e) = failure.into_inner().expect("failure lock") {
        return Err(e);
    }
    Ok(results.into_inner().expect("results lock"))
}
