//! Per-shard RNG stream derivation.
//!
//! The paper's Gamma suite ran on 23 volunteer machines *concurrently*;
//! nothing about one vantage's randomness depended on another's. The
//! campaign engine reproduces that by deriving every shard's generator
//! from `(master_seed, country, stream)` instead of threading one RNG
//! through the shards sequentially — so the bits a shard consumes are a
//! pure function of its identity, and parallel output is identical to
//! sequential output regardless of worker count or scheduling order.

use gamma_geo::CountryCode;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Stream tag for the geolocation pipeline's probe traceroutes.
pub const STREAM_GEOLOCATE: u64 = 0x4745_4F4C; // "GEOL"

/// One round of splitmix64 — the standard seed-expansion mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expands `(master_seed, country, stream)` into a full 256-bit ChaCha
/// seed. Mixing through splitmix64 keeps nearby master seeds and
/// two-letter country tags from producing correlated streams.
pub fn derive_seed(master_seed: u64, country: CountryCode, stream: u64) -> [u8; 32] {
    let tag = (u64::from(country.0[0]) << 8) | u64::from(country.0[1]);
    let mut state = master_seed ^ stream.rotate_left(17) ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut seed = [0u8; 32];
    for chunk in seed.chunks_exact_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    seed
}

/// The generator for one `(master_seed, country, stream)` shard stream.
pub fn derive_rng(master_seed: u64, country: CountryCode, stream: u64) -> ChaCha8Rng {
    ChaCha8Rng::from_seed(derive_seed(master_seed, country, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_rng(42, CountryCode::new("RW"), STREAM_GEOLOCATE);
        let mut b = derive_rng(42, CountryCode::new("RW"), STREAM_GEOLOCATE);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn countries_get_distinct_streams() {
        let mut a = derive_rng(42, CountryCode::new("RW"), STREAM_GEOLOCATE);
        let mut b = derive_rng(42, CountryCode::new("US"), STREAM_GEOLOCATE);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn seeds_and_streams_get_distinct_streams() {
        let base = derive_seed(42, CountryCode::new("TH"), STREAM_GEOLOCATE);
        assert_ne!(
            base,
            derive_seed(43, CountryCode::new("TH"), STREAM_GEOLOCATE)
        );
        assert_ne!(
            base,
            derive_seed(42, CountryCode::new("TH"), STREAM_GEOLOCATE + 1)
        );
    }

    #[test]
    fn transposed_country_letters_differ() {
        // "AE" vs "EA"-style tag collisions must not alias.
        let a = derive_seed(7, CountryCode::new("AE"), 0);
        let b = derive_seed(7, CountryCode::new("EA"), 0);
        assert_ne!(a, b);
    }
}
