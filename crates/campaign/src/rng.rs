//! Per-shard RNG stream derivation.
//!
//! The paper's Gamma suite ran on 23 volunteer machines *concurrently*;
//! nothing about one vantage's randomness depended on another's. The
//! campaign engine reproduces that by deriving every shard's generator
//! from `(master_seed, country, stream)` instead of threading one RNG
//! through the shards sequentially — so the bits a shard consumes are a
//! pure function of its identity, and parallel output is identical to
//! sequential output regardless of worker count or scheduling order.

use gamma_geo::CountryCode;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Stream tag for the geolocation pipeline's probe traceroutes.
pub const STREAM_GEOLOCATE: u64 = 0x4745_4F4C; // "GEOL"

/// Stream tag for temporal-campaign round seeds.
pub const STREAM_ROUND: u64 = 0x524F_554E; // "ROUN"

/// Stream tag for multi-tenant study seeds (the service plane).
pub const STREAM_TENANT: u64 = 0x5445_4E41; // "TENA"

/// Stream tag for scenario-engine modifier application.
pub const STREAM_SCENARIO: u64 = 0x5343_454E; // "SCEN"

/// One round of splitmix64 — the standard seed-expansion mixer.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expands `(master_seed, tag, stream)` into a full 256-bit ChaCha seed.
/// Mixing through splitmix64 keeps nearby master seeds and small tags
/// from producing correlated streams.
fn expand(master_seed: u64, tag: u64, stream: u64) -> [u8; 32] {
    let mut state = master_seed ^ stream.rotate_left(17) ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut seed = [0u8; 32];
    for chunk in seed.chunks_exact_mut(8) {
        chunk.copy_from_slice(&splitmix64(&mut state).to_le_bytes());
    }
    seed
}

/// Expands `(master_seed, country, stream)` into a full 256-bit ChaCha
/// seed.
pub fn derive_seed(master_seed: u64, country: CountryCode, stream: u64) -> [u8; 32] {
    let tag = (u64::from(country.0[0]) << 8) | u64::from(country.0[1]);
    expand(master_seed, tag, stream)
}

/// The master seed of temporal-campaign round `epoch`.
///
/// Round 0 is the anchor: it **is** the campaign's master seed, so a
/// one-round longitudinal campaign is byte-identical to a plain study.
/// Later rounds split off the `STREAM_ROUND` stream through the same
/// splitmix64 + ChaCha8 expansion every shard stream uses — never
/// `seed + epoch` arithmetic, which would alias adjacent master seeds
/// (`derive_round_seed(s, 1)` colliding with `derive_round_seed(s+1, 0)`)
/// and correlate nearby rounds. The result is a pure function of
/// `(master_seed, epoch)`, independent of worker count, scheduling order
/// and any earlier round's execution.
pub fn derive_round_seed(master_seed: u64, epoch: u32) -> u64 {
    if epoch == 0 {
        return master_seed;
    }
    use rand::Rng;
    ChaCha8Rng::from_seed(expand(master_seed, u64::from(epoch), STREAM_ROUND)).gen()
}

/// The master seed of one tenant's study in a multi-tenant service plane.
///
/// Every tenant splits its own `STREAM_TENANT` stream off the server's
/// master seed, so two tenants registered under the *same* master seed
/// but different tenant ids consume fully decorrelated RNG streams — and
/// a tenant's whole revision history is a pure function of
/// `(master_seed, tenant_id)`, independent of which other tenants share
/// the server. There is deliberately no identity anchor here (unlike
/// [`derive_round_seed`]'s epoch 0): a tenant study is never supposed to
/// alias the server's own seed, not even for tenant id 0.
///
/// Round `epoch` of tenant `t` then runs under
/// `derive_round_seed(derive_tenant_seed(master, t), epoch)` — a pure
/// function of `(master_seed, tenant_id, epoch)` with both axes split
/// through the same splitmix64 + ChaCha8 expansion as every shard stream
/// (never additive arithmetic, which would alias neighbors).
pub fn derive_tenant_seed(master_seed: u64, tenant: u32) -> u64 {
    use rand::Rng;
    ChaCha8Rng::from_seed(expand(master_seed, u64::from(tenant), STREAM_TENANT)).gen()
}

/// The seed of a scenario's modifier-application RNG.
///
/// The scenario engine rewrites a `WorldSpec` *before* generation; any
/// randomness it consumes (e.g. re-homing a country whose destination
/// mix a `RestrictTransfers` modifier emptied) must be a pure function
/// of `(master_seed, scenario id)` — never drawn from the worldgen or
/// shard streams, which would shift every downstream byte. The id is
/// folded through an FNV-1a-style byte mix into the tag, then split off
/// the dedicated `STREAM_SCENARIO` stream through the same splitmix64 +
/// ChaCha8 expansion as every other derived seed. Like
/// [`derive_tenant_seed`] there is deliberately no identity anchor: a
/// scenario stream never aliases the master seed, and the dedicated
/// stream tag keeps it disjoint from the ROUN/TENA splits even when an
/// id like `"3"` folds to a small integer.
pub fn derive_scenario_seed(master_seed: u64, scenario_id: &str) -> u64 {
    let mut tag: u64 = 0xCBF2_9CE4_8422_2325; // FNV-1a offset basis
    for &b in scenario_id.as_bytes() {
        tag = (tag ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    use rand::Rng;
    ChaCha8Rng::from_seed(expand(master_seed, tag, STREAM_SCENARIO)).gen()
}

/// The generator for one `(master_seed, country, stream)` shard stream.
pub fn derive_rng(master_seed: u64, country: CountryCode, stream: u64) -> ChaCha8Rng {
    ChaCha8Rng::from_seed(derive_seed(master_seed, country, stream))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_inputs_same_stream() {
        let mut a = derive_rng(42, CountryCode::new("RW"), STREAM_GEOLOCATE);
        let mut b = derive_rng(42, CountryCode::new("RW"), STREAM_GEOLOCATE);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn countries_get_distinct_streams() {
        let mut a = derive_rng(42, CountryCode::new("RW"), STREAM_GEOLOCATE);
        let mut b = derive_rng(42, CountryCode::new("US"), STREAM_GEOLOCATE);
        assert_ne!(a.gen::<u64>(), b.gen::<u64>());
    }

    #[test]
    fn seeds_and_streams_get_distinct_streams() {
        let base = derive_seed(42, CountryCode::new("TH"), STREAM_GEOLOCATE);
        assert_ne!(
            base,
            derive_seed(43, CountryCode::new("TH"), STREAM_GEOLOCATE)
        );
        assert_ne!(
            base,
            derive_seed(42, CountryCode::new("TH"), STREAM_GEOLOCATE + 1)
        );
    }

    #[test]
    fn transposed_country_letters_differ() {
        // "AE" vs "EA"-style tag collisions must not alias.
        let a = derive_seed(7, CountryCode::new("AE"), 0);
        let b = derive_seed(7, CountryCode::new("EA"), 0);
        assert_ne!(a, b);
    }

    #[test]
    fn round_zero_is_the_master_seed() {
        for seed in [0, 1, 42, u64::MAX] {
            assert_eq!(derive_round_seed(seed, 0), seed);
        }
    }

    #[test]
    fn round_seeds_are_reproducible_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for epoch in 0..64 {
            let s = derive_round_seed(42, epoch);
            assert_eq!(s, derive_round_seed(42, epoch), "epoch {epoch} unstable");
            assert!(seen.insert(s), "epoch {epoch} collides");
        }
    }

    #[test]
    fn round_seeds_are_not_additive() {
        // The scheme must not degenerate into `seed + epoch`: that would
        // alias (seed, epoch+1) with (seed+1, epoch) and correlate the
        // per-country shard streams of adjacent rounds.
        for epoch in 1..16u32 {
            assert_ne!(derive_round_seed(42, epoch), 42 + u64::from(epoch));
            assert_ne!(
                derive_round_seed(42, epoch),
                derive_round_seed(43, epoch - 1),
                "adjacent (seed, epoch) pairs alias at epoch {epoch}"
            );
        }
    }

    #[test]
    fn tenant_seeds_are_reproducible_and_collision_free() {
        // Two tenants with equal master seeds but different tenant ids
        // must never collide in their stream splits — the satellite audit
        // for the multi-tenant service plane.
        let mut seen = std::collections::HashSet::new();
        for tenant in 0..256u32 {
            let s = derive_tenant_seed(42, tenant);
            assert_eq!(
                s,
                derive_tenant_seed(42, tenant),
                "tenant {tenant} unstable"
            );
            assert!(seen.insert(s), "tenant {tenant} collides");
        }
        // A tenant seed never aliases the master seed itself, not even
        // tenant 0 (no identity anchor on this stream).
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_ne!(derive_tenant_seed(seed, 0), seed);
        }
    }

    #[test]
    fn tenant_streams_do_not_alias_round_streams() {
        // STREAM_TENANT and STREAM_ROUND splits of the same master seed
        // must stay disjoint: tenant t's study seed never equals round
        // epoch t of the bare master seed, and the diagonal
        // (master, tenant+1) vs (master+1, tenant) never aliases.
        for i in 1..64u32 {
            assert_ne!(derive_tenant_seed(42, i), derive_round_seed(42, i));
            assert_ne!(derive_tenant_seed(42, i), derive_tenant_seed(43, i - 1));
            assert_ne!(derive_tenant_seed(42, i), 42 + u64::from(i));
        }
    }

    #[test]
    fn tenant_round_seeds_separate_per_tenant() {
        // The composition used by the service plane: different tenants'
        // round seeds are pairwise distinct for every epoch, and each
        // tenant's per-country shard streams decorrelate too.
        let mut seen = std::collections::HashSet::new();
        for tenant in 0..8u32 {
            let t = derive_tenant_seed(7, tenant);
            for epoch in 0..8u32 {
                let r = derive_round_seed(t, epoch);
                assert!(seen.insert(r), "tenant {tenant} epoch {epoch} collides");
            }
        }
        let a = derive_seed(
            derive_round_seed(derive_tenant_seed(7, 1), 3),
            CountryCode::new("RW"),
            STREAM_GEOLOCATE,
        );
        let b = derive_seed(
            derive_round_seed(derive_tenant_seed(7, 2), 3),
            CountryCode::new("RW"),
            STREAM_GEOLOCATE,
        );
        assert_ne!(a, b, "tenant shard streams must not collide");
    }

    #[test]
    fn scenario_seeds_are_reproducible_and_distinct() {
        let mut seen = std::collections::HashSet::new();
        for id in [
            "egypt-cs-localization",
            "eu-only-hubs",
            "global-consent",
            "no-restrictions",
            "",
            "x",
            "0",
        ] {
            let s = derive_scenario_seed(42, id);
            assert_eq!(s, derive_scenario_seed(42, id), "{id:?} unstable");
            assert!(seen.insert(s), "{id:?} collides");
        }
        // Different master seeds split the same scenario differently.
        assert_ne!(
            derive_scenario_seed(42, "eu-only-hubs"),
            derive_scenario_seed(43, "eu-only-hubs")
        );
    }

    #[test]
    fn scenario_streams_do_not_alias_master_round_or_tenant_streams() {
        // No identity anchor: a scenario stream never reproduces the
        // master seed itself, and numeric-looking ids must not collide
        // with the ROUN/TENA splits of the same master seed.
        for seed in [0u64, 1, 42, u64::MAX] {
            assert_ne!(derive_scenario_seed(seed, ""), seed);
            assert_ne!(derive_scenario_seed(seed, "0"), seed);
        }
        for i in 0..64u32 {
            let s = derive_scenario_seed(42, &i.to_string());
            assert_ne!(s, derive_round_seed(42, i), "aliases round {i}");
            assert_ne!(s, derive_tenant_seed(42, i), "aliases tenant {i}");
            assert_ne!(s, 42 + u64::from(i), "additive at {i}");
        }
    }

    #[test]
    fn round_seeds_decorrelate_the_shard_streams() {
        // The country streams of round N and round N+1 must differ.
        let r1 = derive_round_seed(42, 1);
        let r2 = derive_round_seed(42, 2);
        let a = derive_seed(r1, CountryCode::new("RW"), STREAM_GEOLOCATE);
        let b = derive_seed(r2, CountryCode::new("RW"), STREAM_GEOLOCATE);
        assert_ne!(a, b);
    }
}
