//! # gamma-campaign
//!
//! Deterministic, work-stealing campaign execution: the layer that runs
//! the study's per-country shards — volunteer measurement plus the
//! geolocation pipeline — across a configurable worker pool.
//!
//! The study's 23 volunteers measured *concurrently*; the sequential
//! `Study::run` loop was an artifact of threading one RNG through the
//! shards. This crate removes that artifact:
//!
//! - [`rng`]: every shard derives its own ChaCha stream from
//!   `(master_seed, country, stream)`, so output is a pure function of
//!   shard identity — parallel runs are **byte-identical** to sequential
//!   runs regardless of worker count or scheduling order.
//! - [`scheduler`]: a crossbeam work-stealing pool (global injector,
//!   per-worker FIFO deques, peer stealing); one worker degenerates to
//!   the old in-order loop.
//! - [`retry`]: transient shard faults retry with exponential backoff,
//!   with deterministic fault injection for drills (§3.3's "run the
//!   affected chunk again").
//! - [`checkpoint`]: campaign-level checkpoint/resume layered on
//!   [`gamma_suite::Checkpoint`], written atomically after every shard; a
//!   killed campaign resumes into a byte-identical final dataset.
//! - [`metrics`] / [`report`]: a per-shard, per-stage ledger rendered as
//!   a campaign report.
//!
//! `gamma-core` builds on this: `Study::run_with(Options)` is a campaign,
//! and `Study::run()` is its one-worker case.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod checkpoint;
pub mod engine;
pub mod metrics;
pub mod options;
pub mod report;
pub mod retry;
pub mod rng;
pub mod scheduler;
pub mod shard;

pub use checkpoint::{CampaignCheckpoint, CheckpointState, CompletedShard};
pub use engine::{run_campaigns, Campaign, CampaignEnv, CampaignError, CampaignOutcome};
pub use metrics::{CampaignMetrics, CampaignTotals, ShardMetrics, StageTimings};
pub use options::Options;
pub use report::render_campaign_report;
pub use retry::{FaultInjection, RetryPolicy};
pub use rng::{
    derive_rng, derive_round_seed, derive_scenario_seed, derive_seed, derive_tenant_seed,
    STREAM_GEOLOCATE, STREAM_ROUND, STREAM_SCENARIO, STREAM_TENANT,
};
pub use shard::{volunteer_slot, Shard, ShardError};
