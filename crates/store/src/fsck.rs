//! Offline artifact verification and repair.
//!
//! `fsck` walks an artifact directory, parses every container leniently
//! (keeping the valid frame prefix even past the point `read_container`
//! would refuse), and classifies each file. With repair enabled it
//! truncates torn tails and corrupt-frame suffixes back to the last
//! intact frame and sweeps stale `.tmp` files the atomic protocol left
//! behind after a crash. Chain re-basing (rebuilding a delta chain from
//! a sidecar full snapshot) is artifact-specific and lives with the
//! artifact's own store, keyed off the `needs_rebase` flag reported
//! here.

use crate::container::{
    ArtifactKind, FORMAT_VERSION, FRAME_HEADER_LEN, HEADER_LEN, MAGIC, MAX_FRAME_LEN,
};
use crate::crc::crc32;
use std::path::{Path, PathBuf};

/// What fsck concluded about one file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsckStatus {
    /// Every frame verified.
    Intact { kind: ArtifactKind, frames: usize },
    /// File ends mid-frame; the prefix of `frames` intact frames
    /// survives. `kind` is `None` when the tear cut into the header.
    Torn {
        kind: Option<ArtifactKind>,
        frames: usize,
        valid_bytes: u64,
        dropped_bytes: u64,
    },
    /// A frame inside the file failed its checksum (or declared an
    /// impossible length); `frames` intact frames precede it.
    Corrupt {
        kind: Option<ArtifactKind>,
        frames: usize,
        valid_bytes: u64,
        bad_frame: usize,
        detail: String,
    },
    /// Written by a format version this build cannot read.
    VersionMismatch { found: u16 },
    /// Not a store container (wrong magic): left alone.
    Foreign,
    /// A `.tmp` file from an interrupted atomic write.
    StaleTmp,
}

impl FsckStatus {
    /// Whether `--repair` has something to do for this file.
    pub fn repairable(&self) -> bool {
        matches!(
            self,
            FsckStatus::Torn { .. } | FsckStatus::Corrupt { .. } | FsckStatus::StaleTmp
        )
    }

    /// Whether the file is healthy as-is.
    pub fn healthy(&self) -> bool {
        matches!(self, FsckStatus::Intact { .. } | FsckStatus::Foreign)
    }
}

/// One scanned file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsckEntry {
    pub path: PathBuf,
    pub status: FsckStatus,
}

/// The full directory scan.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FsckReport {
    /// Entries in sorted path order (deterministic across platforms).
    pub entries: Vec<FsckEntry>,
}

impl FsckReport {
    pub fn intact(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.status, FsckStatus::Intact { .. }))
            .count()
    }

    pub fn problems(&self) -> usize {
        self.entries.iter().filter(|e| !e.status.healthy()).count()
    }

    /// Containers that lost tail frames and belong to a chained artifact
    /// kind — the caller's cue to re-base from a sidecar full snapshot.
    pub fn needs_rebase(&self) -> Vec<&FsckEntry> {
        self.entries
            .iter()
            .filter(|e| {
                let (kind, lost) = match &e.status {
                    FsckStatus::Torn {
                        kind,
                        dropped_bytes,
                        ..
                    } => (*kind, *dropped_bytes > 0),
                    FsckStatus::Corrupt { kind, .. } => (*kind, true),
                    _ => (None, false),
                };
                lost && matches!(
                    kind,
                    Some(ArtifactKind::DeltaChain) | Some(ArtifactKind::RevisionStore)
                )
            })
            .collect()
    }
}

/// Lenient single-file scan: parses as far as the bytes allow and
/// classifies what stopped it, never erroring on content.
pub fn scan_file(path: &Path) -> std::io::Result<FsckEntry> {
    if path.extension().is_some_and(|e| e == "tmp") {
        return Ok(FsckEntry {
            path: path.to_path_buf(),
            status: FsckStatus::StaleTmp,
        });
    }
    let bytes = std::fs::read(path)?;
    Ok(FsckEntry {
        path: path.to_path_buf(),
        status: classify(&bytes),
    })
}

fn classify(bytes: &[u8]) -> FsckStatus {
    if (bytes.len() as u64) < HEADER_LEN {
        // Same rule as read_container: a <8-byte file whose overlapping
        // prefix matches the magic is a torn header (magic + partial
        // version/kind counts), anything else is foreign.
        let n = bytes.len().min(MAGIC.len());
        if bytes[..n] == MAGIC[..n] {
            return FsckStatus::Torn {
                kind: None,
                frames: 0,
                valid_bytes: 0,
                dropped_bytes: bytes.len() as u64,
            };
        }
        return FsckStatus::Foreign;
    }
    if bytes[..4] != MAGIC {
        return FsckStatus::Foreign;
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return FsckStatus::VersionMismatch { found: version };
    }
    let tag = u16::from_le_bytes([bytes[6], bytes[7]]);
    let kind = ArtifactKind::from_tag(tag);
    if kind.is_none() {
        return FsckStatus::Corrupt {
            kind: None,
            frames: 0,
            valid_bytes: HEADER_LEN,
            bad_frame: 0,
            detail: format!("unknown artifact kind tag {tag}"),
        };
    }

    let mut frames = 0usize;
    let mut offset = HEADER_LEN as usize;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        if (rest.len() as u64) < FRAME_HEADER_LEN {
            return FsckStatus::Torn {
                kind,
                frames,
                valid_bytes: offset as u64,
                dropped_bytes: rest.len() as u64,
            };
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let want_crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_FRAME_LEN {
            return FsckStatus::Corrupt {
                kind,
                frames,
                valid_bytes: offset as u64,
                bad_frame: frames,
                detail: format!("declared frame length {len} exceeds the {MAX_FRAME_LEN} cap"),
            };
        }
        let end = FRAME_HEADER_LEN as usize + len as usize;
        if rest.len() < end {
            return FsckStatus::Torn {
                kind,
                frames,
                valid_bytes: offset as u64,
                dropped_bytes: rest.len() as u64,
            };
        }
        let payload = &rest[FRAME_HEADER_LEN as usize..end];
        if crc32(payload) != want_crc {
            return FsckStatus::Corrupt {
                kind,
                frames,
                valid_bytes: offset as u64,
                bad_frame: frames,
                detail: format!(
                    "checksum mismatch (stored {want_crc:#010x}, computed {:#010x})",
                    crc32(payload)
                ),
            };
        }
        frames += 1;
        offset += end;
    }
    FsckStatus::Intact {
        // Unwrap is safe: the unknown-tag case returned above.
        kind: kind.expect("kind checked above"),
        frames,
    }
}

/// Walks `dir` recursively and scans every regular file, sorted by path.
pub fn scan_dir(dir: &Path) -> std::io::Result<FsckReport> {
    let mut files = Vec::new();
    collect(dir, &mut files)?;
    files.sort();
    let mut entries = Vec::with_capacity(files.len());
    for path in files {
        entries.push(scan_file(&path)?);
    }
    Ok(FsckReport { entries })
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let ty = entry.file_type()?;
        if ty.is_dir() {
            collect(&path, out)?;
        } else if ty.is_file() {
            out.push(path);
        }
    }
    Ok(())
}

/// What `--repair` did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairSummary {
    /// Files truncated back to their last intact frame.
    pub truncated: usize,
    /// Stale `.tmp` files removed.
    pub tmp_removed: usize,
    /// Total torn/corrupt bytes dropped.
    pub bytes_dropped: u64,
}

/// Repairs everything repairable in a report: truncates torn tails and
/// corrupt suffixes to the valid prefix, removes stale temp files.
/// Artifact-kind-specific re-basing is the caller's job (see
/// [`FsckReport::needs_rebase`]).
pub fn repair(report: &FsckReport) -> std::io::Result<RepairSummary> {
    let mut summary = RepairSummary::default();
    for entry in &report.entries {
        match &entry.status {
            FsckStatus::StaleTmp => {
                std::fs::remove_file(&entry.path)?;
                summary.tmp_removed += 1;
            }
            FsckStatus::Torn { valid_bytes, .. } | FsckStatus::Corrupt { valid_bytes, .. } => {
                let len = std::fs::metadata(&entry.path)?.len();
                // A header-torn file has no recoverable prefix: drop it
                // entirely so a fresh write recreates it cleanly.
                if *valid_bytes == 0 {
                    std::fs::remove_file(&entry.path)?;
                } else {
                    let file = std::fs::OpenOptions::new().write(true).open(&entry.path)?;
                    file.set_len(*valid_bytes)?;
                }
                summary.truncated += 1;
                summary.bytes_dropped += len.saturating_sub(*valid_bytes);
            }
            _ => {}
        }
    }
    Ok(summary)
}

/// Renders a report as the CLI's typed listing.
pub fn render(report: &FsckReport, root: &Path) -> String {
    let mut out = String::new();
    for entry in &report.entries {
        let rel = entry
            .path
            .strip_prefix(root)
            .unwrap_or(&entry.path)
            .display();
        let line = match &entry.status {
            FsckStatus::Intact { kind, frames } => {
                format!("ok        {rel}  [{kind}] {frames} frame(s)")
            }
            FsckStatus::Torn {
                kind,
                frames,
                dropped_bytes,
                ..
            } => {
                let kind = kind.map_or("unidentifiable".to_string(), |k| k.to_string());
                format!(
                    "torn      {rel}  [{kind}] {frames} intact frame(s), {dropped_bytes} torn byte(s)"
                )
            }
            FsckStatus::Corrupt {
                kind,
                frames,
                bad_frame,
                detail,
                ..
            } => {
                let kind = kind.map_or("unidentifiable".to_string(), |k| k.to_string());
                format!(
                    "corrupt   {rel}  [{kind}] frame {bad_frame} bad ({detail}); {frames} intact frame(s) precede"
                )
            }
            FsckStatus::VersionMismatch { found } => {
                format!("version   {rel}  container format v{found} unreadable (supports v{FORMAT_VERSION})")
            }
            FsckStatus::Foreign => format!("foreign   {rel}  not a store container"),
            FsckStatus::StaleTmp => format!("stale-tmp {rel}  interrupted atomic write"),
        };
        out.push_str(&line);
        out.push('\n');
    }
    out.push_str(&format!(
        "{} file(s): {} intact, {} problem(s)\n",
        report.entries.len(),
        report.intact(),
        report.problems()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::{append_frame, save_doc, WriteOptions};

    fn dir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gamma-fsck-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn scan_classifies_and_repair_heals() {
        let d = dir("classify");
        // An intact document.
        save_doc(
            &d.join("good.gsf"),
            ArtifactKind::Document,
            &serde_json::json!({"ok": true}),
            &WriteOptions::default(),
        )
        .unwrap();
        // A torn chain: three frames, tail cut mid-frame.
        let chain = d.join("chain.gsf");
        for i in 0..3 {
            append_frame(
                &chain,
                ArtifactKind::DeltaChain,
                format!("delta frame {i}").as_bytes(),
                &WriteOptions::default(),
            )
            .unwrap();
        }
        let full = std::fs::read(&chain).unwrap();
        std::fs::write(&chain, &full[..full.len() - 5]).unwrap();
        // A corrupt chain: a flipped bit in frame 1.
        let flip = d.join("flip.gsf");
        for i in 0..3 {
            append_frame(
                &flip,
                ArtifactKind::DeltaChain,
                format!("delta frame {i}").as_bytes(),
                &WriteOptions::default(),
            )
            .unwrap();
        }
        let mut bytes = std::fs::read(&flip).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        std::fs::write(&flip, &bytes).unwrap();
        // A stale tmp and a foreign file.
        std::fs::write(d.join("orphan.gsf.tmp"), b"GSF1 partial").unwrap();
        std::fs::write(d.join("notes.json"), b"{\"foreign\": 1}").unwrap();

        let report = scan_dir(&d).unwrap();
        assert_eq!(report.entries.len(), 5);
        assert_eq!(report.intact(), 1);
        assert_eq!(report.problems(), 3, "torn + corrupt + stale tmp");
        let rebase: Vec<_> = report
            .needs_rebase()
            .iter()
            .map(|e| e.path.file_name().unwrap().to_string_lossy().into_owned())
            .collect();
        assert!(rebase.contains(&"chain.gsf".to_string()));
        assert!(rebase.contains(&"flip.gsf".to_string()));

        let summary = repair(&report).unwrap();
        assert_eq!(summary.truncated, 2);
        assert_eq!(summary.tmp_removed, 1);
        assert!(summary.bytes_dropped > 0);

        // After repair everything left is intact; the valid prefixes
        // survived byte-identically.
        let after = scan_dir(&d).unwrap();
        assert_eq!(after.problems(), 0, "{:#?}", after.entries);
        let healed = crate::container::read_container(&chain, Some(ArtifactKind::DeltaChain))
            .unwrap();
        assert_eq!(healed.frames.len(), 2);
        assert_eq!(healed.frames[1], b"delta frame 1");
        let healed = crate::container::read_container(&flip, Some(ArtifactKind::DeltaChain))
            .unwrap();
        assert!(healed.frames.len() < 3, "corrupt suffix kept");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn header_torn_files_are_dropped_whole() {
        let d = dir("header-torn");
        std::fs::write(d.join("stub.gsf"), &MAGIC[..2]).unwrap();
        let report = scan_dir(&d).unwrap();
        assert!(matches!(
            report.entries[0].status,
            FsckStatus::Torn {
                kind: None,
                frames: 0,
                ..
            }
        ));
        repair(&report).unwrap();
        assert!(!d.join("stub.gsf").exists());
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn magic_plus_partial_header_classifies_torn_not_foreign() {
        // Crash artifact of 5-7 bytes: full magic plus a partial
        // version/kind field. Must agree with read_container (torn, not
        // foreign), whatever the partial header bytes hold.
        for len in 5..HEADER_LEN as usize {
            let mut bytes = MAGIC.to_vec();
            bytes.resize(len, 0x99);
            assert!(
                matches!(
                    classify(&bytes),
                    FsckStatus::Torn {
                        kind: None,
                        frames: 0,
                        valid_bytes: 0,
                        ..
                    }
                ),
                "len {len} misclassified"
            );
        }
        // Foreign bytes at the same lengths stay foreign.
        for len in 1..HEADER_LEN as usize {
            assert!(
                matches!(classify(&vec![b'{'; len]), FsckStatus::Foreign),
                "junk len {len} misclassified"
            );
        }
    }

    #[test]
    fn render_is_stable_and_typed() {
        let d = dir("render");
        save_doc(
            &d.join("a.gsf"),
            ArtifactKind::MetricsReport,
            &serde_json::json!({"n": 1}),
            &WriteOptions::default(),
        )
        .unwrap();
        let report = scan_dir(&d).unwrap();
        let text = render(&report, &d);
        assert!(text.contains("ok        a.gsf  [metrics-report] 1 frame(s)"));
        assert!(text.contains("1 file(s): 1 intact, 0 problem(s)"));
        let _ = std::fs::remove_dir_all(&d);
    }
}
