//! The framed container format and its atomic/append write protocols.
//!
//! Every durable artifact is one file:
//!
//! ```text
//! [0..4)   magic           b"GSF1"
//! [4..6)   format version  u16 LE (currently 1)
//! [6..8)   artifact kind   u16 LE (ArtifactKind tag)
//! then zero or more frames:
//!   [0..4)        payload length  u32 LE
//!   [4..8)        CRC-32 of payload
//!   [8..8+len)    payload bytes (JSON for every current artifact)
//! ```
//!
//! Two write protocols cover every producer:
//!
//! - [`write_frames`]: the single atomic protocol — serialize the whole
//!   container to `{path}.tmp`, optionally fsync, rename over `path`. A
//!   crash at any byte leaves either the old file or the new one, never
//!   a blend.
//! - [`append_frame`]: for chains (delta snapshots, checkpoint shards)
//!   that grow one frame per event. An append is *not* atomic — that is
//!   the point: a crash mid-append leaves a torn tail that
//!   [`read_container`] detects and truncates to the last valid frame.
//!
//! The reader distinguishes `Missing` / torn tail / `Corrupt` /
//! `VersionMismatch` instead of surfacing a serde panic; torn tails ride
//! on the `Ok` side (the valid prefix *is* the durable state).

use crate::crc::crc32;
use crate::fault::{decide_write_fault, WriteFault};
use gamma_chaos::FaultPlan;
use gamma_obs as obs;
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Write as _};
use std::path::Path;

/// File magic: "Gamma Store Format 1".
pub const MAGIC: [u8; 4] = *b"GSF1";
/// Current container format version.
pub const FORMAT_VERSION: u16 = 1;
/// Bytes of `magic + version + kind`.
pub const HEADER_LEN: u64 = 8;
/// Bytes of `length + crc` preceding each payload.
pub const FRAME_HEADER_LEN: u64 = 8;
/// Upper bound on a single frame payload (guards against reading a
/// garbage length field as a multi-gigabyte allocation).
pub const MAX_FRAME_LEN: u32 = 1 << 30;

/// What kind of artifact a container holds, so a reader pointed at the
/// wrong file fails typed instead of mis-decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ArtifactKind {
    /// Campaign checkpoint: meta frame + one frame per completed shard.
    CampaignCheckpoint,
    /// Suite (volunteer) progress marker, single frame.
    SuiteCheckpoint,
    /// One full `RoundSnapshot`, single frame.
    RoundSnapshot,
    /// Longitudinal delta chain: one `DeltaSnapshot` frame per round.
    DeltaChain,
    /// Per-tenant revision store: the retained delta chain.
    RevisionStore,
    /// Rendered report / analysis dataset (opaque JSON document).
    Document,
    /// Benchmark metrics report.
    MetricsReport,
    /// Compiled tracker-filter engine (token-indexed ABP rules), single
    /// frame; the payload carries its own engine-format version.
    CompiledEngine,
    /// Columnar round snapshot: one JSON meta/directory frame followed by
    /// one binary column blob per country (struct-of-arrays layout).
    ColumnarSnapshot,
}

impl ArtifactKind {
    /// The on-disk u16 tag.
    pub fn tag(self) -> u16 {
        match self {
            ArtifactKind::CampaignCheckpoint => 1,
            ArtifactKind::SuiteCheckpoint => 2,
            ArtifactKind::RoundSnapshot => 3,
            ArtifactKind::DeltaChain => 4,
            ArtifactKind::RevisionStore => 5,
            ArtifactKind::Document => 6,
            ArtifactKind::MetricsReport => 7,
            ArtifactKind::CompiledEngine => 8,
            ArtifactKind::ColumnarSnapshot => 9,
        }
    }

    /// Decodes a tag; `None` for tags this build does not know.
    pub fn from_tag(tag: u16) -> Option<ArtifactKind> {
        Some(match tag {
            1 => ArtifactKind::CampaignCheckpoint,
            2 => ArtifactKind::SuiteCheckpoint,
            3 => ArtifactKind::RoundSnapshot,
            4 => ArtifactKind::DeltaChain,
            5 => ArtifactKind::RevisionStore,
            6 => ArtifactKind::Document,
            7 => ArtifactKind::MetricsReport,
            8 => ArtifactKind::CompiledEngine,
            9 => ArtifactKind::ColumnarSnapshot,
            _ => return None,
        })
    }

    /// Human-readable name for fsck reports.
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::CampaignCheckpoint => "campaign-checkpoint",
            ArtifactKind::SuiteCheckpoint => "suite-checkpoint",
            ArtifactKind::RoundSnapshot => "round-snapshot",
            ArtifactKind::DeltaChain => "delta-chain",
            ArtifactKind::RevisionStore => "revision-store",
            ArtifactKind::Document => "document",
            ArtifactKind::MetricsReport => "metrics-report",
            ArtifactKind::CompiledEngine => "compiled-engine",
            ArtifactKind::ColumnarSnapshot => "columnar-snapshot",
        }
    }

    /// Every kind, for iteration in tests and fsck.
    pub const ALL: [ArtifactKind; 9] = [
        ArtifactKind::CampaignCheckpoint,
        ArtifactKind::SuiteCheckpoint,
        ArtifactKind::RoundSnapshot,
        ArtifactKind::DeltaChain,
        ArtifactKind::RevisionStore,
        ArtifactKind::Document,
        ArtifactKind::MetricsReport,
        ArtifactKind::CompiledEngine,
        ArtifactKind::ColumnarSnapshot,
    ];
}

impl std::fmt::Display for ArtifactKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How writes behave: durability knob plus the deterministic
/// storage-fault oracle (tests, chaos drills).
#[derive(Debug, Clone, Default)]
pub struct WriteOptions {
    /// fsync file contents before rename / after append. Off by default:
    /// the atomic protocol already guarantees no blends, fsync only
    /// narrows the window in which a completed write can be lost.
    pub fsync: bool,
    /// Storage-fault plan consulted on every write (`None`: no faults).
    pub plan: Option<FaultPlan>,
}

impl WriteOptions {
    /// Durable writes, no fault injection.
    pub fn durable() -> WriteOptions {
        WriteOptions {
            fsync: true,
            plan: None,
        }
    }

    /// Writes under a storage-fault plan.
    pub fn with_plan(plan: FaultPlan) -> WriteOptions {
        WriteOptions {
            fsync: false,
            plan: Some(plan),
        }
    }
}

/// Why a write did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteError {
    /// Real I/O failure from the OS.
    Io(String),
    /// A deterministic storage fault fired: the write behaved like a
    /// crash (torn tail, dropped rename, full disk). The fault name is
    /// carried for ledgers and tests.
    Injected(&'static str),
}

impl std::fmt::Display for WriteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WriteError::Io(e) => write!(f, "store write failed: {e}"),
            WriteError::Injected(kind) => write!(f, "injected storage fault: {kind}"),
        }
    }
}

impl std::error::Error for WriteError {}

/// Why a read did not produce an artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// No file at the path — a fresh start, not a failure.
    Missing,
    /// Real I/O failure from the OS.
    Io(String),
    /// The file is not a store container (wrong magic).
    NotAContainer,
    /// The container was written by a format this build cannot read.
    VersionMismatch { found: u16 },
    /// The container holds a different artifact kind than asked for.
    KindMismatch {
        found: ArtifactKind,
        expected: ArtifactKind,
    },
    /// A fully-present frame failed its checksum (or declared an
    /// impossible length): disk corruption, not a torn write.
    Corrupt { frame: usize, detail: String },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Missing => write!(f, "artifact missing"),
            ReadError::Io(e) => write!(f, "store read failed: {e}"),
            ReadError::NotAContainer => write!(f, "not a store container"),
            ReadError::VersionMismatch { found } => {
                write!(
                    f,
                    "container format v{found} is not readable by this build (supports v{FORMAT_VERSION})"
                )
            }
            ReadError::KindMismatch { found, expected } => {
                write!(f, "container holds a {found}, expected a {expected}")
            }
            ReadError::Corrupt { frame, detail } => {
                write!(f, "frame {frame} is corrupt: {detail}")
            }
        }
    }
}

impl std::error::Error for ReadError {}

/// A torn tail: the file ends in an incomplete frame (crash mid-append
/// or mid-write). The valid prefix is intact; `dropped_bytes` were cut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Offset of the last byte that belongs to a complete frame (the
    /// truncation point `fsck --repair` cuts to).
    pub valid_bytes: u64,
    /// Bytes of torn tail past that point.
    pub dropped_bytes: u64,
}

/// A successfully read container: the valid frames, plus the torn-tail
/// marker when the file ended mid-frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Container {
    /// `None` only when the tear cut into the 8-byte header itself (the
    /// file is a prefix too short to name its kind).
    pub kind: Option<ArtifactKind>,
    pub version: u16,
    /// Complete, checksum-verified payloads, file order.
    pub frames: Vec<Vec<u8>>,
    /// Set when a torn tail was truncated away on read.
    pub torn: Option<TornTail>,
}

fn io_err(e: std::io::Error) -> WriteError {
    WriteError::Io(e.to_string())
}

/// Serializes header + frames into one buffer.
fn encode(kind: ArtifactKind, frames: &[&[u8]]) -> Vec<u8> {
    let body: usize = frames
        .iter()
        .map(|f| FRAME_HEADER_LEN as usize + f.len())
        .sum();
    let mut buf = Vec::with_capacity(HEADER_LEN as usize + body);
    buf.extend_from_slice(&MAGIC);
    buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    buf.extend_from_slice(&kind.tag().to_le_bytes());
    for frame in frames {
        buf.extend_from_slice(&encode_frame(frame));
    }
    buf
}

fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN as usize + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc32(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Applies an injected fault to an encoded image about to be written.
/// Returns the bytes to actually write and whether the write should
/// report failure after (simulating the crash the fault models).
fn apply_fault(fault: WriteFault, image: &mut Vec<u8>) -> Option<&'static str> {
    match fault {
        WriteFault::None => None,
        WriteFault::DiskFull => {
            image.clear();
            Some("disk-full")
        }
        WriteFault::TornAt(frac) => {
            let cut = ((image.len() as f64) * frac) as usize;
            image.truncate(cut.min(image.len().saturating_sub(1)));
            Some("torn-write")
        }
        WriteFault::BitFlip(frac) => {
            if !image.is_empty() {
                let pos = (((image.len() * 8) as f64) * frac) as usize;
                let pos = pos.min(image.len() * 8 - 1);
                image[pos / 8] ^= 1 << (pos % 8);
            }
            // Silent: the write "succeeds"; the read path must catch it.
            None
        }
        WriteFault::RenameDropped => Some("rename-dropped"),
    }
}

/// The single atomic write protocol: full image to `{path}.tmp`,
/// optional fsync, rename over `path`. Increments `store.writes` /
/// `store.bytes_written`; injected faults count `store.write_faults`.
pub fn write_frames(
    path: &Path,
    kind: ArtifactKind,
    frames: &[&[u8]],
    opts: &WriteOptions,
) -> Result<(), WriteError> {
    let reg = obs::global();
    let mut image = encode(kind, frames);
    let fault = decide_write_fault(opts.plan.as_ref(), path, image.len());
    let injected = apply_fault(fault, &mut image);
    if injected == Some("disk-full") {
        reg.counter("store.write_faults").inc();
        return Err(WriteError::Injected("disk-full"));
    }

    let tmp = {
        let mut s = path.as_os_str().to_owned();
        s.push(".tmp");
        std::path::PathBuf::from(s)
    };
    let mut file = File::create(&tmp).map_err(io_err)?;
    file.write_all(&image).map_err(io_err)?;
    if opts.fsync {
        file.sync_all().map_err(io_err)?;
    }
    drop(file);
    match injected {
        // Crash models: the tmp file stays behind (as after a real
        // crash), the destination is untouched.
        Some(kind) => {
            reg.counter("store.write_faults").inc();
            Err(WriteError::Injected(kind))
        }
        None => {
            std::fs::rename(&tmp, path).map_err(io_err)?;
            reg.counter("store.writes").inc();
            reg.counter("store.bytes_written").add(image.len() as u64);
            Ok(())
        }
    }
}

/// Appends one frame to a chain container, creating the file (with
/// header) when missing. Deliberately *not* atomic: a crash mid-append
/// leaves a torn tail the reader truncates. Increments `store.appends`.
pub fn append_frame(
    path: &Path,
    kind: ArtifactKind,
    payload: &[u8],
    opts: &WriteOptions,
) -> Result<(), WriteError> {
    let reg = obs::global();
    let exists = path.exists();
    let mut image = if exists {
        encode_frame(payload)
    } else {
        encode(kind, &[payload])
    };
    let fault = decide_write_fault(opts.plan.as_ref(), path, image.len());
    // Rename-dropped does not apply to appends (there is no rename);
    // treat it as a no-fault append so rates stay monotone per kind.
    let fault = match fault {
        WriteFault::RenameDropped => WriteFault::None,
        f => f,
    };
    let injected = apply_fault(fault, &mut image);
    if injected == Some("disk-full") {
        reg.counter("store.write_faults").inc();
        return Err(WriteError::Injected("disk-full"));
    }

    let mut file = OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .map_err(io_err)?;
    file.write_all(&image).map_err(io_err)?;
    if opts.fsync {
        file.sync_all().map_err(io_err)?;
    }
    match injected {
        Some(kind) => {
            reg.counter("store.write_faults").inc();
            Err(WriteError::Injected(kind))
        }
        None => {
            reg.counter("store.appends").inc();
            reg.counter("store.bytes_written").add(image.len() as u64);
            Ok(())
        }
    }
}

/// Reads a container, verifying every frame checksum. Torn tails are
/// truncated to the last valid frame and reported on the `Ok` side;
/// mid-file corruption, version and kind mismatches are typed errors.
/// Increments `store.reads` / `store.bytes_read`; a recovered tear
/// counts `store.recovered_torn`, a corrupt frame `store.corrupt_frames`.
pub fn read_container(path: &Path, expected: Option<ArtifactKind>) -> Result<Container, ReadError> {
    let reg = obs::global();
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)
                .map_err(|e| ReadError::Io(e.to_string()))?;
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(ReadError::Missing),
        Err(e) => return Err(ReadError::Io(e.to_string())),
    }
    reg.counter("store.reads").inc();
    reg.counter("store.bytes_read").add(bytes.len() as u64);

    // A tear into the header: the file is a prefix too short to name its
    // own kind. Nothing durable survives, but it is a crash artifact —
    // report a torn tail with zero frames, not corruption. The file may
    // be longer than the magic (magic + partial version/kind), so only
    // the overlapping prefix is compared.
    if (bytes.len() as u64) < HEADER_LEN {
        let n = bytes.len().min(MAGIC.len());
        if bytes[..n] != MAGIC[..n] {
            return Err(ReadError::NotAContainer);
        }
        reg.counter("store.recovered_torn").inc();
        return Ok(Container {
            kind: None,
            version: FORMAT_VERSION,
            frames: Vec::new(),
            torn: Some(TornTail {
                valid_bytes: 0,
                dropped_bytes: bytes.len() as u64,
            }),
        });
    }

    if bytes[..4] != MAGIC {
        return Err(ReadError::NotAContainer);
    }
    let version = u16::from_le_bytes([bytes[4], bytes[5]]);
    if version != FORMAT_VERSION {
        return Err(ReadError::VersionMismatch { found: version });
    }
    let tag = u16::from_le_bytes([bytes[6], bytes[7]]);
    let kind = ArtifactKind::from_tag(tag).ok_or(ReadError::Corrupt {
        frame: 0,
        detail: format!("unknown artifact kind tag {tag}"),
    })?;
    if let Some(expected) = expected {
        if kind != expected {
            return Err(ReadError::KindMismatch {
                found: kind,
                expected,
            });
        }
    }

    let mut frames = Vec::new();
    let mut offset = HEADER_LEN as usize;
    let mut torn = None;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        // Frame header or payload cut short: torn tail, truncate here.
        if (rest.len() as u64) < FRAME_HEADER_LEN {
            torn = Some(TornTail {
                valid_bytes: offset as u64,
                dropped_bytes: rest.len() as u64,
            });
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let want_crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        if len > MAX_FRAME_LEN {
            // A garbage length field: only distinguishable from a torn
            // length prefix by its impossibility — treat as corruption.
            reg.counter("store.corrupt_frames").inc();
            return Err(ReadError::Corrupt {
                frame: frames.len(),
                detail: format!("declared frame length {len} exceeds the {MAX_FRAME_LEN} cap"),
            });
        }
        let end = FRAME_HEADER_LEN as usize + len as usize;
        if rest.len() < end {
            torn = Some(TornTail {
                valid_bytes: offset as u64,
                dropped_bytes: rest.len() as u64,
            });
            break;
        }
        let payload = &rest[FRAME_HEADER_LEN as usize..end];
        if crc32(payload) != want_crc {
            reg.counter("store.corrupt_frames").inc();
            return Err(ReadError::Corrupt {
                frame: frames.len(),
                detail: format!(
                    "checksum mismatch (stored {want_crc:#010x}, computed {:#010x})",
                    crc32(payload)
                ),
            });
        }
        frames.push(payload.to_vec());
        offset += end;
    }
    if torn.is_some() {
        reg.counter("store.recovered_torn").inc();
    }
    Ok(Container {
        kind: Some(kind),
        version,
        frames,
        torn,
    })
}

/// Why a typed single-document load failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadError {
    /// No file — fresh start.
    Missing,
    /// The file ends in a torn frame and no complete frame precedes it:
    /// the write crashed before anything became durable. Recovery policy
    /// decides the fallback (previous round, fresh start, …).
    TornEmpty,
    /// Typed container/parse failure (checksum, magic, JSON shape).
    Corrupt(String),
    /// Written by an unreadable format version.
    VersionMismatch { found: u16 },
    /// The file holds a different artifact kind.
    KindMismatch {
        found: ArtifactKind,
        expected: ArtifactKind,
    },
    /// Real I/O failure.
    Io(String),
}

impl std::fmt::Display for LoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadError::Missing => write!(f, "artifact missing"),
            LoadError::TornEmpty => write!(f, "torn write left no durable frame"),
            LoadError::Corrupt(d) => write!(f, "corrupt artifact: {d}"),
            LoadError::VersionMismatch { found } => {
                write!(f, "unreadable container format v{found}")
            }
            LoadError::KindMismatch { found, expected } => {
                write!(f, "container holds a {found}, expected a {expected}")
            }
            LoadError::Io(e) => write!(f, "store read failed: {e}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<ReadError> for LoadError {
    fn from(e: ReadError) -> LoadError {
        match e {
            ReadError::Missing => LoadError::Missing,
            ReadError::Io(e) => LoadError::Io(e),
            ReadError::NotAContainer => LoadError::Corrupt("not a store container".into()),
            ReadError::VersionMismatch { found } => LoadError::VersionMismatch { found },
            ReadError::KindMismatch { found, expected } => {
                LoadError::KindMismatch { found, expected }
            }
            ReadError::Corrupt { frame, detail } => {
                LoadError::Corrupt(format!("frame {frame}: {detail}"))
            }
        }
    }
}

/// A document recovered by [`load_doc`], with recovery provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Loaded<T> {
    pub value: T,
    /// A torn tail was truncated to reach this value.
    pub recovered_torn: bool,
}

/// Atomically writes one serde document as a single-frame container.
pub fn save_doc<T: serde::Serialize>(
    path: &Path,
    kind: ArtifactKind,
    value: &T,
    opts: &WriteOptions,
) -> Result<(), WriteError> {
    let payload =
        serde_json::to_vec(value).map_err(|e| WriteError::Io(format!("serialize: {e}")))?;
    write_frames(path, kind, &[&payload], opts)
}

/// Loads the newest intact frame of a single-document container. A torn
/// tail falls back to the previous intact frame (append-style updates);
/// a tear with nothing before it is `TornEmpty`, never a serde panic.
pub fn load_doc<T: serde::de::DeserializeOwned>(
    path: &Path,
    kind: ArtifactKind,
) -> Result<Loaded<T>, LoadError> {
    let container = read_container(path, Some(kind))?;
    let recovered_torn = container.torn.is_some();
    let Some(frame) = container.frames.last() else {
        return if recovered_torn {
            Err(LoadError::TornEmpty)
        } else {
            Err(LoadError::Corrupt("container holds no frames".into()))
        };
    };
    let value = serde_json::from_slice(frame)
        .map_err(|e| LoadError::Corrupt(format!("frame JSON: {e}")))?;
    Ok(Loaded {
        value,
        recovered_torn,
    })
}

/// Atomically writes raw bytes (plain JSON reports, datasets) with the
/// same temp-file + rename protocol — no framing, for artifacts external
/// tools read directly. Crash-safe: never a half-written file.
pub fn atomic_write_bytes(
    path: &Path,
    bytes: &[u8],
    opts: &WriteOptions,
) -> Result<(), WriteError> {
    let reg = obs::global();
    let mut image = bytes.to_vec();
    let fault = decide_write_fault(opts.plan.as_ref(), path, image.len());
    let injected = apply_fault(fault, &mut image);
    if injected == Some("disk-full") {
        reg.counter("store.write_faults").inc();
        return Err(WriteError::Injected("disk-full"));
    }
    let tmp = {
        let mut s = path.as_os_str().to_owned();
        s.push(".tmp");
        std::path::PathBuf::from(s)
    };
    let mut file = File::create(&tmp).map_err(io_err)?;
    file.write_all(&image).map_err(io_err)?;
    if opts.fsync {
        file.sync_all().map_err(io_err)?;
    }
    drop(file);
    match injected {
        Some(kind) => {
            reg.counter("store.write_faults").inc();
            Err(WriteError::Injected(kind))
        }
        None => {
            std::fs::rename(&tmp, path).map_err(io_err)?;
            reg.counter("store.writes").inc();
            reg.counter("store.bytes_written").add(image.len() as u64);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde::{Deserialize, Serialize};

    fn tmp(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gamma-store-{}-{name}", std::process::id()))
    }

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Doc {
        id: u32,
        body: String,
    }

    #[test]
    fn atomic_roundtrip_and_kind_check() {
        let path = tmp("roundtrip.gsf");
        let doc = Doc {
            id: 7,
            body: "hello".into(),
        };
        save_doc(
            &path,
            ArtifactKind::Document,
            &doc,
            &WriteOptions::default(),
        )
        .unwrap();
        let back: Loaded<Doc> = load_doc(&path, ArtifactKind::Document).unwrap();
        assert_eq!(back.value, doc);
        assert!(!back.recovered_torn);
        // Wrong kind: typed mismatch, not a decode attempt.
        assert!(matches!(
            load_doc::<Doc>(&path, ArtifactKind::DeltaChain),
            Err(LoadError::KindMismatch { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_is_typed() {
        let path = tmp("never-written.gsf");
        assert_eq!(read_container(&path, None).unwrap_err(), ReadError::Missing);
        assert!(matches!(
            load_doc::<Doc>(&path, ArtifactKind::Document),
            Err(LoadError::Missing)
        ));
    }

    #[test]
    fn appended_chains_read_back_in_order() {
        let path = tmp("chain.gsf");
        let _ = std::fs::remove_file(&path);
        for i in 0..5u32 {
            append_frame(
                &path,
                ArtifactKind::DeltaChain,
                format!("frame-{i}").as_bytes(),
                &WriteOptions::default(),
            )
            .unwrap();
        }
        let c = read_container(&path, Some(ArtifactKind::DeltaChain)).unwrap();
        assert_eq!(c.frames.len(), 5);
        assert_eq!(c.frames[3], b"frame-3");
        assert!(c.torn.is_none());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_header_of_every_length_reads_as_torn_not_foreign() {
        // The 5-7 byte case — full magic plus a partial version/kind
        // field — is the exact shape a crash mid-header-write leaves.
        let path = tmp("torn-header.gsf");
        let header: Vec<u8> = {
            let mut h = MAGIC.to_vec();
            h.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
            h.extend_from_slice(&ArtifactKind::Document.tag().to_le_bytes());
            h
        };
        for k in 0..HEADER_LEN as usize {
            std::fs::write(&path, &header[..k]).unwrap();
            let c = read_container(&path, None).unwrap_or_else(|e| panic!("cut {k}: {e}"));
            assert!(c.frames.is_empty(), "cut {k} invented frames");
            assert_eq!(
                c.torn,
                Some(TornTail {
                    valid_bytes: 0,
                    dropped_bytes: k as u64
                }),
                "cut {k}"
            );
        }
        // Non-magic bytes at the same lengths are typed foreign.
        for k in 1..HEADER_LEN as usize {
            std::fs::write(&path, vec![b'{'; k]).unwrap();
            assert_eq!(
                read_container(&path, None).unwrap_err(),
                ReadError::NotAContainer,
                "junk len {k}"
            );
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn every_byte_truncation_recovers_or_reports_torn() {
        let path = tmp("trunc.gsf");
        let _ = std::fs::remove_file(&path);
        for i in 0..3u32 {
            append_frame(
                &path,
                ArtifactKind::DeltaChain,
                format!("payload number {i}").as_bytes(),
                &WriteOptions::default(),
            )
            .unwrap();
        }
        let full = std::fs::read(&path).unwrap();
        let cut_path = tmp("trunc-cut.gsf");
        for k in 0..full.len() {
            std::fs::write(&cut_path, &full[..k]).unwrap();
            let got = read_container(&cut_path, Some(ArtifactKind::DeltaChain));
            match got {
                Ok(c) => {
                    // Every surviving frame is an intact prefix frame.
                    for (i, frame) in c.frames.iter().enumerate() {
                        assert_eq!(frame, format!("payload number {i}").as_bytes());
                    }
                    if k < full.len() {
                        assert!(c.torn.is_some() || k == full.len(), "cut {k} unreported");
                    }
                }
                Err(ReadError::NotAContainer) => {
                    panic!("cut {k} misread as foreign file")
                }
                Err(e) => panic!("cut {k}: unexpected {e}"),
            }
        }
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&cut_path);
    }

    #[test]
    fn bit_flips_are_corrupt_not_torn() {
        let path = tmp("flip.gsf");
        save_doc(
            &path,
            ArtifactKind::Document,
            &Doc {
                id: 1,
                body: "x".repeat(64),
            },
            &WriteOptions::default(),
        )
        .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_container(&path, None),
            Err(ReadError::Corrupt { .. })
        ));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn version_and_magic_are_checked() {
        let path = tmp("vers.gsf");
        save_doc(
            &path,
            ArtifactKind::Document,
            &Doc {
                id: 1,
                body: "v".into(),
            },
            &WriteOptions::default(),
        )
        .unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[4] = 99;
        std::fs::write(&path, &bytes).unwrap();
        assert_eq!(
            read_container(&path, None).unwrap_err(),
            ReadError::VersionMismatch { found: 99 }
        );
        std::fs::write(&path, b"{\"plain\": \"json\"}").unwrap();
        assert_eq!(
            read_container(&path, None).unwrap_err(),
            ReadError::NotAContainer
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn kind_tags_roundtrip() {
        for kind in ArtifactKind::ALL {
            assert_eq!(ArtifactKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(ArtifactKind::from_tag(0), None);
        assert_eq!(ArtifactKind::from_tag(999), None);
    }
}
