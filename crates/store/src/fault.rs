//! Deterministic storage-fault decisions for the write path.
//!
//! Every write consults the campaign's [`FaultPlan`] through the same
//! pure-hash oracle as the network axes: a decision is a function of
//! `(plan seed, fault kind, file name, image length)`, so the same plan
//! produces the same disk weather on one worker or sixteen. The file
//! *name* (not the full path) keys the decision so a drill reproduces
//! across temp directories; the image length is the index so successive
//! states of the same artifact get fresh decisions.

use gamma_chaos::{FaultKind, FaultOracle, FaultPlan, FaultScope};
use std::path::Path;

/// What the write path must simulate for one write.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WriteFault {
    /// Write normally.
    None,
    /// Fail before a byte lands (ENOSPC).
    DiskFull,
    /// Write only a `fraction` prefix of the image, then fail — a crash
    /// mid-write. Fraction is in `[0, 1)`.
    TornAt(f64),
    /// Flip one bit at a `fraction` position of the image and report
    /// success — silent corruption the checksum catches at read time.
    BitFlip(f64),
    /// Write the temp file completely but drop the rename; the
    /// destination keeps its old contents.
    RenameDropped,
}

/// Decides the fault (if any) for one write. Severity picks the tear /
/// flip position. When several kinds fire for the same write the most
/// destructive wins (full disk > dropped rename > torn tail > bit flip),
/// mirroring how a real cascading failure would mask the milder symptom.
pub fn decide_write_fault(plan: Option<&FaultPlan>, path: &Path, image_len: usize) -> WriteFault {
    let Some(plan) = plan else {
        return WriteFault::None;
    };
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let scope = FaultScope::global(&name).indexed(image_len as u64);
    if plan.fires(FaultKind::DiskFull, scope) {
        return WriteFault::DiskFull;
    }
    if plan.fires(FaultKind::RenameDropped, scope) {
        return WriteFault::RenameDropped;
    }
    if plan.fires(FaultKind::TornWrite, scope) {
        return WriteFault::TornAt(plan.severity(FaultKind::TornWrite, scope));
    }
    if plan.fires(FaultKind::BitFlip, scope) {
        return WriteFault::BitFlip(plan.severity(FaultKind::BitFlip, scope));
    }
    WriteFault::None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    #[test]
    fn quiet_plans_never_fault() {
        let plan = FaultPlan::paper_default(9);
        for i in 0..200 {
            let p = PathBuf::from(format!("artifact-{i}.gsf"));
            assert_eq!(decide_write_fault(Some(&plan), &p, 100 + i), WriteFault::None);
        }
        assert_eq!(
            decide_write_fault(None, &PathBuf::from("x.gsf"), 64),
            WriteFault::None
        );
    }

    #[test]
    fn decisions_depend_on_name_not_directory() {
        let plan = FaultPlan::storage(33);
        for i in 0..50 {
            let name = format!("ckpt-{i}.gsf");
            let a = decide_write_fault(Some(&plan), &PathBuf::from(format!("/tmp/a/{name}")), 512);
            let b = decide_write_fault(Some(&plan), &PathBuf::from(format!("/run/b/{name}")), 512);
            assert_eq!(a, b, "directory leaked into the decision for {name}");
        }
    }

    #[test]
    fn armed_plans_fault_a_plausible_fraction() {
        let plan = FaultPlan::storage(77);
        let faults = (0..500)
            .filter(|i| {
                let p = PathBuf::from(format!("w{i}.gsf"));
                decide_write_fault(Some(&plan), &p, 256) != WriteFault::None
            })
            .count();
        // Four axes at 10/5/5/5%: roughly a quarter of writes misbehave.
        let rate = faults as f64 / 500.0;
        assert!((0.12..0.40).contains(&rate), "observed fault rate {rate}");
    }
}
