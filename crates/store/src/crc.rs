//! CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
//!
//! The container format checksums every frame payload so a single
//! flipped bit anywhere in an artifact is detected at read time instead
//! of surfacing as a serde error (or worse, silently wrong data). The
//! implementation is the standard reflected table algorithm — no
//! external dependency, byte-for-byte compatible with zlib's `crc32`.

/// The reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// One 256-entry table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 of `data` (zlib-compatible).
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"gamma"), crc32(b"gamma"));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let base = b"the quick brown fox jumps over the lazy dog".to_vec();
        let want = crc32(&base);
        for byte in 0..base.len() {
            for bit in 0..8 {
                let mut flipped = base.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), want, "flip at {byte}:{bit} undetected");
            }
        }
    }
}
