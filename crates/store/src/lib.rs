//! # gamma-store
//!
//! The durable artifact plane: every on-disk artifact in the workspace —
//! campaign checkpoints, suite progress markers, longitudinal snapshot
//! chains, tenant revision stores, rendered reports — goes through one
//! framed container format and one atomic write protocol, so a crash or
//! a flipped bit is a *typed, recoverable event* instead of a serde
//! panic three weeks into a campaign.
//!
//! The design splits durability into three orthogonal pieces:
//!
//! - **Format** ([`container`]): magic + version + artifact kind, then
//!   length-prefixed CRC-checksummed frames. One format for every
//!   artifact means one reader, one fsck, one recovery vocabulary.
//! - **Protocol**: [`write_frames`] (temp file + optional fsync +
//!   rename — atomic replacement) for documents, [`append_frame`] for
//!   chains that grow one frame per event and recover torn tails by
//!   truncation.
//! - **Weather** ([`fault`]): every write consults the campaign's
//!   seed-deterministic [`gamma_chaos::FaultPlan`], so torn writes, bit
//!   flips, dropped renames, and full disks are injected under the same
//!   byte-identity discipline as DNS timeouts and probe drops — and the
//!   recovery paths are exercised in CI, not discovered in production.
//!
//! Reads distinguish `Missing` (fresh start) / torn tail (truncate to
//! the last valid frame, keep going) / `Corrupt` (checksum mismatch —
//! stop, never silently clobber) / `VersionMismatch`. [`fsck`] walks a
//! directory offline, reports every container's health, and repairs
//! torn tails and corrupt suffixes in place.
//!
//! Observability: `store.writes`, `store.appends`, `store.bytes_written`,
//! `store.reads`, `store.recovered_torn`, `store.corrupt_frames`,
//! `store.write_faults`, and — incremented by recovery policies at the
//! consuming layers, one counter per condition so gates can tell
//! recovery from degradation — `store.rebase` (corrupt chain re-based
//! from the intact full snapshot), `store.write_degraded` (a durable
//! sink's write failed; measurement data sound, resumability degraded),
//! and `store.quarantined` (unreadable tenant store set aside).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod container;
mod crc;
pub mod fault;
pub mod fsck;

pub use container::{
    append_frame, atomic_write_bytes, load_doc, read_container, save_doc, write_frames,
    ArtifactKind, Container, LoadError, Loaded, ReadError, TornTail, WriteError, WriteOptions,
    FORMAT_VERSION, MAGIC,
};
pub use crc::crc32;
pub use fault::{decide_write_fault, WriteFault};
pub use fsck::{repair, render, scan_dir, scan_file, FsckEntry, FsckReport, FsckStatus, RepairSummary};
