//! World generation: realizes a [`WorldSpec`] into a [`World`].
//!
//! The generator works demand-first: it decides, per (tracker organization,
//! measurement country), which city serves that country's traffic — local
//! replicas for infrastructure-rich countries, foreign hubs sampled from
//! the spec's destination mix otherwise — then materializes deployments,
//! address blocks, GeoDNS zones with per-country steering, PTR records,
//! and finally the website population whose pages embed the trackers.
//!
//! Downstream code (the Gamma suite, the geolocation pipeline, the
//! analyses) never sees the spec's calibration targets; it can only observe
//! what a real crawler would: DNS answers, addresses, latencies, hostnames.

use crate::domains::{expand_tracker_domains, org_slug, TrackerDomain};
use crate::hosting::{hosting_asn_for, own_asn, HostingPlan};
use crate::org::{Org, OrgId, OrgKind, ORG_SEEDS};
use crate::ranking::RankingProviders;
use crate::site::{SiteCategory, SiteId, SiteKind, Website};
use crate::spec::{CountrySpec, WorldSpec};
use crate::world::{TargetList, World};
use gamma_dns::rdns::{HostnameScheme, RdnsTable};
use gamma_dns::resolver::{GeoResolver, Replica};
use gamma_dns::{gov_suffixes, DomainName};
use gamma_geo::{cities, cities_in, city, city_by_name, CityId, CountryCode};
use gamma_netsim::asn::{AsKind, AsnInfo, ASN_AWS, ASN_GCP};
use gamma_netsim::{AsRegistry, Asn, IpRegistry};
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// The global backbone AS whose routers appear as traceroute interior hops.
pub const ASN_BACKBONE: Asn = Asn(3356);

/// Operator organizations that also own first-party tracking domains
/// (§6.7 names Microsoft, Booking.com and the BBC alongside the majors).
const EXTRA_TRACKER_OPERATORS: &[(&str, &str, &str)] = &[
    ("Microsoft", "US", "clarity-ms.net"),
    ("Booking", "NL", "booking-pixel.net"),
    ("BBC", "GB", "bbci-stats.net"),
];

/// Google's regional consumer domains per country (§6.7's google.com.eg,
/// google.co.th, google.com.qa, google.jo examples).
const GOOGLE_CCTLD: &[(&str, &str)] = &[
    ("EG", "google.com.eg"),
    ("TH", "google.co.th"),
    ("QA", "google.com.qa"),
    ("JO", "google.jo"),
    ("PK", "google.com.pk"),
    ("SA", "google.com.sa"),
    ("AE", "google.ae"),
    ("LK", "google.lk"),
    ("AZ", "google.az"),
    ("DZ", "google.dz"),
    ("UG", "google.co.ug"),
    ("RW", "google.rw"),
];

/// European hosting-hub distribution for tracker organizations. Real
/// organizations run ONE European deployment and serve every client
/// country from it; without this, each source country would sample an
/// independent European destination per org and the per-country unions of
/// hosted domains (Figure 7) would blow up far beyond the paper's counts
/// — and invert its Kenya > Germany > France ordering.
const EURO_HUBS: &[(&str, f64)] = &[
    ("DE", 0.26),
    ("FR", 0.24),
    ("GB", 0.26),
    ("NL", 0.14),
    ("IE", 0.10),
];

/// Countries treated as "Europe" for hub consolidation.
const EURO_SET: &[&str] = &[
    "FR", "DE", "GB", "NL", "IE", "ES", "IT", "FI", "BG", "CH", "AT",
];

fn is_euro(c: CountryCode) -> bool {
    EURO_SET.contains(&c.as_str())
}

/// Samples each org's single European hub, keyed by org id.
fn assign_euro_hubs(org_count: usize, seed: u64) -> Vec<CountryCode> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xE0_40B);
    let total: f64 = EURO_HUBS.iter().map(|(_, w)| w).sum();
    (0..org_count)
        .map(|_| {
            let mut x = rng.gen::<f64>() * total;
            for (c, w) in EURO_HUBS {
                x -= w;
                if x <= 0.0 {
                    return CountryCode::parse(c).expect("valid hub code");
                }
            }
            CountryCode::new("DE")
        })
        .collect()
}

/// Hub city of a country: the first catalog city (catalog order puts the
/// principal hosting hub first for every destination country).
pub fn hub_city(country: CountryCode) -> CityId {
    cities_in(country)
        .next()
        .unwrap_or_else(|| panic!("no catalog city for {country}"))
        .id
}

/// Generates a world from a spec. Deterministic in `spec.seed`.
pub fn generate(spec: &WorldSpec) -> World {
    spec.validate().expect("world spec must validate");
    let mut rng = ChaCha8Rng::seed_from_u64(spec.seed);

    let mut as_registry = AsRegistry::new();
    let mut ip_registry = IpRegistry::new();
    let mut resolver = GeoResolver::new();
    let mut rdns = RdnsTable::new();
    let mut hosting = HostingPlan::new();
    let mut domain_org: HashMap<DomainName, OrgId> = HashMap::new();

    register_infrastructure_asns(&mut as_registry);

    // --- organizations: curated tracker catalog + operator extensions ---
    let mut orgs: Vec<Org> = ORG_SEEDS
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let id = OrgId(i as u32);
            let asn = hosting_asn_for(id);
            Org {
                id,
                name: s.name.to_string(),
                hq: CountryCode::parse(s.hq).expect("valid seed HQ"),
                kind: s.kind,
                asn,
                scheme: s.scheme,
                rdns_base: rdns_base_for(s.name, asn),
            }
        })
        .collect();
    let mut tracker_domains = expand_tracker_domains();
    for (name, hq, dom) in EXTRA_TRACKER_OPERATORS {
        let id = OrgId(orgs.len() as u32);
        let asn = own_asn(id);
        orgs.push(Org {
            id,
            name: name.to_string(),
            hq: CountryCode::parse(hq).expect("valid HQ"),
            kind: OrgKind::Analytics,
            asn,
            scheme: HostnameScheme::Opaque,
            rdns_base: rdns_base_for(name, asn),
        });
        tracker_domains.push(TrackerDomain {
            domain: DomainName::parse(dom).expect("valid operator tracker domain"),
            org: id,
            in_filter_lists: true,
        });
    }
    let tracker_org_count = orgs.len();
    for org in &orgs {
        let info = AsnInfo {
            asn: org.asn,
            name: format!("{}-NET", org.name.to_uppercase()),
            kind: AsKind::Content,
            country: org.hq,
        };
        // Cloud ASNs are pre-registered; only register own networks.
        if org.asn != ASN_AWS && org.asn != ASN_GCP {
            as_registry.register(info).expect("unique org ASN");
        }
    }
    for t in &tracker_domains {
        domain_org.insert(t.domain.clone(), t.org);
    }

    // --- backbone routers: one address per catalog city ---
    let mut router_ips: HashMap<CityId, Ipv4Addr> = HashMap::new();
    for c in cities() {
        let alloc = ip_registry.allocate(ASN_BACKBONE, c.id);
        let ip = alloc.net.nth(1).expect("/24 has host 1");
        router_ips.insert(c.id, ip);
        rdns.insert_rendered(ip, HostnameScheme::IataCode, c.id, "core.backbone1.net", 1);
    }

    // --- serving assignment: (tracker org, country) -> city ---
    let exclusive_to = exclusivity_map(spec, &orgs);
    let euro_hubs = assign_euro_hubs(orgs.len(), spec.seed);
    let mut serving: HashMap<(OrgId, CountryCode), CityId> = HashMap::new();
    for cs in &spec.countries {
        let local_city = city_by_name(&cs.volunteer_city).expect("validated city").id;
        for org in orgs.iter().take(tracker_org_count) {
            if org.kind == OrgKind::SiteOperator {
                continue;
            }
            let city = serving_city_for(org, cs, local_city, &exclusive_to, &euro_hubs, &mut rng);
            serving.insert((org.id, cs.country), city);
        }
    }

    // --- tracker FQDNs, deployments, zones, steering, PTR records ---
    // HashMap iteration order is process-random; the loop below draws from
    // the RNG and allocates addresses, so it must walk orgs in a stable
    // order or the generated world would differ between runs.
    let fqdn_table = expand_fqdns(&tracker_domains, &orgs);
    let mut fqdn_orgs: Vec<&OrgId> = fqdn_table.keys().collect();
    fqdn_orgs.sort_unstable();
    for org_id in fqdn_orgs {
        let fqdns = &fqdn_table[org_id];
        let org = &orgs[org_id.0 as usize];
        let mut org_cities: Vec<CityId> = spec
            .countries
            .iter()
            .filter_map(|cs| serving.get(&(*org_id, cs.country)).copied())
            .collect();
        org_cities.push(hub_city(org.hq));
        org_cities.sort_unstable();
        org_cities.dedup();

        for fqdn in fqdns {
            let mut replicas = Vec::with_capacity(org_cities.len());
            for &c in &org_cities {
                let dep = hosting.ensure(*org_id, c, org.asn, &mut ip_registry);
                let ip = hosting.alloc_ip(dep, &mut ip_registry);
                replicas.push(Replica { addr: ip, city: c });
                // ~75% of server addresses carry a PTR record (§4.1.3:
                // reverse DNS is "not always available").
                if rng.gen::<f64>() < 0.75 {
                    rdns.insert_rendered(ip, org.scheme, c, &org.rdns_base, rng.gen_range(1..90));
                }
            }
            resolver.add_replicas(fqdn.clone(), replicas);
            for cs in &spec.countries {
                if let Some(&serve_city) = serving.get(&(*org_id, cs.country)) {
                    resolver.steer(fqdn.clone(), cs.country, serve_city);
                }
            }
        }
    }

    // --- website population ---
    let mut sites: Vec<Website> = Vec::new();
    let mut rankings = RankingProviders::new(spec.seed ^ 0x5241_4e4b);
    let mut targets: HashMap<CountryCode, TargetList> = HashMap::new();

    let globals = build_global_sites(&mut orgs, &mut sites, &fqdn_table, &mut rng);
    let google_id = org_id_by_name(&orgs, "Google").expect("Google exists");

    for cs in &spec.countries {
        let local_city = city_by_name(&cs.volunteer_city).expect("validated city").id;
        let foreign_pool =
            build_tracker_pool(&fqdn_table, &orgs, &serving, &exclusive_to, cs, true);
        let local_pool = build_tracker_pool(&fqdn_table, &orgs, &serving, &exclusive_to, cs, false);
        // Government portals avoid US-hosted third parties except in the
        // UAE (§6.3's T_gov observation).
        let foreign_pool_gov = if cs.country == CountryCode::new("AE") {
            foreign_pool.clone()
        } else {
            build_tracker_pool_excluding(
                &fqdn_table,
                &orgs,
                &serving,
                &exclusive_to,
                cs,
                true,
                Some(CountryCode::new("US")),
            )
        };

        // Regional candidates: global sites that rank here + generated
        // country-specific sites (75-candidate pool, §3.2).
        let mut candidates: Vec<SiteId> = Vec::new();
        for g in &globals {
            let always = matches!(
                sites[g.0 as usize].domain.as_str(),
                "google.com" | "wikipedia.org"
            );
            if always || rng.gen::<f64>() < 0.78 {
                candidates.push(*g);
            }
        }
        if let Some((_, dom)) = GOOGLE_CCTLD.iter().find(|(c, _)| *c == cs.country.as_str()) {
            let id = push_site(
                &mut sites,
                Website {
                    id: SiteId(0),
                    domain: DomainName::parse(dom).expect("valid google ccTLD"),
                    country: cs.country,
                    kind: SiteKind::Regional,
                    category: SiteCategory::Search,
                    operator: google_id,
                    global: false,
                    own_hosts: vec![DomainName::parse(dom).expect("valid")],
                    trackers: pick_org_fqdns(&fqdn_table, google_id, 6, &mut rng),
                },
            );
            candidates.push(id);
        }
        let need = 75usize.saturating_sub(candidates.len());
        for i in 0..need {
            let id = generate_regional_site(&mut sites, &mut orgs, cs, i, &mut rng);
            candidates.push(id);
        }
        // Pseudo-popularity order with globals biased to the top.
        let (head, tail): (Vec<SiteId>, Vec<SiteId>) = candidates
            .iter()
            .partition(|s| sites[s.0 as usize].global || sites[s.0 as usize].operator == google_id);
        let mut ordered = head;
        let mut tail = tail;
        tail.shuffle(&mut rng);
        ordered.extend(tail);
        rankings.set_regional(cs.country, ordered.clone());
        if !cs.similarweb_covers {
            rankings.mark_similarweb_gap(cs.country);
        }
        let (_, mut t_reg) = rankings.effective_regional(cs.country, spec.reg_sites_per_country);
        // "We removed all adult sites and websites banned in each country":
        // drop a couple of entries deterministically.
        let drop = 2.min(t_reg.len().saturating_sub(1));
        for _ in 0..drop {
            let idx = rng.gen_range(t_reg.len() / 2..t_reg.len());
            t_reg.remove(idx);
        }

        // Government sites.
        let mut gov_ids: Vec<SiteId> = Vec::new();
        let suffixes = gov_suffixes(cs.country);
        assert!(!suffixes.is_empty(), "no gov suffix for {}", cs.country);
        let gov_total = if cs.gov_sites_in_tranco >= spec.gov_sites_per_country {
            spec.gov_sites_per_country
        } else {
            // Sparse-Tranco countries only gain a handful via scraping.
            (cs.gov_sites_in_tranco + 6).min(spec.gov_sites_per_country)
        };
        for i in 0..gov_total {
            let suffix = suffixes[i % suffixes.len()];
            let name = format!("{}.{}", GOV_NAMES[i % GOV_NAMES.len()], suffix);
            let id = push_site(
                &mut sites,
                Website {
                    id: SiteId(0),
                    domain: DomainName::parse(&name).expect("valid gov domain"),
                    country: cs.country,
                    kind: SiteKind::Government,
                    category: SiteCategory::GovernmentService,
                    operator: ensure_operator(&mut orgs, &format!("Gov{}", cs.country), cs.country),
                    global: false,
                    own_hosts: Vec::new(),
                    trackers: Vec::new(),
                },
            );
            gov_ids.push(id);
        }
        let in_tranco: Vec<SiteId> = gov_ids
            .iter()
            .take(cs.gov_sites_in_tranco)
            .copied()
            .collect();
        let scraped: Vec<SiteId> = gov_ids
            .iter()
            .skip(cs.gov_sites_in_tranco)
            .copied()
            .collect();
        rankings.set_gov(cs.country, in_tranco, scraped);
        let t_gov = rankings.gov_sites(cs.country, spec.gov_sites_per_country);

        // Embed trackers into this country's own sites (globals keep their
        // fixed embeddings). Quota-based: exactly round(rate x n) sites of
        // each kind receive foreign-served trackers, so the calibration
        // targets are met without binomial noise drowning low-rate
        // countries like Australia (12%) in seed variance.
        for kind in [SiteKind::Regional, SiteKind::Government] {
            let list = match kind {
                SiteKind::Regional => &t_reg,
                SiteKind::Government => &t_gov,
            };
            let mut own: Vec<SiteId> = list
                .iter()
                .copied()
                .filter(|sid| {
                    let s = &sites[sid.0 as usize];
                    !s.global && s.country == cs.country && s.trackers.is_empty() && s.kind == kind
                })
                .collect();
            own.shuffle(&mut rng);
            let rate = match kind {
                SiteKind::Regional => cs.reg_nonlocal_rate,
                SiteKind::Government => cs.gov_nonlocal_rate,
            };
            let pool = match kind {
                SiteKind::Regional => &foreign_pool,
                SiteKind::Government => &foreign_pool_gov,
            };
            let quota = (rate * own.len() as f64).round() as usize;
            for (i, sid) in own.into_iter().enumerate() {
                let mut trackers: Vec<DomainName> = Vec::new();
                if i < quota && !pool.is_empty() {
                    let k = cs.nonlocal_count.sample(&mut rng);
                    trackers.extend(pick_weighted(pool, k, &mut rng));
                }
                if !local_pool.is_empty() && rng.gen::<f64>() < 0.85 {
                    // Locally-served tracker variety scales with page
                    // richness: US/Canadian/British pages carry the most
                    // third parties, which (with their high load success)
                    // is why those vantages launched the most traceroutes
                    // in the study (§5: USA ≈2.2K vs Saudi Arabia ≈0.4K).
                    let j = 1 + (rng.gen::<f64>() * 7.0 * cs.page_richness) as usize;
                    trackers.extend(pick_weighted(&local_pool, j, &mut rng));
                }
                trackers.dedup();
                sites[sid.0 as usize].trackers = trackers;
            }
        }

        // First-party hosts + hosting for the country's own sites.
        // Global sites are hosted once, at the worldwide hubs, after this
        // loop — claiming them here would pin facebook.com to whichever
        // country happened to be processed first.
        for &sid in t_reg.iter().chain(t_gov.iter()) {
            if sites[sid.0 as usize].global {
                continue;
            }
            if sites[sid.0 as usize].own_hosts.is_empty()
                || sites[sid.0 as usize].operator == google_id
            {
                finalize_site_hosting(
                    &mut sites,
                    sid,
                    &orgs,
                    cs,
                    local_city,
                    &serving,
                    google_id,
                    &mut hosting,
                    &mut ip_registry,
                    &mut resolver,
                    &mut domain_org,
                    &mut rng,
                );
            }
        }

        targets.insert(
            cs.country,
            TargetList {
                regional: t_reg,
                government: t_gov,
            },
        );
    }

    // Host the global sites at the major hubs with nearest-replica answers.
    finalize_global_hosting(
        &globals,
        &mut sites,
        &orgs,
        &mut hosting,
        &mut ip_registry,
        &mut resolver,
        &mut domain_org,
    );

    // Operator orgs appended during generation need AS registrations.
    for org in orgs.iter().skip(tracker_org_count) {
        let _ = as_registry.register(AsnInfo {
            asn: org.asn,
            name: format!("{}-NET", org.name.to_uppercase()),
            kind: AsKind::Content,
            country: org.hq,
        });
    }

    World {
        spec: spec.clone(),
        as_registry,
        ip_registry,
        resolver,
        rdns,
        orgs,
        tracker_domains,
        sites,
        targets,
        serving,
        hosting,
        router_ips,
        domain_org,
    }
}

fn register_infrastructure_asns(reg: &mut AsRegistry) {
    for (asn, name, kind, cc) in [
        (ASN_AWS, "AMAZON-02", AsKind::Cloud, "US"),
        (ASN_GCP, "GOOGLE-CLOUD-PLATFORM", AsKind::Cloud, "US"),
        (ASN_BACKBONE, "BACKBONE-1", AsKind::Transit, "US"),
    ] {
        reg.register(AsnInfo {
            asn,
            name: name.into(),
            kind,
            country: CountryCode::new(cc),
        })
        .expect("infrastructure ASNs are unique");
    }
}

fn rdns_base_for(name: &str, asn: Asn) -> String {
    let slug = org_slug(name);
    if asn == ASN_AWS {
        format!("{slug}.awsglobal-edge.net")
    } else if asn == ASN_GCP {
        format!("{slug}.gcpcloud-host.net")
    } else {
        format!("{slug}-servers.net")
    }
}

/// Map org -> country it is exclusive to (from the specs).
fn exclusivity_map(spec: &WorldSpec, orgs: &[Org]) -> HashMap<OrgId, CountryCode> {
    let mut m = HashMap::new();
    for cs in &spec.countries {
        for name in &cs.exclusive_orgs {
            if let Some(id) = org_id_by_name(orgs, name) {
                m.insert(id, cs.country);
            }
        }
    }
    m
}

fn org_id_by_name(orgs: &[Org], name: &str) -> Option<OrgId> {
    orgs.iter().find(|o| o.name == name).map(|o| o.id)
}

/// Chooses where `org` serves `cs.country` from.
fn serving_city_for(
    org: &Org,
    cs: &CountrySpec,
    local_city: CityId,
    exclusive_to: &HashMap<OrgId, CountryCode>,
    euro_hubs: &[CountryCode],
    rng: &mut ChaCha8Rng,
) -> CityId {
    // A sampled European destination consolidates onto the org's single
    // European hub when that hub is plausible for the source country.
    let consolidate = |dest: CountryCode| -> CountryCode {
        if is_euro(dest) {
            let hub = euro_hubs[org.id.0 as usize % euro_hubs.len()];
            if cs.dest_weights.iter().any(|(c, _)| *c == hub) {
                return hub;
            }
        }
        dest
    };
    // Forced steering first (Sri Lanka's Yahoo -> Japan, Egypt's Google ->
    // Germany, AdStudio -> India).
    if let Some((_, dest)) = cs.org_dest_overrides.iter().find(|(n, _)| *n == org.name) {
        return hub_city(*dest);
    }
    // Exclusive orgs serve "their" country from abroad (they only show up
    // in that country's non-local flows, §6.5) and are irrelevant elsewhere.
    if let Some(home) = exclusive_to.get(&org.id) {
        if *home == cs.country {
            if org.hq != cs.country {
                return hub_city(org.hq);
            }
            if let Some(dest) = sample_dest(cs, rng) {
                return hub_city(consolidate(dest));
            }
        }
        return local_city;
    }
    if cs.dest_weights.is_empty() {
        return local_city;
    }
    let is_major = org.kind == OrgKind::MajorTracker;
    if is_major {
        // Majors dominate embedding volume, so their destination is the
        // country's top-weighted hub rather than a sample — one unlucky
        // draw would otherwise swing the whole country's flow mix.
        return if cs.majors_serve_locally {
            local_city
        } else {
            match top_dest(cs) {
                Some(dest) => hub_city(dest),
                None => local_city,
            }
        };
    }
    let p = if cs.majors_serve_locally { 0.35 } else { 0.78 };
    if rng.gen::<f64>() < p {
        match sample_dest(cs, rng) {
            Some(dest) => hub_city(consolidate(dest)),
            None => local_city,
        }
    } else {
        local_city
    }
}

/// The highest-weighted destination of a country's mix.
fn top_dest(cs: &CountrySpec) -> Option<CountryCode> {
    cs.dest_weights
        .iter()
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite weights"))
        .map(|(c, _)| *c)
}

fn sample_dest(cs: &CountrySpec, rng: &mut ChaCha8Rng) -> Option<CountryCode> {
    let total: f64 = cs.dest_weights.iter().map(|(_, w)| w).sum();
    if total <= 0.0 {
        return None;
    }
    let mut x = rng.gen::<f64>() * total;
    for (c, w) in &cs.dest_weights {
        x -= w;
        if x <= 0.0 {
            return Some(*c);
        }
    }
    cs.dest_weights.last().map(|(c, _)| *c)
}

/// FQDNs served for each tracker org: the bare domain plus conventional
/// subdomains (majors run richer host sets, which is what lets a single
/// YouTube page fire dozens of distinct Google hosts — §6.2's outliers).
fn expand_fqdns(domains: &[TrackerDomain], orgs: &[Org]) -> HashMap<OrgId, Vec<DomainName>> {
    let mut m: HashMap<OrgId, Vec<DomainName>> = HashMap::new();
    for (i, t) in domains.iter().enumerate() {
        let entry = m.entry(t.org).or_default();
        entry.push(t.domain.clone());
        if t.domain.label_count() > 2 {
            continue; // already a deep FQDN (safeframe.googlesyndication.com)
        }
        let is_major = orgs[t.org.0 as usize].kind == OrgKind::MajorTracker;
        let prefixes: &[&str] = if is_major {
            &["cdn", "pixel"]
        } else if i % 2 == 0 {
            &["sync"]
        } else {
            &[]
        };
        for p in prefixes {
            if let Ok(f) = t.domain.prepend(p) {
                entry.push(f);
            }
        }
    }
    m
}

/// Builds the weighted tracker-FQDN pool for a country: `foreign == true`
/// selects orgs served from outside the country, else locally-served orgs.
/// One organization's embeddable tracker hosts, with its pick weight.
#[derive(Debug, Clone)]
struct OrgPool {
    fqdns: Vec<DomainName>,
    weight: f64,
}

fn build_tracker_pool(
    fqdn_table: &HashMap<OrgId, Vec<DomainName>>,
    orgs: &[Org],
    serving: &HashMap<(OrgId, CountryCode), CityId>,
    exclusive_to: &HashMap<OrgId, CountryCode>,
    cs: &CountrySpec,
    foreign: bool,
) -> Vec<OrgPool> {
    build_tracker_pool_excluding(fqdn_table, orgs, serving, exclusive_to, cs, foreign, None)
}

/// Variant that drops orgs served from a given destination country.
/// Government sites avoid US-hosted trackers almost everywhere — §6.3
/// found that for T_gov "the USA received flow from only one country, the
/// UAE" — so their embedding pool excludes US-served organizations outside
/// the UAE.
fn build_tracker_pool_excluding(
    fqdn_table: &HashMap<OrgId, Vec<DomainName>>,
    orgs: &[Org],
    serving: &HashMap<(OrgId, CountryCode), CityId>,
    exclusive_to: &HashMap<OrgId, CountryCode>,
    cs: &CountrySpec,
    foreign: bool,
    exclude_dest: Option<CountryCode>,
) -> Vec<OrgPool> {
    let mut pool: Vec<(OrgId, OrgPool)> = Vec::new();
    for (org_id, fqdns) in fqdn_table {
        let org = &orgs[org_id.0 as usize];
        // Scenario-blocked orgs never enter the pool. The filter runs
        // before any randomness is consumed, so an empty `blocked_orgs`
        // leaves generated worlds byte-identical.
        if cs.blocked_orgs.iter().any(|b| b == &org.name) {
            continue;
        }
        if let Some(home) = exclusive_to.get(org_id) {
            if *home != cs.country {
                continue;
            }
        }
        let Some(&serve_city) = serving.get(&(*org_id, cs.country)) else {
            continue;
        };
        if let Some(excluded) = exclude_dest {
            if city(serve_city).country == excluded {
                continue;
            }
        }
        let is_foreign = city(serve_city).country != cs.country;
        if is_foreign != foreign {
            continue;
        }
        // Pick weights follow reach: Google's tags are near-ubiquitous,
        // the other majors are common, the long tail is rare.
        let weight = if org.name == "Google" {
            28.0
        } else if org.kind == OrgKind::MajorTracker {
            4.0
        } else {
            1.0
        };
        // Catalog order is deterministic and puts each org's flagship
        // domains first (google-analytics, googletagmanager, ...).
        pool.push((
            *org_id,
            OrgPool {
                fqdns: fqdns.clone(),
                weight,
            },
        ));
    }
    pool.sort_by_key(|(id, _)| *id);
    pool.into_iter().map(|(_, p)| p).collect()
}

/// Draws up to `k` tracker hosts by first choosing a handful of
/// organizations (weighted; majors dominate) and then drawing hosts from
/// those organizations' families. Real pages embed FEW third parties with
/// MANY hosts each — the paper's outliers are single-network bursts like
/// YouTube firing 32 Google domains (§6.2) — and this grouping is also
/// what keeps a hosting hub's *site share* (Figure 5) distinct from its
/// *domain diversity* (Figure 7).
fn pick_weighted(pool: &[OrgPool], k: usize, rng: &mut ChaCha8Rng) -> Vec<DomainName> {
    if pool.is_empty() || k == 0 {
        return Vec::new();
    }
    let org_quota = (1 + k / 5).min(pool.len());
    let total: f64 = pool.iter().map(|p| p.weight).sum();
    let mut org_idx: Vec<usize> = Vec::with_capacity(org_quota);
    let mut attempts = 0;
    while org_idx.len() < org_quota && attempts < org_quota * 30 {
        attempts += 1;
        let mut x = rng.gen::<f64>() * total;
        let mut idx = pool.len() - 1;
        for (i, p) in pool.iter().enumerate() {
            x -= p.weight;
            if x <= 0.0 {
                idx = i;
                break;
            }
        }
        if !org_idx.contains(&idx) {
            org_idx.push(idx);
        }
    }
    let mut chosen: Vec<DomainName> = Vec::with_capacity(k);
    let mut cursor = vec![0usize; org_idx.len()];
    'outer: while chosen.len() < k {
        let mut progressed = false;
        for (slot, &idx) in org_idx.iter().enumerate() {
            let fqdns = &pool[idx].fqdns;
            if cursor[slot] < fqdns.len() {
                // Families usually lead with their flagship hosts
                // (googletagmanager.com is on most pages), with a random
                // rotation otherwise so different sites expose different
                // hosts of the same org.
                let offset = if rng.gen::<f64>() < 0.6 {
                    0
                } else {
                    (rng.gen::<u32>() as usize) % fqdns.len()
                };
                let mut pick = None;
                for step in 0..fqdns.len() {
                    let cand = &fqdns[(offset + step) % fqdns.len()];
                    if !chosen.contains(cand) {
                        pick = Some(cand.clone());
                        break;
                    }
                }
                if let Some(p) = pick {
                    chosen.push(p);
                    cursor[slot] += 1;
                    progressed = true;
                    if chosen.len() >= k {
                        break 'outer;
                    }
                }
            }
        }
        if !progressed {
            break;
        }
    }
    chosen
}

fn pick_org_fqdns(
    fqdn_table: &HashMap<OrgId, Vec<DomainName>>,
    org: OrgId,
    k: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<DomainName> {
    let Some(fqdns) = fqdn_table.get(&org) else {
        return Vec::new();
    };
    let mut v = fqdns.clone();
    v.shuffle(rng);
    v.truncate(k);
    v
}

fn push_site(sites: &mut Vec<Website>, mut site: Website) -> SiteId {
    let id = SiteId(sites.len() as u32);
    site.id = id;
    sites.push(site);
    id
}

fn ensure_operator(orgs: &mut Vec<Org>, name: &str, hq: CountryCode) -> OrgId {
    if let Some(id) = org_id_by_name(orgs, name) {
        return id;
    }
    let id = OrgId(orgs.len() as u32);
    orgs.push(Org {
        id,
        name: name.to_string(),
        hq,
        kind: OrgKind::SiteOperator,
        asn: own_asn(id),
        scheme: HostnameScheme::Opaque,
        rdns_base: format!("{}-hosting.net", org_slug(name)),
    });
    id
}

/// The globally-popular sites of §3.2 and their fixed tracker embeddings.
fn build_global_sites(
    orgs: &mut Vec<Org>,
    sites: &mut Vec<Website>,
    fqdn_table: &HashMap<OrgId, Vec<DomainName>>,
    rng: &mut ChaCha8Rng,
) -> Vec<SiteId> {
    let google = org_id_by_name(orgs, "Google").expect("Google");
    let facebook = org_id_by_name(orgs, "Facebook").expect("Facebook");
    let twitter = org_id_by_name(orgs, "Twitter").expect("Twitter");
    let yahoo = org_id_by_name(orgs, "Yahoo").expect("Yahoo");
    let microsoft = org_id_by_name(orgs, "Microsoft").expect("Microsoft");
    let booking = org_id_by_name(orgs, "Booking").expect("Booking");
    let bbc = org_id_by_name(orgs, "BBC").expect("BBC");
    let wikimedia = ensure_operator(orgs, "Wikimedia", CountryCode::new("US"));
    let openai = ensure_operator(orgs, "OpenAI", CountryCode::new("US"));
    let demdex = org_id_by_name(orgs, "Demdex");
    let bluekai = org_id_by_name(orgs, "Bluekai");
    let taboola = org_id_by_name(orgs, "Taboola");

    let mut out = Vec::new();
    let add = |sites: &mut Vec<Website>,
               domain: &str,
               op: OrgId,
               category: SiteCategory,
               trackers: Vec<DomainName>| {
        let id = push_site(
            sites,
            Website {
                id: SiteId(0),
                domain: DomainName::parse(domain).expect("valid global site domain"),
                country: CountryCode::new("US"),
                kind: SiteKind::Regional,
                category,
                operator: op,
                global: true,
                own_hosts: Vec::new(),
                trackers,
            },
        );
        id
    };

    let g = |k: usize, rng: &mut ChaCha8Rng| pick_org_fqdns(fqdn_table, google, k, rng);
    let f = |k: usize, rng: &mut ChaCha8Rng| pick_org_fqdns(fqdn_table, facebook, k, rng);

    out.push(add(
        sites,
        "google.com",
        google,
        SiteCategory::Search,
        g(8, rng),
    ));
    out.push(add(
        sites,
        "wikipedia.org",
        wikimedia,
        SiteCategory::Reference,
        vec![],
    ));
    out.push(add(
        sites,
        "youtube.com",
        google,
        SiteCategory::Video,
        g(16, rng),
    ));
    out.push(add(
        sites,
        "facebook.com",
        facebook,
        SiteCategory::Social,
        f(6, rng),
    ));
    out.push(add(
        sites,
        "instagram.com",
        facebook,
        SiteCategory::Social,
        f(2, rng),
    ));
    // whatsapp.com famously ships without third-party tags.
    out.push(add(
        sites,
        "whatsapp.com",
        facebook,
        SiteCategory::Social,
        vec![],
    ));
    out.push(add(
        sites,
        "twitter.com",
        twitter,
        SiteCategory::Social,
        pick_org_fqdns(fqdn_table, twitter, 5, rng),
    ));
    let mut li = pick_org_fqdns(fqdn_table, microsoft, 1, rng);
    li.extend(g(2, rng));
    out.push(add(
        sites,
        "linkedin.com",
        microsoft,
        SiteCategory::Social,
        li,
    ));
    out.push(add(
        sites,
        "openai.com",
        openai,
        SiteCategory::Services,
        g(2, rng),
    ));

    let mut bk = pick_org_fqdns(fqdn_table, booking, 1, rng);
    bk.extend(g(2, rng));
    out.push(add(
        sites,
        "booking.com",
        booking,
        SiteCategory::Services,
        bk,
    ));
    let mut bb = pick_org_fqdns(fqdn_table, bbc, 1, rng);
    bb.extend(g(2, rng));
    out.push(add(sites, "bbc.com", bbc, SiteCategory::News, bb));
    // yahoo.com's embeddings vary by region in the paper (§8); give it a
    // broad set whose serving locations differ per country via steering.
    let mut yh = pick_org_fqdns(fqdn_table, yahoo, 4, rng);
    yh.extend(g(2, rng));
    for extra in [demdex, bluekai, taboola].into_iter().flatten() {
        yh.extend(pick_org_fqdns(fqdn_table, extra, 1, rng));
    }
    out.push(add(sites, "yahoo.com", yahoo, SiteCategory::News, yh));
    out
}

/// Vocabulary for generated regional-site names.
const SITE_STEMS: &[&str] = &[
    "daily", "star", "herald", "tribune", "express", "observer", "voice", "metro", "capital",
    "national", "prime", "vista", "pulse", "nova", "urban", "global", "horizon", "summit",
    "market", "trade", "shop", "bazaar", "mega", "swift", "bright", "royal", "union", "delta",
    "orient", "pearl", "crystal", "golden", "silver", "eagle", "falcon", "lion", "tiger",
];
const SITE_SUFFIXES: &[&str] = &[
    "news", "times", "post", "online", "hub", "mart", "store", "bank", "media", "tv", "portal",
    "press", "daily", "world", "zone", "net", "point", "site",
];
/// Government portal names.
const GOV_NAMES: &[&str] = &[
    "moh",
    "moe",
    "mof",
    "mofa",
    "interior",
    "customs",
    "tax",
    "parliament",
    "police",
    "immigration",
    "stats",
    "health",
    "education",
    "energy",
    "transport",
    "agriculture",
    "justice",
    "labor",
    "environment",
    "tourism",
    "telecom",
    "water",
    "housing",
    "planning",
    "sports",
    "culture",
    "youth",
    "science",
    "trade",
    "industry",
    "investment",
    "cityhall",
    "municipal",
    "senate",
    "courts",
    "passport",
    "visa",
    "pension",
    "postal",
    "railway",
    "highway",
    "airport",
    "port",
    "weather",
    "geology",
    "forestry",
    "fisheries",
    "mining",
    "treasury",
    "census",
];

fn generate_regional_site(
    sites: &mut Vec<Website>,
    orgs: &mut Vec<Org>,
    cs: &CountrySpec,
    index: usize,
    rng: &mut ChaCha8Rng,
) -> SiteId {
    let stem = SITE_STEMS[rng.gen_range(0..SITE_STEMS.len())];
    let suffix = SITE_SUFFIXES[rng.gen_range(0..SITE_SUFFIXES.len())];
    let cc = cs.country.as_str().to_ascii_lowercase();
    // ISO code vs ccTLD mismatch: the United Kingdom uses `.uk`.
    let cctld = if cc == "gb" {
        "uk".to_string()
    } else {
        cc.clone()
    };
    let tld = if rng.gen::<f64>() < 0.55 {
        let cand = format!("com.{cctld}");
        if gamma_dns::is_public_suffix(&DomainName::parse(&cand).expect("valid")) {
            cand
        } else {
            cctld.clone()
        }
    } else {
        "com".to_string()
    };
    let domain_str = format!("{stem}{suffix}-{cc}{index}.{tld}");
    let category = SiteCategory::REGIONAL_MIX[index % SiteCategory::REGIONAL_MIX.len()];
    let op = ensure_operator(
        orgs,
        &format!("{stem}{suffix}-{cc}{index}-media"),
        cs.country,
    );
    push_site(
        sites,
        Website {
            id: SiteId(0),
            domain: DomainName::parse(&domain_str).expect("generated domain is valid"),
            country: cs.country,
            kind: SiteKind::Regional,
            category,
            operator: op,
            global: false,
            own_hosts: Vec::new(),
            trackers: Vec::new(),
        },
    )
}

const OWN_HOST_PREFIXES: &[&str] = &["www", "static", "cdn", "img", "api", "assets", "media"];

/// Assigns first-party hosts and hosting to a country-owned site.
#[allow(clippy::too_many_arguments)]
fn finalize_site_hosting(
    sites: &mut [Website],
    sid: SiteId,
    orgs: &[Org],
    cs: &CountrySpec,
    local_city: CityId,
    serving: &HashMap<(OrgId, CountryCode), CityId>,
    google_id: OrgId,
    hosting: &mut HostingPlan,
    ip_registry: &mut IpRegistry,
    resolver: &mut GeoResolver,
    domain_org: &mut HashMap<DomainName, OrgId>,
    rng: &mut ChaCha8Rng,
) {
    let site = &mut sites[sid.0 as usize];
    if site.own_hosts.is_empty() {
        let n = 1
            + ((rng.gen::<f64>() * 2.2 * cs.page_richness).round() as usize)
                .min(OWN_HOST_PREFIXES.len() - 1);
        let mut hosts = vec![site.domain.clone()];
        for p in OWN_HOST_PREFIXES.iter().take(n) {
            if let Ok(h) = site.domain.prepend(p) {
                hosts.push(h);
            }
        }
        site.own_hosts = hosts;
    }
    // Google-operated regional sites are hosted wherever Google serves the
    // country from; everything else sits in-country.
    let host_city = if site.operator == google_id {
        serving
            .get(&(google_id, cs.country))
            .copied()
            .unwrap_or(local_city)
    } else {
        local_city
    };
    let op = &orgs[site.operator.0 as usize];
    let dep = hosting.ensure(site.operator, host_city, op.asn, ip_registry);
    for h in &site.own_hosts {
        if resolver.has_zone(h) {
            continue;
        }
        let ip = hosting.alloc_ip(dep, ip_registry);
        resolver.add_replicas(
            h.clone(),
            [Replica {
                addr: ip,
                city: host_city,
            }],
        );
    }
    domain_org.insert(site.domain.clone(), site.operator);
}

/// Global sites get replicas at the principal hubs, resolved by proximity.
fn finalize_global_hosting(
    globals: &[SiteId],
    sites: &mut [Website],
    orgs: &[Org],
    hosting: &mut HostingPlan,
    ip_registry: &mut IpRegistry,
    resolver: &mut GeoResolver,
    domain_org: &mut HashMap<DomainName, OrgId>,
) {
    let hubs = [
        "Ashburn",
        "Frankfurt",
        "Singapore",
        "Sydney",
        "Sao Paulo",
        "Tokyo",
        "London",
        "Mumbai",
        "Toronto",
        "Moscow",
        "Taipei",
        "Dubai",
    ];
    for &sid in globals {
        let site = &mut sites[sid.0 as usize];
        if site.own_hosts.is_empty() {
            let mut hosts = vec![site.domain.clone()];
            for p in ["www", "static"] {
                if let Ok(h) = site.domain.prepend(p) {
                    hosts.push(h);
                }
            }
            site.own_hosts = hosts;
        }
        let op = &orgs[site.operator.0 as usize];
        for h in &site.own_hosts {
            if resolver.has_zone(h) {
                continue;
            }
            let mut replicas = Vec::new();
            for hub in hubs {
                let c = city_by_name(hub).expect("hub city exists").id;
                let dep = hosting.ensure(site.operator, c, op.asn, ip_registry);
                let ip = hosting.alloc_ip(dep, ip_registry);
                replicas.push(Replica { addr: ip, city: c });
            }
            resolver.add_replicas(h.clone(), replicas);
        }
        domain_org.insert(site.domain.clone(), site.operator);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_dns::psl::registrable_domain;

    fn world() -> World {
        generate(&WorldSpec::paper_default(0xC0FFEE))
    }

    #[test]
    fn generates_all_targets() {
        let w = world();
        assert_eq!(w.targets.len(), 23);
        for (cc, t) in &w.targets {
            assert!(
                (40..=50).contains(&t.regional.len()),
                "{cc}: {} regional",
                t.regional.len()
            );
            assert!(!t.government.is_empty(), "{cc}: no gov sites");
        }
        // Sparse-Tranco countries end up with few government sites (Fig 2a).
        let lb = &w.targets[&CountryCode::new("LB")];
        assert!(lb.government.len() <= 20, "LB gov {}", lb.government.len());
        let us = &w.targets[&CountryCode::new("US")];
        assert_eq!(us.government.len(), 50);
    }

    #[test]
    fn total_target_volume_matches_paper_scale() {
        // The study distributed ~2005 target websites (§5).
        let w = world();
        let total: usize = w.targets.values().map(|t| t.len()).sum();
        assert!(
            (1700..=2400).contains(&total),
            "T_web across countries = {total}"
        );
    }

    #[test]
    fn every_target_sites_hosts_resolve_from_the_volunteer_city() {
        let w = world();
        for (cc, t) in &w.targets {
            let vc = w.volunteer_city(*cc).unwrap();
            for sid in t.all() {
                let site = w.site(sid);
                assert!(!site.own_hosts.is_empty(), "{} has no hosts", site.domain);
                for h in &site.own_hosts {
                    assert!(w.resolve(h, vc).is_some(), "{cc}: {h} does not resolve");
                }
            }
        }
    }

    #[test]
    fn tracker_fqdns_resolve_and_steering_matches_serving() {
        let w = world();
        let mut checked = 0;
        for cs in &w.spec.countries {
            let vc = w.volunteer_city(cs.country).unwrap();
            for t in w.tracker_domains.iter().step_by(17) {
                let Some(&serve_city) = w.serving.get(&(t.org, cs.country)) else {
                    continue;
                };
                if let Some(rep) = w.resolve(&t.domain, vc) {
                    assert_eq!(
                        rep.city, serve_city,
                        "{}: {} resolved off-steering",
                        cs.country, t.domain
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 100, "only {checked} steering checks ran");
    }

    #[test]
    fn canada_and_us_serve_everything_locally() {
        let w = world();
        for cc in [CountryCode::new("CA"), CountryCode::new("US")] {
            for ((_, country), city_id) in &w.serving {
                if *country == cc {
                    assert_eq!(city(*city_id).country, cc);
                }
            }
        }
    }

    #[test]
    fn egypt_google_serves_from_germany() {
        let w = world();
        let google = w.orgs.iter().find(|o| o.name == "Google").unwrap().id;
        let serve = w.serving[&(google, CountryCode::new("EG"))];
        assert_eq!(city(serve).country, CountryCode::new("DE"));
    }

    #[test]
    fn sri_lanka_overrides_hold() {
        let w = world();
        let yahoo = w.orgs.iter().find(|o| o.name == "Yahoo").unwrap().id;
        let adstudio = w.orgs.iter().find(|o| o.name == "AdStudio").unwrap().id;
        let lk = CountryCode::new("LK");
        assert_eq!(
            city(w.serving[&(yahoo, lk)]).country,
            CountryCode::new("JP")
        );
        assert_eq!(
            city(w.serving[&(adstudio, lk)]).country,
            CountryCode::new("IN")
        );
    }

    #[test]
    fn exclusive_orgs_never_embedded_elsewhere() {
        let w = world();
        let jubna = w.orgs.iter().find(|o| o.name == "Jubna").unwrap().id;
        let jubna_domains: Vec<_> = w
            .tracker_domains
            .iter()
            .filter(|t| t.org == jubna)
            .map(|t| t.domain.clone())
            .collect();
        for (cc, t) in &w.targets {
            for sid in t.all() {
                let site = w.site(sid);
                let has = site.trackers.iter().any(|tr| {
                    jubna_domains
                        .iter()
                        .any(|d| tr == d || tr.is_subdomain_of(d))
                });
                if has {
                    assert_eq!(
                        cc.as_str(),
                        "JO",
                        "Jubna embedded by {} site {}",
                        cc,
                        site.domain
                    );
                }
            }
        }
    }

    #[test]
    fn google_cctld_sites_exist_and_are_google_operated() {
        let w = world();
        let google = w.orgs.iter().find(|o| o.name == "Google").unwrap().id;
        let eg = &w.targets[&CountryCode::new("EG")];
        let has = eg.all().any(|sid| {
            let s = w.site(sid);
            s.domain.as_str() == "google.com.eg" && s.operator == google
        });
        assert!(has, "google.com.eg missing from Egypt's T_reg");
    }

    #[test]
    fn global_sites_appear_in_most_countries() {
        let w = world();
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for t in w.targets.values() {
            for sid in t.regional.iter() {
                let s = w.site(*sid);
                if s.global {
                    *counts.entry(s.domain.as_str()).or_default() += 1;
                }
            }
        }
        assert_eq!(counts["google.com"], 23, "google.com everywhere");
        assert_eq!(counts["wikipedia.org"], 23, "wikipedia everywhere");
        for d in ["youtube.com", "facebook.com", "twitter.com"] {
            assert!(
                counts.get(d).copied().unwrap_or(0) >= 12,
                "{d} in only {:?} countries",
                counts.get(d)
            );
        }
    }

    #[test]
    fn router_ips_cover_every_city_and_resolve_to_backbone() {
        let w = world();
        for c in cities() {
            let ip = w.router_ip_of(c.id);
            assert_eq!(w.asn_of(ip), Some(ASN_BACKBONE));
            assert_eq!(w.true_city(ip), Some(c.id));
        }
    }

    #[test]
    fn tracker_domain_org_attribution_works() {
        let w = world();
        let d = DomainName::parse("stats.g.doubleclick.net").unwrap();
        let org = w.org_of_domain(&d).expect("doubleclick attributes");
        assert_eq!(w.org(org).name, "Google");
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = WorldSpec::paper_default(7);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.sites.len(), b.sites.len());
        assert_eq!(a.ip_registry.len(), b.ip_registry.len());
        for (sa, sb) in a.sites.iter().zip(&b.sites) {
            assert_eq!(sa, sb);
        }
    }

    #[test]
    fn nonlocal_embedding_rates_track_spec() {
        let w = world();
        for cs in &w.spec.countries {
            let t = &w.targets[&cs.country];
            let reg_sites: Vec<_> = t
                .regional
                .iter()
                .map(|s| w.site(*s))
                .filter(|s| !s.global && s.country == cs.country)
                .collect();
            if reg_sites.is_empty() {
                continue;
            }
            // Count sites embedding at least one foreign-served tracker.
            let vc = w.volunteer_city(cs.country).unwrap();
            let nonlocal = reg_sites
                .iter()
                .filter(|s| {
                    s.trackers.iter().any(|tr| {
                        w.resolve(tr, vc)
                            .map(|r| city(r.city).country != cs.country)
                            .unwrap_or(false)
                    })
                })
                .count();
            let rate = nonlocal as f64 / reg_sites.len() as f64;
            assert!(
                (rate - cs.reg_nonlocal_rate).abs() < 0.22,
                "{}: generated {rate:.2} vs target {:.2}",
                cs.country,
                cs.reg_nonlocal_rate
            );
        }
    }

    #[test]
    fn blocked_orgs_vanish_from_that_country_only() {
        let mut spec = WorldSpec::paper_default(0xC0FFEE);
        let eg = CountryCode::new("EG");
        spec.countries
            .iter_mut()
            .find(|c| c.country == eg)
            .unwrap()
            .blocked_orgs = vec!["Google".to_string()];
        let w = generate(&spec);
        let google = w.orgs.iter().find(|o| o.name == "Google").unwrap().id;
        let embeds_google = |s: &Website| {
            s.trackers
                .iter()
                .any(|t| w.org_of_domain(t) == Some(google))
        };
        // Egyptian sites' own embedding pools exclude Google entirely
        // (globals ranked into EG's T_reg keep their fixed embeddings —
        // the documented scenario-engine limitation — so filter to !global).
        for s in w.sites.iter().filter(|s| s.country == eg && !s.global) {
            assert!(!embeds_google(s), "{} embeds blocked Google", s.domain);
        }
        assert!(
            w.sites
                .iter()
                .filter(|s| s.country != eg && !s.global)
                .any(embeds_google),
            "blocking in EG must not affect other countries"
        );
    }

    #[test]
    fn site_domains_have_registrable_domains() {
        let w = world();
        for s in &w.sites {
            assert!(
                registrable_domain(&s.domain).is_some(),
                "{} lacks eTLD+1",
                s.domain
            );
        }
    }
}
