//! Deterministic world churn: the `evolve(epoch)` step of a
//! longitudinal campaign.
//!
//! The paper measures one frozen snapshot, but the ecosystem it measures
//! churns constantly — WhoTracksMe publishes *monthly* data precisely
//! because tracker deployments, page embeddings and hosting locations
//! drift between crawls. `evolve` applies one epoch of that drift to a
//! generated [`World`]:
//!
//! - **CDN PoP migration** — an organization starts serving a country
//!   from a different city in its existing replica footprint (steering
//!   re-pointed, ground-truth `serving` updated);
//! - **tracker add/remove** — pages gain and lose third-party embeds;
//! - **hosting migration** — a site operator moves its first-party
//!   hosts onto a different network (own ASN ↔ cloud), keeping the city
//!   but changing every address;
//! - **ranking shuffle** — adjacent popularity swaps within a country's
//!   regional target list (the *set* of targets never changes, so
//!   rounds stay joinable);
//! - **org acquisition** — a long-tail tracker org is absorbed by a
//!   major: domain → org attribution is remapped while serving and
//!   steering stay put, so only *attribution* changes, exactly like a
//!   real-world entity-map update.
//!
//! All randomness comes from [`gamma_netsim::epoch_rng`], so the world
//! after round N is a pure function of `(spec.seed, 1..=N)` — byte-equal
//! regardless of worker count, scheduling, or whether earlier rounds
//! were resumed from checkpoints. Every loop below iterates in a fixed
//! order (spec order for countries, id order for orgs and sites); no
//! `HashMap` iteration feeds the RNG.

use crate::org::OrgKind;
use crate::site::Website;
use crate::world::World;
use crate::OrgId;
use gamma_dns::resolver::Replica;
use gamma_dns::DomainName;
use gamma_geo::{CityId, CountryCode};
use gamma_netsim::asn::ASN_AWS;
use gamma_netsim::epoch_rng;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Per-epoch churn intensities. All rates are probabilities per eligible
/// unit (site, serving entry, adjacent ranking pair, …) per epoch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnSpec {
    /// P(a country-owned site gains one tracker embed).
    pub tracker_add_rate: f64,
    /// P(a country-owned site loses one tracker embed).
    pub tracker_remove_rate: f64,
    /// P(an (org, country) serving assignment moves to another PoP).
    pub migration_rate: f64,
    /// P(a site operator rehosts its first-party hosts on a new network).
    pub rehost_rate: f64,
    /// P(an adjacent pair in a regional ranking swaps).
    pub rank_shuffle_rate: f64,
    /// P(one org acquisition happens this epoch).
    pub acquisition_rate: f64,
}

impl ChurnSpec {
    /// Monthly-crawl-scale churn: a few percent of everything moves per
    /// round, and roughly every fourth round sees an acquisition —
    /// in the ballpark of WhoTracksMe month-over-month deltas.
    pub fn paper_default() -> ChurnSpec {
        ChurnSpec {
            tracker_add_rate: 0.06,
            tracker_remove_rate: 0.05,
            migration_rate: 0.04,
            rehost_rate: 0.03,
            rank_shuffle_rate: 0.08,
            acquisition_rate: 0.25,
        }
    }

    /// No churn at all: every round re-measures the identical world.
    pub fn none() -> ChurnSpec {
        ChurnSpec {
            tracker_add_rate: 0.0,
            tracker_remove_rate: 0.0,
            migration_rate: 0.0,
            rehost_rate: 0.0,
            rank_shuffle_rate: 0.0,
            acquisition_rate: 0.0,
        }
    }

    /// Whether this spec can ever change the world.
    pub fn is_quiet(&self) -> bool {
        self.tracker_add_rate == 0.0
            && self.tracker_remove_rate == 0.0
            && self.migration_rate == 0.0
            && self.rehost_rate == 0.0
            && self.rank_shuffle_rate == 0.0
            && self.acquisition_rate == 0.0
    }
}

impl Default for ChurnSpec {
    fn default() -> ChurnSpec {
        ChurnSpec::paper_default()
    }
}

/// What one `evolve` call actually did — the ground-truth churn ledger a
/// diff report can be validated against.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnLog {
    pub epoch: u32,
    pub trackers_added: u32,
    pub trackers_removed: u32,
    pub pop_migrations: u32,
    pub rehosted_sites: u32,
    pub rank_swaps: u32,
    pub acquisitions: u32,
}

impl ChurnLog {
    /// Total number of mutation events this epoch.
    pub fn total(&self) -> u32 {
        self.trackers_added
            + self.trackers_removed
            + self.pop_migrations
            + self.rehosted_sites
            + self.rank_swaps
            + self.acquisitions
    }
}

/// Advances the world by one epoch of churn. Pure in `(spec.seed, epoch)`:
/// two clones of the same world evolved with the same epoch are equal.
pub fn evolve(world: &mut World, churn: &ChurnSpec, epoch: u32) -> ChurnLog {
    let mut rng = epoch_rng(world.spec.seed, epoch);
    let mut log = ChurnLog {
        epoch,
        ..ChurnLog::default()
    };
    if churn.is_quiet() {
        return log;
    }
    let exclusive_to = exclusivity_map(world);
    let org_fqdns = tracker_fqdns_by_org(world);

    migrate_pops(world, churn, &org_fqdns, &mut rng, &mut log);
    churn_page_trackers(world, churn, &exclusive_to, &mut rng, &mut log);
    rehost_sites(world, churn, &mut rng, &mut log);
    shuffle_rankings(world, churn, &mut rng, &mut log);
    acquire_org(world, churn, &exclusive_to, &mut rng, &mut log);
    log
}

/// Org -> country it is exclusive to, resolved from the spec by name.
fn exclusivity_map(world: &World) -> HashMap<OrgId, CountryCode> {
    let mut m = HashMap::new();
    for cs in &world.spec.countries {
        for name in &cs.exclusive_orgs {
            if let Some(org) = world.orgs.iter().find(|o| &o.name == name) {
                m.insert(org.id, cs.country);
            }
        }
    }
    m
}

/// Org -> its tracker FQDN zones, in sorted (stable) order. Covers both
/// the bare catalog domains and the expanded subdomains worldgen
/// registered, without needing access to worldgen internals.
fn tracker_fqdns_by_org(world: &World) -> HashMap<OrgId, Vec<DomainName>> {
    let mut m: HashMap<OrgId, Vec<DomainName>> = HashMap::new();
    for (domain, _) in world.resolver.iter_zones() {
        if !world.is_tracker_domain(domain) {
            continue;
        }
        if let Some(org) = world.org_of_domain(domain) {
            m.entry(org).or_default().push(domain.clone());
        }
    }
    for fqdns in m.values_mut() {
        fqdns.sort();
    }
    m
}

/// CDN PoP migrations: an org's serving city for a country moves to
/// another city in its existing replica footprint, and every FQDN of the
/// org is re-steered for that country. Countries with an empty
/// destination mix (CA, US — everything serves locally by construction)
/// never migrate, preserving that invariant across rounds.
fn migrate_pops(
    world: &mut World,
    churn: &ChurnSpec,
    org_fqdns: &HashMap<OrgId, Vec<DomainName>>,
    rng: &mut ChaCha8Rng,
    log: &mut ChurnLog,
) {
    let mut entries: Vec<(OrgId, CountryCode, CityId)> = Vec::new();
    for cs in &world.spec.countries {
        if cs.dest_weights.is_empty() {
            continue;
        }
        for org in &world.orgs {
            if let Some(&cur) = world.serving.get(&(org.id, cs.country)) {
                entries.push((org.id, cs.country, cur));
            }
        }
    }
    for (org_id, country, cur_city) in entries {
        if rng.gen::<f64>() >= churn.migration_rate {
            continue;
        }
        let Some(fqdns) = org_fqdns.get(&org_id) else {
            continue;
        };
        let Some(first) = fqdns.first() else {
            continue;
        };
        let mut candidates: Vec<CityId> = world
            .resolver
            .replicas(first)
            .iter()
            .map(|r| r.city)
            .collect();
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|c| *c != cur_city);
        if candidates.is_empty() {
            continue;
        }
        let new_city = candidates[rng.gen_range(0..candidates.len())];
        world.serving.insert((org_id, country), new_city);
        for fqdn in fqdns {
            world.resolver.steer(fqdn.clone(), country, new_city);
        }
        log.pop_migrations += 1;
    }
}

/// Tracker add/remove on country-owned pages. Added embeds are bare
/// catalog domains — always registered zones with steering for every
/// measurement country — and never an org exclusive to another country.
fn churn_page_trackers(
    world: &mut World,
    churn: &ChurnSpec,
    exclusive_to: &HashMap<OrgId, CountryCode>,
    rng: &mut ChaCha8Rng,
    log: &mut ChurnLog,
) {
    let n_domains = world.tracker_domains.len();
    for i in 0..world.sites.len() {
        if world.sites[i].global {
            continue;
        }
        let country = world.sites[i].country;
        if rng.gen::<f64>() < churn.tracker_remove_rate && !world.sites[i].trackers.is_empty() {
            let k = rng.gen_range(0..world.sites[i].trackers.len());
            world.sites[i].trackers.remove(k);
            log.trackers_removed += 1;
        }
        if rng.gen::<f64>() < churn.tracker_add_rate && n_domains > 0 {
            for _attempt in 0..8 {
                let t = &world.tracker_domains[rng.gen_range(0..n_domains)];
                let foreign_exclusive = exclusive_to
                    .get(&t.org)
                    .is_some_and(|home| *home != country);
                if foreign_exclusive
                    || !world.serving.contains_key(&(t.org, country))
                    || world.sites[i].trackers.contains(&t.domain)
                {
                    continue;
                }
                let domain = t.domain.clone();
                world.sites[i].trackers.push(domain);
                log.trackers_added += 1;
                break;
            }
        }
    }
}

/// First-party hosting migrations: a site-operator deployment moves to a
/// different network (own ASN ↔ AWS) in the *same* city; every own-host
/// gets a fresh address from the new blocks and its zone is replaced.
fn rehost_sites(world: &mut World, churn: &ChurnSpec, rng: &mut ChaCha8Rng, log: &mut ChurnLog) {
    struct Move {
        op: OrgId,
        hosts: Vec<DomainName>,
        city: CityId,
        new_asn: gamma_netsim::Asn,
    }
    let mut moves: Vec<Move> = Vec::new();
    for site in &world.sites {
        if site.global
            || site.own_hosts.is_empty()
            || world.org(site.operator).kind != OrgKind::SiteOperator
        {
            continue;
        }
        if rng.gen::<f64>() >= churn.rehost_rate {
            continue;
        }
        let Some(rep) = world.resolver.replicas(&site.own_hosts[0]).first() else {
            continue;
        };
        let host_city = rep.city;
        let Some(dep) = world.hosting.get(site.operator, host_city) else {
            continue;
        };
        let new_asn = if dep.on_cloud() {
            crate::hosting::own_asn(site.operator)
        } else {
            ASN_AWS
        };
        moves.push(Move {
            op: site.operator,
            hosts: site.own_hosts.clone(),
            city: host_city,
            new_asn,
        });
    }
    for m in moves {
        let Some(dep_idx) = world
            .hosting
            .rehost(m.op, m.city, m.new_asn, &mut world.ip_registry)
        else {
            continue;
        };
        for h in &m.hosts {
            let ip = world.hosting.alloc_ip(dep_idx, &mut world.ip_registry);
            world.resolver.replace_replicas(
                h.clone(),
                [Replica {
                    addr: ip,
                    city: m.city,
                }],
            );
        }
        log.rehosted_sites += 1;
    }
}

/// Popularity drift: adjacent swaps within each regional ranking. The
/// target *set* is invariant, so time series stay joinable on site ids.
fn shuffle_rankings(
    world: &mut World,
    churn: &ChurnSpec,
    rng: &mut ChaCha8Rng,
    log: &mut ChurnLog,
) {
    for cs in &world.spec.countries {
        let Some(targets) = world.targets.get_mut(&cs.country) else {
            continue;
        };
        for i in 1..targets.regional.len() {
            if rng.gen::<f64>() < churn.rank_shuffle_rate {
                targets.regional.swap(i - 1, i);
                log.rank_swaps += 1;
            }
        }
    }
}

/// Org acquisition: at most one long-tail tracker org per epoch is
/// absorbed by a major. Attribution (`tracker_domains[].org`,
/// `domain_org`) is remapped; serving and steering are untouched, so
/// resolution — and therefore every observation — is identical and only
/// the entity map changes.
fn acquire_org(
    world: &mut World,
    churn: &ChurnSpec,
    exclusive_to: &HashMap<OrgId, CountryCode>,
    rng: &mut ChaCha8Rng,
    log: &mut ChurnLog,
) {
    if rng.gen::<f64>() >= churn.acquisition_rate {
        return;
    }
    let mut candidates: Vec<OrgId> = world.tracker_domains.iter().map(|t| t.org).collect();
    candidates.sort_unstable();
    candidates.dedup();
    candidates.retain(|id| {
        !exclusive_to.contains_key(id)
            && matches!(
                world.org(*id).kind,
                OrgKind::AdTech | OrgKind::Analytics | OrgKind::Social
            )
    });
    let majors: Vec<OrgId> = world
        .orgs
        .iter()
        .filter(|o| o.kind == OrgKind::MajorTracker)
        .map(|o| o.id)
        .collect();
    if candidates.is_empty() || majors.is_empty() {
        return;
    }
    let acquiree = candidates[rng.gen_range(0..candidates.len())];
    let acquirer = majors[rng.gen_range(0..majors.len())];
    for t in &mut world.tracker_domains {
        if t.org == acquiree {
            t.org = acquirer;
        }
    }
    // Value rewrites only — no RNG draws, no order-sensitive effects —
    // so HashMap iteration order is immaterial here.
    for org in world.domain_org.values_mut() {
        if *org == acquiree {
            *org = acquirer;
        }
    }
    log.acquisitions += 1;
}

/// Evolves a fresh copy of the world through epochs `1..=epoch`,
/// returning the per-epoch logs. The world state at epoch N is the fold
/// of all earlier evolutions — this helper is how a resumed campaign
/// reconstructs round N's world without replaying any measurements.
pub fn world_at_epoch(base: &World, churn: &ChurnSpec, epoch: u32) -> (World, Vec<ChurnLog>) {
    let mut world = base.clone();
    let logs = (1..=epoch).map(|e| evolve(&mut world, churn, e)).collect();
    (world, logs)
}

/// Convenience used by tests and examples: sites currently embedding a
/// given tracker domain.
pub fn sites_embedding<'w>(world: &'w World, domain: &DomainName) -> Vec<&'w Website> {
    world
        .sites
        .iter()
        .filter(|s| s.trackers.iter().any(|t| t == domain))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorldSpec;
    use crate::worldgen::generate;
    use gamma_geo::city;

    fn small_spec(seed: u64) -> WorldSpec {
        let mut spec = WorldSpec::paper_default(seed);
        spec.countries
            .retain(|c| ["RW", "US", "NZ"].contains(&c.country.as_str()));
        spec.reg_sites_per_country = 12;
        spec.gov_sites_per_country = 4;
        spec
    }

    fn assert_worlds_equal(a: &World, b: &World) {
        assert_eq!(a.sites, b.sites);
        assert_eq!(a.tracker_domains, b.tracker_domains);
        assert_eq!(a.serving, b.serving);
        assert_eq!(a.targets, b.targets);
        assert_eq!(a.domain_org, b.domain_org);
        assert_eq!(a.resolver.zone_count(), b.resolver.zone_count());
        for (domain, replicas) in a.resolver.iter_zones() {
            assert_eq!(replicas, b.resolver.replicas(domain), "{domain}");
        }
    }

    #[test]
    fn evolution_is_deterministic() {
        let base = generate(&small_spec(11));
        let mut a = base.clone();
        let mut b = base;
        for epoch in 1..=3 {
            let la = evolve(&mut a, &ChurnSpec::paper_default(), epoch);
            let lb = evolve(&mut b, &ChurnSpec::paper_default(), epoch);
            assert_eq!(la, lb);
            assert_worlds_equal(&a, &b);
        }
    }

    #[test]
    fn quiet_churn_is_the_identity() {
        let base = generate(&small_spec(12));
        let mut w = base.clone();
        let log = evolve(&mut w, &ChurnSpec::none(), 1);
        assert_eq!(log.total(), 0);
        assert_worlds_equal(&base, &w);
    }

    #[test]
    fn default_churn_actually_changes_the_world() {
        let mut w = generate(&small_spec(13));
        let mut total = 0;
        for epoch in 1..=4 {
            total += evolve(&mut w, &ChurnSpec::paper_default(), epoch).total();
        }
        assert!(total > 10, "only {total} churn events in 4 epochs");
    }

    #[test]
    fn epochs_draw_independent_streams() {
        // Applying epoch 2's churn to the base world differs from epoch
        // 1's — the epochs are distinct streams, not a replay.
        let base = generate(&small_spec(14));
        let mut a = base.clone();
        let mut b = base;
        let la = evolve(&mut a, &ChurnSpec::paper_default(), 1);
        let lb = evolve(&mut b, &ChurnSpec::paper_default(), 2);
        assert!(la != lb || a.sites != b.sites, "epochs replayed each other");
    }

    #[test]
    fn steering_still_matches_serving_after_churn() {
        let mut w = generate(&small_spec(15));
        for epoch in 1..=3 {
            evolve(&mut w, &ChurnSpec::paper_default(), epoch);
        }
        let mut checked = 0;
        for cs in &w.spec.countries {
            let vc = w.volunteer_city(cs.country).unwrap();
            for t in &w.tracker_domains {
                let Some(&serve_city) = w.serving.get(&(t.org, cs.country)) else {
                    continue;
                };
                if let Some(rep) = w.resolve(&t.domain, vc) {
                    assert_eq!(
                        rep.city, serve_city,
                        "{}: {} resolved off-steering after churn",
                        cs.country, t.domain
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 50, "only {checked} steering checks ran");
    }

    #[test]
    fn us_keeps_serving_everything_locally() {
        let mut w = generate(&small_spec(16));
        for epoch in 1..=5 {
            evolve(&mut w, &ChurnSpec::paper_default(), epoch);
        }
        let us = CountryCode::new("US");
        for ((_, country), city_id) in &w.serving {
            if *country == us {
                assert_eq!(city(*city_id).country, us, "US serving went foreign");
            }
        }
    }

    #[test]
    fn target_sets_are_round_invariant() {
        let base = generate(&small_spec(17));
        let mut w = base.clone();
        for epoch in 1..=4 {
            evolve(&mut w, &ChurnSpec::paper_default(), epoch);
        }
        for (cc, t0) in &base.targets {
            let t1 = &w.targets[cc];
            let mut a: Vec<_> = t0.regional.clone();
            let mut b: Vec<_> = t1.regional.clone();
            a.sort_unstable_by_key(|s| s.0);
            b.sort_unstable_by_key(|s| s.0);
            assert_eq!(a, b, "{cc}: regional target set changed");
            assert_eq!(t0.government, t1.government, "{cc}: gov list changed");
        }
    }

    #[test]
    fn rehosted_hosts_stay_in_city_but_change_address() {
        let spec = small_spec(18);
        let base = generate(&spec);
        let mut churn = ChurnSpec::none();
        churn.rehost_rate = 1.0;
        let mut w = base.clone();
        let log = evolve(&mut w, &churn, 1);
        assert!(log.rehosted_sites > 0, "nothing rehosted at rate 1.0");
        let mut changed = 0;
        for (old, new) in base.sites.iter().zip(&w.sites) {
            for h in &old.own_hosts {
                let old_rep = base.resolver.replicas(h).first().copied();
                let new_rep = w.resolver.replicas(h).first().copied();
                let (Some(o), Some(n)) = (old_rep, new_rep) else {
                    continue;
                };
                assert_eq!(o.city, n.city, "{h}: rehost moved cities");
                assert_eq!(w.true_city(n.addr), Some(n.city), "{h}: lost ground truth");
                if o.addr != n.addr {
                    changed += 1;
                    assert_eq!(old.id, new.id);
                }
            }
        }
        assert!(changed > 0, "no address actually changed");
    }

    #[test]
    fn world_at_epoch_matches_incremental_evolution() {
        let base = generate(&small_spec(19));
        let mut inc = base.clone();
        let mut inc_logs = Vec::new();
        for epoch in 1..=3 {
            inc_logs.push(evolve(&mut inc, &ChurnSpec::paper_default(), epoch));
        }
        let (jumped, logs) = world_at_epoch(&base, &ChurnSpec::paper_default(), 3);
        assert_eq!(logs, inc_logs);
        assert_worlds_equal(&inc, &jumped);
    }

    #[test]
    fn acquisition_moves_attribution_but_not_resolution() {
        let spec = small_spec(20);
        let base = generate(&spec);
        let mut churn = ChurnSpec::none();
        churn.acquisition_rate = 1.0;
        let mut w = base.clone();
        let log = evolve(&mut w, &churn, 1);
        assert_eq!(log.acquisitions, 1);
        let moved: Vec<_> = base
            .tracker_domains
            .iter()
            .zip(&w.tracker_domains)
            .filter(|(o, n)| o.org != n.org)
            .collect();
        assert!(!moved.is_empty(), "acquisition moved no domains");
        for (old, new) in &moved {
            assert_eq!(old.domain, new.domain);
            assert_eq!(
                w.org(new.org).kind,
                OrgKind::MajorTracker,
                "acquirer is not a major"
            );
            // Resolution is untouched.
            let vc = w.volunteer_city(w.spec.countries[0].country).unwrap();
            assert_eq!(base.resolve(&old.domain, vc), w.resolve(&new.domain, vc));
        }
    }
}
