//! Tracker organizations.
//!
//! The paper attributes every non-local tracking domain to an owning
//! organization (§6.5, Figure 8): ~70 companies, half of them US-based,
//! ~10% UK, ~4% Netherlands, ~4% Israel, with Google/Twitter/Facebook/
//! Amazon/Yahoo as the five dominant networks. The catalog below mirrors
//! that population: the five majors plus a curated long tail, several of
//! which appear by name in the paper (Dotomi, Smaato, Spot.IM,
//! ScorecardResearch, 33Across, OpenX, Improve Digital (360yield),
//! SoundCloud, Snapchat, Lotame, Demdex, Bluekai, Taboola, The Ozone
//! Project, Jubna, OneTag, Optad360, AdStudio).

use gamma_dns::rdns::HostnameScheme;
use gamma_geo::CountryCode;
use serde::{Deserialize, Serialize};

/// Index into the organization table of a `World`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct OrgId(pub u32);

/// Coarse organization role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrgKind {
    /// One of the five dominant tracking networks.
    MajorTracker,
    /// Advertising technology (SSPs, DSPs, ad exchanges).
    AdTech,
    /// Analytics and measurement.
    Analytics,
    /// Social platform with embedded tracking widgets.
    Social,
    /// Operates ordinary websites, not trackers (publishers, governments).
    SiteOperator,
}

/// A fully-instantiated organization inside a `World`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Org {
    pub id: OrgId,
    pub name: String,
    /// Country where the company is headquartered — the unit of Figure 8's
    /// "geographical distribution and corporate control" analysis.
    pub hq: CountryCode,
    pub kind: OrgKind,
    /// ASN of the org's own network (content orgs); trackers deployed on a
    /// public cloud use the cloud's ASN instead.
    pub asn: gamma_netsim::Asn,
    /// Hostname naming convention for the org's servers (drives rDNS hints).
    pub scheme: HostnameScheme,
    /// Base domain used in rDNS hostnames, e.g. `1e100.net` for Google.
    pub rdns_base: String,
}

/// Seed entry for the curated catalog.
#[derive(Debug, Clone, Copy)]
pub struct OrgSeed {
    pub name: &'static str,
    pub hq: &'static str,
    pub kind: OrgKind,
    /// Hand-curated tracker domains (majors and paper-named orgs);
    /// empty means domains are synthesized from the org name.
    pub curated_domains: &'static [&'static str],
    /// How many domains to synthesize *in addition* to the curated list.
    pub extra_domains: u8,
    pub scheme: HostnameScheme,
}

const S_IATA: HostnameScheme = HostnameScheme::IataCode;
const S_FUSED: HostnameScheme = HostnameScheme::IataFused;
const S_CITY: HostnameScheme = HostnameScheme::CityName;
const S_OPAQUE: HostnameScheme = HostnameScheme::Opaque;

/// The curated organization catalog. HQ quotas follow §6.5: ~50% US,
/// ~10% UK, ~4% NL, ~4% IL.
pub static ORG_SEEDS: &[OrgSeed] = &[
    // ------- the five majors (§7: all US-based) -------
    OrgSeed {
        name: "Google",
        hq: "US",
        kind: OrgKind::MajorTracker,
        curated_domains: &[
            "google-analytics.com",
            "googletagmanager.com",
            "googlesyndication.com",
            "googleadservices.com",
            "doubleclick.net",
            "googleapis.com",
            "gstatic.com",
            "googletagservices.com",
            "googleusercontent.com",
            "googleoptimize.com",
            "admob.com",
            "adsensecustomsearchads.com",
            "google-ads-metrics.com",
            "googlevideo.com",
            "ggpht.com",
            "gvt1.com",
            "gvt2.com",
            "safeframe.googlesyndication.com",
        ],
        extra_domains: 0,
        scheme: S_FUSED,
    },
    OrgSeed {
        name: "Facebook",
        hq: "US",
        kind: OrgKind::MajorTracker,
        curated_domains: &[
            "facebook.net",
            "fbcdn.net",
            "atdmt.com",
            "accountkit.com",
            "fbsbx.com",
            "facebook-pixel.net",
            "metapixel.io",
            "fbevents.net",
        ],
        extra_domains: 0,
        scheme: S_IATA,
    },
    OrgSeed {
        name: "Twitter",
        hq: "US",
        kind: OrgKind::MajorTracker,
        curated_domains: &[
            "ads-twitter.com",
            "twimg.com",
            "t.co",
            "mopub.com",
            "twittercdn.net",
            "tweetdeck-metrics.com",
        ],
        extra_domains: 0,
        scheme: S_IATA,
    },
    OrgSeed {
        name: "Amazon",
        hq: "US",
        kind: OrgKind::MajorTracker,
        curated_domains: &[
            "amazon-adsystem.com",
            "assoc-amazon.com",
            "media-amazon.com",
            "awsstatic.com",
            "cloudfront-metrics.net",
            "a2z-pixel.com",
            "amazontrust-tags.com",
        ],
        extra_domains: 0,
        scheme: S_IATA,
    },
    OrgSeed {
        name: "Yahoo",
        hq: "US",
        kind: OrgKind::MajorTracker,
        curated_domains: &[
            "yimg.com",
            "adtechus.com",
            "btrll.com",
            "flurry.com",
            "yahoodns-ads.net",
            "gemini-tags.com",
        ],
        extra_domains: 0,
        scheme: S_IATA,
    },
    // ------- paper-named long tail -------
    OrgSeed {
        name: "Dotomi",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["dotomi.com"],
        extra_domains: 6,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Smaato",
        hq: "DE",
        kind: OrgKind::AdTech,
        curated_domains: &["smaato.net"],
        extra_domains: 6,
        scheme: S_CITY,
    },
    OrgSeed {
        name: "SpotIM",
        hq: "IL",
        kind: OrgKind::Social,
        curated_domains: &["spot.im"],
        extra_domains: 6,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "ScorecardResearch",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["scorecardresearch.com"],
        extra_domains: 6,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "33Across",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["33across.com"],
        extra_domains: 6,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "OpenX",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["openx.net"],
        extra_domains: 7,
        scheme: S_IATA,
    },
    OrgSeed {
        name: "ImproveDigital",
        hq: "NL",
        kind: OrgKind::AdTech,
        curated_domains: &["360yield.com"],
        extra_domains: 7,
        scheme: S_CITY,
    },
    OrgSeed {
        name: "SoundCloud",
        hq: "DE",
        kind: OrgKind::Social,
        curated_domains: &["sndcdn.com"],
        extra_domains: 5,
        scheme: S_IATA,
    },
    OrgSeed {
        name: "Snapchat",
        hq: "US",
        kind: OrgKind::Social,
        curated_domains: &["sc-static.net", "snap-pixel.com"],
        extra_domains: 5,
        scheme: S_IATA,
    },
    OrgSeed {
        name: "Lotame",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["crwdcntrl.net"],
        extra_domains: 6,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Demdex",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["demdex.net", "everesttech.net"],
        extra_domains: 6,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Bluekai",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["bluekai.com", "bkrtx.com"],
        extra_domains: 6,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Taboola",
        hq: "IL",
        kind: OrgKind::AdTech,
        curated_domains: &["taboola.com"],
        extra_domains: 7,
        scheme: S_FUSED,
    },
    OrgSeed {
        name: "OzoneProject",
        hq: "GB",
        kind: OrgKind::AdTech,
        curated_domains: &["theozone-project.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Jubna",
        hq: "AE",
        kind: OrgKind::AdTech,
        curated_domains: &["jubnaadserve.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "OneTag",
        hq: "IT",
        kind: OrgKind::AdTech,
        curated_domains: &["onetag-sys.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Optad360",
        hq: "PL",
        kind: OrgKind::AdTech,
        curated_domains: &["optad360.io"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "AdStudio",
        hq: "LK",
        kind: OrgKind::AdTech,
        curated_domains: &["adstudio.cloud"],
        extra_domains: 4,
        scheme: S_OPAQUE,
    },
    // ------- remaining US quota -------
    OrgSeed {
        name: "Outbrain",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["outbrain.com"],
        extra_domains: 7,
        scheme: S_FUSED,
    },
    OrgSeed {
        name: "Quantcast",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["quantserve.com"],
        extra_domains: 6,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "PubMatic",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["pubmatic.com"],
        extra_domains: 7,
        scheme: S_IATA,
    },
    OrgSeed {
        name: "Magnite",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["rubiconproject.com"],
        extra_domains: 7,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Xandr",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["adnxs.com"],
        extra_domains: 7,
        scheme: S_IATA,
    },
    OrgSeed {
        name: "TheTradeDesk",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["adsrvr.org"],
        extra_domains: 7,
        scheme: S_FUSED,
    },
    OrgSeed {
        name: "MediaMath",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["mathtag.com"],
        extra_domains: 6,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Chartbeat",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["chartbeat.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Mixpanel",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["mixpanel.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "LiveRamp",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["rlcdn.com"],
        extra_domains: 6,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Criteo",
        hq: "FR",
        kind: OrgKind::AdTech,
        curated_domains: &["criteo.com", "criteo.net"],
        extra_domains: 6,
        scheme: S_FUSED,
    },
    OrgSeed {
        name: "Teads",
        hq: "FR",
        kind: OrgKind::AdTech,
        curated_domains: &["teads.tv"],
        extra_domains: 6,
        scheme: S_CITY,
    },
    OrgSeed {
        name: "Adform",
        hq: "DK",
        kind: OrgKind::AdTech,
        curated_domains: &["adform.net"],
        extra_domains: 6,
        scheme: S_CITY,
    },
    OrgSeed {
        name: "Sharethrough",
        hq: "CA",
        kind: OrgKind::AdTech,
        curated_domains: &["sharethrough.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "IndexExchange",
        hq: "CA",
        kind: OrgKind::AdTech,
        curated_domains: &["casalemedia.com"],
        extra_domains: 6,
        scheme: S_IATA,
    },
    OrgSeed {
        name: "Sovrn",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["lijit.com"],
        extra_domains: 6,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Amplitude",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["amplitude.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Segment",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["segment.io"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Branch",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["branch.io"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "AppsFlyer",
        hq: "IL",
        kind: OrgKind::Analytics,
        curated_domains: &["appsflyer.com"],
        extra_domains: 6,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Adjust",
        hq: "DE",
        kind: OrgKind::Analytics,
        curated_domains: &["adjust.com"],
        extra_domains: 5,
        scheme: S_CITY,
    },
    OrgSeed {
        name: "Kochava",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["kochava.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "NewRelic",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["nr-data.net"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Optimizely",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["optimizely.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Parsely",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["parsely.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Comscore",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["zqtk.net"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Nielsen",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["imrworldwide.com"],
        extra_domains: 6,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Moat",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["moatads.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "DoubleVerify",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["doubleverify.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "IAS",
        hq: "US",
        kind: OrgKind::Analytics,
        curated_domains: &["adsafeprotected.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Bombora",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["ml314.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Tapad",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["tapad.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Zeta",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["rezync.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Smartadserver",
        hq: "FR",
        kind: OrgKind::AdTech,
        curated_domains: &["smartadserver.com"],
        extra_domains: 5,
        scheme: S_FUSED,
    },
    OrgSeed {
        name: "Sizmek",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["serving-sys.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "GumGum",
        hq: "US",
        kind: OrgKind::AdTech,
        curated_domains: &["gumgum.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Bidswitch",
        hq: "GB",
        kind: OrgKind::AdTech,
        curated_domains: &["bidswitch.net"],
        extra_domains: 5,
        scheme: S_FUSED,
    },
    // ------- UK quota (~10%) -------
    OrgSeed {
        name: "Permutive",
        hq: "GB",
        kind: OrgKind::AdTech,
        curated_domains: &["permutive.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "ID5",
        hq: "GB",
        kind: OrgKind::AdTech,
        curated_domains: &["id5-sync.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Captify",
        hq: "GB",
        kind: OrgKind::AdTech,
        curated_domains: &["cpx.to"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "LoopMe",
        hq: "GB",
        kind: OrgKind::AdTech,
        curated_domains: &["loopme.me"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Unruly",
        hq: "GB",
        kind: OrgKind::AdTech,
        curated_domains: &["unrulymedia.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "Brandwatch",
        hq: "GB",
        kind: OrgKind::Analytics,
        curated_domains: &["brandwatch.com"],
        extra_domains: 4,
        scheme: S_OPAQUE,
    },
    // ------- NL quota (~4%) -------
    OrgSeed {
        name: "Adscience",
        hq: "NL",
        kind: OrgKind::AdTech,
        curated_domains: &["adscience.nl"],
        extra_domains: 5,
        scheme: S_CITY,
    },
    OrgSeed {
        name: "Semasio",
        hq: "NL",
        kind: OrgKind::Analytics,
        curated_domains: &["semasio.net"],
        extra_domains: 5,
        scheme: S_CITY,
    },
    // ------- IL quota (~4%) -------
    OrgSeed {
        name: "Kaltura",
        hq: "IL",
        kind: OrgKind::Analytics,
        curated_domains: &["kaltura.com"],
        extra_domains: 5,
        scheme: S_OPAQUE,
    },
    // ------- regional / rest-of-world -------
    OrgSeed {
        name: "YandexMetrica",
        hq: "RU",
        kind: OrgKind::Analytics,
        curated_domains: &["yametrica.net"],
        extra_domains: 5,
        scheme: S_FUSED,
    },
    OrgSeed {
        name: "VKPixel",
        hq: "RU",
        kind: OrgKind::AdTech,
        curated_domains: &["vk-pixel.net"],
        extra_domains: 4,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "LineAnalytics",
        hq: "JP",
        kind: OrgKind::Analytics,
        curated_domains: &["line-scdn.net"],
        extra_domains: 4,
        scheme: S_IATA,
    },
    OrgSeed {
        name: "RakutenAds",
        hq: "JP",
        kind: OrgKind::AdTech,
        curated_domains: &["rakuten-ads.com"],
        extra_domains: 5,
        scheme: S_IATA,
    },
    OrgSeed {
        name: "VWO",
        hq: "IN",
        kind: OrgKind::Analytics,
        curated_domains: &["visualwebsiteoptimizer.com"],
        extra_domains: 4,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "AdFalcon",
        hq: "JO",
        kind: OrgKind::AdTech,
        curated_domains: &["adfalcon.com"],
        extra_domains: 4,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "TrueAfrican",
        hq: "UG",
        kind: OrgKind::AdTech,
        curated_domains: &["trueafrican-ads.com"],
        extra_domains: 4,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "KigaliMetrics",
        hq: "RW",
        kind: OrgKind::Analytics,
        curated_domains: &["kigalimetrics.com"],
        extra_domains: 4,
        scheme: S_OPAQUE,
    },
    OrgSeed {
        name: "GulfTag",
        hq: "QA",
        kind: OrgKind::AdTech,
        curated_domains: &["gulftag.net"],
        extra_domains: 4,
        scheme: S_OPAQUE,
    },
];

/// HQ-country distribution of the catalog as (country, fraction) pairs,
/// for the Figure 8 corporate-control roll-up.
pub fn hq_distribution() -> Vec<(CountryCode, f64)> {
    use std::collections::HashMap;
    let mut counts: HashMap<CountryCode, usize> = HashMap::new();
    for seed in ORG_SEEDS {
        *counts
            .entry(CountryCode::parse(seed.hq).expect("valid HQ code"))
            .or_default() += 1;
    }
    let total = ORG_SEEDS.len() as f64;
    let mut v: Vec<_> = counts
        .into_iter()
        .map(|(c, n)| (c, n as f64 / total))
        .collect();
    v.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .expect("fractions are finite")
            .then(a.0.cmp(&b.0))
    });
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_size_matches_paper_scale() {
        // "~70 companies that own all the non-local tracking domains" (§6.5).
        assert!(
            (65..=80).contains(&ORG_SEEDS.len()),
            "catalog has {} orgs",
            ORG_SEEDS.len()
        );
    }

    #[test]
    fn org_names_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in ORG_SEEDS {
            assert!(seen.insert(s.name), "duplicate org {}", s.name);
        }
    }

    #[test]
    fn curated_domains_are_globally_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in ORG_SEEDS {
            for d in s.curated_domains {
                assert!(seen.insert(*d), "domain {d} owned by two orgs");
            }
        }
    }

    #[test]
    fn hq_fractions_match_section_6_5() {
        let dist = hq_distribution();
        let frac = |cc: &str| {
            dist.iter()
                .find(|(c, _)| c.as_str() == cc)
                .map(|(_, f)| *f)
                .unwrap_or(0.0)
        };
        // "50% are based in the USA, followed by the UK (10%), the
        // Netherlands (4%) and Israel (4%)".
        assert!((0.44..=0.56).contains(&frac("US")), "US {}", frac("US"));
        assert!((0.06..=0.14).contains(&frac("GB")), "GB {}", frac("GB"));
        assert!((0.02..=0.07).contains(&frac("NL")), "NL {}", frac("NL"));
        assert!((0.02..=0.08).contains(&frac("IL")), "IL {}", frac("IL"));
        // And US must be the top HQ country.
        assert_eq!(dist[0].0.as_str(), "US");
    }

    #[test]
    fn majors_are_the_first_five_and_us_based() {
        let majors: Vec<_> = ORG_SEEDS
            .iter()
            .filter(|s| matches!(s.kind, OrgKind::MajorTracker))
            .collect();
        assert_eq!(majors.len(), 5);
        for m in &majors {
            assert_eq!(m.hq, "US", "{} not US-based", m.name);
        }
        let names: Vec<_> = majors.iter().map(|m| m.name).collect();
        for expected in ["Google", "Facebook", "Twitter", "Amazon", "Yahoo"] {
            assert!(names.contains(&expected), "missing major {expected}");
        }
    }

    #[test]
    fn paper_named_orgs_are_present() {
        let names: Vec<_> = ORG_SEEDS.iter().map(|s| s.name).collect();
        for n in [
            "Dotomi",
            "Smaato",
            "SpotIM",
            "ScorecardResearch",
            "33Across",
            "OpenX",
            "ImproveDigital",
            "SoundCloud",
            "Snapchat",
            "Lotame",
            "Demdex",
            "Bluekai",
            "Taboola",
            "OzoneProject",
            "Jubna",
            "OneTag",
            "Optad360",
            "AdStudio",
        ] {
            assert!(names.contains(&n), "missing {n}");
        }
    }

    #[test]
    fn hq_codes_all_parse() {
        for s in ORG_SEEDS {
            let code = CountryCode::parse(s.hq).unwrap_or_else(|| panic!("bad HQ {}", s.hq));
            assert!(
                gamma_geo::country(code).is_some(),
                "{} HQ {} not in catalog",
                s.name,
                s.hq
            );
        }
    }
}
