//! Tracker domain families.
//!
//! Expands the organization catalog into the concrete tracking domains the
//! synthetic web embeds. The paper identified 505 unique non-local
//! ad/tracking domains — 441 via filter lists and 64 via manual inspection
//! (§4.2); the expansion below reproduces that scale and split, including
//! the paper's concrete example of a manually-labeled domain
//! (`theozone-project.com`).

use crate::org::{OrgId, OrgKind, ORG_SEEDS};
use gamma_dns::DomainName;
use serde::{Deserialize, Serialize};

/// A tracking domain and how the identification pipeline can find it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrackerDomain {
    pub domain: DomainName,
    pub org: OrgId,
    /// Whether EasyList/EasyPrivacy-style lists carry a rule for it. The
    /// remainder is only discoverable through manual inspection (§4.2).
    pub in_filter_lists: bool,
}

/// Domains that the paper says were found by manual inspection, not lists.
const MANUAL_ONLY_CURATED: &[&str] = &["theozone-project.com"];

/// Suffix patterns used to synthesize plausible additional tracker domains
/// for an organization.
const SYNTH_PATTERNS: &[&str] = &[
    "{}-cdn.com",
    "{}-analytics.com",
    "pixel-{}.io",
    "{}tag.net",
    "ads-{}.com",
    "{}metrics.io",
    "{}-sync.net",
    "{}-static.net",
];

/// Lowercase alphanumeric slug of an org name (`33Across` -> `33across`).
pub fn org_slug(name: &str) -> String {
    name.chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .collect::<String>()
        .to_ascii_lowercase()
}

/// Expands the full tracker-domain table in catalog order.
///
/// Deterministic: no randomness is involved, so every world shares domain
/// identities and filter lists can be generated once.
pub fn expand_tracker_domains() -> Vec<TrackerDomain> {
    let mut out = Vec::new();
    for (org_idx, seed) in ORG_SEEDS.iter().enumerate() {
        if seed.kind == OrgKind::SiteOperator {
            continue;
        }
        let org = OrgId(org_idx as u32);
        for d in seed.curated_domains {
            let domain =
                DomainName::parse(d).unwrap_or_else(|e| panic!("bad curated domain {d}: {e}"));
            let manual = MANUAL_ONLY_CURATED.contains(d);
            out.push(TrackerDomain {
                domain,
                org,
                in_filter_lists: !manual,
            });
        }
        let slug = org_slug(seed.name);
        for k in 0..seed.extra_domains {
            let pattern = SYNTH_PATTERNS[(org_idx + k as usize) % SYNTH_PATTERNS.len()];
            let name = pattern.replace("{}", &slug);
            let domain = DomainName::parse(&name)
                .unwrap_or_else(|e| panic!("bad synthesized domain {name}: {e}"));
            // Roughly one in eight synthesized domains is missing from the
            // lists, reproducing the 441-list / 64-manual split.
            let manual = (org_idx + k as usize) % 8 == 3;
            out.push(TrackerDomain {
                domain,
                org,
                in_filter_lists: !manual,
            });
        }
    }
    debug_assert_unique(&out);
    out
}

fn debug_assert_unique(domains: &[TrackerDomain]) {
    debug_assert!(
        {
            let mut seen = std::collections::HashSet::new();
            domains.iter().all(|d| seen.insert(&d.domain))
        },
        "tracker domain table contains duplicates"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_matches_paper() {
        let all = expand_tracker_domains();
        // "505 (441 from lists, 64 manually) unique non-local ad/tracking
        // based domains" — we require the same order of magnitude and split.
        assert!(
            (420..=560).contains(&all.len()),
            "expanded to {} domains",
            all.len()
        );
        let manual = all.iter().filter(|d| !d.in_filter_lists).count();
        let listed = all.len() - manual;
        assert!(
            listed > manual * 5,
            "list/manual split off: {listed}/{manual}"
        );
        assert!(manual >= 30, "too few manual-only domains: {manual}");
    }

    #[test]
    fn domains_are_unique() {
        let all = expand_tracker_domains();
        let mut seen = std::collections::HashSet::new();
        for d in &all {
            assert!(seen.insert(d.domain.clone()), "duplicate {}", d.domain);
        }
    }

    #[test]
    fn ozone_project_is_manual_only() {
        let all = expand_tracker_domains();
        let oz = all
            .iter()
            .find(|d| d.domain.as_str() == "theozone-project.com")
            .expect("ozone domain present");
        assert!(!oz.in_filter_lists);
    }

    #[test]
    fn google_family_is_present_and_listed() {
        let all = expand_tracker_domains();
        for name in [
            "googletagmanager.com",
            "doubleclick.net",
            "googleapis.com",
            "google-analytics.com",
            "googlesyndication.com",
        ] {
            let d = all
                .iter()
                .find(|d| d.domain.as_str() == name)
                .unwrap_or_else(|| panic!("missing {name}"));
            assert!(d.in_filter_lists, "{name} should be in lists");
        }
    }

    #[test]
    fn fqdn_entry_exists_like_the_papers_safeframe_example() {
        let all = expand_tracker_domains();
        assert!(all
            .iter()
            .any(|d| d.domain.as_str() == "safeframe.googlesyndication.com"));
    }

    #[test]
    fn every_org_with_trackers_owns_at_least_one_domain() {
        let all = expand_tracker_domains();
        for (i, seed) in ORG_SEEDS.iter().enumerate() {
            if seed.kind == OrgKind::SiteOperator {
                continue;
            }
            assert!(
                all.iter().any(|d| d.org == OrgId(i as u32)),
                "{} owns no domains",
                seed.name
            );
        }
    }

    #[test]
    fn expansion_is_deterministic() {
        assert_eq!(expand_tracker_domains(), expand_tracker_domains());
    }

    #[test]
    fn slugging_strips_punctuation() {
        assert_eq!(org_slug("33Across"), "33across");
        assert_eq!(org_slug("Spot.IM"), "spotim");
        assert_eq!(org_slug("The Ozone Project"), "theozoneproject");
    }
}
