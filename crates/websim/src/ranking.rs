//! Website-ranking providers.
//!
//! §3.2 of the paper: T_reg is the top-50 regional list from similarweb;
//! where similarweb lacks a country, semrush is used because its lists
//! overlap similarweb's by 65% (vs 48% for ahrefs) over 58 common
//! countries. T_gov comes from filtering a Tranco-style global list by
//! government TLDs, topped up by search-engine scraping when Tranco holds
//! fewer than 50 government sites for a country.
//!
//! The providers here reproduce those properties over the synthetic site
//! population: similarweb reflects true popularity; the alternatives are
//! noisy permutations calibrated to the published overlap figures.

use crate::site::SiteId;
use gamma_geo::CountryCode;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A top-sites ranking provider.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RankingSource {
    Similarweb,
    Semrush,
    Ahrefs,
}

/// Per-country candidate pools plus provider views over them.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RankingProviders {
    /// True-popularity-ordered regional candidates per country (longer than
    /// the published top-50 so providers can disagree about the tail).
    regional: HashMap<CountryCode, Vec<SiteId>>,
    /// Countries missing from similarweb's regional rankings.
    similarweb_gaps: Vec<CountryCode>,
    /// Tranco-like global list: government sites present in it, per country.
    tranco_gov: HashMap<CountryCode, Vec<SiteId>>,
    /// Gov sites only reachable via the search-scrape fallback.
    scraped_gov: HashMap<CountryCode, Vec<SiteId>>,
    seed: u64,
}

/// Degree of disagreement a provider applies to the true ranking. Chosen so
/// that top-50 overlap with similarweb lands near the paper's 65% / 48%.
fn disagreement(source: RankingSource) -> f64 {
    match source {
        RankingSource::Similarweb => 0.0,
        RankingSource::Semrush => 1.0,
        RankingSource::Ahrefs => 2.5,
    }
}

impl RankingProviders {
    pub fn new(seed: u64) -> Self {
        RankingProviders {
            seed,
            ..Default::default()
        }
    }

    /// Registers a country's regional candidate pool (true order).
    pub fn set_regional(&mut self, country: CountryCode, candidates: Vec<SiteId>) {
        self.regional.insert(country, candidates);
    }

    /// Marks a country as absent from similarweb.
    pub fn mark_similarweb_gap(&mut self, country: CountryCode) {
        if !self.similarweb_gaps.contains(&country) {
            self.similarweb_gaps.push(country);
        }
    }

    /// Registers government sites: those indexed by the Tranco-like list
    /// and those only findable by scraping.
    pub fn set_gov(&mut self, country: CountryCode, in_tranco: Vec<SiteId>, scraped: Vec<SiteId>) {
        self.tranco_gov.insert(country, in_tranco);
        self.scraped_gov.insert(country, scraped);
    }

    /// Whether similarweb publishes a regional list for the country.
    pub fn similarweb_covers(&self, country: CountryCode) -> bool {
        !self.similarweb_gaps.contains(&country)
    }

    /// The provider's top-`n` regional list for a country.
    pub fn top_regional(
        &self,
        source: RankingSource,
        country: CountryCode,
        n: usize,
    ) -> Vec<SiteId> {
        if source == RankingSource::Similarweb && !self.similarweb_covers(country) {
            return Vec::new();
        }
        let Some(truth) = self.regional.get(&country) else {
            return Vec::new();
        };
        let noise = disagreement(source);
        if noise == 0.0 {
            return truth.iter().take(n).copied().collect();
        }
        // Rank perturbation: each site's score is its true rank plus noise
        // proportional to the disagreement level; re-sort and truncate.
        let mut rng = ChaCha8Rng::seed_from_u64(
            self.seed
                ^ (source as u64) << 32
                ^ u64::from(country.0[0]) << 8
                ^ u64::from(country.0[1]),
        );
        let mut scored: Vec<(f64, SiteId)> = truth
            .iter()
            .enumerate()
            .map(|(rank, &s)| {
                let jitter: f64 = rng.gen::<f64>() * noise * truth.len() as f64;
                (rank as f64 + jitter, s)
            })
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("scores are finite"));
        scored.into_iter().take(n).map(|(_, s)| s).collect()
    }

    /// The effective regional list per the paper's procedure: similarweb,
    /// falling back to semrush where similarweb has no ranking.
    pub fn effective_regional(
        &self,
        country: CountryCode,
        n: usize,
    ) -> (RankingSource, Vec<SiteId>) {
        if self.similarweb_covers(country) {
            (
                RankingSource::Similarweb,
                self.top_regional(RankingSource::Similarweb, country, n),
            )
        } else {
            (
                RankingSource::Semrush,
                self.top_regional(RankingSource::Semrush, country, n),
            )
        }
    }

    /// Government sites for a country: up to `n` from the Tranco-like list,
    /// topped up from search scraping, mirroring §3.2.
    pub fn gov_sites(&self, country: CountryCode, n: usize) -> Vec<SiteId> {
        let mut out: Vec<SiteId> = self
            .tranco_gov
            .get(&country)
            .map(|v| v.iter().take(n).copied().collect())
            .unwrap_or_default();
        if out.len() < n {
            if let Some(extra) = self.scraped_gov.get(&country) {
                out.extend(extra.iter().take(n - out.len()).copied());
            }
        }
        out
    }

    /// Fraction of `source`'s top-`n` shared with similarweb's top-`n`.
    pub fn overlap_with_similarweb(
        &self,
        source: RankingSource,
        country: CountryCode,
        n: usize,
    ) -> f64 {
        let a = self.top_regional(RankingSource::Similarweb, country, n);
        let b = self.top_regional(source, country, n);
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        let set: std::collections::HashSet<_> = a.iter().collect();
        b.iter().filter(|s| set.contains(s)).count() as f64 / n as f64
    }

    /// Shuffles a candidate pool into a deterministic pseudo-popularity
    /// order; used by the world generator to rank generated sites.
    pub fn popularity_order(seed: u64, mut pool: Vec<SiteId>) -> Vec<SiteId> {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        pool.shuffle(&mut rng);
        pool
    }
}

/// Result of the §3.2 ranking-source validation: mean top-50 overlap of
/// each alternative provider with similarweb.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapExperiment {
    pub countries: usize,
    pub semrush_overlap: f64,
    pub ahrefs_overlap: f64,
}

/// Reproduces the paper's provider-selection experiment: "analyzing the
/// overlap in the top 50 websites for 58 different countries across lists
/// available from similarweb, semrush, and ahrefs. ... Semrush shows a 65%
/// overlap ... ahrefs ... only showed 48%" (§3.2). Each country gets a
/// 150-candidate popularity pool; the providers disagree per their
/// calibrated noise levels.
pub fn overlap_experiment(countries: usize, seed: u64) -> OverlapExperiment {
    let mut sem = 0.0;
    let mut ahr = 0.0;
    // Synthetic two-letter country labels: the experiment spans countries
    // beyond the 23 measurement ones (58 in the paper).
    for i in 0..countries {
        let code = CountryCode([b'A' + (i / 26) as u8, b'A' + (i % 26) as u8]);
        let mut p = RankingProviders::new(seed.wrapping_add(i as u64));
        p.set_regional(code, (0..150u32).map(SiteId).collect());
        sem += p.overlap_with_similarweb(RankingSource::Semrush, code, 50);
        ahr += p.overlap_with_similarweb(RankingSource::Ahrefs, code, 50);
    }
    OverlapExperiment {
        countries,
        semrush_overlap: sem / countries as f64,
        ahrefs_overlap: ahr / countries as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn providers_with(n_candidates: usize) -> (RankingProviders, CountryCode) {
        let mut p = RankingProviders::new(42);
        let cc = CountryCode::new("TH");
        p.set_regional(cc, (0..n_candidates as u32).map(SiteId).collect());
        (p, cc)
    }

    #[test]
    fn similarweb_returns_true_top_50() {
        let (p, cc) = providers_with(80);
        let top = p.top_regional(RankingSource::Similarweb, cc, 50);
        assert_eq!(top.len(), 50);
        assert_eq!(top[0], SiteId(0));
        assert_eq!(top[49], SiteId(49));
    }

    #[test]
    fn overlap_calibration_matches_paper() {
        // Average overlaps across many synthetic countries should straddle
        // the paper's 65% (semrush) and 48% (ahrefs).
        let mut sem = 0.0;
        let mut ahr = 0.0;
        let countries = ["TH", "EG", "AR", "PK", "NZ", "JO", "QA", "LB", "RW", "UG"];
        for (i, cs) in countries.iter().enumerate() {
            let mut p = RankingProviders::new(1000 + i as u64);
            let cc = CountryCode::new(cs);
            p.set_regional(cc, (0..150u32).map(SiteId).collect());
            sem += p.overlap_with_similarweb(RankingSource::Semrush, cc, 50);
            ahr += p.overlap_with_similarweb(RankingSource::Ahrefs, cc, 50);
        }
        sem /= countries.len() as f64;
        ahr /= countries.len() as f64;
        assert!((0.55..0.78).contains(&sem), "semrush overlap {sem}");
        assert!((0.35..0.60).contains(&ahr), "ahrefs overlap {ahr}");
        assert!(sem > ahr, "semrush must align closer than ahrefs");
    }

    #[test]
    fn fallback_uses_semrush_when_similarweb_missing() {
        let (mut p, cc) = providers_with(80);
        assert_eq!(p.effective_regional(cc, 50).0, RankingSource::Similarweb);
        p.mark_similarweb_gap(cc);
        let (src, list) = p.effective_regional(cc, 50);
        assert_eq!(src, RankingSource::Semrush);
        assert_eq!(list.len(), 50);
        assert!(p.top_regional(RankingSource::Similarweb, cc, 50).is_empty());
    }

    #[test]
    fn gov_topup_from_scraping() {
        let mut p = RankingProviders::new(7);
        let cc = CountryCode::new("LB");
        // Lebanon-style: few gov sites in the ranked list (§5).
        p.set_gov(
            cc,
            (0..12u32).map(SiteId).collect(),
            (100..160u32).map(SiteId).collect(),
        );
        let gov = p.gov_sites(cc, 50);
        assert_eq!(gov.len(), 50);
        assert_eq!(&gov[..12], &(0..12u32).map(SiteId).collect::<Vec<_>>()[..]);
        assert_eq!(gov[12], SiteId(100));
    }

    #[test]
    fn gov_does_not_overfill() {
        let mut p = RankingProviders::new(7);
        let cc = CountryCode::new("AU");
        p.set_gov(cc, (0..60u32).map(SiteId).collect(), vec![]);
        assert_eq!(p.gov_sites(cc, 50).len(), 50);
    }

    #[test]
    fn the_58_country_overlap_experiment_reproduces_section_3_2() {
        let e = overlap_experiment(58, 321);
        assert!(
            (0.58..0.72).contains(&e.semrush_overlap),
            "semrush {}",
            e.semrush_overlap
        );
        assert!(
            (0.40..0.56).contains(&e.ahrefs_overlap),
            "ahrefs {}",
            e.ahrefs_overlap
        );
        assert!(e.semrush_overlap > e.ahrefs_overlap);
        assert_eq!(e.countries, 58);
    }

    #[test]
    fn provider_lists_are_deterministic() {
        let (p, cc) = providers_with(80);
        assert_eq!(
            p.top_regional(RankingSource::Semrush, cc, 50),
            p.top_regional(RankingSource::Semrush, cc, 50)
        );
    }

    #[test]
    fn unknown_country_yields_empty() {
        let p = RankingProviders::new(1);
        assert!(p
            .top_regional(RankingSource::Similarweb, CountryCode::new("XX"), 50)
            .is_empty());
        assert!(p.gov_sites(CountryCode::new("XX"), 50).is_empty());
    }
}
