//! The assembled synthetic world.
//!
//! A [`World`] is everything the Gamma suite can observe: the address space
//! and its ground-truth placement, GeoDNS zones, PTR records, organizations
//! and their tracker domains, websites, and per-country target lists. It is
//! produced by [`crate::worldgen::generate`] and treated as read-only by
//! the measurement pipeline.

use crate::domains::TrackerDomain;
use crate::hosting::HostingPlan;
use crate::org::{Org, OrgId};
use crate::site::{SiteId, Website};
use crate::spec::WorldSpec;
use gamma_dns::psl::registrable_domain;
use gamma_dns::rdns::RdnsTable;
use gamma_dns::resolver::{GeoResolver, Replica};
use gamma_dns::DomainName;
use gamma_geo::{CityId, CountryCode};
use gamma_netsim::{AsRegistry, Asn, IpRegistry};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One country's target-website list, split by kind (§3.2).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TargetList {
    pub regional: Vec<SiteId>,
    pub government: Vec<SiteId>,
}

impl TargetList {
    /// T_web = T_reg + T_gov, in order.
    pub fn all(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.regional.iter().chain(self.government.iter()).copied()
    }

    pub fn len(&self) -> usize {
        self.regional.len() + self.government.len()
    }

    pub fn is_empty(&self) -> bool {
        self.regional.is_empty() && self.government.is_empty()
    }
}

/// The generated world.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct World {
    pub spec: WorldSpec,
    pub as_registry: AsRegistry,
    pub ip_registry: IpRegistry,
    pub resolver: GeoResolver,
    pub rdns: RdnsTable,
    pub orgs: Vec<Org>,
    pub tracker_domains: Vec<TrackerDomain>,
    pub sites: Vec<Website>,
    /// T_web per measurement country.
    pub targets: HashMap<CountryCode, TargetList>,
    /// Ground-truth serving city per (tracker org, client country) — used
    /// only by accuracy evaluations, never by the pipeline.
    pub serving: HashMap<(OrgId, CountryCode), CityId>,
    pub hosting: HostingPlan,
    /// Backbone router address per city (traceroute interior hops).
    pub router_ips: HashMap<CityId, Ipv4Addr>,
    /// FQDN or eTLD+1 -> owning org (trackers and site operators).
    pub domain_org: HashMap<DomainName, OrgId>,
}

impl World {
    /// The site with the given id.
    pub fn site(&self, id: SiteId) -> &Website {
        &self.sites[id.0 as usize]
    }

    /// The org with the given id.
    pub fn org(&self, id: OrgId) -> &Org {
        &self.orgs[id.0 as usize]
    }

    /// GeoDNS resolution as seen from a client city.
    pub fn resolve(&self, domain: &DomainName, client_city: CityId) -> Option<Replica> {
        self.resolver.resolve(domain, client_city).map(|(r, _)| r)
    }

    /// Resolution with wildcard-style fallback: an unregistered host under
    /// a known zone answers from the parent zone (real authoritative setups
    /// wildcard such hosts). Needed for e.g. the webdriver's background
    /// `update.googleapis.com` requests, which hit Google zones that only
    /// register the registrable domain.
    pub fn resolve_fuzzy(&self, domain: &DomainName, client_city: CityId) -> Option<Replica> {
        if let Some(r) = self.resolve(domain, client_city) {
            return Some(r);
        }
        let mut cur = domain.parent();
        while let Some(d) = cur {
            if let Some(r) = self.resolve(&d, client_city) {
                return Some(r);
            }
            cur = d.parent();
        }
        None
    }

    /// PTR lookup.
    pub fn rdns_of(&self, addr: Ipv4Addr) -> Option<&str> {
        self.rdns.lookup(addr)
    }

    /// Ground-truth city of an address (where the machine really is).
    pub fn true_city(&self, addr: Ipv4Addr) -> Option<CityId> {
        self.ip_registry.lookup(addr).map(|a| a.city)
    }

    /// Ground-truth country of an address.
    pub fn true_country(&self, addr: Ipv4Addr) -> Option<CountryCode> {
        self.true_city(addr).map(|c| gamma_geo::city(c).country)
    }

    /// AS owning an address.
    pub fn asn_of(&self, addr: Ipv4Addr) -> Option<Asn> {
        self.ip_registry.lookup(addr).map(|a| a.asn)
    }

    /// Backbone router address in a city (every catalog city has one).
    pub fn router_ip_of(&self, city: CityId) -> Ipv4Addr {
        *self
            .router_ips
            .get(&city)
            .expect("worldgen allocates a router per catalog city")
    }

    /// Organization owning a domain: exact FQDN match first, then the
    /// registrable domain, then parent walks (mirrors how WhoTracksMe-style
    /// attribution works on eTLD+1).
    pub fn org_of_domain(&self, domain: &DomainName) -> Option<OrgId> {
        if let Some(&o) = self.domain_org.get(domain) {
            return Some(o);
        }
        if let Some(reg) = registrable_domain(domain) {
            if let Some(&o) = self.domain_org.get(&reg) {
                return Some(o);
            }
        }
        let mut cur = domain.parent();
        while let Some(d) = cur {
            if let Some(&o) = self.domain_org.get(&d) {
                return Some(o);
            }
            cur = d.parent();
        }
        None
    }

    /// Whether a domain belongs to the ground-truth tracker table (exact or
    /// by registrable domain). Used by evaluations, not the pipeline.
    pub fn is_tracker_domain(&self, domain: &DomainName) -> bool {
        let reg = registrable_domain(domain);
        self.tracker_domains.iter().any(|t| {
            t.domain == *domain
                || domain.is_subdomain_of(&t.domain)
                || reg.as_ref() == Some(&t.domain)
        })
    }

    /// The volunteer city for a measurement country.
    pub fn volunteer_city(&self, country: CountryCode) -> Option<CityId> {
        self.spec
            .country(country)
            .and_then(|c| gamma_geo::city_by_name(&c.volunteer_city))
            .map(|c| c.id)
    }

    /// All measurement countries in spec order.
    pub fn measurement_countries(&self) -> impl Iterator<Item = CountryCode> + '_ {
        self.spec.countries.iter().map(|c| c.country)
    }
}
