//! Websites and their page-load request model.
//!
//! A website is the unit of T_web (§3.2): regional or government, with an
//! operator organization, a set of first-party hosts, and the tracker FQDNs
//! its pages request. Loading a page (see `gamma-browser`) emits network
//! requests for the first-party hosts plus a high-probability draw of the
//! embedded trackers — real pages do not fire every tag on every load.

use crate::org::OrgId;
use gamma_dns::DomainName;
use gamma_geo::CountryCode;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Index into a world's site table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u32);

/// T_reg vs T_gov.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteKind {
    Regional,
    Government,
}

/// Editorial category, used for realistic site-name generation and for the
/// category mix the paper describes ("news outlets, e-commerce platforms,
/// and local service providers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteCategory {
    News,
    Ecommerce,
    Services,
    Social,
    Search,
    Reference,
    Video,
    Finance,
    Education,
    GovernmentService,
}

impl SiteCategory {
    /// Regional-site categories in generation rotation order.
    pub const REGIONAL_MIX: [SiteCategory; 8] = [
        SiteCategory::News,
        SiteCategory::Ecommerce,
        SiteCategory::Services,
        SiteCategory::News,
        SiteCategory::Finance,
        SiteCategory::Video,
        SiteCategory::Education,
        SiteCategory::Services,
    ];
}

/// A website in the synthetic web.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Website {
    pub id: SiteId,
    /// Registrable domain of the site (`manoramaonline.com`, `dost.gov.az`).
    pub domain: DomainName,
    /// Home country. For global sites this is the operator's HQ country;
    /// the site still appears in many countries' T_reg.
    pub country: CountryCode,
    pub kind: SiteKind,
    pub category: SiteCategory,
    pub operator: OrgId,
    /// Whether the site ranks in T_reg across most countries (google.com,
    /// wikipedia.org, youtube.com, ... — §3.2).
    pub global: bool,
    /// First-party hosts fetched on every load (`www.`, `static.`, ...).
    pub own_hosts: Vec<DomainName>,
    /// Tracker FQDNs embedded in the page.
    pub trackers: Vec<DomainName>,
}

impl Website {
    /// Network requests emitted by one page load: every first-party host,
    /// plus each tracker independently with probability `tracker_fire_rate`.
    pub fn page_requests<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<DomainName> {
        const TRACKER_FIRE_RATE: f64 = 0.92;
        let mut out = Vec::with_capacity(self.own_hosts.len() + self.trackers.len());
        out.extend(self.own_hosts.iter().cloned());
        for t in &self.trackers {
            if rng.gen::<f64>() < TRACKER_FIRE_RATE {
                out.push(t.clone());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn site() -> Website {
        Website {
            id: SiteId(0),
            domain: d("manoramaonline.com"),
            country: CountryCode::new("QA"),
            kind: SiteKind::Regional,
            category: SiteCategory::News,
            operator: OrgId(99),
            global: false,
            own_hosts: vec![d("www.manoramaonline.com"), d("static.manoramaonline.com")],
            trackers: vec![
                d("googletagmanager.com"),
                d("pixel.dotomi.com"),
                d("cdn.smaato.net"),
            ],
        }
    }

    #[test]
    fn first_party_hosts_always_load() {
        let s = site();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..20 {
            let reqs = s.page_requests(&mut rng);
            assert!(reqs.contains(&d("www.manoramaonline.com")));
            assert!(reqs.contains(&d("static.manoramaonline.com")));
        }
    }

    #[test]
    fn trackers_fire_most_of_the_time_but_not_always() {
        let s = site();
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let mut with_all = 0;
        let mut total_tracker_requests = 0;
        let n = 500;
        for _ in 0..n {
            let reqs = s.page_requests(&mut rng);
            let trackers = reqs.len() - s.own_hosts.len();
            total_tracker_requests += trackers;
            if trackers == s.trackers.len() {
                with_all += 1;
            }
        }
        let rate = total_tracker_requests as f64 / (n * s.trackers.len()) as f64;
        assert!((0.85..0.98).contains(&rate), "fire rate {rate}");
        assert!(with_all < n, "every load fired every tracker");
        assert!(with_all > n / 2, "firing too rare");
    }

    #[test]
    fn requests_preserve_declared_order_of_first_party_hosts() {
        let s = site();
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let reqs = s.page_requests(&mut rng);
        assert_eq!(reqs[0], s.own_hosts[0]);
        assert_eq!(reqs[1], s.own_hosts[1]);
    }

    #[test]
    fn site_serializes() {
        let s = site();
        let js = serde_json::to_string(&s).unwrap();
        let back: Website = serde_json::from_str(&js).unwrap();
        assert_eq!(s, back);
    }
}
