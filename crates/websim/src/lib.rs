//! # gamma-websim
//!
//! The synthetic web the reproduction measures: a calibrated population of
//! tracker organizations and their domain families, hosting deployments on
//! clouds and own networks, regional and government websites whose pages
//! embed those trackers, the ranking providers used to pick target sites
//! (§3.2 of the paper), and the world generator that assembles everything
//! into a [`world::World`] the Gamma suite can crawl.
//!
//! Calibration targets come from the paper's reported numbers (Table 1,
//! Figures 3–8); nothing downstream of generation reads the targets, so the
//! measurement + geolocation + identification pipeline runs honestly over
//! the generated artifact.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod churn;
pub mod domains;
pub mod hosting;
pub mod org;
pub mod ranking;
pub mod site;
pub mod spec;
pub mod world;
pub mod worldgen;

pub use churn::{evolve, world_at_epoch, ChurnLog, ChurnSpec};
pub use domains::TrackerDomain;
pub use org::{Org, OrgId, OrgKind};
pub use ranking::{overlap_experiment, OverlapExperiment, RankingProviders, RankingSource};
pub use site::{SiteCategory, SiteId, SiteKind, Website};
pub use spec::{CountProfile, CountrySpec, TracerouteMode, WorldSpec};
pub use world::World;
