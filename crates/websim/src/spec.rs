//! World specification: the calibration surface of the reproduction.
//!
//! A [`WorldSpec`] encodes, per measurement country, everything the paper
//! *reports* about that country — non-local prevalence on regional and
//! government sites (Table 1, Figure 3), where its foreign trackers are
//! hosted (§6.3), measurement idiosyncrasies (§4.1.1, §5), and the
//! country-exclusive tracker organizations (§6.5). The world generator
//! realizes these targets; the measurement pipeline then runs without ever
//! reading them.

use gamma_geo::CountryCode;
use gamma_netsim::AccessQuality;
use serde::{Deserialize, Serialize};

/// How this volunteer's traceroutes behave (§4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TracerouteMode {
    /// Probes work normally.
    Normal,
    /// Probes fail (firewall / local network config); the study fell back
    /// to RIPE Atlas probes near the volunteer.
    Firewalled,
    /// The volunteer declined to launch traceroutes (Egypt); Atlas probes
    /// were used instead.
    OptOut,
}

/// Distribution of non-local tracker-domain counts per website, shaping
/// Figure 4's box plots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum CountProfile {
    /// Positively-skewed (most countries): geometric-like with the given
    /// mean, occasionally spiked by a major-network outlier.
    Skewed { mean: f64 },
    /// Roughly normal (the paper singles out New Zealand).
    Normal { mean: f64, sd: f64 },
    /// "Vast majority of data points are low ... with outliers" —
    /// Argentina, Qatar.
    LowWithOutliers {
        typical: f64,
        outlier_rate: f64,
        outlier_mean: f64,
    },
}

impl CountProfile {
    /// Draws a count (>= 1) from the profile.
    pub fn sample<R: rand::Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let v = match *self {
            CountProfile::Skewed { mean } => {
                // Geometric with the requested mean: p = 1/mean.
                let p = (1.0 / mean.max(1.0)).clamp(0.02, 1.0);
                let u: f64 = rng.gen::<f64>().max(1e-12);
                (u.ln() / (1.0 - p).max(1e-9).ln()).floor() + 1.0
            }
            CountProfile::Normal { mean, sd } => {
                // Box-Muller.
                let u1: f64 = rng.gen::<f64>().max(1e-12);
                let u2: f64 = rng.gen();
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                mean + sd * z
            }
            CountProfile::LowWithOutliers {
                typical,
                outlier_rate,
                outlier_mean,
            } => {
                if rng.gen::<f64>() < outlier_rate {
                    let u: f64 = rng.gen::<f64>().max(1e-12);
                    outlier_mean * (1.0 - u.ln())
                } else {
                    1.0 + rng.gen::<f64>() * (typical * 2.0 - 1.0).max(0.0)
                }
            }
        };
        v.round().max(1.0) as usize
    }
}

/// Per-country calibration entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CountrySpec {
    pub country: CountryCode,
    /// Volunteer's city (disclosed to the researchers, §4).
    pub volunteer_city: String,
    pub access: AccessQuality,
    /// Target fraction of T_reg sites embedding >= 1 non-local tracker.
    pub reg_nonlocal_rate: f64,
    /// Same for T_gov.
    pub gov_nonlocal_rate: f64,
    /// Distribution of non-local tracker-domain counts per affected site.
    pub nonlocal_count: CountProfile,
    /// Destination mix for this country's foreign-served trackers
    /// (country, weight). Empty means no foreign destinations at all.
    pub dest_weights: Vec<(CountryCode, f64)>,
    /// Whether the five major networks serve this country from in-country
    /// replicas (true for infrastructure-rich countries; the paper observes
    /// "all the major tracking networks have servers in India", §6.3).
    pub majors_serve_locally: bool,
    /// (org name, destination country) forced steering — e.g. Sri Lanka's
    /// Yahoo trackers going to Japan (§7).
    pub org_dest_overrides: Vec<(String, CountryCode)>,
    /// Organizations embedded exclusively by this country's sites (§6.5).
    pub exclusive_orgs: Vec<String>,
    pub traceroute: TracerouteMode,
    /// Fraction of T_web pages that load successfully (Figure 2b).
    pub load_success_rate: f64,
    /// How many of this country's government sites the Tranco-like list
    /// indexes; below 50 triggers the scraping fallback, and very low
    /// values reproduce Lebanon/Russia/Algeria's sparse T_gov (Figure 2a).
    pub gov_sites_in_tranco: usize,
    /// Multiplier on first-party host richness (drives request and
    /// traceroute volume; the USA/Canada/UK vantages launched the most
    /// traceroutes, §5).
    pub page_richness: f64,
    /// Whether similarweb publishes a regional top list (§3.2).
    pub similarweb_covers: bool,
    /// Tracker organizations excluded from this country's embedding pools
    /// (by org name). Empty in the paper's calibration; the scenario
    /// engine's `BlockOrgs` modifier populates it. Blocking never consumes
    /// generator randomness, so an empty list leaves worlds byte-identical.
    #[serde(default)]
    pub blocked_orgs: Vec<String>,
}

/// The full world specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldSpec {
    pub seed: u64,
    /// Top-N regional sites per country.
    pub reg_sites_per_country: usize,
    /// Target government sites per country.
    pub gov_sites_per_country: usize,
    /// Fraction of T_web the volunteer opts out of (0.99% in the study).
    pub opt_out_rate: f64,
    pub countries: Vec<CountrySpec>,
}

impl WorldSpec {
    /// Looks up a country's spec.
    pub fn country(&self, code: CountryCode) -> Option<&CountrySpec> {
        self.countries.iter().find(|c| c.country == code)
    }

    /// Validates rates, weights and city names.
    pub fn validate(&self) -> Result<(), String> {
        if self.countries.is_empty() {
            return Err("no countries in spec".into());
        }
        for c in &self.countries {
            for (what, v) in [
                ("reg_nonlocal_rate", c.reg_nonlocal_rate),
                ("gov_nonlocal_rate", c.gov_nonlocal_rate),
                ("load_success_rate", c.load_success_rate),
            ] {
                if !(0.0..=1.0).contains(&v) {
                    return Err(format!("{}: {what} = {v} out of range", c.country));
                }
            }
            if gamma_geo::city_by_name(&c.volunteer_city).is_none() {
                return Err(format!("{}: unknown city {}", c.country, c.volunteer_city));
            }
            let has_foreign = c.reg_nonlocal_rate > 0.0 || c.gov_nonlocal_rate > 0.0;
            if has_foreign && c.dest_weights.is_empty() {
                return Err(format!(
                    "{}: non-local targets but no destinations",
                    c.country
                ));
            }
            for (dest, w) in &c.dest_weights {
                if gamma_geo::country(*dest).is_none() {
                    return Err(format!("{}: unknown destination {dest}", c.country));
                }
                if *w <= 0.0 {
                    return Err(format!("{}: non-positive weight for {dest}", c.country));
                }
            }
        }
        Ok(())
    }

    /// The paper-calibrated default: 23 countries, every number traceable
    /// to Table 1, Figure 3, §6.3 or §7 of the paper.
    pub fn paper_default(seed: u64) -> WorldSpec {
        let cc = CountryCode::new;
        let w = |pairs: &[(&str, f64)]| -> Vec<(CountryCode, f64)> {
            pairs.iter().map(|(c, f)| (cc(c), *f)).collect()
        };
        let ov = |pairs: &[(&str, &str)]| -> Vec<(String, CountryCode)> {
            pairs.iter().map(|(o, c)| (o.to_string(), cc(c))).collect()
        };
        let ex = |names: &[&str]| -> Vec<String> { names.iter().map(|s| s.to_string()).collect() };
        use AccessQuality::*;

        use TracerouteMode::*;

        let countries = vec![
            CountrySpec {
                country: cc("AZ"),
                volunteer_city: "Baku".into(),
                access: Good,
                reg_nonlocal_rate: 0.82,
                gov_nonlocal_rate: 0.65,
                nonlocal_count: CountProfile::Skewed { mean: 10.5 },
                dest_weights: w(&[("FR", 0.50), ("DE", 0.20), ("GB", 0.20), ("NL", 0.10)]),
                majors_serve_locally: false,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Normal,
                load_success_rate: 0.94,
                gov_sites_in_tranco: 50,
                page_richness: 1.0,
                similarweb_covers: false,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("DZ"),
                volunteer_city: "Algiers".into(),
                access: Fair,
                reg_nonlocal_rate: 0.55,
                gov_nonlocal_rate: 0.44,
                nonlocal_count: CountProfile::Skewed { mean: 8.0 },
                dest_weights: w(&[
                    ("FR", 0.55),
                    ("DE", 0.15),
                    ("GB", 0.15),
                    ("ES", 0.10),
                    ("US", 0.05),
                ]),
                majors_serve_locally: false,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Normal,
                load_success_rate: 0.90,
                gov_sites_in_tranco: 14,
                page_richness: 0.9,
                similarweb_covers: false,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("EG"),
                volunteer_city: "Cairo".into(),
                access: Fair,
                reg_nonlocal_rate: 0.75,
                gov_nonlocal_rate: 0.66,
                nonlocal_count: CountProfile::Skewed { mean: 16.0 },
                dest_weights: w(&[
                    ("DE", 0.55),
                    ("FR", 0.20),
                    ("GB", 0.10),
                    ("IT", 0.10),
                    ("US", 0.05),
                ]),
                majors_serve_locally: false,
                org_dest_overrides: ov(&[("Google", "DE")]), // §7: Egypt -> Germany, mostly Google
                exclusive_orgs: vec![],
                traceroute: OptOut,
                load_success_rate: 0.91,
                gov_sites_in_tranco: 50,
                page_richness: 1.0,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("RW"),
                volunteer_city: "Kigali".into(),
                access: Fair,
                reg_nonlocal_rate: 0.93,
                gov_nonlocal_rate: 0.31,
                nonlocal_count: CountProfile::Skewed { mean: 18.0 },
                dest_weights: w(&[
                    ("KE", 0.50),
                    ("FR", 0.20),
                    ("DE", 0.15),
                    ("GB", 0.10),
                    ("US", 0.05),
                ]),
                majors_serve_locally: false,
                org_dest_overrides: vec![],
                exclusive_orgs: ex(&["KigaliMetrics"]),
                traceroute: Normal,
                load_success_rate: 0.89,
                gov_sites_in_tranco: 38,
                page_richness: 0.95,
                similarweb_covers: false,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("UG"),
                volunteer_city: "Kampala".into(),
                access: Fair,
                reg_nonlocal_rate: 0.67,
                gov_nonlocal_rate: 0.83,
                nonlocal_count: CountProfile::Skewed { mean: 15.0 },
                dest_weights: w(&[
                    ("KE", 0.55),
                    ("FR", 0.12),
                    ("GB", 0.15),
                    ("DE", 0.10),
                    ("NL", 0.05),
                    ("US", 0.03),
                ]),
                majors_serve_locally: false,
                org_dest_overrides: vec![],
                exclusive_orgs: ex(&["TrueAfrican"]),
                traceroute: Normal,
                load_success_rate: 0.90,
                gov_sites_in_tranco: 50,
                page_richness: 0.95,
                similarweb_covers: false,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("AR"),
                volunteer_city: "Buenos Aires".into(),
                access: Good,
                reg_nonlocal_rate: 0.65,
                gov_nonlocal_rate: 0.58,
                nonlocal_count: CountProfile::LowWithOutliers {
                    typical: 2.0,
                    outlier_rate: 0.06,
                    outlier_mean: 14.0,
                },
                dest_weights: w(&[("BR", 0.60), ("FR", 0.20), ("US", 0.10), ("GB", 0.10)]),
                majors_serve_locally: false,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Normal,
                load_success_rate: 0.95,
                gov_sites_in_tranco: 50,
                page_richness: 1.25,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("RU"),
                volunteer_city: "Moscow".into(),
                access: Good,
                reg_nonlocal_rate: 0.16,
                gov_nonlocal_rate: 0.0,
                nonlocal_count: CountProfile::Skewed { mean: 2.0 },
                dest_weights: w(&[("FI", 0.40), ("DE", 0.30), ("BG", 0.30)]),
                majors_serve_locally: true,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Normal,
                load_success_rate: 0.93,
                gov_sites_in_tranco: 16,
                page_richness: 1.0,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("LK"),
                volunteer_city: "Colombo".into(),
                access: Fair,
                reg_nonlocal_rate: 0.12,
                gov_nonlocal_rate: 0.07,
                nonlocal_count: CountProfile::Skewed { mean: 2.5 },
                dest_weights: w(&[
                    ("JP", 0.55),
                    ("FR", 0.18),
                    ("SG", 0.17),
                    ("AU", 0.05),
                    ("IN", 0.05),
                ]),
                majors_serve_locally: true,
                org_dest_overrides: ov(&[("Yahoo", "JP"), ("AdStudio", "IN")]), // §7
                exclusive_orgs: ex(&["AdStudio"]),
                traceroute: Normal,
                load_success_rate: 0.92,
                gov_sites_in_tranco: 50,
                page_richness: 0.9,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("TH"),
                volunteer_city: "Bangkok".into(),
                access: Good,
                reg_nonlocal_rate: 0.62,
                gov_nonlocal_rate: 0.56,
                nonlocal_count: CountProfile::Skewed { mean: 12.0 },
                dest_weights: w(&[("MY", 0.40), ("SG", 0.25), ("HK", 0.20), ("JP", 0.15)]),
                majors_serve_locally: false,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Normal,
                load_success_rate: 0.95,
                gov_sites_in_tranco: 50,
                page_richness: 1.3,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("AE"),
                volunteer_city: "Dubai".into(),
                access: Good,
                reg_nonlocal_rate: 0.26,
                gov_nonlocal_rate: 0.40,
                nonlocal_count: CountProfile::Skewed { mean: 6.5 },
                dest_weights: w(&[("US", 0.30), ("FR", 0.30), ("DE", 0.20), ("GB", 0.20)]),
                majors_serve_locally: true,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Normal,
                load_success_rate: 0.94,
                gov_sites_in_tranco: 50,
                page_richness: 1.0,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("GB"),
                volunteer_city: "London".into(),
                access: Excellent,
                reg_nonlocal_rate: 0.42,
                gov_nonlocal_rate: 0.36,
                nonlocal_count: CountProfile::Skewed { mean: 3.0 },
                dest_weights: w(&[
                    ("FR", 0.40),
                    ("DE", 0.25),
                    ("NL", 0.20),
                    ("IE", 0.10),
                    ("US", 0.05),
                ]),
                majors_serve_locally: true,
                org_dest_overrides: vec![],
                exclusive_orgs: ex(&["Brandwatch"]),
                traceroute: Normal,
                load_success_rate: 0.96,
                gov_sites_in_tranco: 50,
                page_richness: 1.9,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("AU"),
                volunteer_city: "Sydney".into(),
                access: Excellent,
                reg_nonlocal_rate: 0.12,
                gov_nonlocal_rate: 0.01,
                nonlocal_count: CountProfile::Skewed { mean: 1.8 },
                dest_weights: w(&[
                    ("SG", 0.35),
                    ("US", 0.25),
                    ("JP", 0.15),
                    ("HK", 0.15),
                    ("GB", 0.10),
                ]),
                majors_serve_locally: true,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Firewalled,
                load_success_rate: 0.95,
                gov_sites_in_tranco: 50,
                page_richness: 1.1,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("CA"),
                volunteer_city: "Toronto".into(),
                access: Excellent,
                reg_nonlocal_rate: 0.0,
                gov_nonlocal_rate: 0.0,
                nonlocal_count: CountProfile::Skewed { mean: 1.0 },
                dest_weights: vec![],
                majors_serve_locally: true,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Normal,
                load_success_rate: 0.96,
                gov_sites_in_tranco: 50,
                page_richness: 2.0,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("IN"),
                volunteer_city: "Mumbai".into(),
                access: Good,
                reg_nonlocal_rate: 0.0,
                gov_nonlocal_rate: 0.06,
                nonlocal_count: CountProfile::Skewed { mean: 4.5 },
                dest_weights: w(&[("SG", 1.0)]),
                majors_serve_locally: true,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Firewalled,
                load_success_rate: 0.93,
                gov_sites_in_tranco: 50,
                page_richness: 1.1,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("JP"),
                volunteer_city: "Tokyo".into(),
                access: Good,
                reg_nonlocal_rate: 0.25,
                gov_nonlocal_rate: 0.20,
                nonlocal_count: CountProfile::Skewed { mean: 3.0 },
                dest_weights: w(&[("US", 0.45), ("SG", 0.25), ("HK", 0.20), ("AU", 0.10)]),
                majors_serve_locally: true,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Normal,
                load_success_rate: 0.64,
                gov_sites_in_tranco: 50,
                page_richness: 1.0,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("JO"),
                volunteer_city: "Amman".into(),
                access: Fair,
                reg_nonlocal_rate: 0.58,
                gov_nonlocal_rate: 0.51,
                nonlocal_count: CountProfile::Skewed { mean: 21.0 },
                dest_weights: w(&[
                    ("FR", 0.35),
                    ("DE", 0.30),
                    ("GB", 0.15),
                    ("US", 0.10),
                    ("NL", 0.10),
                ]),
                majors_serve_locally: false,
                org_dest_overrides: vec![],
                exclusive_orgs: ex(&["Jubna", "OneTag", "Optad360", "AdFalcon"]), // §6.5
                traceroute: Firewalled,
                load_success_rate: 0.92,
                gov_sites_in_tranco: 50,
                page_richness: 1.0,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("NZ"),
                volunteer_city: "Auckland".into(),
                access: Excellent,
                reg_nonlocal_rate: 0.81,
                gov_nonlocal_rate: 0.85,
                nonlocal_count: CountProfile::Normal {
                    mean: 12.0,
                    sd: 3.5,
                }, // §6.2: only NZ is normal
                dest_weights: w(&[
                    ("AU", 0.72),
                    ("US", 0.07),
                    ("SG", 0.08),
                    ("DE", 0.08),
                    ("JP", 0.05),
                ]),
                majors_serve_locally: false,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Normal,
                load_success_rate: 0.95,
                gov_sites_in_tranco: 50,
                page_richness: 1.15,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("PK"),
                volunteer_city: "Lahore".into(),
                access: Fair,
                reg_nonlocal_rate: 0.70,
                gov_nonlocal_rate: 0.61,
                nonlocal_count: CountProfile::Skewed { mean: 12.0 },
                dest_weights: w(&[
                    ("FR", 0.35),
                    ("DE", 0.30),
                    ("AE", 0.20),
                    ("OM", 0.10),
                    ("GB", 0.05),
                ]),
                majors_serve_locally: false,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Normal,
                load_success_rate: 0.91,
                gov_sites_in_tranco: 50,
                page_richness: 1.0,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("QA"),
                volunteer_city: "Doha".into(),
                access: Good,
                reg_nonlocal_rate: 0.83,
                gov_nonlocal_rate: 0.62,
                nonlocal_count: CountProfile::LowWithOutliers {
                    typical: 2.2,
                    outlier_rate: 0.07,
                    outlier_mean: 16.0,
                },
                dest_weights: w(&[
                    ("FR", 0.40),
                    ("GB", 0.25),
                    ("DE", 0.20),
                    ("US", 0.10),
                    ("SA", 0.05),
                ]),
                majors_serve_locally: false,
                org_dest_overrides: vec![],
                exclusive_orgs: ex(&["GulfTag"]),
                traceroute: Firewalled,
                load_success_rate: 0.93,
                gov_sites_in_tranco: 50,
                page_richness: 1.0,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("SA"),
                volunteer_city: "Riyadh".into(),
                access: Poor,
                reg_nonlocal_rate: 0.75,
                gov_nonlocal_rate: 0.68,
                nonlocal_count: CountProfile::Skewed { mean: 9.5 },
                dest_weights: w(&[
                    ("DE", 0.35),
                    ("FR", 0.30),
                    ("GB", 0.20),
                    ("US", 0.10),
                    ("BH", 0.05),
                ]),
                majors_serve_locally: false,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Normal,
                load_success_rate: 0.56,
                gov_sites_in_tranco: 50,
                page_richness: 0.5,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("TW"),
                volunteer_city: "Taipei".into(),
                access: Good,
                reg_nonlocal_rate: 0.05,
                gov_nonlocal_rate: 0.10,
                nonlocal_count: CountProfile::Skewed { mean: 1.5 },
                dest_weights: w(&[("JP", 0.45), ("HK", 0.30), ("US", 0.17), ("AU", 0.08)]),
                majors_serve_locally: true,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Normal,
                load_success_rate: 0.94,
                gov_sites_in_tranco: 50,
                page_richness: 0.65,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("US"),
                volunteer_city: "Ashburn".into(),
                access: Excellent,
                reg_nonlocal_rate: 0.0,
                gov_nonlocal_rate: 0.0,
                nonlocal_count: CountProfile::Skewed { mean: 1.0 },
                dest_weights: vec![],
                majors_serve_locally: true,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Normal,
                load_success_rate: 0.96,
                gov_sites_in_tranco: 50,
                page_richness: 2.1,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
            CountrySpec {
                country: cc("LB"),
                volunteer_city: "Beirut".into(),
                access: Poor,
                reg_nonlocal_rate: 0.22,
                gov_nonlocal_rate: 0.18,
                nonlocal_count: CountProfile::Skewed { mean: 2.0 },
                dest_weights: w(&[("FR", 0.45), ("DE", 0.25), ("GB", 0.20), ("CY", 0.10)]),
                majors_serve_locally: false,
                org_dest_overrides: vec![],
                exclusive_orgs: vec![],
                traceroute: Normal,
                load_success_rate: 0.90,
                gov_sites_in_tranco: 9,
                page_richness: 0.8,
                similarweb_covers: true,
                blocked_orgs: vec![],
            },
        ];
        WorldSpec {
            seed,
            reg_sites_per_country: 50,
            gov_sites_per_country: 50,
            opt_out_rate: 0.0099,
            countries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn paper_default_validates_and_covers_all_23() {
        let spec = WorldSpec::paper_default(1);
        spec.validate().unwrap();
        assert_eq!(spec.countries.len(), 23);
        for code in gamma_geo::country::MEASUREMENT_COUNTRIES {
            assert!(spec.country(*code).is_some(), "missing {code}");
        }
    }

    #[test]
    fn table1_overall_rates_are_respected() {
        // (reg + gov) / 2 should land near Table 1's Non-Local column.
        let spec = WorldSpec::paper_default(1);
        let expect = [
            ("AZ", 74.39),
            ("DZ", 49.39),
            ("EG", 70.41),
            ("RW", 62.30),
            ("UG", 75.45),
            ("AR", 61.48),
            ("RU", 8.00),
            ("LK", 9.43),
            ("TH", 59.05),
            ("AE", 33.50),
            ("GB", 38.65),
            ("AU", 7.06),
            ("CA", 0.00),
            ("IN", 1.06),
            ("JP", 22.71),
            ("JO", 54.37),
            ("NZ", 83.50),
            ("PK", 65.73),
            ("QA", 73.19),
            ("SA", 71.43),
            ("TW", 7.63),
            ("US", 0.00),
            ("LB", 20.24),
        ];
        for (code, pct) in expect {
            let c = spec.country(CountryCode::new(code)).unwrap();
            let ours = 100.0 * (c.reg_nonlocal_rate + c.gov_nonlocal_rate) / 2.0;
            assert!(
                (ours - pct).abs() < 6.0,
                "{code}: spec {ours:.1}% vs paper {pct}%"
            );
        }
    }

    #[test]
    fn measurement_idiosyncrasies_are_encoded() {
        let spec = WorldSpec::paper_default(1);
        let mode = |c: &str| spec.country(CountryCode::new(c)).unwrap().traceroute;
        assert_eq!(mode("EG"), TracerouteMode::OptOut);
        for c in ["AU", "IN", "QA", "JO"] {
            assert_eq!(mode(c), TracerouteMode::Firewalled, "{c}");
        }
        assert_eq!(mode("US"), TracerouteMode::Normal);
    }

    #[test]
    fn japan_and_saudi_have_low_load_success() {
        let spec = WorldSpec::paper_default(1);
        assert!(
            (spec
                .country(CountryCode::new("JP"))
                .unwrap()
                .load_success_rate
                - 0.64)
                .abs()
                < 0.01
        );
        assert!(
            (spec
                .country(CountryCode::new("SA"))
                .unwrap()
                .load_success_rate
                - 0.56)
                .abs()
                < 0.01
        );
        // Everyone else loads > 86% of T_web (§5).
        for c in &spec.countries {
            if !["JP", "SA"].contains(&c.country.as_str()) {
                assert!(c.load_success_rate > 0.86, "{}", c.country);
            }
        }
    }

    #[test]
    fn jordan_has_its_exclusive_orgs() {
        let spec = WorldSpec::paper_default(1);
        let jo = spec.country(CountryCode::new("JO")).unwrap();
        for name in ["Jubna", "OneTag", "Optad360"] {
            assert!(
                jo.exclusive_orgs.iter().any(|o| o == name),
                "missing {name}"
            );
        }
    }

    #[test]
    fn nz_is_the_only_normal_profile() {
        let spec = WorldSpec::paper_default(1);
        for c in &spec.countries {
            let is_normal = matches!(c.nonlocal_count, CountProfile::Normal { .. });
            assert_eq!(is_normal, c.country.as_str() == "NZ", "{}", c.country);
        }
    }

    #[test]
    fn count_profiles_sample_sanely() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let skewed = CountProfile::Skewed { mean: 10.5 };
        let n = 4000;
        let vals: Vec<usize> = (0..n).map(|_| skewed.sample(&mut rng)).collect();
        let mean = vals.iter().sum::<usize>() as f64 / n as f64;
        assert!((5.0..11.0).contains(&mean), "skewed mean {mean}");
        assert!(vals.iter().all(|&v| v >= 1));

        let normal = CountProfile::Normal {
            mean: 12.0,
            sd: 3.5,
        };
        let vals: Vec<usize> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = vals.iter().sum::<usize>() as f64 / n as f64;
        assert!((11.0..13.0).contains(&mean), "normal mean {mean}");

        let low = CountProfile::LowWithOutliers {
            typical: 2.0,
            outlier_rate: 0.05,
            outlier_mean: 14.0,
        };
        let vals: Vec<usize> = (0..n).map(|_| low.sample(&mut rng)).collect();
        let median = {
            let mut v = vals.clone();
            v.sort_unstable();
            v[n / 2]
        };
        assert!(median <= 3, "low median {median}");
        assert!(*vals.iter().max().unwrap() >= 10, "no outliers produced");
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut spec = WorldSpec::paper_default(1);
        spec.countries[0].reg_nonlocal_rate = 1.5;
        assert!(spec.validate().is_err());

        let mut spec = WorldSpec::paper_default(1);
        spec.countries[0].volunteer_city = "Atlantis".into();
        assert!(spec.validate().is_err());

        let mut spec = WorldSpec::paper_default(1);
        spec.countries[0].dest_weights.clear();
        spec.countries[0].reg_nonlocal_rate = 0.5;
        assert!(spec.validate().is_err());
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let spec = WorldSpec::paper_default(7);
        let js = serde_json::to_string(&spec).unwrap();
        let back: WorldSpec = serde_json::from_str(&js).unwrap();
        assert_eq!(spec, back);
    }
}
