//! Hosting deployments: where organizations' servers physically sit.
//!
//! Every (organization, city) pair that serves traffic gets a deployment —
//! an IPv4 block allocated in that city under either the org's own ASN or a
//! public cloud's (the paper found most non-local trackers hosted on AWS,
//! a few on Google Cloud, §6.5 — including minor trackers on Amazon
//! addresses at a CloudFront edge in Nairobi).

use crate::org::{OrgId, OrgKind, ORG_SEEDS};
use gamma_geo::CityId;
use gamma_netsim::asn::{Asn, ASN_AWS, ASN_GCP};
use gamma_netsim::{IpRegistry, Ipv4Net};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One (org, city) deployment and its address blocks.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Deployment {
    pub org: OrgId,
    pub city: CityId,
    pub asn: Asn,
    /// Blocks allocated so far (a new /24 is chained when one fills up).
    pub nets: Vec<Ipv4Net>,
    /// Next host index within the last block (0 and 255 are skipped).
    next_host: u32,
}

impl Deployment {
    /// Whether this deployment rides on a public cloud.
    pub fn on_cloud(&self) -> bool {
        self.asn == ASN_AWS || self.asn == ASN_GCP
    }
}

/// First ASN handed to organizations running their own networks.
const FIRST_ORG_ASN: u32 = 64_000;

/// Picks the hosting ASN for an organization: majors and every third minor
/// run their own network; the rest ride AWS, with a small GCP share —
/// matching the paper's "50 trackers hosted on AWS and 5 on Google Cloud".
pub fn hosting_asn_for(org: OrgId) -> Asn {
    let idx = org.0 as usize;
    let seed = ORG_SEEDS.get(idx);
    match seed.map(|s| s.kind) {
        Some(OrgKind::MajorTracker) | Some(OrgKind::SiteOperator) => own_asn(org),
        _ => match idx % 10 {
            0..=5 => ASN_AWS,
            6 => ASN_GCP,
            _ => own_asn(org),
        },
    }
}

/// The org's own ASN (deterministic from its id).
pub fn own_asn(org: OrgId) -> Asn {
    Asn(FIRST_ORG_ASN + org.0)
}

/// All deployments of a world, with allocation bookkeeping.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HostingPlan {
    deployments: Vec<Deployment>,
    #[serde(skip)]
    index: HashMap<(OrgId, CityId), usize>,
}

impl HostingPlan {
    pub fn new() -> Self {
        Self::default()
    }

    /// Ensures a deployment exists for (org, city), allocating its first
    /// block if needed, and returns its index.
    pub fn ensure(&mut self, org: OrgId, city: CityId, asn: Asn, reg: &mut IpRegistry) -> usize {
        if let Some(&i) = self.index.get(&(org, city)) {
            return i;
        }
        let alloc = reg.allocate(asn, city);
        let dep = Deployment {
            org,
            city,
            asn,
            nets: vec![alloc.net],
            next_host: 1,
        };
        let i = self.deployments.len();
        self.deployments.push(dep);
        self.index.insert((org, city), i);
        i
    }

    /// Allocates the next server address inside a deployment, chaining a
    /// fresh /24 when the current block is exhausted.
    pub fn alloc_ip(&mut self, dep_idx: usize, reg: &mut IpRegistry) -> Ipv4Addr {
        let dep = &mut self.deployments[dep_idx];
        if dep.next_host >= 255 {
            let alloc = reg.allocate(dep.asn, dep.city);
            dep.nets.push(alloc.net);
            dep.next_host = 1;
        }
        let net = *dep.nets.last().expect("deployment has at least one block");
        let ip = net.nth(dep.next_host as u64).expect("host index < 255");
        dep.next_host += 1;
        ip
    }

    /// Rehosts an (org, city) deployment onto a different network: a
    /// fresh deployment is allocated under `new_asn` and the index is
    /// repointed at it, so future lookups and allocations use the new
    /// blocks. The old deployment is kept in the plan — its addresses
    /// were handed out and stay ground-truthed in the registry, which is
    /// exactly what a real migration leaves behind (the old netblocks
    /// still geolocate, they just stop answering DNS). Returns the new
    /// deployment's index, or `None` if (org, city) was never deployed.
    pub fn rehost(
        &mut self,
        org: OrgId,
        city: CityId,
        new_asn: Asn,
        reg: &mut IpRegistry,
    ) -> Option<usize> {
        let slot = self.index.get_mut(&(org, city))?;
        let alloc = reg.allocate(new_asn, city);
        let dep = Deployment {
            org,
            city,
            asn: new_asn,
            nets: vec![alloc.net],
            next_host: 1,
        };
        let i = self.deployments.len();
        *slot = i;
        self.deployments.push(dep);
        Some(i)
    }

    /// Looks up a deployment by (org, city).
    pub fn get(&self, org: OrgId, city: CityId) -> Option<&Deployment> {
        self.index.get(&(org, city)).map(|&i| &self.deployments[i])
    }

    pub fn iter(&self) -> impl Iterator<Item = &Deployment> {
        self.deployments.iter()
    }

    pub fn len(&self) -> usize {
        self.deployments.len()
    }

    pub fn is_empty(&self) -> bool {
        self.deployments.is_empty()
    }

    /// Rebuilds the lookup index after deserialization.
    pub fn rebuild_index(&mut self) {
        self.index = self
            .deployments
            .iter()
            .enumerate()
            .map(|(i, d)| ((d.org, d.city), i))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::org::OrgKind;

    #[test]
    fn majors_host_on_their_own_network() {
        for (i, seed) in ORG_SEEDS.iter().enumerate() {
            if seed.kind == OrgKind::MajorTracker {
                let asn = hosting_asn_for(OrgId(i as u32));
                assert_eq!(asn, own_asn(OrgId(i as u32)), "{}", seed.name);
            }
        }
    }

    #[test]
    fn most_minors_ride_aws_with_a_small_gcp_share() {
        let mut aws = 0;
        let mut gcp = 0;
        let mut own = 0;
        for (i, seed) in ORG_SEEDS.iter().enumerate() {
            if seed.kind == OrgKind::MajorTracker {
                continue;
            }
            match hosting_asn_for(OrgId(i as u32)) {
                a if a == ASN_AWS => aws += 1,
                a if a == ASN_GCP => gcp += 1,
                _ => own += 1,
            }
        }
        assert!(aws > gcp * 4, "aws {aws} gcp {gcp}");
        assert!(aws > own, "aws {aws} own {own}");
        assert!(gcp >= 3, "gcp {gcp}");
    }

    #[test]
    fn ensure_is_idempotent_and_alloc_advances() {
        let mut reg = IpRegistry::new();
        let mut plan = HostingPlan::new();
        let i1 = plan.ensure(OrgId(0), CityId(3), ASN_AWS, &mut reg);
        let i2 = plan.ensure(OrgId(0), CityId(3), ASN_AWS, &mut reg);
        assert_eq!(i1, i2);
        assert_eq!(plan.len(), 1);
        let a = plan.alloc_ip(i1, &mut reg);
        let b = plan.alloc_ip(i1, &mut reg);
        assert_ne!(a, b);
        // Both addresses ground-truth to the deployment's city and ASN.
        for ip in [a, b] {
            let hit = reg.lookup(ip).unwrap();
            assert_eq!(hit.city, CityId(3));
            assert_eq!(hit.asn, ASN_AWS);
        }
    }

    #[test]
    fn block_chaining_after_254_hosts() {
        let mut reg = IpRegistry::new();
        let mut plan = HostingPlan::new();
        let i = plan.ensure(OrgId(1), CityId(0), own_asn(OrgId(1)), &mut reg);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..600 {
            assert!(seen.insert(plan.alloc_ip(i, &mut reg)), "duplicate IP");
        }
        let dep = plan.get(OrgId(1), CityId(0)).unwrap();
        assert!(
            dep.nets.len() >= 3,
            "expected chained blocks, got {}",
            dep.nets.len()
        );
    }

    #[test]
    fn rehost_repoints_the_index_and_keeps_old_blocks_ground_truthed() {
        let mut reg = IpRegistry::new();
        let mut plan = HostingPlan::new();
        let i = plan.ensure(OrgId(4), CityId(7), own_asn(OrgId(4)), &mut reg);
        let old_ip = plan.alloc_ip(i, &mut reg);
        let j = plan.rehost(OrgId(4), CityId(7), ASN_AWS, &mut reg).unwrap();
        assert_ne!(i, j);
        assert_eq!(plan.get(OrgId(4), CityId(7)).unwrap().asn, ASN_AWS);
        let new_ip = plan.alloc_ip(j, &mut reg);
        assert_ne!(old_ip, new_ip);
        // Old address still geolocates under the old ASN; the new one
        // under the cloud ASN — both in the same city.
        let old_hit = reg.lookup(old_ip).unwrap();
        assert_eq!(old_hit.asn, own_asn(OrgId(4)));
        let new_hit = reg.lookup(new_ip).unwrap();
        assert_eq!(new_hit.asn, ASN_AWS);
        assert_eq!(new_hit.city, CityId(7));
        // Rehosting an unknown deployment is a no-op.
        assert!(plan
            .rehost(OrgId(99), CityId(7), ASN_AWS, &mut reg)
            .is_none());
    }

    #[test]
    fn cloud_detection() {
        let mut reg = IpRegistry::new();
        let mut plan = HostingPlan::new();
        let i = plan.ensure(OrgId(9), CityId(25), ASN_AWS, &mut reg);
        plan.alloc_ip(i, &mut reg);
        assert!(plan.get(OrgId(9), CityId(25)).unwrap().on_cloud());
        let j = plan.ensure(OrgId(2), CityId(25), own_asn(OrgId(2)), &mut reg);
        assert!(!plan.deployments[j].on_cloud());
    }
}
