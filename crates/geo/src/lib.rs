//! # gamma-geo
//!
//! Geographic substrate for the *Gamma* reproduction: country and city
//! catalogs, great-circle geometry, and the speed-of-light-in-fiber
//! constraint that anchors every latency-based geolocation decision in the
//! paper (§4.1, "Speed of Light Physical Constraint in Cable").
//!
//! The catalog covers every measurement country of the study (Table 1 of the
//! paper) plus every destination country referenced in the evaluation
//! (France, Germany, Kenya, Malaysia, ...), and the cities that matter for
//! hosting, volunteer vantage points, and the documented IPmap mislocation
//! incidents (Al Fujairah, Amsterdam, Zurich, Frankfurt).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod city;
pub mod continent;
pub mod coords;
pub mod country;
pub mod sol;

pub use city::{
    cities, cities_in, city, city_by_iata, city_by_name, nearest_city, CityId, CityInfo,
};
pub use continent::Continent;
pub use coords::{haversine_km, GeoPoint};
pub use country::{
    countries, country, country_by_name, CountryCode, CountryInfo, MEASUREMENT_COUNTRIES,
};
pub use sol::{implied_speed_km_per_ms, min_rtt_ms, violates_sol, SOL_KM_PER_MS};
