//! Country catalog.
//!
//! Covers the 23 measurement countries of the study plus every destination
//! country referenced by its evaluation, and enough additional countries to
//! reach the ">60 different destination countries" the paper launched
//! destination traceroutes into (§5).

use crate::continent::Continent;
use crate::coords::GeoPoint;
use serde::{Deserialize, Serialize};

/// ISO-3166-alpha-2-style country code (two uppercase ASCII letters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CountryCode(pub [u8; 2]);

impl CountryCode {
    /// Builds a code from a two-letter string. Panics on malformed input —
    /// codes are compile-time constants throughout the workspace.
    pub const fn new(s: &str) -> Self {
        let b = s.as_bytes();
        assert!(b.len() == 2);
        assert!(b[0].is_ascii_uppercase() && b[1].is_ascii_uppercase());
        CountryCode([b[0], b[1]])
    }

    /// The code as a `&str`.
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).expect("country codes are ASCII")
    }

    /// Parses a code from arbitrary input, upper-casing as needed.
    pub fn parse(s: &str) -> Option<Self> {
        let b = s.as_bytes();
        if b.len() != 2 || !b[0].is_ascii_alphabetic() || !b[1].is_ascii_alphabetic() {
            return None;
        }
        Some(CountryCode([
            b[0].to_ascii_uppercase(),
            b[1].to_ascii_uppercase(),
        ]))
    }
}

impl std::fmt::Display for CountryCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Static description of a country.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CountryInfo {
    pub code: CountryCode,
    pub name: &'static str,
    pub continent: Continent,
    /// Whether the country is conventionally classed as Global South
    /// (developing), following the paper's §3.4 framing.
    pub global_south: bool,
    /// Rough population centroid used for country-level geometry.
    pub centroid: GeoPoint,
    /// Approximate radius (km) bounding most in-country infrastructure;
    /// used by the destination-based constraint to decide what round-trip
    /// time is consistent with "server inside this country".
    pub radius_km: f64,
}

impl CountryInfo {
    /// Great-circle distance between two countries' centroids.
    pub fn centroid_distance_km(&self, other: &CountryInfo) -> f64 {
        self.centroid.distance_km(&other.centroid)
    }
}

macro_rules! country_table {
    ($(($code:literal, $name:literal, $cont:ident, $south:expr, $lat:expr, $lon:expr, $radius:expr)),+ $(,)?) => {
        /// The full country catalog.
        pub static COUNTRIES: &[CountryInfo] = &[
            $(CountryInfo {
                code: CountryCode::new($code),
                name: $name,
                continent: Continent::$cont,
                global_south: $south,
                centroid: GeoPoint { lat: $lat, lon: $lon },
                radius_km: $radius,
            }),+
        ];
    };
}

country_table![
    // --- the 23 measurement countries (Table 1 of the paper) ---
    ("AZ", "Azerbaijan", Asia, true, 40.4, 47.8, 300.0),
    ("DZ", "Algeria", Africa, true, 32.0, 3.0, 900.0),
    ("EG", "Egypt", Africa, true, 29.0, 31.0, 600.0),
    ("RW", "Rwanda", Africa, true, -1.94, 29.87, 120.0),
    ("UG", "Uganda", Africa, true, 0.35, 32.58, 250.0),
    ("AR", "Argentina", SouthAmerica, true, -34.6, -58.4, 1500.0),
    ("RU", "Russia", Europe, false, 55.75, 37.62, 3000.0),
    ("LK", "Sri Lanka", Asia, true, 6.93, 79.85, 200.0),
    ("TH", "Thailand", Asia, true, 13.75, 100.5, 700.0),
    (
        "AE",
        "United Arab Emirates",
        Asia,
        true,
        24.45,
        54.38,
        250.0
    ),
    ("GB", "United Kingdom", Europe, false, 51.5, -0.12, 500.0),
    ("AU", "Australia", Oceania, false, -33.87, 151.2, 2000.0),
    ("CA", "Canada", NorthAmerica, false, 43.65, -79.38, 2500.0),
    ("IN", "India", Asia, true, 19.07, 72.88, 1500.0),
    ("JP", "Japan", Asia, false, 35.68, 139.69, 900.0),
    ("JO", "Jordan", Asia, true, 31.95, 35.93, 220.0),
    ("NZ", "New Zealand", Oceania, false, -36.85, 174.76, 800.0),
    ("PK", "Pakistan", Asia, true, 31.55, 74.34, 800.0),
    ("QA", "Qatar", Asia, true, 25.28, 51.53, 100.0),
    ("SA", "Saudi Arabia", Asia, true, 24.71, 46.68, 900.0),
    ("TW", "Taiwan", Asia, false, 25.03, 121.56, 200.0),
    (
        "US",
        "United States",
        NorthAmerica,
        false,
        39.0,
        -77.5,
        2500.0
    ),
    ("LB", "Lebanon", Asia, true, 33.89, 35.5, 100.0),
    // --- principal destination / hosting countries of the evaluation ---
    ("FR", "France", Europe, false, 48.86, 2.35, 500.0),
    ("DE", "Germany", Europe, false, 50.11, 8.68, 400.0),
    ("KE", "Kenya", Africa, true, -1.29, 36.82, 400.0),
    ("MY", "Malaysia", Asia, true, 3.14, 101.69, 600.0),
    ("SG", "Singapore", Asia, false, 1.35, 103.82, 40.0),
    ("HK", "Hong Kong", Asia, false, 22.32, 114.17, 40.0),
    ("OM", "Oman", Asia, true, 23.59, 58.41, 400.0),
    ("IT", "Italy", Europe, false, 45.46, 9.19, 600.0),
    ("NL", "Netherlands", Europe, false, 52.37, 4.9, 150.0),
    ("CH", "Switzerland", Europe, false, 47.38, 8.54, 180.0),
    ("IL", "Israel", Asia, false, 32.07, 34.78, 200.0),
    ("BG", "Bulgaria", Europe, true, 42.7, 23.32, 250.0),
    ("BR", "Brazil", SouthAmerica, true, -23.55, -46.63, 2000.0),
    ("FI", "Finland", Europe, false, 60.17, 24.94, 600.0),
    ("BE", "Belgium", Europe, false, 50.85, 4.35, 120.0),
    ("GH", "Ghana", Africa, true, 5.6, -0.19, 350.0),
    ("TR", "Turkey", Asia, true, 41.01, 28.98, 800.0),
    ("ES", "Spain", Europe, false, 40.42, -3.7, 500.0),
    ("SE", "Sweden", Europe, false, 59.33, 18.07, 700.0),
    ("IE", "Ireland", Europe, false, 53.35, -6.26, 200.0),
    ("PL", "Poland", Europe, false, 52.23, 21.01, 400.0),
    ("CZ", "Czechia", Europe, false, 50.08, 14.44, 220.0),
    ("AT", "Austria", Europe, false, 48.21, 16.37, 250.0),
    ("PT", "Portugal", Europe, false, 38.72, -9.14, 300.0),
    ("NO", "Norway", Europe, false, 59.91, 10.75, 800.0),
    ("DK", "Denmark", Europe, false, 55.68, 12.57, 200.0),
    ("ZA", "South Africa", Africa, true, -26.2, 28.05, 800.0),
    ("NG", "Nigeria", Africa, true, 6.52, 3.38, 600.0),
    ("MX", "Mexico", NorthAmerica, true, 19.43, -99.13, 1200.0),
    ("CL", "Chile", SouthAmerica, true, -33.45, -70.66, 1500.0),
    ("CO", "Colombia", SouthAmerica, true, 4.71, -74.07, 700.0),
    ("KR", "South Korea", Asia, false, 37.57, 126.98, 300.0),
    ("ID", "Indonesia", Asia, true, -6.21, 106.85, 1500.0),
    ("VN", "Vietnam", Asia, true, 10.82, 106.63, 800.0),
    ("PH", "Philippines", Asia, true, 14.6, 120.98, 700.0),
    ("BD", "Bangladesh", Asia, true, 23.81, 90.41, 300.0),
    ("NP", "Nepal", Asia, true, 27.72, 85.32, 400.0),
    ("CN", "China", Asia, true, 31.23, 121.47, 2000.0),
    ("UA", "Ukraine", Europe, true, 50.45, 30.52, 600.0),
    ("RO", "Romania", Europe, true, 44.43, 26.1, 350.0),
    ("HU", "Hungary", Europe, false, 47.5, 19.04, 250.0),
    ("GR", "Greece", Europe, false, 37.98, 23.73, 400.0),
    ("MA", "Morocco", Africa, true, 33.57, -7.59, 500.0),
    ("TN", "Tunisia", Africa, true, 36.8, 10.18, 300.0),
    ("ET", "Ethiopia", Africa, true, 9.01, 38.75, 600.0),
    ("TZ", "Tanzania", Africa, true, -6.79, 39.21, 600.0),
    ("CY", "Cyprus", Asia, false, 35.17, 33.36, 100.0),
    ("BH", "Bahrain", Asia, true, 26.23, 50.59, 40.0),
    ("KW", "Kuwait", Asia, true, 29.38, 47.99, 100.0),
    ("LU", "Luxembourg", Europe, false, 49.61, 6.13, 50.0),
];

/// Looks up a country by code.
pub fn country(code: CountryCode) -> Option<&'static CountryInfo> {
    COUNTRIES.iter().find(|c| c.code == code)
}

/// Looks up a country by its English name (case-insensitive).
pub fn country_by_name(name: &str) -> Option<&'static CountryInfo> {
    COUNTRIES.iter().find(|c| c.name.eq_ignore_ascii_case(name))
}

/// Iterates over the full catalog.
pub fn countries() -> impl Iterator<Item = &'static CountryInfo> {
    COUNTRIES.iter()
}

/// The 23 measurement countries of the study, in Table 1 order.
pub static MEASUREMENT_COUNTRIES: &[CountryCode] = &[
    CountryCode::new("AZ"),
    CountryCode::new("DZ"),
    CountryCode::new("EG"),
    CountryCode::new("RW"),
    CountryCode::new("UG"),
    CountryCode::new("AR"),
    CountryCode::new("RU"),
    CountryCode::new("LK"),
    CountryCode::new("TH"),
    CountryCode::new("AE"),
    CountryCode::new("GB"),
    CountryCode::new("AU"),
    CountryCode::new("CA"),
    CountryCode::new("IN"),
    CountryCode::new("JP"),
    CountryCode::new("JO"),
    CountryCode::new("NZ"),
    CountryCode::new("PK"),
    CountryCode::new("QA"),
    CountryCode::new("SA"),
    CountryCode::new("TW"),
    CountryCode::new("US"),
    CountryCode::new("LB"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_no_duplicate_codes() {
        let mut seen = std::collections::HashSet::new();
        for c in COUNTRIES {
            assert!(seen.insert(c.code), "duplicate code {}", c.code);
        }
    }

    #[test]
    fn all_measurement_countries_resolve() {
        for code in MEASUREMENT_COUNTRIES {
            assert!(country(*code).is_some(), "missing {code}");
        }
        assert_eq!(MEASUREMENT_COUNTRIES.len(), 23);
    }

    #[test]
    fn catalog_covers_over_sixty_countries() {
        // The paper launched destination traceroutes into >60 countries.
        assert!(COUNTRIES.len() > 60, "only {} countries", COUNTRIES.len());
    }

    #[test]
    fn code_roundtrips_through_parse_and_display() {
        let c = CountryCode::new("KE");
        assert_eq!(CountryCode::parse("ke"), Some(c));
        assert_eq!(c.to_string(), "KE");
    }

    #[test]
    fn parse_rejects_malformed_codes() {
        assert_eq!(CountryCode::parse(""), None);
        assert_eq!(CountryCode::parse("K"), None);
        assert_eq!(CountryCode::parse("KEN"), None);
        assert_eq!(CountryCode::parse("1A"), None);
    }

    #[test]
    fn lookup_by_name_is_case_insensitive() {
        assert_eq!(
            country_by_name("kenya").unwrap().code,
            CountryCode::new("KE")
        );
        assert_eq!(
            country_by_name("NEW ZEALAND").unwrap().code,
            CountryCode::new("NZ")
        );
        assert!(country_by_name("Atlantis").is_none());
    }

    #[test]
    fn centroid_coordinates_are_in_range() {
        for c in COUNTRIES {
            assert!((-90.0..=90.0).contains(&c.centroid.lat), "{}", c.name);
            assert!((-180.0..=180.0).contains(&c.centroid.lon), "{}", c.name);
            assert!(c.radius_km > 0.0, "{}", c.name);
        }
    }

    #[test]
    fn continent_counts_follow_table_one() {
        // §3.4's own arithmetic is inconsistent (sums to 22); we follow the
        // Table 1 list with standard assignments: Russia in Europe.
        use std::collections::HashMap;
        let mut by: HashMap<Continent, usize> = HashMap::new();
        for code in MEASUREMENT_COUNTRIES {
            *by.entry(country(*code).unwrap().continent).or_default() += 1;
        }
        assert_eq!(by[&Continent::Africa], 4);
        assert_eq!(by[&Continent::Asia], 12);
        assert_eq!(by[&Continent::Europe], 2);
        assert_eq!(by[&Continent::NorthAmerica], 2);
        assert_eq!(by[&Continent::Oceania], 2);
        assert_eq!(by[&Continent::SouthAmerica], 1);
    }

    #[test]
    fn global_south_classification_spot_checks() {
        assert!(country(CountryCode::new("RW")).unwrap().global_south);
        assert!(country(CountryCode::new("UG")).unwrap().global_south);
        assert!(country(CountryCode::new("AZ")).unwrap().global_south);
        assert!(!country(CountryCode::new("GB")).unwrap().global_south);
        assert!(!country(CountryCode::new("CA")).unwrap().global_south);
        assert!(!country(CountryCode::new("JP")).unwrap().global_south);
    }
}
