//! City catalog: volunteer vantage points, hosting hubs, CDN edge sites and
//! backbone interconnection points.
//!
//! Every city carries an IATA-style code because the reverse-DNS constraint
//! (§4.1.3 of the paper) extracts geographic hints from router/server
//! hostnames, which conventionally embed such codes.

use crate::coords::GeoPoint;
use crate::country::CountryCode;
use serde::{Deserialize, Serialize};

/// Index into the static city catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CityId(pub u16);

/// Static description of a city.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CityInfo {
    pub id: CityId,
    pub name: &'static str,
    pub country: CountryCode,
    pub location: GeoPoint,
    /// IATA-style airport code, embedded into synthetic rDNS hostnames.
    pub iata: &'static str,
}

impl CityInfo {
    /// Great-circle distance to another city, km.
    pub fn distance_km(&self, other: &CityInfo) -> f64 {
        self.location.distance_km(&other.location)
    }
}

macro_rules! city_table {
    ($(($name:literal, $cc:literal, $lat:expr, $lon:expr, $iata:literal)),+ $(,)?) => {
        const RAW: &[(&str, &str, f64, f64, &str)] = &[
            $(($name, $cc, $lat, $lon, $iata)),+
        ];
    };
}

city_table![
    // --- volunteer vantage cities (one per measurement country, §4) ---
    ("Baku", "AZ", 40.41, 49.87, "GYD"),
    ("Algiers", "DZ", 36.75, 3.06, "ALG"),
    ("Cairo", "EG", 30.04, 31.24, "CAI"),
    ("Kigali", "RW", -1.94, 30.06, "KGL"),
    ("Kampala", "UG", 0.35, 32.58, "EBB"),
    ("Buenos Aires", "AR", -34.60, -58.38, "EZE"),
    ("Moscow", "RU", 55.75, 37.62, "SVO"),
    ("Colombo", "LK", 6.93, 79.85, "CMB"),
    ("Bangkok", "TH", 13.75, 100.50, "BKK"),
    ("Dubai", "AE", 25.20, 55.27, "DXB"),
    ("London", "GB", 51.51, -0.13, "LHR"),
    ("Sydney", "AU", -33.87, 151.21, "SYD"),
    ("Toronto", "CA", 43.65, -79.38, "YYZ"),
    ("Mumbai", "IN", 19.08, 72.88, "BOM"),
    ("Tokyo", "JP", 35.68, 139.69, "NRT"),
    ("Amman", "JO", 31.95, 35.93, "AMM"),
    ("Auckland", "NZ", -36.85, 174.76, "AKL"),
    ("Lahore", "PK", 31.55, 74.34, "LHE"),
    ("Doha", "QA", 25.29, 51.53, "DOH"),
    ("Riyadh", "SA", 24.71, 46.68, "RUH"),
    ("Taipei", "TW", 25.03, 121.56, "TPE"),
    ("Ashburn", "US", 39.04, -77.49, "IAD"),
    ("Beirut", "LB", 33.89, 35.50, "BEY"),
    // --- principal hosting / destination cities of the evaluation ---
    ("Paris", "FR", 48.86, 2.35, "CDG"),
    ("Frankfurt", "DE", 50.11, 8.68, "FRA"),
    ("Nairobi", "KE", -1.29, 36.82, "NBO"),
    ("Kuala Lumpur", "MY", 3.14, 101.69, "KUL"),
    ("Singapore", "SG", 1.35, 103.82, "SIN"),
    ("Hong Kong", "HK", 22.32, 114.17, "HKG"),
    ("Muscat", "OM", 23.59, 58.41, "MCT"),
    ("Milan", "IT", 45.46, 9.19, "MXP"),
    ("Amsterdam", "NL", 52.37, 4.90, "AMS"),
    ("Zurich", "CH", 47.38, 8.54, "ZRH"),
    ("Tel Aviv", "IL", 32.07, 34.78, "TLV"),
    ("Sofia", "BG", 42.70, 23.32, "SOF"),
    ("Sao Paulo", "BR", -23.55, -46.63, "GRU"),
    ("Helsinki", "FI", 60.17, 24.94, "HEL"),
    ("Brussels", "BE", 50.85, 4.35, "BRU"),
    ("Accra", "GH", 5.60, -0.19, "ACC"),
    ("Istanbul", "TR", 41.01, 28.98, "IST"),
    ("Madrid", "ES", 40.42, -3.70, "MAD"),
    ("Stockholm", "SE", 59.33, 18.07, "ARN"),
    ("Dublin", "IE", 53.35, -6.26, "DUB"),
    ("Warsaw", "PL", 52.23, 21.01, "WAW"),
    ("Prague", "CZ", 50.08, 14.44, "PRG"),
    ("Vienna", "AT", 48.21, 16.37, "VIE"),
    ("Lisbon", "PT", 38.72, -9.14, "LIS"),
    ("Oslo", "NO", 59.91, 10.75, "OSL"),
    ("Copenhagen", "DK", 55.68, 12.57, "CPH"),
    ("Johannesburg", "ZA", -26.20, 28.05, "JNB"),
    ("Lagos", "NG", 6.52, 3.38, "LOS"),
    ("Mexico City", "MX", 19.43, -99.13, "MEX"),
    ("Santiago", "CL", -33.45, -70.66, "SCL"),
    ("Bogota", "CO", 4.71, -74.07, "BOG"),
    ("Seoul", "KR", 37.57, 126.98, "ICN"),
    ("Jakarta", "ID", -6.21, 106.85, "CGK"),
    ("Ho Chi Minh City", "VN", 10.82, 106.63, "SGN"),
    ("Manila", "PH", 14.60, 120.98, "MNL"),
    ("Dhaka", "BD", 23.81, 90.41, "DAC"),
    ("Kathmandu", "NP", 27.72, 85.32, "KTM"),
    ("Shanghai", "CN", 31.23, 121.47, "PVG"),
    ("Kyiv", "UA", 50.45, 30.52, "KBP"),
    ("Bucharest", "RO", 44.43, 26.10, "OTP"),
    ("Budapest", "HU", 47.50, 19.04, "BUD"),
    ("Athens", "GR", 37.98, 23.73, "ATH"),
    ("Casablanca", "MA", 33.57, -7.59, "CMN"),
    ("Tunis", "TN", 36.80, 10.18, "TUN"),
    ("Addis Ababa", "ET", 9.01, 38.75, "ADD"),
    ("Dar es Salaam", "TZ", -6.79, 39.21, "DAR"),
    ("Nicosia", "CY", 35.17, 33.36, "LCA"),
    ("Manama", "BH", 26.23, 50.59, "BAH"),
    ("Kuwait City", "KW", 29.38, 47.99, "KWI"),
    ("Luxembourg City", "LU", 49.61, 6.13, "LUX"),
    // --- additional in-country hubs, backbone PoPs, and cities that appear
    //     in the paper's documented geolocation incidents ---
    ("Al Fujairah", "AE", 25.13, 56.33, "FJR"),
    ("Sharjah", "AE", 25.35, 55.39, "SHJ"),
    ("Berlin", "DE", 52.52, 13.40, "BER"),
    ("Munich", "DE", 48.14, 11.58, "MUC"),
    ("Marseille", "FR", 43.30, 5.37, "MRS"),
    ("Manchester", "GB", 53.48, -2.24, "MAN"),
    ("New York", "US", 40.71, -74.01, "JFK"),
    ("San Francisco", "US", 37.77, -122.42, "SFO"),
    ("Dallas", "US", 32.78, -96.80, "DFW"),
    ("Seattle", "US", 47.61, -122.33, "SEA"),
    ("Miami", "US", 25.76, -80.19, "MIA"),
    ("Montreal", "CA", 45.50, -73.57, "YUL"),
    ("Vancouver", "CA", 49.28, -123.12, "YVR"),
    ("Melbourne", "AU", -37.81, 144.96, "MEL"),
    ("Perth", "AU", -31.95, 115.86, "PER"),
    ("Wellington", "NZ", -41.29, 174.78, "WLG"),
    ("Delhi", "IN", 28.61, 77.21, "DEL"),
    ("Chennai", "IN", 13.08, 80.27, "MAA"),
    ("Hyderabad", "IN", 17.39, 78.49, "HYD"),
    ("Osaka", "JP", 34.69, 135.50, "KIX"),
    ("Karachi", "PK", 24.86, 67.01, "KHI"),
    ("Islamabad", "PK", 33.69, 73.06, "ISB"),
    ("Jeddah", "SA", 21.49, 39.19, "JED"),
    ("Alexandria", "EG", 31.20, 29.92, "HBE"),
    ("Mombasa", "KE", -4.04, 39.67, "MBA"),
    ("Chiang Mai", "TH", 18.79, 98.98, "CNX"),
    ("Saint Petersburg", "RU", 59.93, 30.34, "LED"),
    ("Cordoba", "AR", -31.42, -64.18, "COR"),
    ("Abu Dhabi", "AE", 24.45, 54.38, "AUH"),
];

fn build_catalog() -> Vec<CityInfo> {
    RAW.iter()
        .enumerate()
        .map(|(i, &(name, cc, lat, lon, iata))| CityInfo {
            id: CityId(i as u16),
            name,
            country: CountryCode::parse(cc).expect("valid country code in city table"),
            location: GeoPoint { lat, lon },
            iata,
        })
        .collect()
}

fn catalog() -> &'static [CityInfo] {
    use std::sync::OnceLock;
    static CATALOG: OnceLock<Vec<CityInfo>> = OnceLock::new();
    CATALOG.get_or_init(build_catalog)
}

/// Looks up a city by id. Panics on an out-of-range id, which can only be
/// produced by corrupting a serialized dataset.
pub fn city(id: CityId) -> &'static CityInfo {
    &catalog()[id.0 as usize]
}

/// Iterates over the full catalog.
pub fn cities() -> impl Iterator<Item = &'static CityInfo> {
    catalog().iter()
}

/// All cities in a given country.
pub fn cities_in(country: CountryCode) -> impl Iterator<Item = &'static CityInfo> {
    catalog().iter().filter(move |c| c.country == country)
}

/// Case-insensitive lookup by city name.
pub fn city_by_name(name: &str) -> Option<&'static CityInfo> {
    catalog().iter().find(|c| c.name.eq_ignore_ascii_case(name))
}

/// Lookup by IATA code (case-insensitive); the rDNS hint extractor uses this.
pub fn city_by_iata(iata: &str) -> Option<&'static CityInfo> {
    catalog().iter().find(|c| c.iata.eq_ignore_ascii_case(iata))
}

/// The catalog city nearest to a point. Used by the route synthesizer to
/// choose intermediate PoPs.
pub fn nearest_city(p: GeoPoint) -> &'static CityInfo {
    catalog()
        .iter()
        .min_by(|a, b| {
            a.location
                .distance_km(&p)
                .partial_cmp(&b.location.distance_km(&p))
                .expect("distances are finite")
        })
        .expect("catalog is non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::country::{country, MEASUREMENT_COUNTRIES};

    #[test]
    fn ids_are_dense_and_consistent() {
        for (i, c) in cities().enumerate() {
            assert_eq!(c.id.0 as usize, i);
            assert_eq!(city(c.id), c);
        }
    }

    #[test]
    fn every_city_belongs_to_a_cataloged_country() {
        for c in cities() {
            assert!(
                country(c.country).is_some(),
                "{} has unknown country",
                c.name
            );
        }
    }

    #[test]
    fn every_measurement_country_has_at_least_one_city() {
        for code in MEASUREMENT_COUNTRIES {
            assert!(cities_in(*code).next().is_some(), "no city for {code}");
        }
    }

    #[test]
    fn iata_codes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for c in cities() {
            assert!(seen.insert(c.iata), "duplicate IATA {}", c.iata);
        }
    }

    #[test]
    fn iata_lookup_is_case_insensitive() {
        assert_eq!(city_by_iata("nbo").unwrap().name, "Nairobi");
        assert_eq!(city_by_iata("FJR").unwrap().name, "Al Fujairah");
        assert!(city_by_iata("XXQ").is_none());
    }

    #[test]
    fn nearest_city_to_a_city_is_itself() {
        for c in cities() {
            assert_eq!(nearest_city(c.location).id, c.id, "{}", c.name);
        }
    }

    #[test]
    fn mislocation_incident_cities_exist() {
        // The paper's documented IPmap errors involve these cities (§4.1.3).
        for name in ["Al Fujairah", "Amsterdam", "Zurich", "Frankfurt"] {
            assert!(city_by_name(name).is_some(), "missing {name}");
        }
    }

    #[test]
    fn fallback_probe_countries_have_cities() {
        // Qatar falls back to a Saudi probe; Jordan to an Israeli one (§4.1.1).
        assert!(cities_in(CountryCode::new("SA")).next().is_some());
        assert!(cities_in(CountryCode::new("IL")).next().is_some());
    }
}
