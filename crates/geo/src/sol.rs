//! Speed-of-light-in-fiber constraint (§4.1 of the paper).
//!
//! The paper bounds the *implied transmission speed* of a round-trip
//! measurement: data observed through traceroute round-trip times "should
//! not exceed 2c/3 ... i.e., 133 km/ms, based on transmission rates in
//! fiber-optic cable" (citing Katz-Bassett et al.). We adopt the paper's
//! constant verbatim: a measurement claiming a server at geodesic distance
//! `d` km with round-trip time `rtt` ms violates the constraint when
//! `d / rtt > 133`.

/// The paper's speed-of-light-in-cable bound, km per millisecond of RTT.
pub const SOL_KM_PER_MS: f64 = 133.0;

/// Implied speed of a measurement: claimed distance over round-trip time.
///
/// Returns `f64::INFINITY` for non-positive RTTs, which always violates the
/// constraint (a zero-time round trip over a nonzero distance is physically
/// impossible, and garbage RTTs must never validate a location claim).
pub fn implied_speed_km_per_ms(distance_km: f64, rtt_ms: f64) -> f64 {
    if rtt_ms <= 0.0 {
        if distance_km <= 0.0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        distance_km / rtt_ms
    }
}

/// Whether a (distance, RTT) pair violates the speed-of-light constraint.
pub fn violates_sol(distance_km: f64, rtt_ms: f64) -> bool {
    implied_speed_km_per_ms(distance_km, rtt_ms) > SOL_KM_PER_MS
}

/// The minimum physically-plausible RTT to a server at the given distance,
/// under the paper's 133 km/ms bound.
pub fn min_rtt_ms(distance_km: f64) -> f64 {
    distance_km / SOL_KM_PER_MS
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plausible_measurement_passes() {
        // Paris -> Frankfurt is ~480 km; 10 ms RTT implies 48 km/ms.
        assert!(!violates_sol(480.0, 10.0));
    }

    #[test]
    fn impossible_measurement_fails() {
        // A transatlantic distance in 10 ms is impossible.
        assert!(violates_sol(6000.0, 10.0));
    }

    #[test]
    fn boundary_is_exactly_133() {
        assert!(!violates_sol(133.0, 1.0));
        assert!(violates_sol(133.01, 1.0));
    }

    #[test]
    fn zero_rtt_nonzero_distance_violates() {
        assert!(violates_sol(1.0, 0.0));
        assert!(violates_sol(1.0, -5.0));
    }

    #[test]
    fn zero_distance_never_violates() {
        assert!(!violates_sol(0.0, 0.0));
        assert!(!violates_sol(0.0, 5.0));
    }

    #[test]
    fn min_rtt_is_consistent_with_violation_test() {
        let d = 1000.0;
        let r = min_rtt_ms(d);
        assert!(!violates_sol(d, r));
        assert!(violates_sol(d, r * 0.99));
    }
}
