//! Great-circle geometry over WGS-84-ish spherical coordinates.

use serde::{Deserialize, Serialize};

/// Mean Earth radius in kilometres (spherical approximation).
pub const EARTH_RADIUS_KM: f64 = 6371.0;

/// A point on the globe, latitude/longitude in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, positive north. Must lie in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, positive east. Must lie in `[-180, 180]`.
    pub lon: f64,
}

impl GeoPoint {
    /// Builds a point, debug-asserting the coordinate ranges.
    pub fn new(lat: f64, lon: f64) -> Self {
        debug_assert!(
            (-90.0..=90.0).contains(&lat),
            "latitude out of range: {lat}"
        );
        debug_assert!(
            (-180.0..=180.0).contains(&lon),
            "longitude out of range: {lon}"
        );
        GeoPoint { lat, lon }
    }

    /// Great-circle distance to another point, in kilometres.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        haversine_km(*self, *other)
    }

    /// Linear interpolation along the great circle between `self` and `to`.
    ///
    /// `t = 0` is `self`, `t = 1` is `to`. Used by the route synthesizer in
    /// `gamma-netsim` to pick intermediate PoPs along a path.
    pub fn lerp_great_circle(&self, to: &GeoPoint, t: f64) -> GeoPoint {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (to.lat.to_radians(), to.lon.to_radians());
        let d = haversine_km(*self, *to) / EARTH_RADIUS_KM;
        if d < 1e-9 {
            return *self;
        }
        let a = ((1.0 - t) * d).sin() / d.sin();
        let b = (t * d).sin() / d.sin();
        let x = a * lat1.cos() * lon1.cos() + b * lat2.cos() * lon2.cos();
        let y = a * lat1.cos() * lon1.sin() + b * lat2.cos() * lon2.sin();
        let z = a * lat1.sin() + b * lat2.sin();
        GeoPoint {
            lat: z.atan2((x * x + y * y).sqrt()).to_degrees(),
            lon: y.atan2(x).to_degrees(),
        }
    }
}

/// Haversine great-circle distance between two points, in kilometres.
pub fn haversine_km(a: GeoPoint, b: GeoPoint) -> f64 {
    let (lat1, lon1) = (a.lat.to_radians(), a.lon.to_radians());
    let (lat2, lon2) = (b.lat.to_radians(), b.lon.to_radians());
    let dlat = lat2 - lat1;
    let dlon = lon2 - lon1;
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paris() -> GeoPoint {
        GeoPoint::new(48.8566, 2.3522)
    }
    fn london() -> GeoPoint {
        GeoPoint::new(51.5074, -0.1278)
    }
    fn sydney() -> GeoPoint {
        GeoPoint::new(-33.8688, 151.2093)
    }

    #[test]
    fn zero_distance_to_self() {
        let p = paris();
        assert!(haversine_km(p, p) < 1e-9);
    }

    #[test]
    fn paris_london_distance_is_about_344km() {
        let d = haversine_km(paris(), london());
        assert!((330.0..360.0).contains(&d), "got {d}");
    }

    #[test]
    fn london_sydney_distance_is_about_17000km() {
        let d = haversine_km(london(), sydney());
        assert!((16800.0..17200.0).contains(&d), "got {d}");
    }

    #[test]
    fn distance_is_symmetric() {
        assert!((haversine_km(paris(), sydney()) - haversine_km(sydney(), paris())).abs() < 1e-9);
    }

    #[test]
    fn lerp_endpoints_match() {
        let a = paris();
        let b = sydney();
        let p0 = a.lerp_great_circle(&b, 0.0);
        let p1 = a.lerp_great_circle(&b, 1.0);
        assert!(haversine_km(a, p0) < 1.0);
        assert!(haversine_km(b, p1) < 1.0);
    }

    #[test]
    fn lerp_midpoint_is_equidistant() {
        let a = paris();
        let b = sydney();
        let mid = a.lerp_great_circle(&b, 0.5);
        let da = haversine_km(a, mid);
        let db = haversine_km(b, mid);
        assert!((da - db).abs() < 5.0, "da={da} db={db}");
    }

    #[test]
    fn lerp_on_coincident_points_is_stable() {
        let a = paris();
        let m = a.lerp_great_circle(&a, 0.5);
        assert!(haversine_km(a, m) < 1e-6);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_point() -> impl Strategy<Value = GeoPoint> {
            (-89.0f64..89.0, -179.0f64..179.0).prop_map(|(lat, lon)| GeoPoint { lat, lon })
        }

        proptest! {
            #[test]
            fn distance_is_a_metric(a in arb_point(), b in arb_point(), c in arb_point()) {
                let ab = haversine_km(a, b);
                let ba = haversine_km(b, a);
                let ac = haversine_km(a, c);
                let cb = haversine_km(c, b);
                prop_assert!(ab >= 0.0);
                prop_assert!((ab - ba).abs() < 1e-9, "not symmetric");
                // Triangle inequality (with float slack).
                prop_assert!(ab <= ac + cb + 1e-6, "triangle violated: {ab} > {ac} + {cb}");
                // Bounded by half the circumference.
                prop_assert!(ab <= std::f64::consts::PI * EARTH_RADIUS_KM + 1e-6);
            }

            #[test]
            fn lerp_distances_are_additive(a in arb_point(), b in arb_point(), t in 0.0f64..1.0) {
                let total = haversine_km(a, b);
                prop_assume!(total > 1.0);
                let m = a.lerp_great_circle(&b, t);
                let am = haversine_km(a, m);
                let mb = haversine_km(m, b);
                // The interpolated point lies ON the great circle: the two
                // legs sum to the whole within float error.
                prop_assert!((am + mb - total).abs() < total * 1e-6 + 1e-6,
                    "off-geodesic: {am} + {mb} != {total}");
                // And splits it proportionally.
                prop_assert!((am - t * total).abs() < total * 1e-6 + 1e-3);
            }

            #[test]
            fn sol_bound_consistency(d in 0.0f64..20_000.0) {
                use crate::sol::{min_rtt_ms, violates_sol};
                let r = min_rtt_ms(d);
                prop_assert!(!violates_sol(d, r + 1e-9));
                if d > 0.0 {
                    prop_assert!(violates_sol(d, r * 0.9));
                }
            }
        }
    }
}
