//! Continents, as used by the flow roll-up of Figure 6.

use serde::{Deserialize, Serialize};

/// The six inhabited continents.
///
/// The paper's continent-level analysis (§6.4, Figure 6) aggregates tracker
/// flows between these regions; Antarctica never appears in the data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Continent {
    Africa,
    Asia,
    Europe,
    NorthAmerica,
    Oceania,
    SouthAmerica,
}

impl Continent {
    /// All continents, in the stable order used by reports.
    pub const ALL: [Continent; 6] = [
        Continent::Africa,
        Continent::Asia,
        Continent::Europe,
        Continent::NorthAmerica,
        Continent::Oceania,
        Continent::SouthAmerica,
    ];

    /// Human-readable name as printed in figures.
    pub fn name(self) -> &'static str {
        match self {
            Continent::Africa => "Africa",
            Continent::Asia => "Asia",
            Continent::Europe => "Europe",
            Continent::NorthAmerica => "North America",
            Continent::Oceania => "Oceania",
            Continent::SouthAmerica => "South America",
        }
    }
}

impl std::fmt::Display for Continent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_contains_six_distinct_continents() {
        let mut seen = std::collections::HashSet::new();
        for c in Continent::ALL {
            assert!(seen.insert(c), "duplicate continent {c}");
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Continent::NorthAmerica.to_string(), "North America");
        assert_eq!(Continent::Africa.to_string(), "Africa");
    }

    #[test]
    fn ordering_is_stable() {
        let mut v = vec![
            Continent::SouthAmerica,
            Continent::Africa,
            Continent::Europe,
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Continent::Africa,
                Continent::Europe,
                Continent::SouthAmerica
            ]
        );
    }
}
