//! Probe selection.
//!
//! §4.1 of the paper: "We select probes as close as possible to the
//! volunteer's city and on the same network, where feasible", and for
//! destination constraints "we choose the probe in the same city when
//! available", falling back to a nearby country when the target country
//! hosts no probes (Saudi Arabia for Qatar, Israel for Jordan).

use crate::platform::AtlasPlatform;
use crate::probe::Probe;
use gamma_chaos::{FaultKind, FaultOracle, FaultScope};
use gamma_geo::{city, country, CityId, CountryCode};
use gamma_netsim::Asn;
use serde::{Deserialize, Serialize};

/// How good the selected probe is relative to the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SelectionQuality {
    /// Same city (and possibly network) as requested.
    SameCity,
    /// Same country, different city.
    SameCountry,
    /// Nearby country fallback.
    NearbyCountry,
}

/// A selection result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeSelection {
    pub probe: Probe,
    pub quality: SelectionQuality,
}

/// Hard-wired fallbacks documented in the paper.
const DOCUMENTED_FALLBACKS: &[(&str, &str)] = &[("QA", "SA"), ("JO", "IL")];

impl AtlasPlatform {
    /// Selects a probe for measurements concerning `target_country`,
    /// preferring `near_city`, then same-ASN, then any in-country probe,
    /// then a nearby-country fallback.
    pub fn select_probe(
        &self,
        target_country: CountryCode,
        near_city: Option<CityId>,
        prefer_asn: Option<Asn>,
    ) -> Option<ProbeSelection> {
        self.select_probe_impl(target_country, near_city, prefer_asn, &|_| true)
    }

    /// Probe selection under the unified fault plan: probes for which
    /// `ProbeChurn` fires (scoped to the requesting vantage, keyed by probe
    /// id) have churned offline mid-campaign and are never selected. A
    /// quiet oracle selects exactly what [`AtlasPlatform::select_probe`]
    /// would.
    pub fn select_probe_with(
        &self,
        target_country: CountryCode,
        near_city: Option<CityId>,
        prefer_asn: Option<Asn>,
        oracle: &dyn FaultOracle,
        vantage: Option<CountryCode>,
    ) -> Option<ProbeSelection> {
        let alive = |p: &Probe| {
            let subject = p.id.0.to_string();
            let scope = match vantage {
                Some(c) => FaultScope::new(c, &subject),
                None => FaultScope::global(&subject),
            };
            !oracle.fires(FaultKind::ProbeChurn, scope)
        };
        self.select_probe_impl(target_country, near_city, prefer_asn, &alive)
    }

    fn select_probe_impl(
        &self,
        target_country: CountryCode,
        near_city: Option<CityId>,
        prefer_asn: Option<Asn>,
        alive: &dyn Fn(&Probe) -> bool,
    ) -> Option<ProbeSelection> {
        let in_country: Vec<&Probe> = self
            .connected_in(target_country)
            .filter(|p| alive(p))
            .collect();
        if !in_country.is_empty() {
            if let Some(cid) = near_city {
                if let Some(p) = best_by_asn(
                    in_country.iter().copied().filter(|p| p.city == cid),
                    prefer_asn,
                ) {
                    return Some(ProbeSelection {
                        probe: *p,
                        quality: SelectionQuality::SameCity,
                    });
                }
            }
            // Same country: nearest to the requested city if any.
            let p = match near_city {
                Some(cid) => {
                    let target = city(cid).location;
                    in_country
                        .iter()
                        .copied()
                        .min_by(|a, b| {
                            let da = city(a.city).location.distance_km(&target);
                            let db = city(b.city).location.distance_km(&target);
                            da.partial_cmp(&db).expect("finite distances")
                        })
                        .expect("non-empty")
                }
                None => best_by_asn(in_country.iter().copied(), prefer_asn)
                    .expect("non-empty in-country set"),
            };
            return Some(ProbeSelection {
                probe: *p,
                quality: SelectionQuality::SameCountry,
            });
        }

        // Documented fallbacks first, then nearest-by-centroid country with
        // any connected probe.
        if let Some((_, fb)) = DOCUMENTED_FALLBACKS
            .iter()
            .find(|(c, _)| *c == target_country.as_str())
        {
            if let Some(sel) =
                self.select_probe_impl(CountryCode::new(fb), near_city, prefer_asn, alive)
            {
                return Some(ProbeSelection {
                    probe: sel.probe,
                    quality: SelectionQuality::NearbyCountry,
                });
            }
        }
        let target = country(target_country)?;
        let mut best: Option<(&Probe, f64)> = None;
        for p in self.probes().iter().filter(|p| p.connected && alive(p)) {
            let c = country(p.country)?;
            let d = target.centroid.distance_km(&c.centroid);
            if best.map_or(true, |(_, bd)| d < bd) {
                best = Some((p, d));
            }
        }
        best.map(|(p, _)| ProbeSelection {
            probe: *p,
            quality: SelectionQuality::NearbyCountry,
        })
    }
}

fn best_by_asn<'a>(
    candidates: impl Iterator<Item = &'a Probe>,
    prefer_asn: Option<Asn>,
) -> Option<&'a Probe> {
    let v: Vec<&Probe> = candidates.collect();
    if let Some(asn) = prefer_asn {
        if let Some(p) = v.iter().find(|p| p.asn == asn) {
            return Some(p);
        }
    }
    v.first().copied()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_geo::city_by_name;

    fn platform() -> AtlasPlatform {
        AtlasPlatform::generate(99)
    }

    #[test]
    fn qatar_falls_back_to_saudi_arabia() {
        let p = platform();
        let sel = p
            .select_probe(
                CountryCode::new("QA"),
                city_by_name("Doha").map(|c| c.id),
                None,
            )
            .expect("fallback must exist");
        assert_eq!(sel.quality, SelectionQuality::NearbyCountry);
        assert_eq!(sel.probe.country, CountryCode::new("SA"));
    }

    #[test]
    fn jordan_falls_back_to_israel() {
        let p = platform();
        let sel = p
            .select_probe(
                CountryCode::new("JO"),
                city_by_name("Amman").map(|c| c.id),
                None,
            )
            .expect("fallback must exist");
        assert_eq!(sel.quality, SelectionQuality::NearbyCountry);
        assert_eq!(sel.probe.country, CountryCode::new("IL"));
    }

    #[test]
    fn dense_country_yields_same_city_probe() {
        let p = platform();
        let fra = city_by_name("Frankfurt").unwrap().id;
        let sel = p
            .select_probe(CountryCode::new("DE"), Some(fra), None)
            .expect("Germany has probes");
        assert_eq!(sel.probe.country, CountryCode::new("DE"));
        assert!(
            sel.quality == SelectionQuality::SameCity
                || sel.quality == SelectionQuality::SameCountry
        );
    }

    #[test]
    fn same_country_selection_prefers_nearest_city() {
        let p = platform();
        // Ask for a US probe near Seattle; whatever comes back must be a US
        // probe, and if Seattle hosts one it must be chosen.
        let sea = city_by_name("Seattle").unwrap().id;
        let sel = p
            .select_probe(CountryCode::new("US"), Some(sea), None)
            .unwrap();
        assert_eq!(sel.probe.country, CountryCode::new("US"));
        let has_seattle_probe = p
            .connected_in(CountryCode::new("US"))
            .any(|pr| pr.city == sea);
        if has_seattle_probe {
            assert_eq!(sel.quality, SelectionQuality::SameCity);
            assert_eq!(sel.probe.city, sea);
        }
    }

    #[test]
    fn selection_without_city_still_returns_in_country() {
        let p = platform();
        let sel = p.select_probe(CountryCode::new("KE"), None, None).unwrap();
        assert_eq!(sel.probe.country, CountryCode::new("KE"));
    }

    #[test]
    fn unknown_country_returns_none() {
        let p = platform();
        assert!(p.select_probe(CountryCode::new("XX"), None, None).is_none());
    }

    #[test]
    fn quiet_oracle_selects_identically() {
        use gamma_chaos::NoFaults;
        let p = platform();
        for cc in ["DE", "US", "KE", "QA"] {
            let target = CountryCode::new(cc);
            assert_eq!(
                p.select_probe(target, None, None),
                p.select_probe_with(target, None, None, &NoFaults, Some(target))
            );
        }
    }

    #[test]
    fn full_churn_leaves_no_probe_for_the_vantage_only() {
        use gamma_chaos::{FaultPlan, FaultProfile};
        let p = platform();
        let au = CountryCode::new("AU");
        let us = CountryCode::new("US");
        let mut churned = FaultProfile::none();
        churned.atlas.churn_rate = 1.0;
        let plan = FaultPlan::none(4).with_override(au, churned);
        assert!(p
            .select_probe_with(CountryCode::new("DE"), None, None, &plan, Some(au))
            .is_none());
        // Another vantage still sees the full platform.
        assert_eq!(
            p.select_probe_with(CountryCode::new("DE"), None, None, &plan, Some(us)),
            p.select_probe(CountryCode::new("DE"), None, None)
        );
    }

    #[test]
    fn partial_churn_degrades_selection_quality_at_worst() {
        use gamma_chaos::FaultPlan;
        let p = platform();
        let de = CountryCode::new("DE");
        let fra = city_by_name("Frankfurt").unwrap().id;
        let plan = FaultPlan::stress(12);
        // With 20% churn the selection may differ, but whatever comes back
        // must still be a live, connected probe.
        if let Some(sel) = p.select_probe_with(de, Some(fra), None, &plan, Some(de)) {
            assert!(sel.probe.connected);
        }
    }
}
