//! Individual Atlas probes.

use gamma_geo::{CityId, CountryCode};
use gamma_netsim::Asn;
use serde::{Deserialize, Serialize};

/// Probe identifier (Atlas-style numeric id).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProbeId(pub u32);

/// A measurement probe hosted by some volunteer network.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Probe {
    pub id: ProbeId,
    pub city: CityId,
    pub country: CountryCode,
    /// The hosting network; "on the same network, where feasible" is one of
    /// the paper's probe-selection criteria (§4.1.1).
    pub asn: Asn,
    /// Probes go up and down; only connected probes can measure.
    pub connected: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_is_serializable() {
        let p = Probe {
            id: ProbeId(7),
            city: CityId(3),
            country: CountryCode::new("KE"),
            asn: Asn(64000),
            connected: true,
        };
        let js = serde_json::to_string(&p).unwrap();
        let back: Probe = serde_json::from_str(&js).unwrap();
        assert_eq!(p, back);
    }
}
