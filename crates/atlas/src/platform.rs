//! The probe population.
//!
//! Density mirrors the real platform's Global-North skew: rich coverage in
//! Europe/North America/Oceania, thin coverage across the Global South, and
//! two deliberate zero-probe countries (Qatar, Jordan) so the paper's
//! nearby-country fallbacks are exercised.

use crate::probe::{Probe, ProbeId};
use gamma_geo::{cities_in, countries, CountryCode};
use gamma_netsim::Asn;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Countries hosting no probes at all. The paper's destination/fallback
/// selection had to reach into Saudi Arabia for Qatar and Israel for
/// Jordan (§4.1.1), which requires these gaps.
pub const ZERO_PROBE_COUNTRIES: &[&str] = &["QA", "JO"];

/// First ASN used for synthetic probe-host networks.
const FIRST_PROBE_ASN: u32 = 50_000;

/// The platform: all registered probes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AtlasPlatform {
    probes: Vec<Probe>,
}

impl AtlasPlatform {
    /// Builds the population. Probe counts per country scale with Global
    /// North membership; each probe sits in a real catalog city.
    pub fn generate(seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA71A5);
        let mut probes = Vec::new();
        let mut next_id = 1u32;
        for country in countries() {
            if ZERO_PROBE_COUNTRIES.contains(&country.code.as_str()) {
                continue;
            }
            let count = if country.global_south {
                // Sparse: one to three probes.
                1 + (rng.gen::<f64>() * 2.4) as usize
            } else {
                // Dense: a dozen or more.
                12 + (rng.gen::<f64>() * 24.0) as usize
            };
            let cities: Vec<_> = cities_in(country.code).collect();
            if cities.is_empty() {
                continue;
            }
            for k in 0..count {
                let city = cities[k % cities.len()];
                probes.push(Probe {
                    id: ProbeId(next_id),
                    city: city.id,
                    country: country.code,
                    asn: Asn(FIRST_PROBE_ASN + next_id % 97),
                    // Probes churn, but every covered country keeps at
                    // least one connected anchor.
                    connected: k == 0 || rng.gen::<f64>() < 0.93,
                });
                next_id += 1;
            }
        }
        AtlasPlatform { probes }
    }

    /// All probes.
    pub fn probes(&self) -> &[Probe] {
        &self.probes
    }

    /// Connected probes in a country.
    pub fn connected_in(&self, country: CountryCode) -> impl Iterator<Item = &Probe> {
        self.probes
            .iter()
            .filter(move |p| p.country == country && p.connected)
    }

    /// Number of probes (connected or not) in a country.
    pub fn count_in(&self, country: CountryCode) -> usize {
        self.probes.iter().filter(|p| p.country == country).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn platform() -> AtlasPlatform {
        AtlasPlatform::generate(99)
    }

    #[test]
    fn qatar_and_jordan_have_no_probes() {
        let p = platform();
        assert_eq!(p.count_in(CountryCode::new("QA")), 0);
        assert_eq!(p.count_in(CountryCode::new("JO")), 0);
    }

    #[test]
    fn fallback_countries_have_probes() {
        let p = platform();
        assert!(p.count_in(CountryCode::new("SA")) > 0, "Saudi fallback");
        assert!(p.count_in(CountryCode::new("IL")) > 0, "Israel fallback");
    }

    #[test]
    fn global_north_is_denser_than_global_south() {
        let p = platform();
        let north: usize = ["DE", "FR", "GB", "US", "NL"]
            .iter()
            .map(|c| p.count_in(CountryCode::new(c)))
            .sum();
        let south: usize = ["RW", "UG", "DZ", "PK", "LK"]
            .iter()
            .map(|c| p.count_in(CountryCode::new(c)))
            .sum();
        assert!(
            north > south * 5,
            "north {north} should dwarf south {south}"
        );
    }

    #[test]
    fn every_probe_city_matches_its_country() {
        let p = platform();
        for probe in p.probes() {
            assert_eq!(gamma_geo::city(probe.city).country, probe.country);
        }
    }

    #[test]
    fn most_probes_are_connected() {
        let p = platform();
        let connected = p.probes().iter().filter(|p| p.connected).count();
        let frac = connected as f64 / p.probes().len() as f64;
        assert!((0.85..1.0).contains(&frac), "connected fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = AtlasPlatform::generate(1);
        let b = AtlasPlatform::generate(1);
        assert_eq!(a.probes().len(), b.probes().len());
        assert_eq!(a.probes()[0], b.probes()[0]);
    }
}
