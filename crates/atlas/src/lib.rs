//! # gamma-atlas
//!
//! A RIPE-Atlas-like distributed measurement platform. The paper leans on
//! Atlas twice: as the *fallback source* for volunteers whose traceroutes
//! failed (Australia, India, Qatar, Jordan) or who opted out (Egypt), and
//! for every *destination-based constraint* — a traceroute from a probe in
//! the claimed server country (§4.1.1–§4.1.2).
//!
//! The defining property reproduced here is density skew: probe coverage is
//! dense in the Global North and sparse in the Global South (§2.2 calls
//! this out as what makes the prior EU methodology infeasible elsewhere).
//! Qatar and Jordan host no probes at all, forcing the paper's documented
//! nearby-country fallbacks (Saudi Arabia and Israel respectively).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod platform;
pub mod probe;
pub mod select;

pub use platform::AtlasPlatform;
pub use probe::{Probe, ProbeId};
pub use select::{ProbeSelection, SelectionQuality};
