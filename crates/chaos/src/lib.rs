//! # gamma-chaos
//!
//! The unified fault-injection plane. The paper's campaign ran on flaky
//! volunteer machines over a hostile real Internet: page loads hung until
//! the §3.1 hard-timeout kill, DNS answers went missing, traceroutes
//! starred out or were firewalled entirely (Australia/India/Qatar/Jordan,
//! §4.1.1), and Atlas probes churned mid-campaign. This crate models all
//! of that behind one seed-derived [`FaultPlan`] that every measurement
//! layer consults through the [`FaultOracle`] trait.
//!
//! Two properties make the plan safe to thread through a byte-reproducible
//! pipeline:
//!
//! 1. **Order independence.** Every decision is a pure hash of
//!    `(plan seed, fault kind, scope)` — no RNG stream is consumed, so the
//!    same plan produces the same faults whether shards run on one worker
//!    or sixteen, and a zero-rate plan perturbs nothing.
//! 2. **Monotone nesting.** A fault fires when `hash < rate`, so raising a
//!    rate strictly grows the set of fired faults. Because every consumer
//!    applies faults as a *post-filter* on the fault-free computation
//!    (records are removed or degraded, never invented), raising rates can
//!    only degrade downstream results — the property `tests/chaos.rs`
//!    locks in.

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

use gamma_geo::CountryCode;
use serde::{Deserialize, Serialize};

/// Every injectable failure, grouped by the layer that consults it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// DNS query times out (no answer at all).
    DnsTimeout,
    /// DNS query answered SERVFAIL.
    DnsServfail,
    /// DNS query answered NXDOMAIN for a name that exists.
    DnsNxdomain,
    /// Reverse-DNS PTR lookup truncated/lost for an address.
    RdnsTruncated,
    /// Page load hangs until the hard-timeout kill (§3.1).
    PageHang,
    /// Captured HAR is truncated: only a prefix of requests survives.
    HarTruncated,
    /// An individual network request is dropped from the capture.
    RequestDropped,
    /// The whole traceroute probe is dropped by the vantage's network.
    ProbeDropped,
    /// A single hop's answer is filtered (a `* * *` row).
    HopFiltered,
    /// A congestion burst inflates the access-link (first hop) RTT.
    RttSpike,
    /// The volunteer clock is skewed: every hop timestamp shifts.
    ClockSkew,
    /// An Atlas probe has churned offline mid-campaign.
    ProbeChurn,
    /// A store write crashes mid-stream, leaving a torn tail at a
    /// severity-derived byte offset.
    TornWrite,
    /// A single bit flips in a written artifact (silent at write time,
    /// caught by the frame checksum at read time).
    BitFlip,
    /// The atomic protocol's rename never lands: the temp file is
    /// complete but the destination still holds the old artifact.
    RenameDropped,
    /// The filesystem is full: the write fails before a byte lands.
    DiskFull,
}

/// What a fault decision is about: the vantage country plus a stable
/// subject key (domain, address, probe id) and an optional index (hop TTL,
/// request position). Decisions are pure functions of these fields.
#[derive(Debug, Clone, Copy)]
pub struct FaultScope<'a> {
    /// Vantage country the measurement runs for (None: global scope).
    pub country: Option<CountryCode>,
    /// Stable subject key: domain, dotted address, probe id.
    pub subject: &'a str,
    /// Sub-subject index (hop TTL, request position); 0 when unused.
    pub index: u64,
}

impl<'a> FaultScope<'a> {
    pub fn new(country: CountryCode, subject: &'a str) -> Self {
        FaultScope {
            country: Some(country),
            subject,
            index: 0,
        }
    }

    pub fn global(subject: &'a str) -> Self {
        FaultScope {
            country: None,
            subject,
            index: 0,
        }
    }

    pub fn indexed(mut self, index: u64) -> Self {
        self.index = index;
        self
    }
}

/// The single trait every measurement layer consults. Implementations
/// must be pure: the same `(kind, scope)` always returns the same answer.
pub trait FaultOracle {
    /// Whether the fault fires for this scope.
    fn fires(&self, kind: FaultKind, scope: FaultScope<'_>) -> bool;
    /// Fault magnitude in `[0, 1)`, independent of the firing decision.
    fn severity(&self, kind: FaultKind, scope: FaultScope<'_>) -> f64;
}

/// The no-op oracle: nothing ever fires. Shims for the pre-chaos API use
/// this to keep legacy behaviour byte-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultOracle for NoFaults {
    fn fires(&self, _kind: FaultKind, _scope: FaultScope<'_>) -> bool {
        false
    }
    fn severity(&self, _kind: FaultKind, _scope: FaultScope<'_>) -> f64 {
        0.0
    }
}

/// DNS-layer fault rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DnsFaults {
    pub timeout_rate: f64,
    pub servfail_rate: f64,
    pub nxdomain_rate: f64,
    pub rdns_truncate_rate: f64,
}

impl Default for DnsFaults {
    fn default() -> Self {
        DnsFaults {
            timeout_rate: 0.0,
            servfail_rate: 0.0,
            nxdomain_rate: 0.0,
            rdns_truncate_rate: 0.0,
        }
    }
}

/// Browser-layer (C1) fault rates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrowserFaults {
    /// Page hangs until the hard-timeout kill.
    pub hang_rate: f64,
    /// Captured request list is truncated to a prefix.
    pub har_truncate_rate: f64,
    /// Individual requests vanish from the capture.
    pub request_drop_rate: f64,
}

impl Default for BrowserFaults {
    fn default() -> Self {
        BrowserFaults {
            hang_rate: 0.0,
            har_truncate_rate: 0.0,
            request_drop_rate: 0.0,
        }
    }
}

/// Probe-layer (C3 / pipeline traceroute) faults. The first three fields
/// are the legacy `netsim::FaultConfig` knobs, folded here so the plan is
/// the single source of truth; the rest are oracle-driven overlays.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeFaults {
    /// The vantage's network silently drops all outbound probes
    /// (the Australia/India/Qatar/Jordan failure mode).
    pub firewall_blocks_traceroute: bool,
    /// Probability a router declines to answer (legacy, RNG-driven).
    pub hop_silence_rate: f64,
    /// Probability the destination never answers (legacy, RNG-driven).
    pub destination_unreachable_rate: f64,
    /// Whole-probe drop (oracle-driven, per destination address).
    pub probe_drop_rate: f64,
    /// Per-hop answer filtering (oracle-driven).
    pub hop_filter_rate: f64,
    /// Access-link congestion burst on the first hop.
    pub rtt_spike_rate: f64,
    /// Maximum magnitude of an RTT spike, milliseconds.
    pub rtt_spike_ms: f64,
    /// Constant clock skew added to every answered hop, milliseconds.
    pub clock_skew_ms: f64,
}

impl Default for ProbeFaults {
    fn default() -> Self {
        ProbeFaults {
            firewall_blocks_traceroute: false,
            hop_silence_rate: 0.0,
            destination_unreachable_rate: 0.0,
            probe_drop_rate: 0.0,
            hop_filter_rate: 0.0,
            rtt_spike_rate: 0.0,
            rtt_spike_ms: 0.0,
            clock_skew_ms: 0.0,
        }
    }
}

/// Atlas-platform faults.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AtlasFaults {
    /// Probability a connected probe has churned offline mid-campaign.
    pub churn_rate: f64,
}

impl Default for AtlasFaults {
    fn default() -> Self {
        AtlasFaults { churn_rate: 0.0 }
    }
}

/// Storage-layer faults, consulted by the gamma-store write path. These
/// model the disk, not the network: a crash mid-write (torn tail), a
/// flipped bit (silent corruption), a rename that never lands, and a
/// full filesystem.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StorageFaults {
    /// Write crashes partway through: a torn tail at a severity-derived
    /// byte offset.
    pub torn_write_rate: f64,
    /// One bit of the written image flips silently.
    pub bit_flip_rate: f64,
    /// The atomic rename is dropped (temp file complete, destination
    /// stale).
    pub rename_drop_rate: f64,
    /// ENOSPC: the write fails before any byte lands.
    pub disk_full_rate: f64,
}

impl Default for StorageFaults {
    fn default() -> Self {
        StorageFaults {
            torn_write_rate: 0.0,
            bit_flip_rate: 0.0,
            rename_drop_rate: 0.0,
            disk_full_rate: 0.0,
        }
    }
}

/// One vantage's complete fault surface.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultProfile {
    pub dns: DnsFaults,
    pub browser: BrowserFaults,
    pub probe: ProbeFaults,
    pub atlas: AtlasFaults,
    /// Defaulted on deserialize so plans serialized before the storage
    /// axis existed keep loading (and stay quiet on this axis).
    #[serde(default)]
    pub storage: StorageFaults,
}

impl FaultProfile {
    /// Absolutely nothing fires; legacy probe knobs are zero too.
    pub fn none() -> Self {
        FaultProfile::default()
    }

    /// The paper-calibrated baseline: the legacy probe-weather knobs at
    /// their historical defaults (8% silent hops, 7% unreachable
    /// destinations) and every oracle-driven rate at zero. Running under
    /// this profile is byte-identical to the pre-chaos pipeline.
    pub fn paper_default() -> Self {
        FaultProfile {
            probe: ProbeFaults {
                hop_silence_rate: 0.08,
                destination_unreachable_rate: 0.07,
                ..ProbeFaults::default()
            },
            ..FaultProfile::default()
        }
    }

    /// A hostile-Internet stress profile: every failure the paper hit,
    /// at rates high enough to exercise the degradation paths.
    pub fn stress() -> Self {
        FaultProfile {
            dns: DnsFaults {
                timeout_rate: 0.06,
                servfail_rate: 0.03,
                nxdomain_rate: 0.02,
                rdns_truncate_rate: 0.10,
            },
            browser: BrowserFaults {
                hang_rate: 0.08,
                har_truncate_rate: 0.05,
                request_drop_rate: 0.05,
            },
            probe: ProbeFaults {
                firewall_blocks_traceroute: false,
                hop_silence_rate: 0.08,
                destination_unreachable_rate: 0.07,
                probe_drop_rate: 0.15,
                hop_filter_rate: 0.10,
                rtt_spike_rate: 0.10,
                rtt_spike_ms: 80.0,
                clock_skew_ms: 0.0,
            },
            atlas: AtlasFaults { churn_rate: 0.20 },
            // Stress models the hostile *network*; the disk stays honest
            // so existing stress-profile byte-identity fixtures hold.
            // Arm the disk with the dedicated `storage` profile.
            storage: StorageFaults::default(),
        }
    }

    /// Total loss: every rate at 100%, probes firewalled. Used to model a
    /// vantage that ships nothing usable home.
    pub fn blackout() -> Self {
        FaultProfile {
            dns: DnsFaults {
                timeout_rate: 1.0,
                servfail_rate: 1.0,
                nxdomain_rate: 1.0,
                rdns_truncate_rate: 1.0,
            },
            browser: BrowserFaults {
                hang_rate: 1.0,
                har_truncate_rate: 1.0,
                request_drop_rate: 1.0,
            },
            probe: ProbeFaults {
                firewall_blocks_traceroute: true,
                hop_silence_rate: 1.0,
                destination_unreachable_rate: 1.0,
                probe_drop_rate: 1.0,
                hop_filter_rate: 1.0,
                rtt_spike_rate: 1.0,
                rtt_spike_ms: 500.0,
                clock_skew_ms: 0.0,
            },
            atlas: AtlasFaults { churn_rate: 1.0 },
            storage: StorageFaults {
                torn_write_rate: 1.0,
                bit_flip_rate: 1.0,
                rename_drop_rate: 1.0,
                disk_full_rate: 1.0,
            },
        }
    }

    /// A storage-fault drill: the paper-calibrated measurement weather
    /// with the disk misbehaving — torn writes, bit flips, dropped
    /// renames, and intermittent ENOSPC at rates high enough to exercise
    /// every recovery path while most writes still land.
    pub fn storage() -> Self {
        FaultProfile {
            storage: StorageFaults {
                torn_write_rate: 0.10,
                bit_flip_rate: 0.05,
                rename_drop_rate: 0.05,
                disk_full_rate: 0.05,
            },
            ..FaultProfile::paper_default()
        }
    }

    /// Uniformly scales every oracle-driven rate by `factor` (clamped to
    /// `[0, 1]`); the legacy RNG-driven probe knobs are left untouched so
    /// scaling preserves the shard RNG stream. Used by the monotone
    /// degradation tests.
    pub fn scaled(factor: f64) -> Self {
        let s = |r: f64| (r * factor).clamp(0.0, 1.0);
        let base = FaultProfile::stress();
        FaultProfile {
            dns: DnsFaults {
                timeout_rate: s(base.dns.timeout_rate),
                servfail_rate: s(base.dns.servfail_rate),
                nxdomain_rate: s(base.dns.nxdomain_rate),
                rdns_truncate_rate: s(base.dns.rdns_truncate_rate),
            },
            browser: BrowserFaults {
                hang_rate: s(base.browser.hang_rate),
                har_truncate_rate: s(base.browser.har_truncate_rate),
                request_drop_rate: s(base.browser.request_drop_rate),
            },
            probe: ProbeFaults {
                probe_drop_rate: s(base.probe.probe_drop_rate),
                hop_filter_rate: s(base.probe.hop_filter_rate),
                rtt_spike_rate: s(base.probe.rtt_spike_rate),
                rtt_spike_ms: base.probe.rtt_spike_ms,
                ..FaultProfile::paper_default().probe
            },
            atlas: AtlasFaults {
                churn_rate: s(base.atlas.churn_rate),
            },
            storage: StorageFaults::default(),
        }
    }

    /// The rate behind one fault kind.
    pub fn rate(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::DnsTimeout => self.dns.timeout_rate,
            FaultKind::DnsServfail => self.dns.servfail_rate,
            FaultKind::DnsNxdomain => self.dns.nxdomain_rate,
            FaultKind::RdnsTruncated => self.dns.rdns_truncate_rate,
            FaultKind::PageHang => self.browser.hang_rate,
            FaultKind::HarTruncated => self.browser.har_truncate_rate,
            FaultKind::RequestDropped => self.browser.request_drop_rate,
            FaultKind::ProbeDropped => self.probe.probe_drop_rate,
            FaultKind::HopFiltered => self.probe.hop_filter_rate,
            FaultKind::RttSpike => self.probe.rtt_spike_rate,
            FaultKind::ClockSkew => {
                if self.probe.clock_skew_ms != 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            FaultKind::ProbeChurn => self.atlas.churn_rate,
            FaultKind::TornWrite => self.storage.torn_write_rate,
            FaultKind::BitFlip => self.storage.bit_flip_rate,
            FaultKind::RenameDropped => self.storage.rename_drop_rate,
            FaultKind::DiskFull => self.storage.disk_full_rate,
        }
    }

    /// Validates every probability field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("dns.timeout_rate", self.dns.timeout_rate),
            ("dns.servfail_rate", self.dns.servfail_rate),
            ("dns.nxdomain_rate", self.dns.nxdomain_rate),
            ("dns.rdns_truncate_rate", self.dns.rdns_truncate_rate),
            ("browser.hang_rate", self.browser.hang_rate),
            ("browser.har_truncate_rate", self.browser.har_truncate_rate),
            ("browser.request_drop_rate", self.browser.request_drop_rate),
            ("probe.hop_silence_rate", self.probe.hop_silence_rate),
            (
                "probe.destination_unreachable_rate",
                self.probe.destination_unreachable_rate,
            ),
            ("probe.probe_drop_rate", self.probe.probe_drop_rate),
            ("probe.hop_filter_rate", self.probe.hop_filter_rate),
            ("probe.rtt_spike_rate", self.probe.rtt_spike_rate),
            ("atlas.churn_rate", self.atlas.churn_rate),
            ("storage.torn_write_rate", self.storage.torn_write_rate),
            ("storage.bit_flip_rate", self.storage.bit_flip_rate),
            ("storage.rename_drop_rate", self.storage.rename_drop_rate),
            ("storage.disk_full_rate", self.storage.disk_full_rate),
        ] {
            if !(0.0..=1.0).contains(&p) || !p.is_finite() {
                return Err(format!("{name} = {p} is not a probability"));
            }
        }
        for (name, v) in [
            ("probe.rtt_spike_ms", self.probe.rtt_spike_ms),
            ("probe.clock_skew_ms", self.probe.clock_skew_ms),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} = {v} must be finite and non-negative"));
            }
        }
        Ok(())
    }
}

/// A campaign-wide fault plan: one base profile plus per-country
/// overrides, all decisions derived from one seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed every fault decision hashes against.
    pub seed: u64,
    /// Profile applied to every vantage without an override.
    pub base: FaultProfile,
    /// Per-country profiles (e.g. one blacked-out vantage), kept sorted
    /// by country code.
    pub overrides: Vec<(CountryCode, FaultProfile)>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::paper_default(0)
    }
}

impl FaultPlan {
    /// Nothing fires; byte-identical to running without fault logic.
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            base: FaultProfile::none(),
            overrides: Vec::new(),
        }
    }

    /// The paper-calibrated baseline (legacy probe weather only).
    pub fn paper_default(seed: u64) -> Self {
        FaultPlan {
            seed,
            base: FaultProfile::paper_default(),
            overrides: Vec::new(),
        }
    }

    /// Hostile-Internet stress plan.
    pub fn stress(seed: u64) -> Self {
        FaultPlan {
            seed,
            base: FaultProfile::stress(),
            overrides: Vec::new(),
        }
    }

    /// Installs a per-country profile override (replacing any existing
    /// one for the same country).
    pub fn with_override(mut self, country: CountryCode, profile: FaultProfile) -> Self {
        match self.overrides.iter_mut().find(|(c, _)| *c == country) {
            Some((_, p)) => *p = profile,
            None => self.overrides.push((country, profile)),
        }
        self.overrides.sort_by_key(|(c, _)| *c);
        self
    }

    /// Blacks out one country: 100% fault rates for its vantage while the
    /// rest of the plan is untouched.
    pub fn blackout(self, country: CountryCode) -> Self {
        self.with_override(country, FaultProfile::blackout())
    }

    /// Storage-fault drill: paper measurement weather, misbehaving disk.
    pub fn storage(seed: u64) -> Self {
        FaultPlan {
            seed,
            base: FaultProfile::storage(),
            overrides: Vec::new(),
        }
    }

    /// Parses a named profile from the CLI surface: `none`, `paper`,
    /// `stress`, `storage`, or `blackout:CC` (paper baseline plus one
    /// blacked-out country).
    pub fn from_profile_name(name: &str, seed: u64) -> Option<FaultPlan> {
        match name {
            "none" => Some(FaultPlan::none(seed)),
            "paper" => Some(FaultPlan::paper_default(seed)),
            "stress" => Some(FaultPlan::stress(seed)),
            "storage" => Some(FaultPlan::storage(seed)),
            _ => {
                let cc = name.strip_prefix("blackout:")?;
                if cc.len() != 2 || !cc.bytes().all(|b| b.is_ascii_uppercase()) {
                    return None;
                }
                Some(FaultPlan::paper_default(seed).blackout(CountryCode::new(cc)))
            }
        }
    }

    /// The profile in effect for a vantage.
    pub fn profile_for(&self, country: Option<CountryCode>) -> &FaultProfile {
        country
            .and_then(|c| self.overrides.iter().find(|(o, _)| *o == c).map(|(_, p)| p))
            .unwrap_or(&self.base)
    }

    /// The plan in effect for round `epoch` of a temporal campaign: the
    /// same profiles and overrides, decided against a round-mixed seed,
    /// so each round experiences fresh-but-reproducible weather. Epoch 0
    /// is the plan itself — the anchor that keeps a one-round temporal
    /// campaign byte-identical to a plain one. The mixer matches the
    /// splitmix64 finalizer used by every other stream split in the
    /// workspace (never `seed + epoch`, which would alias neighbors).
    pub fn for_round(&self, epoch: u32) -> FaultPlan {
        if epoch == 0 {
            return self.clone();
        }
        let mut z = self
            .seed
            .wrapping_add(u64::from(epoch).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let mut plan = self.clone();
        plan.seed = z ^ (z >> 31);
        plan
    }

    /// The plan in effect for one tenant's study in a multi-tenant
    /// service plane: the same profiles and overrides, decided against a
    /// tenant-mixed seed, so co-hosted studies experience decorrelated
    /// weather. Unlike [`FaultPlan::for_round`] there is deliberately
    /// *no* identity anchor: a tenant's plan must never alias the
    /// server's own, not even for tenant id 0 — which also keeps
    /// `for_tenant(t).for_round(e)` (the service plane's composition)
    /// disjoint from the bare `for_round(e)` family. The tenant axis is
    /// domain-separated from the round axis by a distinct XOR constant
    /// before the shared splitmix64 finalizer; never `seed + tenant`,
    /// which would alias neighbors.
    pub fn for_tenant(&self, tenant: u32) -> FaultPlan {
        let mut z = self
            .seed
            .wrapping_add(u64::from(tenant).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            ^ 0x5445_4E41_5445_4E41; // "TENATENA"
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let mut plan = self.clone();
        plan.seed = z ^ (z >> 31);
        plan
    }

    /// Whether any oracle-driven rate is non-zero anywhere in the plan.
    pub fn is_quiet(&self) -> bool {
        std::iter::once(&self.base)
            .chain(self.overrides.iter().map(|(_, p)| p))
            .all(|p| ALL_KINDS.iter().all(|k| p.rate(*k) <= 0.0))
    }

    pub fn validate(&self) -> Result<(), String> {
        self.base.validate()?;
        for (c, p) in &self.overrides {
            p.validate().map_err(|e| format!("override {c}: {e}"))?;
        }
        Ok(())
    }
}

/// Every fault kind, for iteration.
pub const ALL_KINDS: [FaultKind; 16] = [
    FaultKind::DnsTimeout,
    FaultKind::DnsServfail,
    FaultKind::DnsNxdomain,
    FaultKind::RdnsTruncated,
    FaultKind::PageHang,
    FaultKind::HarTruncated,
    FaultKind::RequestDropped,
    FaultKind::ProbeDropped,
    FaultKind::HopFiltered,
    FaultKind::RttSpike,
    FaultKind::ClockSkew,
    FaultKind::ProbeChurn,
    FaultKind::TornWrite,
    FaultKind::BitFlip,
    FaultKind::RenameDropped,
    FaultKind::DiskFull,
];

fn kind_tag(kind: FaultKind) -> u64 {
    match kind {
        FaultKind::DnsTimeout => 1,
        FaultKind::DnsServfail => 2,
        FaultKind::DnsNxdomain => 3,
        FaultKind::RdnsTruncated => 4,
        FaultKind::PageHang => 5,
        FaultKind::HarTruncated => 6,
        FaultKind::RequestDropped => 7,
        FaultKind::ProbeDropped => 8,
        FaultKind::HopFiltered => 9,
        FaultKind::RttSpike => 10,
        FaultKind::ClockSkew => 11,
        FaultKind::ProbeChurn => 12,
        FaultKind::TornWrite => 13,
        FaultKind::BitFlip => 14,
        FaultKind::RenameDropped => 15,
        FaultKind::DiskFull => 16,
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash of a fault decision point. Deliberately rate-independent so that
/// raising a rate keeps every previously-fired fault fired (nesting).
fn decision_hash(seed: u64, kind: FaultKind, scope: FaultScope<'_>) -> u64 {
    let mut h = splitmix64(seed ^ 0xC4A0_5C4A_05C4_A05C);
    h = splitmix64(h ^ kind_tag(kind));
    if let Some(c) = scope.country {
        h = splitmix64(h ^ (u64::from(c.0[0]) << 8 | u64::from(c.0[1])));
    }
    for chunk in scope.subject.as_bytes().chunks(8) {
        let mut word = 0u64;
        for (i, b) in chunk.iter().enumerate() {
            word |= u64::from(*b) << (8 * i);
        }
        h = splitmix64(h ^ word);
    }
    splitmix64(h ^ scope.index)
}

/// Top 53 bits of a hash mapped to `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl FaultOracle for FaultPlan {
    fn fires(&self, kind: FaultKind, scope: FaultScope<'_>) -> bool {
        let rate = self.profile_for(scope.country).rate(kind);
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        unit(decision_hash(self.seed, kind, scope)) < rate
    }

    fn severity(&self, kind: FaultKind, scope: FaultScope<'_>) -> f64 {
        unit(splitmix64(
            decision_hash(self.seed, kind, scope) ^ 0x5E7E_517E_5E7E_517E,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cc(s: &str) -> CountryCode {
        CountryCode::new(s)
    }

    #[test]
    fn zero_rate_never_fires_and_full_rate_always_fires() {
        let none = FaultPlan::none(7);
        let black = FaultPlan::none(7).blackout(cc("RW"));
        for kind in ALL_KINDS {
            for subject in ["a.com", "b.net", "20.0.0.9"] {
                let scope = FaultScope::new(cc("RW"), subject);
                assert!(!none.fires(kind, scope), "{kind:?} fired on zero plan");
                if kind != FaultKind::ClockSkew {
                    assert!(black.fires(kind, scope), "{kind:?} silent at 100%");
                }
                // Other countries are untouched by the override.
                assert!(!black.fires(kind, FaultScope::new(cc("US"), subject)));
            }
        }
    }

    #[test]
    fn decisions_are_pure_functions_of_scope() {
        let plan = FaultPlan::stress(42);
        for kind in ALL_KINDS {
            for subject in ["tracker.example.com", "x.io", "10.1.2.3"] {
                for idx in [0u64, 3, 17] {
                    let scope = FaultScope::new(cc("TH"), subject).indexed(idx);
                    assert_eq!(plan.fires(kind, scope), plan.fires(kind, scope));
                    assert_eq!(plan.severity(kind, scope), plan.severity(kind, scope));
                }
            }
        }
        // Different seeds make different weather.
        let other = FaultPlan::stress(43);
        let (plan, other) = (&plan, &other);
        let differing = ALL_KINDS
            .iter()
            .flat_map(|k| {
                (0..64).map(move |i| {
                    let s = format!("host{i}.example.com");
                    let a = plan.fires(*k, FaultScope::new(cc("TH"), &s));
                    let b = other.fires(*k, FaultScope::new(cc("TH"), &s));
                    usize::from(a != b)
                })
            })
            .sum::<usize>();
        assert!(differing > 0, "seed does not influence decisions");
    }

    #[test]
    fn raising_rates_nests_the_fired_set() {
        // hash < rate: every fault fired at a low rate stays fired at a
        // higher one. This is the structural monotonicity guarantee.
        let seed = 11;
        let lo = FaultPlan {
            seed,
            base: FaultProfile::scaled(0.3),
            overrides: Vec::new(),
        };
        let hi = FaultPlan {
            seed,
            base: FaultProfile::scaled(1.0),
            overrides: Vec::new(),
        };
        for kind in ALL_KINDS {
            for i in 0..200 {
                let s = format!("site{i}.example.org");
                let scope = FaultScope::new(cc("PK"), &s);
                if lo.fires(kind, scope) {
                    assert!(hi.fires(kind, scope), "{kind:?}/{s} unfired at higher rate");
                }
            }
        }
    }

    #[test]
    fn observed_rates_track_configured_rates() {
        let plan = FaultPlan::stress(5);
        let n = 4000;
        let fired = (0..n)
            .filter(|i| {
                let s = format!("d{i}.example.net");
                plan.fires(FaultKind::ProbeDropped, FaultScope::new(cc("IN"), &s))
            })
            .count();
        let rate = fired as f64 / n as f64;
        assert!((0.12..0.18).contains(&rate), "observed {rate}, want ~0.15");
    }

    #[test]
    fn severity_is_in_unit_range() {
        let plan = FaultPlan::stress(9);
        for i in 0..100 {
            let s = format!("h{i}.com");
            let v = plan.severity(FaultKind::RttSpike, FaultScope::new(cc("AU"), &s));
            assert!((0.0..1.0).contains(&v), "severity {v}");
        }
    }

    #[test]
    fn profile_names_parse() {
        assert_eq!(
            FaultPlan::from_profile_name("none", 1),
            Some(FaultPlan::none(1))
        );
        assert_eq!(
            FaultPlan::from_profile_name("paper", 1),
            Some(FaultPlan::paper_default(1))
        );
        assert_eq!(
            FaultPlan::from_profile_name("stress", 1),
            Some(FaultPlan::stress(1))
        );
        let b = FaultPlan::from_profile_name("blackout:RW", 1).unwrap();
        assert_eq!(b.profile_for(Some(cc("RW"))), &FaultProfile::blackout());
        assert_eq!(
            b.profile_for(Some(cc("US"))),
            &FaultProfile::paper_default()
        );
        assert_eq!(FaultPlan::from_profile_name("blackout:rww", 1), None);
        assert_eq!(FaultPlan::from_profile_name("garbage", 1), None);
    }

    #[test]
    fn paper_default_is_quiet_stress_is_not() {
        assert!(FaultPlan::none(3).is_quiet());
        assert!(FaultPlan::paper_default(3).is_quiet());
        assert!(!FaultPlan::stress(3).is_quiet());
        assert!(!FaultPlan::none(3).blackout(cc("QA")).is_quiet());
        assert!(!FaultPlan::storage(3).is_quiet());
    }

    #[test]
    fn storage_axis_is_deterministic_and_scoped() {
        let plan = FaultPlan::storage(21);
        // The measurement-side axes stay at paper defaults: the disk
        // drill must not perturb network weather.
        assert_eq!(plan.base.dns, FaultProfile::paper_default().dns);
        assert_eq!(plan.base.probe, FaultProfile::paper_default().probe);
        // Decisions are pure and seed-sensitive.
        let mut fired = 0;
        for i in 0..400 {
            let name = format!("ckpt-{i}.gsf");
            let scope = FaultScope::global(&name).indexed(i);
            assert_eq!(
                plan.fires(FaultKind::TornWrite, scope),
                plan.fires(FaultKind::TornWrite, scope)
            );
            fired += usize::from(plan.fires(FaultKind::TornWrite, scope));
        }
        let rate = fired as f64 / 400.0;
        assert!((0.05..0.17).contains(&rate), "observed {rate}, want ~0.10");
        // Old plans (serialized before the storage axis) still load and
        // stay quiet on the new kinds.
        let legacy = r#"{"seed":4,"base":{"dns":{"timeout_rate":0.0,"servfail_rate":0.0,"nxdomain_rate":0.0,"rdns_truncate_rate":0.0},"browser":{"hang_rate":0.0,"har_truncate_rate":0.0,"request_drop_rate":0.0},"probe":{"firewall_blocks_traceroute":false,"hop_silence_rate":0.0,"destination_unreachable_rate":0.0,"probe_drop_rate":0.0,"hop_filter_rate":0.0,"rtt_spike_rate":0.0,"rtt_spike_ms":0.0,"clock_skew_ms":0.0},"atlas":{"churn_rate":0.0}},"overrides":[]}"#;
        let old: FaultPlan = serde_json::from_str(legacy).unwrap();
        assert_eq!(old.base.storage, StorageFaults::default());
        assert!(old.is_quiet());
    }

    #[test]
    fn validation_rejects_bad_probabilities() {
        FaultPlan::stress(1).validate().unwrap();
        let mut bad = FaultProfile::stress();
        bad.dns.timeout_rate = 1.5;
        assert!(bad.validate().is_err());
        let mut nan = FaultProfile::stress();
        nan.probe.rtt_spike_ms = f64::NAN;
        assert!(nan.validate().is_err());
        let plan = FaultPlan::none(0).with_override(cc("JO"), bad);
        assert!(plan.validate().is_err());
    }

    #[test]
    fn plans_roundtrip_through_json() {
        let plan = FaultPlan::stress(77).blackout(cc("QA"));
        let js = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&js).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn round_plans_keep_profiles_but_remix_the_seed() {
        let plan = FaultPlan::stress(77).blackout(cc("QA"));
        assert_eq!(plan.for_round(0), plan, "round 0 must be the anchor");
        let mut seen = std::collections::HashSet::new();
        for epoch in 0..32 {
            let round = plan.for_round(epoch);
            assert_eq!(round.base, plan.base);
            assert_eq!(round.overrides, plan.overrides);
            assert_eq!(round, plan.for_round(epoch), "epoch {epoch} unstable");
            assert!(seen.insert(round.seed), "epoch {epoch} seed collides");
            if epoch > 0 {
                assert_ne!(
                    round.seed,
                    77 + u64::from(epoch),
                    "round seed degenerated into additive arithmetic"
                );
            }
        }
        // No diagonal aliasing with neighboring master seeds.
        for epoch in 1..16 {
            assert_ne!(
                plan.for_round(epoch).seed,
                FaultPlan::stress(78).for_round(epoch - 1).seed
            );
        }
    }

    #[test]
    fn tenant_plans_keep_profiles_but_separate_every_stream() {
        // The satellite audit: equal master seeds + different tenant ids
        // must never collide — across tenants, against the base plan
        // (no tenant-0 anchor), and against the round-seed family the
        // tenant axis is domain-separated from.
        let plan = FaultPlan::stress(77).blackout(cc("QA"));
        let mut seen = std::collections::HashSet::new();
        seen.insert(plan.seed);
        for tenant in 0..64u32 {
            let t = plan.for_tenant(tenant);
            assert_eq!(t.base, plan.base);
            assert_eq!(t.overrides, plan.overrides);
            assert_eq!(t, plan.for_tenant(tenant), "tenant {tenant} unstable");
            assert!(seen.insert(t.seed), "tenant {tenant} seed collides");
            assert_ne!(t.seed, 77 + u64::from(tenant), "additive degeneration");
        }
        // Tenant axis stays disjoint from the round axis, including the
        // composed form the service plane actually uses.
        for i in 1..32u32 {
            assert_ne!(plan.for_tenant(i).seed, plan.for_round(i).seed);
            assert_ne!(
                plan.for_tenant(1).for_round(i).seed,
                plan.for_round(i).seed,
                "tenant 1 round {i} aliases the bare round plan"
            );
            assert_ne!(
                plan.for_tenant(i).seed,
                FaultPlan::stress(78).for_tenant(i - 1).seed,
                "diagonal (seed, tenant) pairs alias at {i}"
            );
        }
    }
}
