//! # gamma-dns
//!
//! DNS substrate for the reproduction. The paper's methodology depends on
//! DNS in three ways, all modeled here:
//!
//! 1. **Forward resolution is location-dependent** — GeoDNS and CDNs "often
//!    operate in a location-dependent manner" (§1), which is the paper's
//!    argument for in-country vantage points. [`resolver::GeoResolver`]
//!    resolves each domain against the client's location, honoring explicit
//!    per-country steering overrides and falling back to nearest-replica.
//! 2. **Domain identity is eTLD+1-based** — tracker lists match registrable
//!    domains (§4.2); [`psl`] implements the public-suffix computation,
//!    including the multi-TLD government suffixes used to build T_gov (§3.2).
//! 3. **Reverse DNS carries location hints** — the third geolocation
//!    constraint (§4.1.3) mines hostnames for geography; [`rdns`] generates
//!    and parses such hostnames (IATA codes, city names).
//!
//! Resolution can *fail* — [`resolver::DnsFailure`] models timeouts,
//! SERVFAIL and NXDOMAIN (injected via `gamma-chaos`), and the cache
//! negative-caches them with a shorter TTL, as real resolvers do.

// Data paths must degrade, not panic: unresolved names and injected
// failures flow into the quarantine ledger downstream.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod cache;
pub mod name;
pub mod psl;
pub mod rdns;
pub mod resolver;

pub use cache::{DnsCache, NEGATIVE_TTL_LOOKUPS};
pub use name::DomainName;
pub use psl::{gov_suffixes, is_gov_domain, is_public_suffix, registrable_domain};
pub use rdns::{geo_hint, HostnameScheme, RdnsTable};
pub use resolver::{DnsFailure, GeoResolver, Replica, ResolutionTrace};
