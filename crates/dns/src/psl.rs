//! Public-suffix computation and government-TLD registry.
//!
//! Tracker identification matches on registrable domains (eTLD+1, §4.2),
//! and T_gov selection filters a ranking list by government-specific TLDs,
//! "consider\[ing\] multiple TLDs" per country — e.g. Argentina's `gob.ar`
//! *and* `gov.ar` (§3.2). This module embeds the slice of the public-suffix
//! list needed for the study's countries plus generic TLDs.

use crate::name::DomainName;
use gamma_geo::CountryCode;

/// Generic and country-code public suffixes used by the synthetic web.
/// Multi-label suffixes must appear here for eTLD+1 to be computed right.
static SUFFIXES: &[&str] = &[
    // generic
    "com", "net", "org", "io", "co", "info", "biz", "cloud", "app", "dev", "online", "site", "news",
    "tv", "me", "ai", "im", "to", // US government
    "gov", "mil", "edu", // ccTLDs (single-label)
    "az", "dz", "eg", "rw", "ug", "ar", "ru", "lk", "th", "ae", "uk", "au", "ca", "in", "jp", "jo",
    "nz", "pk", "qa", "sa", "tw", "us", "lb", "fr", "de", "ke", "my", "sg", "hk", "om", "it", "nl",
    "ch", "il", "bg", "br", "fi", "be", "gh", "tr", "es", "se", "ie", "pl", "cz", "at", "pt", "no",
    "dk", "za", "ng", "mx", "cl", "kr", "id", "vn", "ph", "bd", "np", "cn", "ua", "ro", "hu", "gr",
    "ma", "tn", "et", "tz", "cy", "bh", "kw", "lu",
    // common second-level public suffixes in the study's countries
    "co.uk", "org.uk", "gov.uk", "ac.uk", "com.au", "net.au", "org.au", "gov.au", "edu.au",
    "com.ar", "gob.ar", "gov.ar", "org.ar", "com.eg", "gov.eg", "edu.eg", "org.eg", "com.az",
    "gov.az", "edu.az", "org.az", "com.dz", "gov.dz", "edu.dz", "co.rw", "gov.rw", "ac.rw",
    "co.ug", "go.ug", "ac.ug", "or.ug", "com.ru", "gov.ru", "edu.ru", "com.lk", "gov.lk", "edu.lk",
    "org.lk", "co.th", "go.th", "ac.th", "or.th", "in.th", "gov.ae", "ac.ae", "co.ae", "com.pk",
    "gov.pk", "edu.pk", "org.pk", "com.qa", "gov.qa", "edu.qa", "com.sa", "gov.sa", "edu.sa",
    "org.sa", "com.tw", "gov.tw", "edu.tw", "org.tw", "com.lb", "gov.lb", "edu.lb", "org.lb",
    "com.jo", "gov.jo", "edu.jo", "org.jo", "co.in", "gov.in", "nic.in", "ac.in", "org.in",
    "net.in", "co.jp", "go.jp", "ac.jp", "or.jp", "ne.jp", "co.nz", "govt.nz", "ac.nz", "org.nz",
    "net.nz", "gc.ca", "on.ca", "qc.ca", "bc.ca", "com.my", "gov.my", "edu.my", "com.sg", "gov.sg",
    "edu.sg", "com.hk", "gov.hk", "edu.hk", "com.om", "gov.om", "co.ke", "go.ke", "ac.ke", "or.ke",
    "com.br", "gov.br", "org.br", "co.za", "gov.za", "org.za", "com.ng", "gov.ng", "com.mx",
    "gob.mx", "gob.cl", "gov.cl", "gov.co", "gov.tr", "com.tr", "edu.tr", "co.kr", "go.kr",
    "go.id", "co.id", "gov.vn", "com.vn", "gov.ph", "com.ph", "gov.bd", "com.bd", "gov.np",
    "com.np", "gov.cn", "com.cn", "gov.ua", "com.ua", "gov.ro", "gov.hu", "gov.gr", "gov.ma",
    "gov.tn", "gov.et", "go.tz", "gov.cy", "gov.bh", "gov.kw", "gov.il", "co.il", "ac.il",
    "gov.it", "gov.pl", "gov.pt", "gov.gh", "gov.ie",
];

/// Whether a name is, in its entirety, a public suffix.
pub fn is_public_suffix(name: &DomainName) -> bool {
    SUFFIXES.contains(&name.as_str())
}

/// Computes the registrable domain (eTLD+1) of a name: the public suffix
/// plus one label. Returns `None` when the name *is* a public suffix or no
/// suffix matches (unknown TLD).
pub fn registrable_domain(name: &DomainName) -> Option<DomainName> {
    // Longest matching suffix wins, per PSL semantics.
    let s = name.as_str();
    let mut best: Option<&str> = None;
    for suf in SUFFIXES {
        let matches =
            s == *suf || (s.ends_with(suf) && s.as_bytes()[s.len() - suf.len() - 1] == b'.');
        if matches && best.map_or(true, |b| suf.len() > b.len()) {
            best = Some(suf);
        }
    }
    let suf = best?;
    if s == suf {
        return None; // the name is itself a public suffix
    }
    let head = &s[..s.len() - suf.len() - 1];
    let label = head.rsplit('.').next().expect("split of non-empty string");
    DomainName::parse(&format!("{label}.{suf}")).ok()
}

/// Government suffixes per measurement country, as used to assemble T_gov.
/// Argentina deliberately has two entries ("we considered multiple TLDs",
/// §3.2).
pub fn gov_suffixes(country: CountryCode) -> &'static [&'static str] {
    match country.as_str() {
        "AZ" => &["gov.az"],
        "DZ" => &["gov.dz"],
        "EG" => &["gov.eg"],
        "RW" => &["gov.rw"],
        "UG" => &["go.ug"],
        "AR" => &["gob.ar", "gov.ar"],
        "RU" => &["gov.ru"],
        "LK" => &["gov.lk"],
        "TH" => &["go.th"],
        "AE" => &["gov.ae"],
        "GB" => &["gov.uk"],
        "AU" => &["gov.au"],
        "CA" => &["gc.ca"],
        "IN" => &["gov.in", "nic.in"],
        "JP" => &["go.jp"],
        "JO" => &["gov.jo"],
        "NZ" => &["govt.nz"],
        "PK" => &["gov.pk"],
        "QA" => &["gov.qa"],
        "SA" => &["gov.sa"],
        "TW" => &["gov.tw"],
        "US" => &["gov"],
        "LB" => &["gov.lb"],
        _ => &[],
    }
}

/// Whether a domain is a government domain of the given country.
pub fn is_gov_domain(name: &DomainName, country: CountryCode) -> bool {
    gov_suffixes(country).iter().any(|suf| {
        let s = name.as_str();
        s == *suf || (s.ends_with(suf) && s.as_bytes()[s.len() - suf.len() - 1] == b'.')
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn etld_plus_one_generic() {
        assert_eq!(
            registrable_domain(&d("www.a.b.example.com")),
            Some(d("example.com"))
        );
        assert_eq!(
            registrable_domain(&d("example.com")),
            Some(d("example.com"))
        );
        assert_eq!(registrable_domain(&d("com")), None);
    }

    #[test]
    fn etld_plus_one_multilabel_suffix() {
        assert_eq!(
            registrable_domain(&d("news.bbc.co.uk")),
            Some(d("bbc.co.uk"))
        );
        assert_eq!(registrable_domain(&d("co.uk")), None);
        assert_eq!(
            registrable_domain(&d("portal.salud.gob.ar")),
            Some(d("salud.gob.ar"))
        );
    }

    #[test]
    fn longest_suffix_wins() {
        // "gov.au" must beat "au".
        assert_eq!(
            registrable_domain(&d("www.health.gov.au")),
            Some(d("health.gov.au"))
        );
    }

    #[test]
    fn unknown_tld_has_no_registrable_domain() {
        assert_eq!(registrable_domain(&d("host.invalidtld")), None);
    }

    #[test]
    fn paper_example_safeframe_fqdn_maps_to_etld1() {
        // §4.2 lists the FQDN 693...safeframe.googlesyndication.com alongside
        // eTLD+1 entries; its registrable domain is googlesyndication.com.
        assert_eq!(
            registrable_domain(&d("693.safeframe.googlesyndication.com")),
            Some(d("googlesyndication.com"))
        );
    }

    #[test]
    fn gov_detection_per_country() {
        let au = CountryCode::new("AU");
        let ar = CountryCode::new("AR");
        assert!(is_gov_domain(&d("health.gov.au"), au));
        assert!(!is_gov_domain(&d("health.com.au"), au));
        assert!(!is_gov_domain(&d("health.gov.au"), ar));
        // Argentina honours both TLD spellings.
        assert!(is_gov_domain(&d("afip.gob.ar"), ar));
        assert!(is_gov_domain(&d("senado.gov.ar"), ar));
    }

    #[test]
    fn every_measurement_country_has_gov_suffixes() {
        for code in gamma_geo::country::MEASUREMENT_COUNTRIES {
            assert!(!gov_suffixes(*code).is_empty(), "no gov suffix for {code}");
        }
    }

    #[test]
    fn us_bare_gov_tld() {
        let us = CountryCode::new("US");
        assert!(is_gov_domain(&d("nasa.gov"), us));
        assert!(is_gov_domain(&d("www.cdc.gov"), us));
        assert!(!is_gov_domain(&d("nasa.org"), us));
    }

    #[test]
    fn suffix_itself_is_not_a_gov_site() {
        // registrable_domain(None) guards against treating "gov.au" itself
        // as a website.
        assert_eq!(registrable_domain(&d("gov.au")), None);
    }

    proptest! {
        #[test]
        fn registrable_domain_is_idempotent(label in "[a-z]{1,8}", sub in "[a-z]{1,8}") {
            let full = d(&format!("{sub}.{label}.com"));
            let r1 = registrable_domain(&full).unwrap();
            let r2 = registrable_domain(&r1).unwrap();
            prop_assert_eq!(r1, r2);
        }

        #[test]
        fn registrable_domain_is_suffix_of_input(sub in "[a-z]{1,8}", label in "[a-z]{1,8}") {
            let full = d(&format!("{sub}.{label}.gov.au"));
            let r = registrable_domain(&full).unwrap();
            prop_assert!(full.is_subdomain_of(&r));
        }
    }
}
