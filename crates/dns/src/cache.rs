//! A small per-run DNS memo cache.
//!
//! Gamma resolves the same tracker domains over and over while walking
//! T_web (googletagmanager.com appears on most pages); volunteer machines
//! naturally cache these answers for the duration of a run, which also
//! keeps the simulated measurement internally consistent: one run observes
//! one answer per domain, as a real stub resolver would.
//!
//! Mirroring real resolver behaviour (RFC 2308), failures are cached
//! *negatively* with a much shorter lifetime than positive answers: a
//! timeout or SERVFAIL suppresses re-queries for a while, but the suite
//! eventually retries the name. Time is a logical clock that ticks once
//! per lookup, keeping the cache fully deterministic.

use crate::name::DomainName;
use crate::resolver::{DnsFailure, Replica};
use gamma_obs as obs;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::OnceLock;

/// Cached handles into the global metrics registry; the per-lookup path
/// must not pay the registry's name-lookup cost.
struct CacheCounters {
    hit: obs::Counter,
    miss: obs::Counter,
    negative_hit: obs::Counter,
    negative_expired: obs::Counter,
}

fn counters() -> &'static CacheCounters {
    static COUNTERS: OnceLock<CacheCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| CacheCounters {
        hit: obs::global().counter("dns.cache.hit"),
        miss: obs::global().counter("dns.cache.miss"),
        negative_hit: obs::global().counter("dns.cache.negative_hit"),
        negative_expired: obs::global().counter("dns.cache.negative_expired"),
    })
}

/// How many subsequent lookups (across all names) a cached failure stays
/// authoritative for. Positive answers live for the whole run.
pub const NEGATIVE_TTL_LOOKUPS: u64 = 64;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Entry {
    /// A run-lifetime answer. `None` models the legacy unresolved case
    /// (cached forever, as [`DnsCache::resolve_with`] always did).
    Answer(Option<Replica>),
    /// A failure, valid until the logical clock passes `expires_at`.
    Failure {
        failure: DnsFailure,
        expires_at: u64,
    },
}

/// Memoization cache with hit statistics and negative caching.
///
/// Generic over the key type so callers that have already interned
/// their hostnames (e.g. the suite's `HostId` symbols) can key the
/// cache by a copyable `u32` id instead of re-hashing domain text on
/// every lookup. The default key remains [`DomainName`].
#[derive(Debug, Clone)]
pub struct DnsCache<K = DomainName> {
    entries: HashMap<K, Entry>,
    hits: u64,
    misses: u64,
    /// Logical time: the number of lookups served so far.
    clock: u64,
}

// Manual impl: `derive(Default)` would needlessly require `K: Default`.
impl<K> Default for DnsCache<K> {
    fn default() -> Self {
        DnsCache {
            entries: HashMap::new(),
            hits: 0,
            misses: 0,
            clock: 0,
        }
    }
}

impl<K: Eq + Hash + Clone> DnsCache<K> {
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a domain, computing and caching the answer on a miss.
    /// Legacy entry point: answers it caches live for the run's lifetime.
    /// A still-valid negative entry (cached by [`DnsCache::resolve_outcome`])
    /// answers authoritatively as "does not resolve" — it is a hit, not a
    /// miss, and is left in place until its TTL lapses.
    pub fn resolve_with<F>(&mut self, domain: &K, f: F) -> Option<Replica>
    where
        F: FnOnce() -> Option<Replica>,
    {
        self.clock += 1;
        match self.entries.get(domain) {
            Some(Entry::Answer(hit)) => {
                self.hits += 1;
                counters().hit.inc();
                return *hit;
            }
            Some(Entry::Failure { expires_at, .. }) if self.clock <= *expires_at => {
                // Re-resolving here would bypass the negative cache and
                // clobber the failure with a run-lifetime answer.
                self.hits += 1;
                counters().negative_hit.inc();
                return None;
            }
            Some(Entry::Failure { .. }) => {
                counters().negative_expired.inc();
            }
            None => {}
        }
        self.misses += 1;
        counters().miss.inc();
        let answer = f();
        self.entries.insert(domain.clone(), Entry::Answer(answer));
        answer
    }

    /// Looks up a domain whose resolution can fail, computing and caching
    /// the outcome on a miss. Successes are cached for the run's lifetime;
    /// failures are negative-cached for [`NEGATIVE_TTL_LOOKUPS`] lookups
    /// and then retried, mirroring real resolver behaviour.
    pub fn resolve_outcome<F>(&mut self, domain: &K, f: F) -> Result<Replica, DnsFailure>
    where
        F: FnOnce() -> Result<Replica, DnsFailure>,
    {
        self.clock += 1;
        match self.entries.get(domain) {
            Some(Entry::Answer(Some(r))) => {
                self.hits += 1;
                counters().hit.inc();
                return Ok(*r);
            }
            Some(Entry::Answer(None)) => {
                // A legacy-cached unresolved name reads back as an
                // authoritative denial.
                self.hits += 1;
                counters().negative_hit.inc();
                return Err(DnsFailure::Nxdomain);
            }
            Some(Entry::Failure {
                failure,
                expires_at,
            }) if self.clock <= *expires_at => {
                self.hits += 1;
                counters().negative_hit.inc();
                return Err(*failure);
            }
            Some(Entry::Failure { .. }) => {
                counters().negative_expired.inc();
            }
            None => {}
        }
        self.misses += 1;
        counters().miss.inc();
        let outcome = f();
        let entry = match outcome {
            Ok(r) => Entry::Answer(Some(r)),
            Err(failure) => Entry::Failure {
                failure,
                expires_at: self.clock + NEGATIVE_TTL_LOOKUPS,
            },
        };
        self.entries.insert(domain.clone(), entry);
        outcome
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached names (including negative entries).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all entries (e.g. between volunteer sessions).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn rep() -> Replica {
        Replica {
            addr: Ipv4Addr::new(20, 0, 0, 9),
            city: gamma_geo::CityId(0),
        }
    }

    #[test]
    fn caches_positive_answers() {
        let mut cache = DnsCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let r = cache.resolve_with(&d("a.com"), || {
                calls += 1;
                Some(rep())
            });
            assert_eq!(r, Some(rep()));
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats(), (2, 1));
    }

    #[test]
    fn caches_negative_answers() {
        let mut cache = DnsCache::new();
        let mut calls = 0;
        for _ in 0..2 {
            let r = cache.resolve_with(&d("missing.com"), || {
                calls += 1;
                None
            });
            assert_eq!(r, None);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets_entries_but_not_stats() {
        let mut cache = DnsCache::new();
        cache.resolve_with(&d("a.com"), || Some(rep()));
        cache.clear();
        assert!(cache.is_empty());
        cache.resolve_with(&d("a.com"), || Some(rep()));
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn successful_outcomes_are_cached_for_the_run() {
        let mut cache = DnsCache::new();
        let mut calls = 0;
        for _ in 0..(2 * NEGATIVE_TTL_LOOKUPS) {
            let r = cache.resolve_outcome(&d("a.com"), || {
                calls += 1;
                Ok(rep())
            });
            assert_eq!(r, Ok(rep()));
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn failures_are_negative_cached_with_a_shorter_ttl() {
        let mut cache = DnsCache::new();
        let mut calls = 0;
        // First lookup misses; the failure then answers from cache until
        // the negative TTL lapses, after which the name is re-queried.
        for _ in 0..(NEGATIVE_TTL_LOOKUPS + 2) {
            let r = cache.resolve_outcome(&d("flaky.com"), || {
                calls += 1;
                Err(DnsFailure::Servfail)
            });
            assert_eq!(r, Err(DnsFailure::Servfail));
        }
        assert_eq!(calls, 2, "negative entry never expired");
    }

    #[test]
    fn retry_after_expiry_can_succeed() {
        let mut cache = DnsCache::new();
        let r = cache.resolve_outcome(&d("flaky.com"), || Err(DnsFailure::Timeout));
        assert_eq!(r, Err(DnsFailure::Timeout));
        // Burn through the negative TTL with unrelated lookups.
        for i in 0..NEGATIVE_TTL_LOOKUPS {
            let name = d(&format!("filler{i}.com"));
            let _ = cache.resolve_outcome(&name, || Ok(rep()));
        }
        let r = cache.resolve_outcome(&d("flaky.com"), || Ok(rep()));
        assert_eq!(r, Ok(rep()), "expired failure was not retried");
    }

    #[test]
    fn legacy_negative_entries_read_as_nxdomain() {
        let mut cache = DnsCache::new();
        cache.resolve_with(&d("gone.com"), || None);
        let r = cache.resolve_outcome(&d("gone.com"), || Ok(rep()));
        assert_eq!(r, Err(DnsFailure::Nxdomain));
    }

    #[test]
    fn resolve_with_honors_unexpired_negative_entries() {
        let mut cache = DnsCache::new();
        let _ = cache.resolve_outcome(&d("down.com"), || Err(DnsFailure::Servfail));
        // Within the negative TTL the legacy entry point must answer
        // "does not resolve" without re-querying…
        let mut calls = 0;
        let r = cache.resolve_with(&d("down.com"), || {
            calls += 1;
            Some(rep())
        });
        assert_eq!(r, None);
        assert_eq!(calls, 0, "negative cache was bypassed");
        // …and must not have clobbered the failure with a run-lifetime
        // answer: the richer entry point still sees it.
        let r = cache.resolve_outcome(&d("down.com"), || Ok(rep()));
        assert_eq!(r, Err(DnsFailure::Servfail), "negative entry was clobbered");
        assert_eq!(cache.stats(), (2, 1));
    }

    #[test]
    fn resolve_with_retries_expired_negative_entries() {
        let mut cache = DnsCache::new();
        let _ = cache.resolve_outcome(&d("flaky.com"), || Err(DnsFailure::Timeout));
        for i in 0..NEGATIVE_TTL_LOOKUPS {
            let name = d(&format!("filler{i}.com"));
            let _ = cache.resolve_outcome(&name, || Ok(rep()));
        }
        // The failure has lapsed: the legacy entry point re-queries and
        // the fresh answer is cached for the rest of the run.
        let mut calls = 0;
        let r = cache.resolve_with(&d("flaky.com"), || {
            calls += 1;
            Some(rep())
        });
        assert_eq!(r, Some(rep()));
        assert_eq!(calls, 1);
        let r = cache.resolve_outcome(&d("flaky.com"), || Err(DnsFailure::Servfail));
        assert_eq!(r, Ok(rep()), "fresh answer should be served from cache");
    }

    #[test]
    fn negative_entries_are_valid_through_the_expiry_tick() {
        let mut cache = DnsCache::new();
        let mut calls = 0;
        // Lookup #1: miss, expires_at = 1 + NEGATIVE_TTL_LOOKUPS.
        let _ = cache.resolve_outcome(&d("x.com"), || {
            calls += 1;
            Err(DnsFailure::Timeout)
        });
        // Advance the clock so the next x.com lookup lands exactly on
        // the expiry tick (clock == expires_at): still authoritative.
        for i in 0..(NEGATIVE_TTL_LOOKUPS - 1) {
            let name = d(&format!("filler{i}.com"));
            let _ = cache.resolve_outcome(&name, || Ok(rep()));
        }
        let r = cache.resolve_outcome(&d("x.com"), || {
            calls += 1;
            Err(DnsFailure::Timeout)
        });
        assert_eq!(r, Err(DnsFailure::Timeout));
        assert_eq!(calls, 1, "boundary lookup must be a cache hit");
        // One more tick pushes the clock past expires_at: re-query.
        let _ = cache.resolve_outcome(&d("one-more.com"), || Ok(rep()));
        let r = cache.resolve_outcome(&d("x.com"), || {
            calls += 1;
            Err(DnsFailure::Timeout)
        });
        assert_eq!(r, Err(DnsFailure::Timeout));
        assert_eq!(calls, 2, "post-expiry lookup must re-query");
    }

    #[test]
    fn stats_count_expiry_retries_across_both_entry_points() {
        let mut cache = DnsCache::new();
        let _ = cache.resolve_outcome(&d("x.com"), || Err(DnsFailure::Servfail)); // miss
        let _ = cache.resolve_outcome(&d("x.com"), || Err(DnsFailure::Servfail)); // hit
        let r = cache.resolve_with(&d("x.com"), || Some(rep())); // negative hit
        assert_eq!(r, None);
        for i in 0..NEGATIVE_TTL_LOOKUPS {
            let name = d(&format!("filler{i}.com"));
            let _ = cache.resolve_outcome(&name, || Ok(rep())); // misses
        }
        // Expired now: the retry is a miss, and its success is cached.
        let r = cache.resolve_outcome(&d("x.com"), || Ok(rep()));
        assert_eq!(r, Ok(rep()));
        let r = cache.resolve_with(&d("x.com"), || None);
        assert_eq!(r, Some(rep())); // hit on the fresh answer
        assert_eq!(cache.stats(), (3, 2 + NEGATIVE_TTL_LOOKUPS));
    }
}
