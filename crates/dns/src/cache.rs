//! A small per-run DNS memo cache.
//!
//! Gamma resolves the same tracker domains over and over while walking
//! T_web (googletagmanager.com appears on most pages); volunteer machines
//! naturally cache these answers for the duration of a run, which also
//! keeps the simulated measurement internally consistent: one run observes
//! one answer per domain, as a real stub resolver would.
//!
//! Mirroring real resolver behaviour (RFC 2308), failures are cached
//! *negatively* with a much shorter lifetime than positive answers: a
//! timeout or SERVFAIL suppresses re-queries for a while, but the suite
//! eventually retries the name. Time is a logical clock that ticks once
//! per lookup, keeping the cache fully deterministic.

use crate::name::DomainName;
use crate::resolver::{DnsFailure, Replica};
use std::collections::HashMap;

/// How many subsequent lookups (across all names) a cached failure stays
/// authoritative for. Positive answers live for the whole run.
pub const NEGATIVE_TTL_LOOKUPS: u64 = 64;

#[derive(Debug, Clone, Copy, PartialEq)]
enum Entry {
    /// A run-lifetime answer. `None` models the legacy unresolved case
    /// (cached forever, as [`DnsCache::resolve_with`] always did).
    Answer(Option<Replica>),
    /// A failure, valid until the logical clock passes `expires_at`.
    Failure {
        failure: DnsFailure,
        expires_at: u64,
    },
}

/// Memoization cache with hit statistics and negative caching.
#[derive(Debug, Clone, Default)]
pub struct DnsCache {
    entries: HashMap<DomainName, Entry>,
    hits: u64,
    misses: u64,
    /// Logical time: the number of lookups served so far.
    clock: u64,
}

impl DnsCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a domain, computing and caching the answer on a miss.
    /// Legacy entry point: both outcomes are cached for the run's lifetime.
    pub fn resolve_with<F>(&mut self, domain: &DomainName, f: F) -> Option<Replica>
    where
        F: FnOnce() -> Option<Replica>,
    {
        self.clock += 1;
        if let Some(Entry::Answer(hit)) = self.entries.get(domain) {
            self.hits += 1;
            return *hit;
        }
        self.misses += 1;
        let answer = f();
        self.entries.insert(domain.clone(), Entry::Answer(answer));
        answer
    }

    /// Looks up a domain whose resolution can fail, computing and caching
    /// the outcome on a miss. Successes are cached for the run's lifetime;
    /// failures are negative-cached for [`NEGATIVE_TTL_LOOKUPS`] lookups
    /// and then retried, mirroring real resolver behaviour.
    pub fn resolve_outcome<F>(&mut self, domain: &DomainName, f: F) -> Result<Replica, DnsFailure>
    where
        F: FnOnce() -> Result<Replica, DnsFailure>,
    {
        self.clock += 1;
        match self.entries.get(domain) {
            Some(Entry::Answer(Some(r))) => {
                self.hits += 1;
                return Ok(*r);
            }
            Some(Entry::Answer(None)) => {
                // A legacy-cached unresolved name reads back as an
                // authoritative denial.
                self.hits += 1;
                return Err(DnsFailure::Nxdomain);
            }
            Some(Entry::Failure {
                failure,
                expires_at,
            }) if self.clock <= *expires_at => {
                self.hits += 1;
                return Err(*failure);
            }
            _ => {}
        }
        self.misses += 1;
        let outcome = f();
        let entry = match outcome {
            Ok(r) => Entry::Answer(Some(r)),
            Err(failure) => Entry::Failure {
                failure,
                expires_at: self.clock + NEGATIVE_TTL_LOOKUPS,
            },
        };
        self.entries.insert(domain.clone(), entry);
        outcome
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached names (including negative entries).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all entries (e.g. between volunteer sessions).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn rep() -> Replica {
        Replica {
            addr: Ipv4Addr::new(20, 0, 0, 9),
            city: gamma_geo::CityId(0),
        }
    }

    #[test]
    fn caches_positive_answers() {
        let mut cache = DnsCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let r = cache.resolve_with(&d("a.com"), || {
                calls += 1;
                Some(rep())
            });
            assert_eq!(r, Some(rep()));
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats(), (2, 1));
    }

    #[test]
    fn caches_negative_answers() {
        let mut cache = DnsCache::new();
        let mut calls = 0;
        for _ in 0..2 {
            let r = cache.resolve_with(&d("missing.com"), || {
                calls += 1;
                None
            });
            assert_eq!(r, None);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets_entries_but_not_stats() {
        let mut cache = DnsCache::new();
        cache.resolve_with(&d("a.com"), || Some(rep()));
        cache.clear();
        assert!(cache.is_empty());
        cache.resolve_with(&d("a.com"), || Some(rep()));
        assert_eq!(cache.stats(), (0, 2));
    }

    #[test]
    fn successful_outcomes_are_cached_for_the_run() {
        let mut cache = DnsCache::new();
        let mut calls = 0;
        for _ in 0..(2 * NEGATIVE_TTL_LOOKUPS) {
            let r = cache.resolve_outcome(&d("a.com"), || {
                calls += 1;
                Ok(rep())
            });
            assert_eq!(r, Ok(rep()));
        }
        assert_eq!(calls, 1);
    }

    #[test]
    fn failures_are_negative_cached_with_a_shorter_ttl() {
        let mut cache = DnsCache::new();
        let mut calls = 0;
        // First lookup misses; the failure then answers from cache until
        // the negative TTL lapses, after which the name is re-queried.
        for _ in 0..(NEGATIVE_TTL_LOOKUPS + 2) {
            let r = cache.resolve_outcome(&d("flaky.com"), || {
                calls += 1;
                Err(DnsFailure::Servfail)
            });
            assert_eq!(r, Err(DnsFailure::Servfail));
        }
        assert_eq!(calls, 2, "negative entry never expired");
    }

    #[test]
    fn retry_after_expiry_can_succeed() {
        let mut cache = DnsCache::new();
        let r = cache.resolve_outcome(&d("flaky.com"), || Err(DnsFailure::Timeout));
        assert_eq!(r, Err(DnsFailure::Timeout));
        // Burn through the negative TTL with unrelated lookups.
        for i in 0..NEGATIVE_TTL_LOOKUPS {
            let name = d(&format!("filler{i}.com"));
            let _ = cache.resolve_outcome(&name, || Ok(rep()));
        }
        let r = cache.resolve_outcome(&d("flaky.com"), || Ok(rep()));
        assert_eq!(r, Ok(rep()), "expired failure was not retried");
    }

    #[test]
    fn legacy_negative_entries_read_as_nxdomain() {
        let mut cache = DnsCache::new();
        cache.resolve_with(&d("gone.com"), || None);
        let r = cache.resolve_outcome(&d("gone.com"), || Ok(rep()));
        assert_eq!(r, Err(DnsFailure::Nxdomain));
    }
}
