//! A small per-run DNS memo cache.
//!
//! Gamma resolves the same tracker domains over and over while walking
//! T_web (googletagmanager.com appears on most pages); volunteer machines
//! naturally cache these answers for the duration of a run, which also
//! keeps the simulated measurement internally consistent: one run observes
//! one answer per domain, as a real stub resolver would.

use crate::name::DomainName;
use crate::resolver::Replica;
use std::collections::HashMap;

/// Memoization cache with hit statistics.
#[derive(Debug, Clone, Default)]
pub struct DnsCache {
    entries: HashMap<DomainName, Option<Replica>>,
    hits: u64,
    misses: u64,
}

impl DnsCache {
    pub fn new() -> Self {
        Self::default()
    }

    /// Looks up a domain, computing and caching the answer on a miss.
    pub fn resolve_with<F>(&mut self, domain: &DomainName, f: F) -> Option<Replica>
    where
        F: FnOnce() -> Option<Replica>,
    {
        if let Some(hit) = self.entries.get(domain) {
            self.hits += 1;
            return *hit;
        }
        self.misses += 1;
        let answer = f();
        self.entries.insert(domain.clone(), answer);
        answer
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Number of cached names (including negative entries).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Drops all entries (e.g. between volunteer sessions).
    pub fn clear(&mut self) {
        self.entries.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv4Addr;

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn rep() -> Replica {
        Replica {
            addr: Ipv4Addr::new(20, 0, 0, 9),
            city: gamma_geo::CityId(0),
        }
    }

    #[test]
    fn caches_positive_answers() {
        let mut cache = DnsCache::new();
        let mut calls = 0;
        for _ in 0..3 {
            let r = cache.resolve_with(&d("a.com"), || {
                calls += 1;
                Some(rep())
            });
            assert_eq!(r, Some(rep()));
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.stats(), (2, 1));
    }

    #[test]
    fn caches_negative_answers() {
        let mut cache = DnsCache::new();
        let mut calls = 0;
        for _ in 0..2 {
            let r = cache.resolve_with(&d("missing.com"), || {
                calls += 1;
                None
            });
            assert_eq!(r, None);
        }
        assert_eq!(calls, 1);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn clear_resets_entries_but_not_stats() {
        let mut cache = DnsCache::new();
        cache.resolve_with(&d("a.com"), || Some(rep()));
        cache.clear();
        assert!(cache.is_empty());
        cache.resolve_with(&d("a.com"), || Some(rep()));
        assert_eq!(cache.stats(), (0, 2));
    }
}
