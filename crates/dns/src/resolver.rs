//! GeoDNS-aware forward resolution.
//!
//! "Geolocation-based DNS (GeoDNS) and content delivery networks (CDNs)
//! often operate in a location-dependent manner that impacts both the
//! responding server's location and the page content" (§1). The resolver
//! therefore answers queries *relative to the client*: explicit per-country
//! steering overrides take precedence (modeling commercial traffic
//! engineering and regional anycast), otherwise the geographically nearest
//! replica answers.

use crate::name::DomainName;
use gamma_chaos::{FaultKind, FaultOracle, FaultScope};
use gamma_geo::{city, CityId, CountryCode};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// One deployment of a domain: a server address and its true city.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Replica {
    pub addr: Ipv4Addr,
    pub city: CityId,
}

/// A failed resolution, as a stub resolver would report it. The paper's
/// suite saw all three in the wild; downstream they are recorded on the
/// observation (and quarantined when injected) instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DnsFailure {
    /// The query timed out with no answer at all.
    Timeout,
    /// The upstream resolver answered SERVFAIL.
    Servfail,
    /// The name does not exist (authoritative denial).
    Nxdomain,
}

impl std::fmt::Display for DnsFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DnsFailure::Timeout => "timeout",
            DnsFailure::Servfail => "SERVFAIL",
            DnsFailure::Nxdomain => "NXDOMAIN",
        })
    }
}

/// How a particular resolution was decided — recorded so experiments can
/// audit steering behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ResolutionTrace {
    /// An explicit (domain, client-country) steering rule fired.
    Steered,
    /// Nearest-replica default.
    Nearest,
    /// Single-replica domain; no choice to make.
    Only,
}

/// Authoritative GeoDNS resolver for the synthetic web.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GeoResolver {
    zones: HashMap<DomainName, Vec<Replica>>,
    /// (domain, client country) -> replica city override.
    steering: HashMap<(DomainName, CountryCode), CityId>,
}

impl GeoResolver {
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or extends) the replica set of a domain.
    pub fn add_replicas(
        &mut self,
        domain: DomainName,
        replicas: impl IntoIterator<Item = Replica>,
    ) {
        self.zones.entry(domain).or_default().extend(replicas);
    }

    /// Installs a steering rule: clients in `client_country` resolving
    /// `domain` are directed to the replica in `city` (which must exist at
    /// resolution time, or the rule is ignored and nearest-replica applies).
    pub fn steer(&mut self, domain: DomainName, client_country: CountryCode, city: CityId) {
        self.steering.insert((domain, client_country), city);
    }

    /// Replaces the full replica set of a domain (hosting migration:
    /// the old deployment's addresses stop answering for this name).
    /// Existing steering rules are untouched; a rule pointing at a city
    /// the new set no longer covers simply stops firing and
    /// nearest-replica applies, exactly as for any stale rule.
    pub fn replace_replicas(
        &mut self,
        domain: DomainName,
        replicas: impl IntoIterator<Item = Replica>,
    ) {
        self.zones.insert(domain, replicas.into_iter().collect());
    }

    /// Whether the domain exists.
    pub fn has_zone(&self, domain: &DomainName) -> bool {
        self.zones.contains_key(domain)
    }

    /// All replicas of a domain.
    pub fn replicas(&self, domain: &DomainName) -> &[Replica] {
        self.zones.get(domain).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of zones.
    pub fn zone_count(&self) -> usize {
        self.zones.len()
    }

    /// Iterates over all zones.
    pub fn iter_zones(&self) -> impl Iterator<Item = (&DomainName, &[Replica])> {
        self.zones.iter().map(|(d, r)| (d, r.as_slice()))
    }

    /// Resolves a domain as seen by a client in `client_city`.
    pub fn resolve(
        &self,
        domain: &DomainName,
        client_city: CityId,
    ) -> Option<(Replica, ResolutionTrace)> {
        let replicas = self.zones.get(domain)?;
        if replicas.is_empty() {
            return None;
        }
        if replicas.len() == 1 {
            return Some((replicas[0], ResolutionTrace::Only));
        }
        let client_country = city(client_city).country;
        if let Some(&target_city) = self.steering.get(&(domain.clone(), client_country)) {
            if let Some(r) = replicas.iter().find(|r| r.city == target_city) {
                return Some((*r, ResolutionTrace::Steered));
            }
        }
        let client_loc = city(client_city).location;
        let nearest = replicas
            .iter()
            .min_by(|a, b| {
                let da = city(a.city).location.distance_km(&client_loc);
                let db = city(b.city).location.distance_km(&client_loc);
                da.partial_cmp(&db).expect("distances are finite")
            })
            .expect("non-empty replica set");
        Some((*nearest, ResolutionTrace::Nearest))
    }

    /// Resolves under the unified fault plan. The fault-free answer is
    /// computed first (so a quiet oracle is byte-identical to
    /// [`GeoResolver::resolve`]), then injected failures are overlaid:
    /// timeout, SERVFAIL, and NXDOMAIN in that order of precedence. A name
    /// missing from the zones resolves to `Err(Nxdomain)`, which is what a
    /// real authoritative denial looks like to the suite.
    pub fn resolve_checked(
        &self,
        domain: &DomainName,
        client_city: CityId,
        oracle: &dyn FaultOracle,
        country: Option<CountryCode>,
    ) -> Result<(Replica, ResolutionTrace), DnsFailure> {
        let answer = self.resolve(domain, client_city);
        let scope = match country {
            Some(c) => FaultScope::new(c, domain.as_str()),
            None => FaultScope::global(domain.as_str()),
        };
        if oracle.fires(FaultKind::DnsTimeout, scope) {
            return Err(DnsFailure::Timeout);
        }
        if oracle.fires(FaultKind::DnsServfail, scope) {
            return Err(DnsFailure::Servfail);
        }
        if oracle.fires(FaultKind::DnsNxdomain, scope) {
            return Err(DnsFailure::Nxdomain);
        }
        answer.ok_or(DnsFailure::Nxdomain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_geo::city_by_name;

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn replica(city_name: &str, last_octet: u8) -> Replica {
        Replica {
            addr: Ipv4Addr::new(20, 0, 0, last_octet),
            city: city_by_name(city_name).unwrap().id,
        }
    }

    #[test]
    fn unknown_domain_does_not_resolve() {
        let r = GeoResolver::new();
        assert!(r.resolve(&d("nope.com"), CityId(0)).is_none());
    }

    #[test]
    fn single_replica_always_wins() {
        let mut r = GeoResolver::new();
        r.add_replicas(d("tracker.com"), [replica("Frankfurt", 1)]);
        let (rep, trace) = r
            .resolve(&d("tracker.com"), city_by_name("Tokyo").unwrap().id)
            .unwrap();
        assert_eq!(rep.city, city_by_name("Frankfurt").unwrap().id);
        assert_eq!(trace, ResolutionTrace::Only);
    }

    #[test]
    fn nearest_replica_is_chosen_by_default() {
        let mut r = GeoResolver::new();
        r.add_replicas(
            d("cdn.example.com"),
            [
                replica("Frankfurt", 1),
                replica("Singapore", 2),
                replica("Ashburn", 3),
            ],
        );
        let (rep, trace) = r
            .resolve(&d("cdn.example.com"), city_by_name("Bangkok").unwrap().id)
            .unwrap();
        assert_eq!(rep.city, city_by_name("Singapore").unwrap().id);
        assert_eq!(trace, ResolutionTrace::Nearest);

        let (rep, _) = r
            .resolve(&d("cdn.example.com"), city_by_name("London").unwrap().id)
            .unwrap();
        assert_eq!(rep.city, city_by_name("Frankfurt").unwrap().id);
    }

    #[test]
    fn steering_overrides_distance() {
        // The Egypt->Germany anomaly (§7): Google serves Egyptian clients
        // from Frankfurt despite nearer replicas in Milan/Paris.
        let mut r = GeoResolver::new();
        r.add_replicas(
            d("ads.gtracker.com"),
            [
                replica("Milan", 1),
                replica("Paris", 2),
                replica("Frankfurt", 3),
            ],
        );
        let eg = CountryCode::new("EG");
        r.steer(
            d("ads.gtracker.com"),
            eg,
            city_by_name("Frankfurt").unwrap().id,
        );
        let (rep, trace) = r
            .resolve(&d("ads.gtracker.com"), city_by_name("Cairo").unwrap().id)
            .unwrap();
        assert_eq!(rep.city, city_by_name("Frankfurt").unwrap().id);
        assert_eq!(trace, ResolutionTrace::Steered);
    }

    #[test]
    fn steering_to_missing_replica_falls_back_to_nearest() {
        let mut r = GeoResolver::new();
        r.add_replicas(d("x.com"), [replica("Paris", 1), replica("Tokyo", 2)]);
        r.steer(
            d("x.com"),
            CountryCode::new("EG"),
            city_by_name("Sydney").unwrap().id,
        );
        let (rep, trace) = r
            .resolve(&d("x.com"), city_by_name("Cairo").unwrap().id)
            .unwrap();
        assert_eq!(rep.city, city_by_name("Paris").unwrap().id);
        assert_eq!(trace, ResolutionTrace::Nearest);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        fn arb_city() -> impl Strategy<Value = CityId> {
            let n = gamma_geo::cities().count() as u16;
            (0..n).prop_map(CityId)
        }

        proptest! {
            #[test]
            fn resolution_always_returns_a_member_replica(
                cities in prop::collection::vec(0u16..40, 1..6),
                client in arb_city(),
            ) {
                let mut r = GeoResolver::new();
                let dom = d("prop.example.com");
                let replicas: Vec<Replica> = cities
                    .iter()
                    .enumerate()
                    .map(|(i, c)| Replica {
                        addr: Ipv4Addr::new(20, 0, (i + 1) as u8, 1),
                        city: CityId(*c),
                    })
                    .collect();
                r.add_replicas(dom.clone(), replicas.clone());
                let (rep, _) = r.resolve(&dom, client).expect("resolves");
                prop_assert!(replicas.contains(&rep), "answer not in the replica set");
            }

            #[test]
            fn nearest_replica_is_really_nearest(
                cities in prop::collection::vec(0u16..60, 2..8),
                client in arb_city(),
            ) {
                let mut r = GeoResolver::new();
                let dom = d("near.example.com");
                let replicas: Vec<Replica> = cities
                    .iter()
                    .enumerate()
                    .map(|(i, c)| Replica {
                        addr: Ipv4Addr::new(20, 1, (i + 1) as u8, 1),
                        city: CityId(*c),
                    })
                    .collect();
                r.add_replicas(dom.clone(), replicas.clone());
                let (rep, _) = r.resolve(&dom, client).expect("resolves");
                let got = city(rep.city).location.distance_km(&city(client).location);
                for other in &replicas {
                    let dist = city(other.city).location.distance_km(&city(client).location);
                    prop_assert!(got <= dist + 1e-9, "answer {got} km, better replica at {dist} km");
                }
            }

            #[test]
            fn steering_wins_whenever_the_target_replica_exists(
                cities in prop::collection::vec(0u16..60, 2..8),
                pick in any::<prop::sample::Index>(),
                client in arb_city(),
            ) {
                let mut r = GeoResolver::new();
                let dom = d("steer.example.com");
                let replicas: Vec<Replica> = cities
                    .iter()
                    .enumerate()
                    .map(|(i, c)| Replica {
                        addr: Ipv4Addr::new(20, 2, (i + 1) as u8, 1),
                        city: CityId(*c),
                    })
                    .collect();
                r.add_replicas(dom.clone(), replicas.clone());
                let target = replicas[pick.index(replicas.len())].city;
                let country = city(client).country;
                r.steer(dom.clone(), country, target);
                let (rep, trace) = r.resolve(&dom, client).expect("resolves");
                if replicas.len() > 1 {
                    prop_assert_eq!(rep.city, target);
                    prop_assert_eq!(trace, ResolutionTrace::Steered);
                }
            }
        }
    }

    mod checked {
        use super::*;
        use gamma_chaos::{FaultPlan, FaultProfile, NoFaults};

        fn resolver() -> GeoResolver {
            let mut r = GeoResolver::new();
            r.add_replicas(d("cdn.example.com"), [replica("Frankfurt", 1)]);
            r
        }

        #[test]
        fn quiet_oracle_matches_legacy_resolution() {
            let r = resolver();
            let client = city_by_name("Cairo").unwrap().id;
            let legacy = r.resolve(&d("cdn.example.com"), client).unwrap();
            let checked = r
                .resolve_checked(&d("cdn.example.com"), client, &NoFaults, None)
                .unwrap();
            assert_eq!(legacy, checked);
        }

        #[test]
        fn missing_zone_is_nxdomain() {
            let r = resolver();
            let client = city_by_name("Cairo").unwrap().id;
            assert_eq!(
                r.resolve_checked(&d("nope.com"), client, &NoFaults, None),
                Err(DnsFailure::Nxdomain)
            );
        }

        #[test]
        fn injected_failures_take_precedence_in_order() {
            let r = resolver();
            let client = city_by_name("Cairo").unwrap().id;
            let dom = d("cdn.example.com");
            let eg = CountryCode::new("EG");

            let mut profile = FaultProfile::none();
            profile.dns.timeout_rate = 1.0;
            profile.dns.servfail_rate = 1.0;
            let plan = FaultPlan::none(1).with_override(eg, profile);
            assert_eq!(
                r.resolve_checked(&dom, client, &plan, Some(eg)),
                Err(DnsFailure::Timeout)
            );

            let mut profile = FaultProfile::none();
            profile.dns.servfail_rate = 1.0;
            let plan = FaultPlan::none(1).with_override(eg, profile);
            assert_eq!(
                r.resolve_checked(&dom, client, &plan, Some(eg)),
                Err(DnsFailure::Servfail)
            );

            let mut profile = FaultProfile::none();
            profile.dns.nxdomain_rate = 1.0;
            let plan = FaultPlan::none(1).with_override(eg, profile);
            assert_eq!(
                r.resolve_checked(&dom, client, &plan, Some(eg)),
                Err(DnsFailure::Nxdomain)
            );

            // The override never leaks onto other vantages.
            let us = CountryCode::new("US");
            assert!(r.resolve_checked(&dom, client, &plan, Some(us)).is_ok());
        }
    }

    #[test]
    fn replace_replicas_swaps_the_whole_set() {
        let mut r = GeoResolver::new();
        r.add_replicas(
            d("moved.example.com"),
            [replica("Frankfurt", 1), replica("Singapore", 2)],
        );
        r.steer(
            d("moved.example.com"),
            CountryCode::new("TH"),
            city_by_name("Singapore").unwrap().id,
        );
        r.replace_replicas(d("moved.example.com"), [replica("Ashburn", 9)]);
        assert_eq!(r.replicas(&d("moved.example.com")).len(), 1);
        // The stale steering rule no longer matches a member replica, so
        // the single remaining replica answers for everyone.
        let (rep, trace) = r
            .resolve(&d("moved.example.com"), city_by_name("Bangkok").unwrap().id)
            .unwrap();
        assert_eq!(rep.city, city_by_name("Ashburn").unwrap().id);
        assert_eq!(trace, ResolutionTrace::Only);
    }

    #[test]
    fn different_clients_see_different_answers() {
        // The in-country-vantage argument in one test: the same domain
        // resolves differently from Bangkok and from London.
        let mut r = GeoResolver::new();
        r.add_replicas(
            d("cdn.example.com"),
            [replica("Frankfurt", 1), replica("Singapore", 2)],
        );
        let from_bangkok = r
            .resolve(&d("cdn.example.com"), city_by_name("Bangkok").unwrap().id)
            .unwrap()
            .0;
        let from_london = r
            .resolve(&d("cdn.example.com"), city_by_name("London").unwrap().id)
            .unwrap()
            .0;
        assert_ne!(from_bangkok.city, from_london.city);
    }
}
