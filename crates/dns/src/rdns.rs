//! Reverse DNS with geographic hostname hints.
//!
//! Operators conventionally embed location codes in router and edge-server
//! hostnames (Luckie et al., cited as \[77\] in the paper). The paper's third
//! constraint (§4.1.3) inspects such hints and discards servers whose rDNS
//! contradicts the geolocation database — e.g. Google IPs "geolocated to Al
//! Fujairah City ... but the reverse DNS information showed evidence for
//! Amsterdam".
//!
//! This module generates hostnames under several schemes (IATA code, city
//! name, opaque) and extracts hints back out of arbitrary hostnames.

use gamma_geo::{city, city_by_iata, CityId, CityInfo};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// How an operator names its hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HostnameScheme {
    /// `edge-nbo-3.example.net` — embeds the IATA code.
    IataCode,
    /// `ams05.tracker.example` — IATA code fused with an index.
    IataFused,
    /// `server.frankfurt.example.net` — embeds the full city name.
    CityName,
    /// `r-42-17.example.net` — no geographic information.
    Opaque,
}

impl HostnameScheme {
    /// Renders a hostname for a server in `c` under this scheme.
    pub fn render(self, c: &CityInfo, org_domain: &str, index: u32) -> String {
        match self {
            HostnameScheme::IataCode => {
                format!(
                    "edge-{}-{}.{}",
                    c.iata.to_ascii_lowercase(),
                    index,
                    org_domain
                )
            }
            HostnameScheme::IataFused => {
                format!(
                    "{}{:02}.{}",
                    c.iata.to_ascii_lowercase(),
                    index % 100,
                    org_domain
                )
            }
            HostnameScheme::CityName => {
                let slug: String = c
                    .name
                    .chars()
                    .filter(|ch| ch.is_ascii_alphanumeric())
                    .collect::<String>()
                    .to_ascii_lowercase();
                format!("srv{}.{}.{}", index, slug, org_domain)
            }
            HostnameScheme::Opaque => format!("r-{}-{}.{}", index / 7 + 1, index, org_domain),
        }
    }
}

/// Extracts a geographic hint from a hostname, if any label encodes a
/// catalog city. IATA tokens must be exactly three letters (optionally with
/// a trailing numeric index, the "fused" form); city names must match a
/// whole label after slugging.
pub fn geo_hint(hostname: &str) -> Option<&'static CityInfo> {
    let lower = hostname.to_ascii_lowercase();
    for raw in lower.split(['.', '-', '_']) {
        if raw.is_empty() {
            continue;
        }
        // Whole-label city-name match ("frankfurt", "hochiminhcity").
        if raw.len() >= 5 {
            if let Some(c) = city_by_slug(raw) {
                return Some(c);
            }
        }
        // IATA match: exactly three letters, or three letters + digits.
        let (alpha, digits): (String, String) = raw.chars().partition(|c| c.is_ascii_alphabetic());
        if alpha.len() == 3
            && (raw.len() == 3 || (!digits.is_empty() && raw.len() == 3 + digits.len()))
        {
            if let Some(c) = city_by_iata(&alpha) {
                return Some(c);
            }
        }
    }
    None
}

fn city_by_slug(slug: &str) -> Option<&'static CityInfo> {
    gamma_geo::cities().find(|c| {
        let s: String = c
            .name
            .chars()
            .filter(|ch| ch.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        s == slug
    })
}

/// PTR-record table for the synthetic address space.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct RdnsTable {
    records: HashMap<Ipv4Addr, String>,
}

impl RdnsTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs a PTR record.
    pub fn insert(&mut self, addr: Ipv4Addr, hostname: String) {
        self.records.insert(addr, hostname);
    }

    /// Installs a PTR record rendered from a scheme, and returns it.
    pub fn insert_rendered(
        &mut self,
        addr: Ipv4Addr,
        scheme: HostnameScheme,
        city_id: CityId,
        org_domain: &str,
        index: u32,
    ) -> String {
        let h = scheme.render(city(city_id), org_domain, index);
        self.records.insert(addr, h.clone());
        h
    }

    /// Reverse lookup. `None` models an IP with no PTR record — the paper
    /// retains such servers ("if the reverse DNS did not provide clear
    /// geographical hints, the servers are retained", §4.1.3).
    pub fn lookup(&self, addr: Ipv4Addr) -> Option<&str> {
        self.records.get(&addr).map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.records.len()
    }

    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_geo::city_by_name;

    fn c(name: &str) -> &'static CityInfo {
        city_by_name(name).unwrap()
    }

    #[test]
    fn iata_scheme_roundtrips() {
        let h = HostnameScheme::IataCode.render(c("Nairobi"), "aws-edge.example.net", 3);
        assert_eq!(h, "edge-nbo-3.aws-edge.example.net");
        assert_eq!(geo_hint(&h).unwrap().name, "Nairobi");
    }

    #[test]
    fn fused_scheme_roundtrips() {
        let h = HostnameScheme::IataFused.render(c("Amsterdam"), "gtracker.example", 5);
        assert_eq!(h, "ams05.gtracker.example");
        assert_eq!(geo_hint(&h).unwrap().name, "Amsterdam");
    }

    #[test]
    fn city_name_scheme_roundtrips() {
        let h = HostnameScheme::CityName.render(c("Frankfurt"), "cdn.example.org", 12);
        assert_eq!(h, "srv12.frankfurt.cdn.example.org");
        assert_eq!(geo_hint(&h).unwrap().name, "Frankfurt");
    }

    #[test]
    fn multiword_city_slugs_work() {
        let h = HostnameScheme::CityName.render(c("Kuala Lumpur"), "x.example", 1);
        assert_eq!(geo_hint(&h).unwrap().name, "Kuala Lumpur");
    }

    #[test]
    fn opaque_scheme_has_no_hint() {
        let h = HostnameScheme::Opaque.render(c("Paris"), "backbone.example.net", 41);
        assert_eq!(geo_hint(&h), None);
    }

    #[test]
    fn hint_extraction_ignores_non_geo_tokens() {
        assert_eq!(geo_hint("www.example.com"), None);
        assert_eq!(geo_hint("static.cdn.tracker.io"), None);
    }

    #[test]
    fn short_random_tokens_do_not_false_positive() {
        // "api" and "dev" are 3 letters but not IATA codes in the catalog.
        assert_eq!(geo_hint("api.dev.example.com"), None);
    }

    #[test]
    fn table_lookup_and_missing_ptr() {
        let mut t = RdnsTable::new();
        let a = Ipv4Addr::new(20, 1, 1, 1);
        t.insert_rendered(a, HostnameScheme::IataCode, c("Zurich").id, "g.example", 7);
        assert!(t.lookup(a).unwrap().contains("zrh"));
        assert!(t.lookup(Ipv4Addr::new(20, 1, 1, 2)).is_none());
    }

    #[test]
    fn paper_mislocation_hostnames_hint_correctly() {
        // Pakistan's Google IPs claimed Al Fujairah, rDNS said Amsterdam;
        // Egypt's claimed Germany, rDNS said Zurich (§4.1.3).
        let ams = HostnameScheme::IataFused.render(c("Amsterdam"), "1e100-like.example", 8);
        let zrh = HostnameScheme::IataFused.render(c("Zurich"), "1e100-like.example", 2);
        assert_eq!(geo_hint(&ams).unwrap().country.as_str(), "NL");
        assert_eq!(geo_hint(&zrh).unwrap().country.as_str(), "CH");
    }
}
