//! Validated domain names.
//!
//! The paper's analyses key on "domains", defined as the full host part of
//! a URL including subdomains (§6.2: `www.a.b.c.com` and `www.q.w.c.com`
//! are different domains). [`DomainName`] is that notion: a lowercase,
//! dot-separated sequence of LDH labels.

use serde::{Deserialize, Serialize};

/// A validated, normalized (lowercase) domain name.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[serde(try_from = "String", into = "String")]
pub struct DomainName(String);

/// Errors produced when validating a domain name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    Empty,
    TooLong,
    EmptyLabel,
    BadCharacter(char),
    LabelTooLong,
    HyphenEdge,
}

impl std::fmt::Display for DomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainError::Empty => write!(f, "empty domain"),
            DomainError::TooLong => write!(f, "domain exceeds 253 characters"),
            DomainError::EmptyLabel => write!(f, "empty label"),
            DomainError::BadCharacter(c) => write!(f, "invalid character {c:?}"),
            DomainError::LabelTooLong => write!(f, "label exceeds 63 characters"),
            DomainError::HyphenEdge => write!(f, "label starts or ends with hyphen"),
        }
    }
}

impl std::error::Error for DomainError {}

impl DomainName {
    /// Parses and normalizes a domain name. A single trailing dot (FQDN
    /// form) is accepted and stripped.
    pub fn parse(s: &str) -> Result<Self, DomainError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Err(DomainError::Empty);
        }
        if s.len() > 253 {
            return Err(DomainError::TooLong);
        }
        let lower = s.to_ascii_lowercase();
        for label in lower.split('.') {
            if label.is_empty() {
                return Err(DomainError::EmptyLabel);
            }
            if label.len() > 63 {
                return Err(DomainError::LabelTooLong);
            }
            if label.starts_with('-') || label.ends_with('-') {
                return Err(DomainError::HyphenEdge);
            }
            if let Some(c) = label
                .chars()
                .find(|c| !(c.is_ascii_lowercase() || c.is_ascii_digit() || *c == '-' || *c == '_'))
            {
                return Err(DomainError::BadCharacter(c));
            }
        }
        Ok(DomainName(lower))
    }

    /// Wraps a string that is already known to be a valid, normalized
    /// domain name — e.g. one read back out of an interner table that
    /// was populated from parsed [`DomainName`]s. Skips re-validation;
    /// debug builds assert the invariant actually holds.
    pub fn from_normalized(s: String) -> DomainName {
        debug_assert!(
            DomainName::parse(&s).map(|d| d.0 == s).unwrap_or(false),
            "from_normalized called with unnormalized name {s:?}"
        );
        DomainName(s)
    }

    /// The name as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// Labels, left to right (`www`, `example`, `com`).
    pub fn labels(&self) -> impl Iterator<Item = &str> {
        self.0.split('.')
    }

    /// Number of labels.
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// The parent domain (one label stripped), if any.
    pub fn parent(&self) -> Option<DomainName> {
        self.0
            .split_once('.')
            .map(|(_, rest)| DomainName(rest.to_string()))
    }

    /// Whether `self` equals `other` or is a subdomain of it.
    pub fn is_subdomain_of(&self, other: &DomainName) -> bool {
        self == other
            || (self.0.len() > other.0.len()
                && self.0.ends_with(other.as_str())
                && self.0.as_bytes()[self.0.len() - other.0.len() - 1] == b'.')
    }

    /// Joins a child label in front: `join("www", "example.com") = www.example.com`.
    pub fn prepend(&self, label: &str) -> Result<DomainName, DomainError> {
        DomainName::parse(&format!("{label}.{}", self.0))
    }
}

impl std::fmt::Display for DomainName {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl TryFrom<String> for DomainName {
    type Error = DomainError;
    fn try_from(s: String) -> Result<Self, Self::Error> {
        DomainName::parse(&s)
    }
}

impl From<DomainName> for String {
    fn from(d: DomainName) -> String {
        d.0
    }
}

impl std::str::FromStr for DomainName {
    type Err = DomainError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        DomainName::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn parses_and_normalizes() {
        let d = DomainName::parse("WWW.Example.COM").unwrap();
        assert_eq!(d.as_str(), "www.example.com");
        assert_eq!(d.label_count(), 3);
    }

    #[test]
    fn strips_trailing_dot() {
        assert_eq!(
            DomainName::parse("example.com.").unwrap(),
            DomainName::parse("example.com").unwrap()
        );
    }

    #[test]
    fn rejects_malformed_names() {
        assert_eq!(DomainName::parse(""), Err(DomainError::Empty));
        assert_eq!(DomainName::parse("a..b"), Err(DomainError::EmptyLabel));
        assert_eq!(DomainName::parse("-a.com"), Err(DomainError::HyphenEdge));
        assert_eq!(DomainName::parse("a-.com"), Err(DomainError::HyphenEdge));
        assert!(matches!(
            DomainName::parse("exa mple.com"),
            Err(DomainError::BadCharacter(' '))
        ));
        assert_eq!(
            DomainName::parse(&"a".repeat(64)),
            Err(DomainError::LabelTooLong)
        );
        assert_eq!(
            DomainName::parse(&format!("{}.com", "a.".repeat(130))),
            Err(DomainError::TooLong)
        );
    }

    #[test]
    fn subdomain_relationship() {
        let base = DomainName::parse("googlesyndication.com").unwrap();
        let sub = DomainName::parse("693.safeframe.googlesyndication.com").unwrap();
        let unrelated = DomainName::parse("notgooglesyndication.com").unwrap();
        assert!(sub.is_subdomain_of(&base));
        assert!(base.is_subdomain_of(&base));
        assert!(!base.is_subdomain_of(&sub));
        assert!(!unrelated.is_subdomain_of(&base));
    }

    #[test]
    fn parent_walks_up() {
        let d = DomainName::parse("a.b.c").unwrap();
        let p = d.parent().unwrap();
        assert_eq!(p.as_str(), "b.c");
        assert_eq!(p.parent().unwrap().as_str(), "c");
        assert!(p.parent().unwrap().parent().is_none());
    }

    #[test]
    fn prepend_builds_child() {
        let d = DomainName::parse("gov.au").unwrap();
        assert_eq!(d.prepend("health").unwrap().as_str(), "health.gov.au");
        assert!(d.prepend("bad label").is_err());
    }

    #[test]
    fn serde_roundtrip_validates() {
        let d: DomainName = serde_json::from_str("\"Tracker.Example.NET\"").unwrap();
        assert_eq!(d.as_str(), "tracker.example.net");
        assert!(serde_json::from_str::<DomainName>("\"..bad\"").is_err());
    }

    proptest! {
        #[test]
        fn valid_names_roundtrip(labels in prop::collection::vec("[a-z][a-z0-9]{0,8}", 1..5)) {
            let s = labels.join(".");
            let d = DomainName::parse(&s).unwrap();
            prop_assert_eq!(d.as_str(), s.as_str());
            prop_assert_eq!(d.label_count(), labels.len());
        }

        #[test]
        fn subdomain_of_parent_always_holds(labels in prop::collection::vec("[a-z]{1,6}", 2..6)) {
            let d = DomainName::parse(&labels.join(".")).unwrap();
            let p = d.parent().unwrap();
            prop_assert!(d.is_subdomain_of(&p));
            prop_assert!(!p.is_subdomain_of(&d));
        }
    }
}
