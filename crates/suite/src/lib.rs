//! # gamma-suite
//!
//! The *Gamma* tool itself (§3 of the paper), reproduced over the synthetic
//! substrate. Three components, each independently usable:
//!
//! - **C1 — browser-level interaction**: isolated browser sessions load the
//!   country's target websites and record every network request
//!   (`gamma-browser` does the page mechanics; [`suite`] orchestrates).
//! - **C2 — network information gathering**: forward DNS for every
//!   requested domain, reverse DNS for every resolved address, AS/geo
//!   annotation via the registry (the ipinfo/ipwhois role).
//! - **C3 — measurement probes**: traceroutes to every resolved address,
//!   honoring the volunteer's opt-outs and the firewall failure mode.
//!
//! Portability is reproduced where it matters for the data: Linux
//! `traceroute` and Windows `tracert` produce differently-shaped text, and
//! [`normalize`] renders and re-parses both into the identical JSON
//! structure the paper describes ("an identical structure JSON file with
//! hop and RTT information for traceroute and tracert").
//!
//! Runs are degradation-aware: every layer consults the configuration's
//! unified `gamma-chaos` fault plan, and partial or malformed records land
//! in the typed [`quarantine`] ledger instead of panicking the run.

// Data paths must degrade into the quarantine ledger, never panic.
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod annotate;
pub mod checkpoint;
pub mod config;
pub mod normalize;
pub mod output;
pub mod probe_backend;
pub mod quarantine;
pub mod suite;
pub mod targets;
pub mod volunteer;

pub use annotate::{Annotator, CloudCensus, IpAnnotation};
pub use checkpoint::Checkpoint;
pub use config::GammaConfig;
pub use normalize::{
    parse_linux, parse_windows, render_linux, render_windows, NormHop, NormalizedTraceroute,
};
pub use output::{domain_of, DnsObservation, TracerouteRecord, VolunteerDataset, VolunteerMeta};
pub use probe_backend::{command_line, select_backend, Backend, ProbeKind};
pub use quarantine::{Quarantine, QuarantineReason};
pub use suite::{
    run_all_volunteers, run_volunteer, run_volunteer_checked, run_volunteer_from, SuiteError,
};
pub use targets::build_targets;
pub use volunteer::{Os, Volunteer};
