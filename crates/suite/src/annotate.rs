//! C2's metadata-annotation APIs.
//!
//! Gamma "queries APIs to annotate domains/hosts with ASN, geolocation,
//! and network/ownership metadata (e.g., IPinfo, ipwhois.io, RIPE IPmap)"
//! (§3, C2). This module plays those services over the synthetic world:
//! given an address, it returns the AS number, the AS operator name and
//! country, the coarse city/country the *service* believes the address is
//! in, and whether the address sits in a known cloud.
//!
//! Like the real services, the annotation is an independent product from
//! the study's own geolocation pipeline — downstream code treats it as
//! helpful-but-unverified metadata (§4.1 spends a whole section on why
//! such databases cannot be trusted alone).

use gamma_netsim::asn::{Asn, ASN_AWS, ASN_GCP};
use gamma_websim::World;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Annotation returned for one address.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpAnnotation {
    pub ip: Ipv4Addr,
    pub asn: Asn,
    /// AS operator name (the whois `as-name`).
    pub as_name: String,
    /// Country the operating organization is registered in.
    pub as_country: gamma_geo::CountryCode,
    /// The service's city-level location guess.
    pub city: String,
    pub country: gamma_geo::CountryCode,
    /// Whether the address belongs to a public cloud (AWS / Google Cloud).
    pub cloud: Option<CloudProvider>,
}

/// Public clouds recognized by the annotator (§6.5's AS-level lookups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CloudProvider {
    Aws,
    GoogleCloud,
}

/// The annotation service facade.
#[derive(Debug, Clone, Copy)]
pub struct Annotator<'w> {
    world: &'w World,
}

impl<'w> Annotator<'w> {
    pub fn new(world: &'w World) -> Self {
        Annotator { world }
    }

    /// Annotates one address; `None` when the address is outside the
    /// routed space (the real services answer "bogon" for those).
    pub fn annotate(&self, ip: Ipv4Addr) -> Option<IpAnnotation> {
        let alloc = self.world.ip_registry.lookup(ip)?;
        let as_info = self.world.as_registry.get(alloc.asn)?;
        let city = gamma_geo::city(alloc.city);
        let cloud = match alloc.asn {
            a if a == ASN_AWS => Some(CloudProvider::Aws),
            a if a == ASN_GCP => Some(CloudProvider::GoogleCloud),
            _ => None,
        };
        Some(IpAnnotation {
            ip,
            asn: alloc.asn,
            as_name: as_info.name.clone(),
            as_country: as_info.country,
            city: city.name.to_string(),
            country: city.country,
            cloud,
        })
    }

    /// §6.5's cloud census: counts distinct confirmed tracker hosts per
    /// cloud provider ("we identified 50 trackers hosted on AWS and 5 on
    /// Google Cloud").
    pub fn cloud_census<I: IntoIterator<Item = Ipv4Addr>>(&self, ips: I) -> CloudCensus {
        let mut census = CloudCensus::default();
        for ip in ips {
            match self.annotate(ip).and_then(|a| a.cloud) {
                Some(CloudProvider::Aws) => census.aws += 1,
                Some(CloudProvider::GoogleCloud) => census.google_cloud += 1,
                None => census.other += 1,
            }
        }
        census
    }
}

/// Counts per hosting provider.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CloudCensus {
    pub aws: usize,
    pub google_cloud: usize,
    pub other: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_geo::CountryCode;
    use gamma_netsim::asn::AsKind;
    use gamma_websim::{worldgen, WorldSpec};
    use std::sync::OnceLock;

    fn world() -> &'static World {
        static W: OnceLock<World> = OnceLock::new();
        W.get_or_init(|| worldgen::generate(&WorldSpec::paper_default(88)))
    }

    #[test]
    fn annotates_a_tracker_address_with_as_metadata() {
        let w = world();
        let a = Annotator::new(w);
        // Resolve a Google tracker from a volunteer city and annotate it.
        let d = gamma_dns::DomainName::parse("googletagmanager.com").unwrap();
        let vc = w.volunteer_city(CountryCode::new("PK")).unwrap();
        let rep = w.resolve(&d, vc).expect("resolves");
        let ann = a.annotate(rep.addr).expect("annotated");
        assert!(ann.as_name.contains("GOOGLE"), "{}", ann.as_name);
        assert_eq!(ann.as_country, CountryCode::new("US"));
        assert_eq!(ann.country, gamma_geo::city(rep.city).country);
    }

    #[test]
    fn aws_hosted_minors_are_flagged_as_cloud() {
        let w = world();
        let a = Annotator::new(w);
        // Find a deployment on the AWS ASN and annotate one of its hosts.
        let dep = w
            .hosting
            .iter()
            .find(|d| d.asn == ASN_AWS)
            .expect("some org rides AWS");
        let ip = dep.nets[0].nth(1).unwrap();
        let ann = a.annotate(ip).unwrap();
        assert_eq!(ann.cloud, Some(CloudProvider::Aws));
        assert_eq!(ann.as_name, "AMAZON-02");
    }

    #[test]
    fn unrouted_addresses_are_bogons() {
        let w = world();
        let a = Annotator::new(w);
        assert!(a.annotate(Ipv4Addr::new(203, 0, 113, 7)).is_none());
        assert!(a.annotate(Ipv4Addr::new(100, 64, 0, 23)).is_none());
    }

    #[test]
    fn cloud_census_counts_per_provider() {
        let w = world();
        let a = Annotator::new(w);
        let mut ips = Vec::new();
        for dep in w.hosting.iter().take(200) {
            ips.push(dep.nets[0].nth(1).unwrap());
        }
        let census = a.cloud_census(ips.iter().copied());
        assert_eq!(census.aws + census.google_cloud + census.other, ips.len());
        // Most minors ride AWS, a few GCP (§6.5's 50-vs-5 pattern).
        assert!(census.aws > census.google_cloud, "{census:?}");
        assert!(census.aws > 0 && census.google_cloud > 0, "{census:?}");
    }

    #[test]
    fn backbone_routers_annotate_as_transit() {
        let w = world();
        let a = Annotator::new(w);
        let city = gamma_geo::city_by_name("Frankfurt").unwrap().id;
        let ann = a.annotate(w.router_ip_of(city)).unwrap();
        assert_eq!(w.as_registry.get(ann.asn).unwrap().kind, AsKind::Transit);
        assert_eq!(ann.city, "Frankfurt");
    }
}
