//! Volunteers: the in-country vantage points.
//!
//! One volunteer per country (one covered two in the study, §3.3). Each
//! runs Gamma on their own machine and Internet connection — the paper's
//! central methodological move against VPN/proxy/cloud distortion (§2.2).

use gamma_geo::{CityId, CountryCode};
use gamma_netsim::{AccessQuality, Asn};
use gamma_websim::spec::TracerouteMode;
use gamma_websim::World;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Operating system of the volunteer machine; drives which traceroute
/// flavour Gamma shells out to (§3: `traceroute` vs `tracert`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Os {
    Linux,
    Windows,
    MacOs,
}

impl Os {
    /// Deterministic OS assignment for the i-th volunteer (the study's
    /// volunteers ran a mix; Windows is the common case).
    pub fn for_index(i: usize) -> Os {
        match i % 3 {
            0 => Os::Windows,
            1 => Os::Linux,
            _ => Os::MacOs,
        }
    }
}

/// A volunteer vantage point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Volunteer {
    pub country: CountryCode,
    /// Disclosed city (§4: "We ask the volunteer to disclose their city").
    pub city: CityId,
    pub os: Os,
    pub access: AccessQuality,
    /// Access-network AS.
    pub asn: Asn,
    /// The volunteer's public address, logged by the tool and anonymized
    /// after analysis (§3.5).
    pub ip: Ipv4Addr,
    /// Traceroute behaviour at this vantage (§4.1.1).
    pub traceroute_mode: TracerouteMode,
}

/// First AS number used for volunteer access networks.
const FIRST_EYEBALL_ASN: u32 = 7_000;

impl Volunteer {
    /// Builds the volunteer for a measurement country from the world spec.
    pub fn for_country(world: &World, country: CountryCode, index: usize) -> Option<Volunteer> {
        let cs = world.spec.country(country)?;
        let city = world.volunteer_city(country)?;
        // CGNAT-style address: distinct per volunteer, outside the
        // registry's server space (volunteers are behind NAT, §3.5).
        let ip = Ipv4Addr::new(100, 64 + (index as u8 % 32), index as u8, 23);
        Some(Volunteer {
            country,
            city,
            os: Os::for_index(index),
            access: cs.access,
            asn: Asn(FIRST_EYEBALL_ASN + index as u32),
            ip,
            traceroute_mode: cs.traceroute,
        })
    }

    /// All volunteers of the study, in spec order.
    pub fn roster(world: &World) -> Vec<Volunteer> {
        world
            .spec
            .countries
            .iter()
            .enumerate()
            .filter_map(|(i, cs)| Volunteer::for_country(world, cs.country, i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_websim::{worldgen, WorldSpec};

    fn world() -> World {
        worldgen::generate(&WorldSpec::paper_default(5))
    }

    #[test]
    fn roster_covers_all_countries() {
        let w = world();
        let roster = Volunteer::roster(&w);
        assert_eq!(roster.len(), 23);
        let mut seen = std::collections::HashSet::new();
        for v in &roster {
            assert!(
                seen.insert(v.country),
                "duplicate volunteer for {}",
                v.country
            );
            assert_eq!(gamma_geo::city(v.city).country, v.country);
        }
    }

    #[test]
    fn volunteer_ips_are_distinct_and_private_range() {
        let w = world();
        let roster = Volunteer::roster(&w);
        let mut ips = std::collections::HashSet::new();
        for v in &roster {
            assert!(ips.insert(v.ip), "duplicate IP {}", v.ip);
            assert_eq!(v.ip.octets()[0], 100, "{} not CGNAT-like", v.ip);
            // Volunteer addresses never collide with the server registry.
            assert!(w.true_city(v.ip).is_none());
        }
    }

    #[test]
    fn traceroute_modes_follow_spec() {
        let w = world();
        let eg = Volunteer::for_country(&w, CountryCode::new("EG"), 2).unwrap();
        assert_eq!(eg.traceroute_mode, TracerouteMode::OptOut);
        let au = Volunteer::for_country(&w, CountryCode::new("AU"), 11).unwrap();
        assert_eq!(au.traceroute_mode, TracerouteMode::Firewalled);
    }

    #[test]
    fn os_assignment_cycles() {
        assert_eq!(Os::for_index(0), Os::Windows);
        assert_eq!(Os::for_index(1), Os::Linux);
        assert_eq!(Os::for_index(2), Os::MacOs);
        assert_eq!(Os::for_index(3), Os::Windows);
    }

    #[test]
    fn unknown_country_yields_none() {
        let w = world();
        assert!(Volunteer::for_country(&w, CountryCode::new("XX"), 0).is_none());
    }
}
