//! Suite configuration: which components run and how they are tuned.

use gamma_browser::BrowserConfig;
use gamma_chaos::FaultPlan;
use serde::{Deserialize, Serialize};

fn default_retain_raw() -> bool {
    true
}

/// Full Gamma configuration ("lightweight, highly configurable", §3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GammaConfig {
    /// C1 settings.
    pub browser: BrowserConfig,
    /// Run C2 (DNS / reverse DNS / AS annotation).
    pub gather_network_info: bool,
    /// Run C3 (traceroute probes).
    pub launch_probes: bool,
    /// Keep the raw OS command output on every traceroute record. On by
    /// default for compatibility; turning it off drops the text after
    /// normalization (the field is then omitted from serialized datasets
    /// and checkpoints, which shrinks them considerably).
    #[serde(default = "default_retain_raw")]
    pub retain_raw_traceroute: bool,
    /// The unified fault plan every layer consults: DNS failures, browser
    /// hangs and truncated captures, probe loss, Atlas churn. Replaces the
    /// scattered per-layer knobs (netsim `FaultConfig`, ping loss rates,
    /// browser load failure) with one seed-derived oracle.
    pub plan: FaultPlan,
    /// Base RNG seed for the volunteer run.
    pub seed: u64,
}

impl Default for GammaConfig {
    fn default() -> Self {
        Self::paper_default(0)
    }
}

impl GammaConfig {
    /// The study's configuration: isolated Chrome with the §3.1 timings,
    /// all three components enabled, and the paper's baseline fault rates
    /// (probe hop silence and unreachable destinations only).
    pub fn paper_default(seed: u64) -> Self {
        GammaConfig {
            browser: BrowserConfig::paper_default(),
            gather_network_info: true,
            launch_probes: true,
            retain_raw_traceroute: true,
            plan: FaultPlan::paper_default(seed),
            seed,
        }
    }

    pub fn validate(&self) -> Result<(), String> {
        self.browser.validate()?;
        self.plan.validate()?;
        if self.launch_probes && !self.gather_network_info {
            return Err("probes need resolved addresses: enable network info gathering".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid_and_full_pipeline() {
        let c = GammaConfig::paper_default(1);
        c.validate().unwrap();
        assert!(c.gather_network_info);
        assert!(c.launch_probes);
        assert!(c.retain_raw_traceroute);
    }

    #[test]
    fn retain_raw_defaults_on_for_old_serialized_configs() {
        // Configurations serialized before the flag existed deserialize
        // with retention on, preserving their behaviour.
        let mut v = serde_json::to_value(GammaConfig::paper_default(1)).unwrap();
        v.as_object_mut().unwrap().remove("retain_raw_traceroute");
        let c: GammaConfig = serde_json::from_value(v).unwrap();
        assert!(c.retain_raw_traceroute);
    }

    #[test]
    fn probes_without_dns_are_rejected() {
        let c = GammaConfig {
            gather_network_info: false,
            ..GammaConfig::paper_default(1)
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn component_subsets_are_allowed() {
        // C1-only and C1+C2 runs are legitimate configurations (§3).
        let c = GammaConfig {
            gather_network_info: false,
            launch_probes: false,
            ..GammaConfig::paper_default(1)
        };
        c.validate().unwrap();
        let c = GammaConfig {
            launch_probes: false,
            ..GammaConfig::paper_default(1)
        };
        c.validate().unwrap();
    }

    #[test]
    fn invalid_plan_rates_are_rejected() {
        let mut c = GammaConfig::paper_default(1);
        c.plan.base.dns.timeout_rate = 1.5;
        assert!(c.validate().is_err());
    }
}
