//! `gamma-tool` — the volunteer-facing measurement tool, as a CLI.
//!
//! The study distributed Gamma to volunteers with instructions to run it
//! over their country's target list (§3.3). This binary is that workflow
//! over the synthetic substrate:
//!
//! ```sh
//! # list the target websites a volunteer in Thailand would crawl
//! gamma-tool targets --country TH --seed 7
//!
//! # run the full measurement (C1+C2+C3) and emit the dataset as JSON
//! gamma-tool run --country TH --seed 7 --out dataset.json
//!
//! # resume an interrupted run from a checkpoint
//! gamma-tool run --country TH --seed 7 --skip 40 --out rest.json
//! ```

use gamma_geo::CountryCode;
use gamma_suite::{run_volunteer_from, GammaConfig, Volunteer};
use gamma_websim::{worldgen, WorldSpec};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  gamma-tool targets --country <CC> [--seed N]\n  gamma-tool run --country <CC> [--seed N] [--skip N] [--no-probes] [--out FILE|-]\n  gamma-tool countries"
    );
    ExitCode::FAILURE
}

struct Args {
    command: String,
    country: Option<CountryCode>,
    seed: u64,
    skip: usize,
    no_probes: bool,
    out: String,
}

fn parse_args() -> Option<Args> {
    let mut argv = std::env::args().skip(1);
    let command = argv.next()?;
    let mut args = Args {
        command,
        country: None,
        seed: 2025,
        skip: 0,
        no_probes: false,
        out: "-".to_string(),
    };
    while let Some(flag) = argv.next() {
        match flag.as_str() {
            "--country" => args.country = CountryCode::parse(&argv.next()?),
            "--seed" => args.seed = argv.next()?.parse().ok()?,
            "--skip" => args.skip = argv.next()?.parse().ok()?,
            "--no-probes" => args.no_probes = true,
            "--out" => args.out = argv.next()?,
            _ => return None,
        }
    }
    Some(args)
}

fn main() -> ExitCode {
    let Some(args) = parse_args() else {
        return usage();
    };
    let spec = WorldSpec::paper_default(args.seed);

    match args.command.as_str() {
        "countries" => {
            for cs in &spec.countries {
                let c = gamma_geo::country(cs.country).expect("cataloged");
                println!(
                    "{}  {:<22} volunteer in {} ({:?} traceroutes)",
                    cs.country, c.name, cs.volunteer_city, cs.traceroute
                );
            }
            ExitCode::SUCCESS
        }
        "targets" => {
            let Some(country) = args.country else {
                return usage();
            };
            eprintln!("generating world (seed {})...", args.seed);
            let world = worldgen::generate(&spec);
            let Some(targets) = world.targets.get(&country) else {
                eprintln!("{country} is not a measurement country; try `gamma countries`");
                return ExitCode::FAILURE;
            };
            println!("# T_reg ({})", targets.regional.len());
            for sid in &targets.regional {
                println!("{}", world.site(*sid).domain);
            }
            println!("# T_gov ({})", targets.government.len());
            for sid in &targets.government {
                println!("{}", world.site(*sid).domain);
            }
            ExitCode::SUCCESS
        }
        "run" => {
            let Some(country) = args.country else {
                return usage();
            };
            eprintln!("generating world (seed {})...", args.seed);
            let world = worldgen::generate(&spec);
            let index = spec
                .countries
                .iter()
                .position(|c| c.country == country)
                .unwrap_or(0);
            let Some(volunteer) = Volunteer::for_country(&world, country, index) else {
                eprintln!("{country} is not a measurement country; try `gamma countries`");
                return ExitCode::FAILURE;
            };
            let config = GammaConfig {
                launch_probes: !args.no_probes,
                ..GammaConfig::paper_default(args.seed)
            };
            eprintln!(
                "running Gamma for {} from {} ({} targets, skipping {})...",
                country,
                gamma_geo::city(volunteer.city).name,
                world.targets[&country].len(),
                args.skip
            );
            let dataset = run_volunteer_from(&world, &volunteer, &config, args.skip);
            eprintln!(
                "loads: {} ({} ok) | dns observations: {} | traceroutes: {}",
                dataset.loads.len(),
                dataset.loaded_count(),
                dataset.dns.len(),
                dataset.traceroutes.len()
            );
            let json = serde_json::to_string_pretty(&dataset).expect("dataset serializes");
            if args.out == "-" {
                println!("{json}");
            } else if let Err(e) = gamma_store::atomic_write_bytes(
                std::path::Path::new(&args.out),
                json.as_bytes(),
                &gamma_store::WriteOptions::default(),
            ) {
                eprintln!("cannot write {}: {e}", args.out);
                return ExitCode::FAILURE;
            } else {
                eprintln!("wrote {}", args.out);
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
