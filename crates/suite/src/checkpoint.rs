//! Checkpoint/resume support.
//!
//! "We advised volunteers to complete the experiment in a single session
//! ... However, volunteers can also run it in chunks, as Gamma is designed
//! to resume from where it was last stopped" (§3.3). The checkpoint is a
//! small JSON document the tool writes after each completed target.

use gamma_geo::CountryCode;
use gamma_store::{load_doc, save_doc, ArtifactKind, LoadError, Loaded, WriteOptions};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Resumable progress marker for a volunteer run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Checkpoint {
    pub country: CountryCode,
    /// RNG seed of the interrupted run (must match on resume for the same
    /// data to come out).
    pub seed: u64,
    /// Number of target sites fully processed.
    pub completed_sites: usize,
}

impl Checkpoint {
    pub fn new(country: CountryCode, seed: u64) -> Self {
        Checkpoint {
            country,
            seed,
            completed_sites: 0,
        }
    }

    /// Marks one more site done.
    pub fn advance(&mut self) {
        self.completed_sites += 1;
    }

    /// Serializes to the on-disk JSON format.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serializes")
    }

    /// Restores from the on-disk format.
    pub fn from_json(s: &str) -> Result<Self, String> {
        serde_json::from_str(s).map_err(|e| format!("corrupt checkpoint: {e}"))
    }

    /// Whether this checkpoint can resume a run with the given parameters.
    pub fn compatible_with(&self, country: CountryCode, seed: u64) -> bool {
        self.country == country && self.seed == seed
    }

    /// Persists the marker through the durable store: checksummed
    /// framed container, atomic temp-file + rename write.
    pub fn save(&self, path: &Path) -> Result<(), String> {
        save_doc(
            path,
            ArtifactKind::SuiteCheckpoint,
            self,
            &WriteOptions::default(),
        )
        .map_err(|e| e.to_string())
    }

    /// Restores a marker the store can still vouch for. `Ok(None)` is a
    /// fresh start (no file, or nothing durable survived a first-write
    /// crash); checksum or parse failures are errors — a volunteer run
    /// must not silently restart over evidence of corruption.
    pub fn load(path: &Path) -> Result<Option<Loaded<Checkpoint>>, String> {
        match load_doc(path, ArtifactKind::SuiteCheckpoint) {
            Ok(loaded) => Ok(Some(loaded)),
            Err(LoadError::Missing) | Err(LoadError::TornEmpty) => Ok(None),
            Err(e) => Err(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_through_json() {
        let mut c = Checkpoint::new(CountryCode::new("RW"), 42);
        c.advance();
        c.advance();
        let restored = Checkpoint::from_json(&c.to_json()).unwrap();
        assert_eq!(restored, c);
        assert_eq!(restored.completed_sites, 2);
    }

    #[test]
    fn rejects_corrupt_input() {
        assert!(Checkpoint::from_json("{not json").is_err());
        assert!(Checkpoint::from_json("{}").is_err());
    }

    #[test]
    fn compatibility_requires_matching_run() {
        let c = Checkpoint::new(CountryCode::new("RW"), 42);
        assert!(c.compatible_with(CountryCode::new("RW"), 42));
        assert!(!c.compatible_with(CountryCode::new("RW"), 43));
        assert!(!c.compatible_with(CountryCode::new("UG"), 42));
    }
}
