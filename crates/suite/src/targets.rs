//! Target-list assembly with volunteer opt-outs.
//!
//! The worldgen already applied §3.2's selection procedure (rankings, gov
//! TLD filtering, adult/banned removal); this module applies the last
//! human step: "Volunteers are provided with the T_web list and can opt
//! out from accessing any number of the websites" — 0.99% across the study
//! (§5).

use gamma_geo::CountryCode;
use gamma_websim::{SiteId, World};
use rand::Rng;

/// A volunteer's effective target list after opt-outs.
#[derive(Debug, Clone, PartialEq)]
pub struct EffectiveTargets {
    pub regional: Vec<SiteId>,
    pub government: Vec<SiteId>,
    pub opted_out: Vec<SiteId>,
}

impl EffectiveTargets {
    pub fn all(&self) -> impl Iterator<Item = SiteId> + '_ {
        self.regional.iter().chain(self.government.iter()).copied()
    }

    pub fn len(&self) -> usize {
        self.regional.len() + self.government.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builds the target list for a country, removing each site with the
/// spec's opt-out probability.
pub fn build_targets<R: Rng + ?Sized>(
    world: &World,
    country: CountryCode,
    rng: &mut R,
) -> Option<EffectiveTargets> {
    let list = world.targets.get(&country)?;
    let rate = world.spec.opt_out_rate;
    let mut opted_out = Vec::new();
    let mut keep = |ids: &[SiteId], rng: &mut R| -> Vec<SiteId> {
        ids.iter()
            .filter(|&&s| {
                if rng.gen::<f64>() < rate {
                    opted_out.push(s);
                    false
                } else {
                    true
                }
            })
            .copied()
            .collect()
    };
    let regional = keep(&list.regional, rng);
    let government = keep(&list.government, rng);
    Some(EffectiveTargets {
        regional,
        government,
        opted_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_websim::{worldgen, WorldSpec};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn opt_outs_are_rare() {
        let world = worldgen::generate(&WorldSpec::paper_default(3));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut total = 0usize;
        let mut out = 0usize;
        for cs in &world.spec.countries {
            let t = build_targets(&world, cs.country, &mut rng).unwrap();
            total += t.len() + t.opted_out.len();
            out += t.opted_out.len();
        }
        let rate = out as f64 / total as f64;
        // §5: "only 0.99% of the websites".
        assert!(rate < 0.03, "opt-out rate {rate}");
    }

    #[test]
    fn opted_out_sites_leave_the_list() {
        let mut spec = WorldSpec::paper_default(3);
        spec.opt_out_rate = 0.5;
        let world = worldgen::generate(&spec);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let t = build_targets(&world, CountryCode::new("TH"), &mut rng).unwrap();
        assert!(!t.opted_out.is_empty());
        for s in &t.opted_out {
            assert!(!t.all().any(|x| x == *s));
        }
    }

    #[test]
    fn unknown_country_returns_none() {
        let world = worldgen::generate(&WorldSpec::paper_default(3));
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        assert!(build_targets(&world, CountryCode::new("XX"), &mut rng).is_none());
    }
}
