//! Dataset records a volunteer ships back to the researchers (Box 1 → Box 2
//! of Figure 1 in the paper).
//!
//! Hostnames are stored **interned**: the dataset carries one
//! [`Interner`] table (serialized once, at the head of the record) and
//! every [`DnsObservation`] references it through compact typed ids.
//! Id assignment is deterministic — see `gamma-model`'s crate docs —
//! so two runs of the same seed produce bit-identical tables and ids,
//! on any worker count and across checkpoint/resume.

use crate::normalize::NormalizedTraceroute;
use crate::volunteer::{Os, Volunteer};
use gamma_browser::PageLoad;
use gamma_dns::{DnsFailure, DomainName};
use gamma_geo::{CityId, CountryCode};
use gamma_model::{HostId, Interner, RdnsId, SiteId};
use gamma_netsim::Asn;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// One C2 observation: a requested domain, its resolution, and annotations.
///
/// All hostname fields are ids into the owning dataset's
/// [`VolunteerDataset::symbols`] table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DnsObservation {
    /// Target website whose page produced the request.
    pub site: SiteId,
    /// The requested host.
    pub request: HostId,
    /// Forward resolution (None: NXDOMAIN-like).
    pub ip: Option<Ipv4Addr>,
    /// Reverse DNS of the resolved address, where a PTR exists.
    pub rdns: Option<RdnsId>,
    /// AS annotation (the ipinfo/ipwhois role of C2).
    pub asn: Option<Asn>,
    /// How the resolution failed, when it did (timeouts and SERVFAILs are
    /// distinguishable from genuine NXDOMAIN so retries can be scheduled).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub failure: Option<DnsFailure>,
}

/// One C3 probe: the raw command text plus the normalized record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracerouteRecord {
    pub target_ip: Ipv4Addr,
    /// The OS-specific command output exactly as captured. Empty when
    /// raw-text retention is disabled (`GammaConfig.retain_raw_traceroute`),
    /// in which case the field is omitted from serialized datasets.
    #[serde(default, skip_serializing_if = "String::is_empty")]
    pub raw_text: String,
    /// The unified JSON structure (§3).
    pub normalized: NormalizedTraceroute,
}

/// Volunteer metadata shipped with the dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolunteerMeta {
    pub country: CountryCode,
    pub city: CityId,
    pub os: Os,
    pub asn: Asn,
    /// Logged public address; `None` once anonymized (§3.5: "all volunteers
    /// IP addresses are anonymized within the dataset").
    pub ip: Option<Ipv4Addr>,
}

impl From<&Volunteer> for VolunteerMeta {
    fn from(v: &Volunteer) -> Self {
        VolunteerMeta {
            country: v.country,
            city: v.city,
            os: v.os,
            asn: v.asn,
            ip: Some(v.ip),
        }
    }
}

/// Everything one volunteer's Gamma run recorded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolunteerDataset {
    /// The string table every id field below resolves against. First so
    /// the table serializes at the head of the dataset.
    #[serde(default)]
    pub symbols: Interner,
    pub volunteer: VolunteerMeta,
    pub loads: Vec<PageLoad>,
    pub dns: Vec<DnsObservation>,
    pub traceroutes: Vec<TracerouteRecord>,
    /// Sites the volunteer opted out of (never loaded).
    pub opted_out: Vec<SiteId>,
    /// Whether C3 ran at all (false for the Egypt-style opt-out).
    pub probes_enabled: bool,
}

impl VolunteerDataset {
    /// Post-analysis anonymization step (§3.5).
    pub fn anonymize(&mut self) {
        self.volunteer.ip = None;
    }

    /// The requested hostname of an observation, as text.
    pub fn host(&self, id: HostId) -> &str {
        id.resolve(&self.symbols)
    }

    /// The site domain of an observation, as text.
    pub fn site_domain(&self, id: SiteId) -> &str {
        id.resolve(&self.symbols)
    }

    /// The rDNS hostname of an observation, as text.
    pub fn rdns(&self, id: RdnsId) -> &str {
        id.resolve(&self.symbols)
    }

    /// Unique requested domains across all loads.
    pub fn unique_domains(&self) -> HashSet<HostId> {
        self.dns.iter().map(|d| d.request).collect()
    }

    /// Unique resolved addresses.
    pub fn unique_ips(&self) -> HashSet<Ipv4Addr> {
        self.dns.iter().filter_map(|d| d.ip).collect()
    }

    /// Number of successfully loaded pages.
    pub fn loaded_count(&self) -> usize {
        self.loads.iter().filter(|l| l.succeeded()).count()
    }

    /// Load coverage over attempted pages (Figure 2b's metric).
    pub fn load_coverage(&self) -> f64 {
        if self.loads.is_empty() {
            return 0.0;
        }
        self.loaded_count() as f64 / self.loads.len() as f64
    }
}

/// Re-parses an interned hostname back into a validated [`DomainName`].
/// Interned strings originate from parsed names, so this is a cheap
/// re-wrap, not a re-validation.
pub fn domain_of(symbols: &Interner, sym: gamma_model::Symbol) -> DomainName {
    DomainName::from_normalized(symbols.resolve(sym).to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> VolunteerMeta {
        VolunteerMeta {
            country: CountryCode::new("TH"),
            city: CityId(8),
            os: Os::Linux,
            asn: Asn(7008),
            ip: Some(Ipv4Addr::new(100, 72, 8, 23)),
        }
    }

    #[test]
    fn anonymization_strips_ip_only() {
        let mut ds = VolunteerDataset {
            symbols: Interner::new(),
            volunteer: meta(),
            loads: vec![],
            dns: vec![],
            traceroutes: vec![],
            opted_out: vec![],
            probes_enabled: true,
        };
        assert!(ds.volunteer.ip.is_some());
        ds.anonymize();
        assert!(ds.volunteer.ip.is_none());
        assert_eq!(ds.volunteer.country, CountryCode::new("TH"));
    }

    #[test]
    fn unique_counters_deduplicate() {
        let mut symbols = Interner::new();
        let a = SiteId::intern(&mut symbols, "a.com");
        let b = SiteId::intern(&mut symbols, "b.com");
        let gtm = HostId::intern(&mut symbols, "t.googletagmanager.com");
        let nx = HostId::intern(&mut symbols, "nxdomain.example.com");
        let ds = VolunteerDataset {
            symbols,
            volunteer: meta(),
            loads: vec![],
            dns: vec![
                DnsObservation {
                    site: a,
                    request: gtm,
                    ip: Some(Ipv4Addr::new(20, 0, 0, 1)),
                    rdns: None,
                    asn: None,
                    failure: None,
                },
                DnsObservation {
                    site: b,
                    request: gtm,
                    ip: Some(Ipv4Addr::new(20, 0, 0, 1)),
                    rdns: None,
                    asn: None,
                    failure: None,
                },
                DnsObservation {
                    site: b,
                    request: nx,
                    ip: None,
                    rdns: None,
                    asn: None,
                    failure: None,
                },
            ],
            traceroutes: vec![],
            opted_out: vec![],
            probes_enabled: true,
        };
        assert_eq!(ds.unique_domains().len(), 2);
        assert_eq!(ds.unique_ips().len(), 1);
        assert_eq!(ds.host(gtm), "t.googletagmanager.com");
        assert_eq!(ds.site_domain(b), "b.com");
    }

    #[test]
    fn dataset_serializes_to_json() {
        let mut symbols = Interner::new();
        let site = SiteId::intern(&mut symbols, "news.example.th");
        let req = HostId::intern(&mut symbols, "cdn.tracker.net");
        let rdns = RdnsId::intern(&mut symbols, "edge1.tracker.net");
        let ds = VolunteerDataset {
            symbols,
            volunteer: meta(),
            loads: vec![],
            dns: vec![DnsObservation {
                site,
                request: req,
                ip: Some(Ipv4Addr::new(20, 0, 0, 7)),
                rdns: Some(rdns),
                asn: Some(Asn(64500)),
                failure: None,
            }],
            traceroutes: vec![],
            opted_out: vec![site],
            probes_enabled: false,
        };
        let js = serde_json::to_string_pretty(&ds).unwrap();
        let back: VolunteerDataset = serde_json::from_str(&js).unwrap();
        assert_eq!(ds, back);
        // The table serialized as a plain string list; the records are
        // numeric references into it, and they resolve after the trip.
        assert_eq!(back.host(back.dns[0].request), "cdn.tracker.net");
        assert_eq!(back.rdns(back.dns[0].rdns.unwrap()), "edge1.tracker.net");
        // The hostname text appears exactly once in the JSON: in the table.
        assert_eq!(js.matches("cdn.tracker.net").count(), 1);
    }

    #[test]
    fn empty_raw_text_is_omitted_from_serialized_probes() {
        let rec = TracerouteRecord {
            target_ip: Ipv4Addr::new(20, 0, 0, 7),
            raw_text: String::new(),
            normalized: NormalizedTraceroute {
                dst: Ipv4Addr::new(20, 0, 0, 7),
                reached: false,
                hops: vec![],
            },
        };
        let js = serde_json::to_string(&rec).unwrap();
        assert!(!js.contains("raw_text"), "empty raw_text serialized: {js}");
        let back: TracerouteRecord = serde_json::from_str(&js).unwrap();
        assert_eq!(back, rec);
    }
}
