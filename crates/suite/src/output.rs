//! Dataset records a volunteer ships back to the researchers (Box 1 → Box 2
//! of Figure 1 in the paper).

use crate::normalize::NormalizedTraceroute;
use crate::volunteer::{Os, Volunteer};
use gamma_browser::PageLoad;
use gamma_dns::{DnsFailure, DomainName};
use gamma_geo::{CityId, CountryCode};
use gamma_netsim::Asn;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// One C2 observation: a requested domain, its resolution, and annotations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DnsObservation {
    /// Target website whose page produced the request.
    pub site: DomainName,
    /// The requested host.
    pub request: DomainName,
    /// Forward resolution (None: NXDOMAIN-like).
    pub ip: Option<Ipv4Addr>,
    /// Reverse DNS of the resolved address, where a PTR exists.
    pub rdns: Option<String>,
    /// AS annotation (the ipinfo/ipwhois role of C2).
    pub asn: Option<Asn>,
    /// How the resolution failed, when it did (timeouts and SERVFAILs are
    /// distinguishable from genuine NXDOMAIN so retries can be scheduled).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub failure: Option<DnsFailure>,
}

/// One C3 probe: the raw command text plus the normalized record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TracerouteRecord {
    pub target_ip: Ipv4Addr,
    /// The OS-specific command output exactly as captured.
    pub raw_text: String,
    /// The unified JSON structure (§3).
    pub normalized: NormalizedTraceroute,
}

/// Volunteer metadata shipped with the dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolunteerMeta {
    pub country: CountryCode,
    pub city: CityId,
    pub os: Os,
    pub asn: Asn,
    /// Logged public address; `None` once anonymized (§3.5: "all volunteers
    /// IP addresses are anonymized within the dataset").
    pub ip: Option<Ipv4Addr>,
}

impl From<&Volunteer> for VolunteerMeta {
    fn from(v: &Volunteer) -> Self {
        VolunteerMeta {
            country: v.country,
            city: v.city,
            os: v.os,
            asn: v.asn,
            ip: Some(v.ip),
        }
    }
}

/// Everything one volunteer's Gamma run recorded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VolunteerDataset {
    pub volunteer: VolunteerMeta,
    pub loads: Vec<PageLoad>,
    pub dns: Vec<DnsObservation>,
    pub traceroutes: Vec<TracerouteRecord>,
    /// Sites the volunteer opted out of (never loaded).
    pub opted_out: Vec<DomainName>,
    /// Whether C3 ran at all (false for the Egypt-style opt-out).
    pub probes_enabled: bool,
}

impl VolunteerDataset {
    /// Post-analysis anonymization step (§3.5).
    pub fn anonymize(&mut self) {
        self.volunteer.ip = None;
    }

    /// Unique requested domains across all loads.
    pub fn unique_domains(&self) -> HashSet<&DomainName> {
        self.dns.iter().map(|d| &d.request).collect()
    }

    /// Unique resolved addresses.
    pub fn unique_ips(&self) -> HashSet<Ipv4Addr> {
        self.dns.iter().filter_map(|d| d.ip).collect()
    }

    /// Number of successfully loaded pages.
    pub fn loaded_count(&self) -> usize {
        self.loads.iter().filter(|l| l.succeeded()).count()
    }

    /// Load coverage over attempted pages (Figure 2b's metric).
    pub fn load_coverage(&self) -> f64 {
        if self.loads.is_empty() {
            return 0.0;
        }
        self.loaded_count() as f64 / self.loads.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> VolunteerMeta {
        VolunteerMeta {
            country: CountryCode::new("TH"),
            city: CityId(8),
            os: Os::Linux,
            asn: Asn(7008),
            ip: Some(Ipv4Addr::new(100, 72, 8, 23)),
        }
    }

    #[test]
    fn anonymization_strips_ip_only() {
        let mut ds = VolunteerDataset {
            volunteer: meta(),
            loads: vec![],
            dns: vec![],
            traceroutes: vec![],
            opted_out: vec![],
            probes_enabled: true,
        };
        assert!(ds.volunteer.ip.is_some());
        ds.anonymize();
        assert!(ds.volunteer.ip.is_none());
        assert_eq!(ds.volunteer.country, CountryCode::new("TH"));
    }

    #[test]
    fn unique_counters_deduplicate() {
        let d = |s: &str| DomainName::parse(s).unwrap();
        let ds = VolunteerDataset {
            volunteer: meta(),
            loads: vec![],
            dns: vec![
                DnsObservation {
                    site: d("a.com"),
                    request: d("t.googletagmanager.com"),
                    ip: Some(Ipv4Addr::new(20, 0, 0, 1)),
                    rdns: None,
                    asn: None,
                    failure: None,
                },
                DnsObservation {
                    site: d("b.com"),
                    request: d("t.googletagmanager.com"),
                    ip: Some(Ipv4Addr::new(20, 0, 0, 1)),
                    rdns: None,
                    asn: None,
                    failure: None,
                },
                DnsObservation {
                    site: d("b.com"),
                    request: d("nxdomain.example.com"),
                    ip: None,
                    rdns: None,
                    asn: None,
                    failure: None,
                },
            ],
            traceroutes: vec![],
            opted_out: vec![],
            probes_enabled: true,
        };
        assert_eq!(ds.unique_domains().len(), 2);
        assert_eq!(ds.unique_ips().len(), 1);
    }

    #[test]
    fn dataset_serializes_to_json() {
        let ds = VolunteerDataset {
            volunteer: meta(),
            loads: vec![],
            dns: vec![],
            traceroutes: vec![],
            opted_out: vec![],
            probes_enabled: false,
        };
        let js = serde_json::to_string_pretty(&ds).unwrap();
        let back: VolunteerDataset = serde_json::from_str(&js).unwrap();
        assert_eq!(ds, back);
    }
}
