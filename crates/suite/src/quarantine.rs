//! The quarantine ledger: typed records of everything a volunteer run
//! lost or shipped home malformed.
//!
//! The paper's campaign did not stop on bad data — hung pages were killed
//! at the hard timeout (§3.1), traceroutes starred out or failed outright
//! (§4.1.1), and DNS answers went missing — it *recorded* the loss and
//! degraded. The ledger is that record: instead of panicking on a partial
//! or malformed record, the suite quarantines it here, and the analysis
//! layer renders a per-country data-quality section from these entries so
//! every report states what it is missing.

use gamma_dns::{DnsFailure, DomainName};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Why a record landed in quarantine instead of the dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum QuarantineReason {
    /// The page never became responsive and was killed at the §3.1 hard
    /// timeout; nothing was captured for the site.
    PageKilled { site: DomainName },
    /// The capture shipped home truncated: only a prefix of the site's
    /// requests survived.
    CaptureTruncated { site: DomainName },
    /// Forward resolution of a requested host failed.
    DnsFailed {
        request: DomainName,
        failure: DnsFailure,
    },
    /// The PTR answer for an address was truncated or lost, so the rDNS
    /// constraint cannot see it.
    RdnsTruncated { ip: Ipv4Addr },
    /// A traceroute was dropped wholesale by the vantage's network.
    TracerouteFailed { target_ip: Ipv4Addr },
    /// Raw probe output did not parse into the normalized structure.
    MalformedTraceroute { target_ip: Ipv4Addr, error: String },
    /// An on-disk artifact (checkpoint, snapshot chain, revision store)
    /// failed its checksum or parse and was set aside rather than
    /// trusted — the durable-store analog of a truncated capture.
    StorageUnreadable { path: String, detail: String },
}

/// One volunteer run's ledger of quarantined records.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Quarantine {
    pub entries: Vec<QuarantineReason>,
}

impl Quarantine {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, reason: QuarantineReason) {
        self.entries.push(reason);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pages killed at the hard timeout.
    pub fn pages_killed(&self) -> usize {
        self.count(|r| matches!(r, QuarantineReason::PageKilled { .. }))
    }

    /// Truncated captures.
    pub fn captures_truncated(&self) -> usize {
        self.count(|r| matches!(r, QuarantineReason::CaptureTruncated { .. }))
    }

    /// Failed forward resolutions (timeouts, SERVFAIL, injected NXDOMAIN).
    pub fn dns_failures(&self) -> usize {
        self.count(|r| matches!(r, QuarantineReason::DnsFailed { .. }))
    }

    /// Lost PTR answers.
    pub fn rdns_truncated(&self) -> usize {
        self.count(|r| matches!(r, QuarantineReason::RdnsTruncated { .. }))
    }

    /// Traceroutes that failed outright or came back malformed.
    pub fn traceroutes_lost(&self) -> usize {
        self.count(|r| {
            matches!(
                r,
                QuarantineReason::TracerouteFailed { .. }
                    | QuarantineReason::MalformedTraceroute { .. }
            )
        })
    }

    /// On-disk artifacts quarantined by the durable store.
    pub fn storage_unreadable(&self) -> usize {
        self.count(|r| matches!(r, QuarantineReason::StorageUnreadable { .. }))
    }

    fn count(&self, pred: impl Fn(&QuarantineReason) -> bool) -> usize {
        self.entries.iter().filter(|r| pred(r)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    #[test]
    fn counters_partition_the_ledger() {
        let mut q = Quarantine::new();
        assert!(q.is_empty());
        q.push(QuarantineReason::PageKilled { site: d("a.com") });
        q.push(QuarantineReason::CaptureTruncated { site: d("b.com") });
        q.push(QuarantineReason::DnsFailed {
            request: d("t.example.com"),
            failure: DnsFailure::Timeout,
        });
        q.push(QuarantineReason::RdnsTruncated {
            ip: Ipv4Addr::new(20, 0, 0, 1),
        });
        q.push(QuarantineReason::TracerouteFailed {
            target_ip: Ipv4Addr::new(20, 0, 0, 2),
        });
        q.push(QuarantineReason::MalformedTraceroute {
            target_ip: Ipv4Addr::new(20, 0, 0, 3),
            error: "truncated row".into(),
        });
        assert_eq!(q.len(), 6);
        assert_eq!(q.pages_killed(), 1);
        assert_eq!(q.captures_truncated(), 1);
        assert_eq!(q.dns_failures(), 1);
        assert_eq!(q.rdns_truncated(), 1);
        assert_eq!(q.traceroutes_lost(), 2);
    }

    #[test]
    fn ledger_roundtrips_through_json() {
        let mut q = Quarantine::new();
        q.push(QuarantineReason::DnsFailed {
            request: d("x.io"),
            failure: DnsFailure::Servfail,
        });
        let js = serde_json::to_string(&q).unwrap();
        let back: Quarantine = serde_json::from_str(&js).unwrap();
        assert_eq!(q, back);
    }
}
