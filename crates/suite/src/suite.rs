//! The orchestrated Gamma run: C1 → C2 → C3 per target website.
//!
//! Mirrors the per-website flow of Figure 1, Box 1: load the page in an
//! isolated browser, record the network-request domains, resolve forward
//! and reverse DNS for each, annotate with AS data, and traceroute every
//! resolved address (once per unique address per volunteer, like the real
//! tool's per-run cache).

use crate::config::GammaConfig;
use crate::normalize::{parse_linux, parse_windows, render_linux, render_windows};
use crate::output::{DnsObservation, TracerouteRecord, VolunteerDataset, VolunteerMeta};
use crate::targets::build_targets;
use crate::volunteer::{Os, Volunteer};
use gamma_browser::load_page;
use gamma_dns::DnsCache;
use gamma_netsim::{run_traceroute, FaultConfig, LatencyModel, TracerouteResult};
use gamma_websim::spec::TracerouteMode;
use gamma_websim::World;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Runs Gamma for one volunteer over their country's target list.
pub fn run_volunteer(
    world: &World,
    volunteer: &Volunteer,
    config: &GammaConfig,
) -> VolunteerDataset {
    run_volunteer_from(world, volunteer, config, 0)
}

/// Resumable variant: skips the first `skip_sites` targets (the checkpoint
/// mechanism of §3.3: "Gamma is designed to resume from where it was last
/// stopped").
pub fn run_volunteer_from(
    world: &World,
    volunteer: &Volunteer,
    config: &GammaConfig,
    skip_sites: usize,
) -> VolunteerDataset {
    config.validate().expect("invalid Gamma configuration");
    let cs = world
        .spec
        .country(volunteer.country)
        .expect("volunteer country must be in the spec");
    let mut rng = ChaCha8Rng::seed_from_u64(
        config.seed ^ u64::from(volunteer.country.0[0]) << 16 ^ u64::from(volunteer.country.0[1]),
    );

    let targets =
        build_targets(world, volunteer.country, &mut rng).expect("volunteer country has targets");
    let mut dataset = VolunteerDataset {
        volunteer: VolunteerMeta::from(volunteer),
        loads: Vec::new(),
        dns: Vec::new(),
        traceroutes: Vec::new(),
        opted_out: targets
            .opted_out
            .iter()
            .map(|s| world.site(*s).domain.clone())
            .collect(),
        probes_enabled: config.launch_probes && volunteer.traceroute_mode != TracerouteMode::OptOut,
    };

    let model = LatencyModel::default();
    let fault = match volunteer.traceroute_mode {
        TracerouteMode::Firewalled => FaultConfig {
            firewall_blocks_traceroute: true,
            ..config.fault
        },
        _ => config.fault,
    };
    let mut dns_cache = DnsCache::new();
    let mut probed: HashSet<Ipv4Addr> = HashSet::new();

    for sid in targets.all().skip(skip_sites) {
        let site = world.site(sid);
        // --- C1: browser-level interaction ---
        let load = load_page(site, &config.browser, cs.load_success_rate, &mut rng);
        let requests = load.requests.clone();
        dataset.loads.push(load);
        if !config.gather_network_info {
            continue;
        }
        // --- C2: network information gathering ---
        for request in requests {
            let replica =
                dns_cache.resolve_with(&request, || world.resolve_fuzzy(&request, volunteer.city));
            let ip = replica.map(|r| r.addr);
            dataset.dns.push(DnsObservation {
                site: site.domain.clone(),
                request: request.clone(),
                rdns: ip.and_then(|a| world.rdns_of(a).map(str::to_string)),
                asn: ip.and_then(|a| world.asn_of(a)),
                ip,
            });
            // --- C3: measurement probes (once per unique address) ---
            let (Some(addr), true) = (ip, dataset.probes_enabled) else {
                continue;
            };
            if !probed.insert(addr) {
                continue;
            }
            let Some(true_city) = world.true_city(addr) else {
                continue;
            };
            let src = gamma_geo::city(volunteer.city);
            let dst = gamma_geo::city(true_city);
            let route = gamma_netsim::synthesize_route(src, dst);
            let result = run_traceroute(
                &route,
                addr,
                &model,
                volunteer.access,
                &fault,
                &|c| world.router_ip_of(c),
                &mut rng,
            );
            dataset.traceroutes.push(capture(volunteer.os, &result));
        }
    }
    dataset
}

/// Renders the OS-appropriate command output and parses it back — the
/// normalization layer is on the critical path, as in the real tool.
fn capture(os: Os, result: &TracerouteResult) -> TracerouteRecord {
    let (raw_text, normalized) = match os {
        Os::Windows => {
            let raw = render_windows(result);
            let n = parse_windows(&raw).expect("tracert output parses");
            (raw, n)
        }
        // macOS traceroute output is Linux-shaped for our purposes.
        Os::Linux | Os::MacOs => {
            let raw = render_linux(result);
            let n = parse_linux(&raw).expect("traceroute output parses");
            (raw, n)
        }
    };
    TracerouteRecord {
        target_ip: result.dst,
        raw_text,
        normalized,
    }
}

/// Runs the whole study: every volunteer in the roster.
pub fn run_all_volunteers(world: &World, config: &GammaConfig) -> Vec<VolunteerDataset> {
    Volunteer::roster(world)
        .iter()
        .map(|v| run_volunteer(world, v, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_geo::CountryCode;
    use gamma_websim::{worldgen, WorldSpec};

    fn world() -> World {
        worldgen::generate(&WorldSpec::paper_default(11))
    }

    fn run(world: &World, cc: &str) -> VolunteerDataset {
        let v = Volunteer::for_country(world, CountryCode::new(cc), 0).unwrap();
        run_volunteer(world, &v, &GammaConfig::paper_default(1))
    }

    #[test]
    fn thailand_run_produces_all_record_kinds() {
        let w = world();
        let ds = run(&w, "TH");
        assert!(ds.loads.len() > 80, "{} loads", ds.loads.len());
        assert!(ds.dns.len() > 300, "{} dns observations", ds.dns.len());
        assert!(!ds.traceroutes.is_empty());
        assert!(ds.probes_enabled);
        // Per-run DNS consistency: a domain resolves to one address.
        let mut by_domain = std::collections::HashMap::new();
        for d in &ds.dns {
            if let Some(ip) = d.ip {
                let prev = by_domain.insert(d.request.clone(), ip);
                if let Some(p) = prev {
                    assert_eq!(p, ip, "{} resolved inconsistently", d.request);
                }
            }
        }
    }

    #[test]
    fn traceroutes_are_deduplicated_per_address() {
        let w = world();
        let ds = run(&w, "TH");
        let mut seen = std::collections::HashSet::new();
        for t in &ds.traceroutes {
            assert!(seen.insert(t.target_ip), "{} probed twice", t.target_ip);
        }
    }

    #[test]
    fn egypt_volunteer_launches_no_probes() {
        let w = world();
        // Egypt is spec index 2 -> same roster position as the study's.
        let v = Volunteer::for_country(&w, CountryCode::new("EG"), 2).unwrap();
        let ds = run_volunteer(&w, &v, &GammaConfig::paper_default(1));
        assert!(!ds.probes_enabled);
        assert!(ds.traceroutes.is_empty());
        assert!(!ds.dns.is_empty(), "C1/C2 still run");
    }

    #[test]
    fn firewalled_volunteer_records_failed_traceroutes() {
        let w = world();
        let v = Volunteer::for_country(&w, CountryCode::new("AU"), 11).unwrap();
        let ds = run_volunteer(&w, &v, &GammaConfig::paper_default(1));
        assert!(ds.probes_enabled);
        assert!(!ds.traceroutes.is_empty());
        for t in &ds.traceroutes {
            assert!(
                !t.normalized.reached,
                "firewalled probe reached {}",
                t.target_ip
            );
            assert!(t.normalized.hops.is_empty());
        }
    }

    #[test]
    fn saudi_coverage_is_much_lower_than_uk() {
        let w = world();
        let sa = run(&w, "SA").load_coverage();
        let gb = run(&w, "GB").load_coverage();
        assert!(sa < 0.76, "SA coverage {sa}");
        assert!(gb > 0.86, "GB coverage {gb}");
        assert!(sa + 0.15 < gb, "SA {sa} not clearly below GB {gb}");
    }

    #[test]
    fn windows_volunteer_captures_tracert_text() {
        let w = world();
        let v = Volunteer::for_country(&w, CountryCode::new("TH"), 0).unwrap();
        assert_eq!(v.os, Os::Windows);
        let ds = run_volunteer(&w, &v, &GammaConfig::paper_default(1));
        let reached = ds
            .traceroutes
            .iter()
            .find(|t| t.normalized.reached)
            .unwrap();
        assert!(reached.raw_text.contains("Tracing route to"));
        assert!(reached.raw_text.contains("Trace complete."));
    }

    #[test]
    fn linux_volunteer_captures_traceroute_text() {
        let w = world();
        let v = Volunteer::for_country(&w, CountryCode::new("GB"), 1).unwrap();
        assert_eq!(v.os, Os::Linux);
        let ds = run_volunteer(&w, &v, &GammaConfig::paper_default(1));
        let any = ds.traceroutes.first().unwrap();
        assert!(any.raw_text.starts_with("traceroute to"));
    }

    #[test]
    fn resume_skips_already_processed_sites() {
        let w = world();
        let v = Volunteer::for_country(&w, CountryCode::new("LB"), 22).unwrap();
        let cfg = GammaConfig::paper_default(9);
        let full = run_volunteer(&w, &v, &cfg);
        let resumed = run_volunteer_from(&w, &v, &cfg, 10);
        assert_eq!(resumed.loads.len() + 10, full.loads.len());
    }

    #[test]
    fn c1_only_configuration_skips_dns_and_probes() {
        let w = world();
        let v = Volunteer::for_country(&w, CountryCode::new("TH"), 0).unwrap();
        let cfg = GammaConfig {
            gather_network_info: false,
            launch_probes: false,
            ..GammaConfig::paper_default(1)
        };
        let ds = run_volunteer(&w, &v, &cfg);
        assert!(!ds.loads.is_empty());
        assert!(ds.dns.is_empty());
        assert!(ds.traceroutes.is_empty());
    }

    #[test]
    fn runs_are_deterministic() {
        let w = world();
        let v = Volunteer::for_country(&w, CountryCode::new("PK"), 17).unwrap();
        let cfg = GammaConfig::paper_default(5);
        let a = run_volunteer(&w, &v, &cfg);
        let b = run_volunteer(&w, &v, &cfg);
        assert_eq!(a, b);
    }
}
