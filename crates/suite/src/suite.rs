//! The orchestrated Gamma run: C1 → C2 → C3 per target website.
//!
//! Mirrors the per-website flow of Figure 1, Box 1: load the page in an
//! isolated browser, record the network-request domains, resolve forward
//! and reverse DNS for each, annotate with AS data, and traceroute every
//! resolved address (once per unique address per volunteer, like the real
//! tool's per-run cache).
//!
//! Every layer consults the configuration's unified [`FaultPlan`]
//! (`gamma-chaos`): pages hang and are killed at the hard timeout, DNS
//! queries time out or come back SERVFAIL, traceroutes drop. The run never
//! panics on degraded data — partial and malformed records land in a typed
//! [`Quarantine`] ledger next to the dataset, and downstream analysis
//! accounts for them.

use crate::config::GammaConfig;
use crate::normalize::{parse_linux, parse_windows, render_linux, render_windows};
use crate::output::{DnsObservation, TracerouteRecord, VolunteerDataset, VolunteerMeta};
use crate::quarantine::{Quarantine, QuarantineReason};
use crate::targets::build_targets;
use crate::volunteer::{Os, Volunteer};
use gamma_browser::{load_page_with, LoadStatus};
use gamma_chaos::{FaultKind, FaultOracle, FaultScope};
use gamma_dns::{DnsCache, DnsFailure};
use gamma_geo::CountryCode;
use gamma_model::{HostId, Interner, RdnsId, SiteId};
use gamma_netsim::{run_traceroute_chaos, LatencyModel, TracerouteOutcome, TracerouteResult};
use gamma_websim::spec::TracerouteMode;
use gamma_websim::World;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use std::net::Ipv4Addr;
use std::sync::OnceLock;

/// Cached handles for the suite's throughput counters.
struct SuiteCounters {
    pages_loaded: gamma_obs::Counter,
    requests_captured: gamma_obs::Counter,
    quarantined: gamma_obs::Counter,
}

fn suite_counters() -> &'static SuiteCounters {
    static COUNTERS: OnceLock<SuiteCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let reg = gamma_obs::global();
        SuiteCounters {
            pages_loaded: reg.counter("suite.pages.loaded"),
            requests_captured: reg.counter("suite.requests.captured"),
            quarantined: reg.counter("suite.quarantined"),
        }
    })
}

/// Why a volunteer run could not start at all. Degraded *data* never
/// produces an error — it is quarantined — so these are strictly
/// configuration/spec problems, and campaign retries treat them as fatal
/// rather than transient.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SuiteError {
    /// The configuration failed validation.
    InvalidConfig(String),
    /// The volunteer's country is not in the world spec.
    UnknownCountry(CountryCode),
    /// The world has no target list for the country.
    NoTargets(CountryCode),
}

impl std::fmt::Display for SuiteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuiteError::InvalidConfig(e) => write!(f, "invalid Gamma configuration: {e}"),
            SuiteError::UnknownCountry(c) => write!(f, "country {c} is not in the world spec"),
            SuiteError::NoTargets(c) => write!(f, "no target list for country {c}"),
        }
    }
}

impl std::error::Error for SuiteError {}

/// Runs Gamma for one volunteer over their country's target list.
pub fn run_volunteer(
    world: &World,
    volunteer: &Volunteer,
    config: &GammaConfig,
) -> VolunteerDataset {
    run_volunteer_from(world, volunteer, config, 0)
}

/// Resumable variant: skips the first `skip_sites` targets (the checkpoint
/// mechanism of §3.3: "Gamma is designed to resume from where it was last
/// stopped"). Thin shim over [`run_volunteer_checked`] that discards the
/// quarantine ledger and panics on configuration errors, preserving the
/// pre-chaos API.
pub fn run_volunteer_from(
    world: &World,
    volunteer: &Volunteer,
    config: &GammaConfig,
    skip_sites: usize,
) -> VolunteerDataset {
    run_volunteer_checked(world, volunteer, config, skip_sites)
        .expect("invalid Gamma configuration")
        .0
}

/// The degradation-aware entry point: runs Gamma for one volunteer and
/// returns the dataset *plus* the quarantine ledger of everything the run
/// lost to injected faults or malformed records. Never panics on bad data.
pub fn run_volunteer_checked(
    world: &World,
    volunteer: &Volunteer,
    config: &GammaConfig,
    skip_sites: usize,
) -> Result<(VolunteerDataset, Quarantine), SuiteError> {
    config.validate().map_err(SuiteError::InvalidConfig)?;
    let country = volunteer.country;
    let _span = gamma_obs::span!("suite.volunteer", country = country.as_str());
    let cs = world
        .spec
        .country(country)
        .ok_or(SuiteError::UnknownCountry(country))?;
    let mut rng = ChaCha8Rng::seed_from_u64(
        config.seed ^ u64::from(country.0[0]) << 16 ^ u64::from(country.0[1]),
    );

    let targets = build_targets(world, country, &mut rng).ok_or(SuiteError::NoTargets(country))?;
    let mut quarantine = Quarantine::new();
    // Opted-out site names are interned up front, so they take the first
    // ids; everything else is interned in observation order. Both orders
    // are pure functions of the seed, keeping ids deterministic.
    let mut symbols = Interner::new();
    let opted_out = targets
        .opted_out
        .iter()
        .map(|s| SiteId::intern(&mut symbols, world.site(*s).domain.as_str()))
        .collect();
    let mut dataset = VolunteerDataset {
        symbols,
        volunteer: VolunteerMeta::from(volunteer),
        loads: Vec::new(),
        dns: Vec::new(),
        traceroutes: Vec::new(),
        opted_out,
        probes_enabled: config.launch_probes && volunteer.traceroute_mode != TracerouteMode::OptOut,
    };

    let model = LatencyModel::default();
    let plan = &config.plan;
    let mut probe = plan.profile_for(Some(country)).probe;
    if volunteer.traceroute_mode == TracerouteMode::Firewalled {
        probe.firewall_blocks_traceroute = true;
    }
    // Keyed by interned host id: lookups hash a u32, not domain text.
    let mut dns_cache: DnsCache<HostId> = DnsCache::new();
    let mut probed: HashSet<Ipv4Addr> = HashSet::new();
    let mut rdns_lost: HashSet<Ipv4Addr> = HashSet::new();

    for sid in targets.all().skip(skip_sites) {
        let site = world.site(sid);
        // --- C1: browser-level interaction ---
        let load = load_page_with(
            site,
            &config.browser,
            cs.load_success_rate,
            plan,
            Some(country),
            &mut rng,
        );
        // Ledger entries re-query the pure oracle so injected losses are
        // distinguishable from natural ones (a flaky-connection timeout is
        // data; a killed hang is a loss the quality report must own).
        let site_scope = FaultScope::new(country, site.domain.as_str());
        if plan.fires(FaultKind::PageHang, site_scope) {
            quarantine.push(QuarantineReason::PageKilled {
                site: site.domain.clone(),
            });
        } else if load.status == LoadStatus::Loaded
            && plan.fires(FaultKind::HarTruncated, site_scope)
        {
            quarantine.push(QuarantineReason::CaptureTruncated {
                site: site.domain.clone(),
            });
        }
        if load.status == LoadStatus::Loaded {
            suite_counters().pages_loaded.inc();
        }
        suite_counters()
            .requests_captured
            .add(load.requests.len() as u64);
        let requests = load.requests.clone();
        dataset.loads.push(load);
        if !config.gather_network_info {
            continue;
        }
        // --- C2: network information gathering ---
        let site_id = SiteId::intern(&mut dataset.symbols, site.domain.as_str());
        for request in requests {
            let host_id = HostId::intern(&mut dataset.symbols, request.as_str());
            let scope = FaultScope::new(country, request.as_str());
            let mut computed = false;
            let outcome = dns_cache.resolve_outcome(&host_id, || {
                computed = true;
                if plan.fires(FaultKind::DnsTimeout, scope) {
                    return Err(DnsFailure::Timeout);
                }
                if plan.fires(FaultKind::DnsServfail, scope) {
                    return Err(DnsFailure::Servfail);
                }
                if plan.fires(FaultKind::DnsNxdomain, scope) {
                    return Err(DnsFailure::Nxdomain);
                }
                world
                    .resolve_fuzzy(&request, volunteer.city)
                    .ok_or(DnsFailure::Nxdomain)
            });
            let injected = plan.fires(FaultKind::DnsTimeout, scope)
                || plan.fires(FaultKind::DnsServfail, scope)
                || plan.fires(FaultKind::DnsNxdomain, scope);
            let ip = outcome.as_ref().ok().map(|r| r.addr);
            // A natural missing zone keeps the legacy NXDOMAIN-like shape
            // (ip: None, failure: None); only injected failures are typed
            // and quarantined, once per unique domain (cache hits on the
            // negative entry set `computed` to false).
            let failure = outcome.err().filter(|_| injected);
            if computed && injected {
                if let Some(f) = failure {
                    quarantine.push(QuarantineReason::DnsFailed {
                        request: request.clone(),
                        failure: f,
                    });
                }
            }
            let rdns = ip
                .and_then(|a| {
                    let answer = world.rdns_of(a);
                    let subject = a.to_string();
                    let rscope = FaultScope::new(country, &subject);
                    if answer.is_some() && plan.fires(FaultKind::RdnsTruncated, rscope) {
                        if rdns_lost.insert(a) {
                            quarantine.push(QuarantineReason::RdnsTruncated { ip: a });
                        }
                        return None;
                    }
                    answer
                })
                .map(|name| RdnsId::intern(&mut dataset.symbols, name));
            dataset.dns.push(DnsObservation {
                site: site_id,
                request: host_id,
                rdns,
                asn: ip.and_then(|a| world.asn_of(a)),
                ip,
                failure,
            });
            // --- C3: measurement probes (once per unique address) ---
            let (Some(addr), true) = (ip, dataset.probes_enabled) else {
                continue;
            };
            if !probed.insert(addr) {
                continue;
            }
            let Some(true_city) = world.true_city(addr) else {
                continue;
            };
            let src = gamma_geo::city(volunteer.city);
            let dst = gamma_geo::city(true_city);
            let route = gamma_netsim::synthesize_route(src, dst);
            let result = run_traceroute_chaos(
                &route,
                addr,
                &model,
                volunteer.access,
                &probe,
                &|c| world.router_ip_of(c),
                plan,
                Some(country),
                &mut rng,
            );
            let subject = addr.to_string();
            let tscope = FaultScope::new(country, &subject);
            if result.outcome == TracerouteOutcome::Failed
                && plan.fires(FaultKind::ProbeDropped, tscope)
            {
                quarantine.push(QuarantineReason::TracerouteFailed { target_ip: addr });
            }
            match capture_checked(volunteer.os, &result, config.retain_raw_traceroute) {
                Ok(record) => dataset.traceroutes.push(record),
                Err(error) => quarantine.push(QuarantineReason::MalformedTraceroute {
                    target_ip: addr,
                    error,
                }),
            }
        }
    }
    suite_counters().quarantined.add(quarantine.len() as u64);
    Ok((dataset, quarantine))
}

/// Renders the OS-appropriate command output and parses it back — the
/// normalization layer is on the critical path, as in the real tool. A
/// record that fails to re-parse is a quarantine candidate, not a panic.
/// With `retain_raw` off, the raw command text is dropped after parsing
/// (it is fully recoverable from `normalized`), shrinking checkpoints.
fn capture_checked(
    os: Os,
    result: &TracerouteResult,
    retain_raw: bool,
) -> Result<TracerouteRecord, String> {
    let (raw_text, normalized) = match os {
        Os::Windows => {
            let raw = render_windows(result);
            let n = parse_windows(&raw).map_err(|e| e.to_string())?;
            (raw, n)
        }
        // macOS traceroute output is Linux-shaped for our purposes.
        Os::Linux | Os::MacOs => {
            let raw = render_linux(result);
            let n = parse_linux(&raw).map_err(|e| e.to_string())?;
            (raw, n)
        }
    };
    Ok(TracerouteRecord {
        target_ip: result.dst,
        raw_text: if retain_raw { raw_text } else { String::new() },
        normalized,
    })
}

/// Runs the whole study: every volunteer in the roster.
pub fn run_all_volunteers(world: &World, config: &GammaConfig) -> Vec<VolunteerDataset> {
    Volunteer::roster(world)
        .iter()
        .map(|v| run_volunteer(world, v, config))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_chaos::{FaultPlan, FaultProfile};
    use gamma_geo::CountryCode;
    use gamma_websim::{worldgen, WorldSpec};

    fn world() -> World {
        worldgen::generate(&WorldSpec::paper_default(11))
    }

    fn run(world: &World, cc: &str) -> VolunteerDataset {
        let v = Volunteer::for_country(world, CountryCode::new(cc), 0).unwrap();
        run_volunteer(world, &v, &GammaConfig::paper_default(1))
    }

    #[test]
    fn thailand_run_produces_all_record_kinds() {
        let w = world();
        let ds = run(&w, "TH");
        assert!(ds.loads.len() > 80, "{} loads", ds.loads.len());
        assert!(ds.dns.len() > 300, "{} dns observations", ds.dns.len());
        assert!(!ds.traceroutes.is_empty());
        assert!(ds.probes_enabled);
        // Per-run DNS consistency: a domain resolves to one address.
        let mut by_domain = std::collections::HashMap::new();
        for d in &ds.dns {
            if let Some(ip) = d.ip {
                let prev = by_domain.insert(d.request, ip);
                if let Some(p) = prev {
                    assert_eq!(p, ip, "{} resolved inconsistently", ds.host(d.request));
                }
            }
        }
        // Every id in the records resolves against the dataset's table.
        for d in &ds.dns {
            assert!(!ds.host(d.request).is_empty());
            assert!(!ds.site_domain(d.site).is_empty());
        }
    }

    #[test]
    fn raw_text_retention_can_be_disabled() {
        let w = world();
        let v = Volunteer::for_country(&w, CountryCode::new("TH"), 0).unwrap();
        let with_raw = run_volunteer(&w, &v, &GammaConfig::paper_default(1));
        let cfg = GammaConfig {
            retain_raw_traceroute: false,
            ..GammaConfig::paper_default(1)
        };
        let stripped = run_volunteer(&w, &v, &cfg);
        assert!(!stripped.traceroutes.is_empty());
        assert!(stripped.traceroutes.iter().all(|t| t.raw_text.is_empty()));
        // Only the raw text differs: probes, parsing and ids are untouched.
        assert_eq!(with_raw.traceroutes.len(), stripped.traceroutes.len());
        for (a, b) in with_raw.traceroutes.iter().zip(&stripped.traceroutes) {
            assert_eq!(a.target_ip, b.target_ip);
            assert_eq!(a.normalized, b.normalized);
            assert!(!a.raw_text.is_empty());
        }
        assert_eq!(with_raw.dns, stripped.dns);
        assert_eq!(with_raw.symbols, stripped.symbols);
    }

    #[test]
    fn traceroutes_are_deduplicated_per_address() {
        let w = world();
        let ds = run(&w, "TH");
        let mut seen = std::collections::HashSet::new();
        for t in &ds.traceroutes {
            assert!(seen.insert(t.target_ip), "{} probed twice", t.target_ip);
        }
    }

    #[test]
    fn egypt_volunteer_launches_no_probes() {
        let w = world();
        // Egypt is spec index 2 -> same roster position as the study's.
        let v = Volunteer::for_country(&w, CountryCode::new("EG"), 2).unwrap();
        let ds = run_volunteer(&w, &v, &GammaConfig::paper_default(1));
        assert!(!ds.probes_enabled);
        assert!(ds.traceroutes.is_empty());
        assert!(!ds.dns.is_empty(), "C1/C2 still run");
    }

    #[test]
    fn firewalled_volunteer_records_failed_traceroutes() {
        let w = world();
        let v = Volunteer::for_country(&w, CountryCode::new("AU"), 11).unwrap();
        let ds = run_volunteer(&w, &v, &GammaConfig::paper_default(1));
        assert!(ds.probes_enabled);
        assert!(!ds.traceroutes.is_empty());
        for t in &ds.traceroutes {
            assert!(
                !t.normalized.reached,
                "firewalled probe reached {}",
                t.target_ip
            );
            assert!(t.normalized.hops.is_empty());
        }
    }

    #[test]
    fn saudi_coverage_is_much_lower_than_uk() {
        let w = world();
        let sa = run(&w, "SA").load_coverage();
        let gb = run(&w, "GB").load_coverage();
        assert!(sa < 0.76, "SA coverage {sa}");
        assert!(gb > 0.86, "GB coverage {gb}");
        assert!(sa + 0.15 < gb, "SA {sa} not clearly below GB {gb}");
    }

    #[test]
    fn windows_volunteer_captures_tracert_text() {
        let w = world();
        let v = Volunteer::for_country(&w, CountryCode::new("TH"), 0).unwrap();
        assert_eq!(v.os, Os::Windows);
        let ds = run_volunteer(&w, &v, &GammaConfig::paper_default(1));
        let reached = ds
            .traceroutes
            .iter()
            .find(|t| t.normalized.reached)
            .unwrap();
        assert!(reached.raw_text.contains("Tracing route to"));
        assert!(reached.raw_text.contains("Trace complete."));
    }

    #[test]
    fn linux_volunteer_captures_traceroute_text() {
        let w = world();
        let v = Volunteer::for_country(&w, CountryCode::new("GB"), 1).unwrap();
        assert_eq!(v.os, Os::Linux);
        let ds = run_volunteer(&w, &v, &GammaConfig::paper_default(1));
        let any = ds.traceroutes.first().unwrap();
        assert!(any.raw_text.starts_with("traceroute to"));
    }

    #[test]
    fn resume_skips_already_processed_sites() {
        let w = world();
        let v = Volunteer::for_country(&w, CountryCode::new("LB"), 22).unwrap();
        let cfg = GammaConfig::paper_default(9);
        let full = run_volunteer(&w, &v, &cfg);
        let resumed = run_volunteer_from(&w, &v, &cfg, 10);
        assert_eq!(resumed.loads.len() + 10, full.loads.len());
    }

    #[test]
    fn c1_only_configuration_skips_dns_and_probes() {
        let w = world();
        let v = Volunteer::for_country(&w, CountryCode::new("TH"), 0).unwrap();
        let cfg = GammaConfig {
            gather_network_info: false,
            launch_probes: false,
            ..GammaConfig::paper_default(1)
        };
        let ds = run_volunteer(&w, &v, &cfg);
        assert!(!ds.loads.is_empty());
        assert!(ds.dns.is_empty());
        assert!(ds.traceroutes.is_empty());
    }

    #[test]
    fn runs_are_deterministic() {
        let w = world();
        let v = Volunteer::for_country(&w, CountryCode::new("PK"), 17).unwrap();
        let cfg = GammaConfig::paper_default(5);
        let a = run_volunteer(&w, &v, &cfg);
        let b = run_volunteer(&w, &v, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn quiet_plan_quarantines_nothing_and_types_no_failures() {
        let w = world();
        let v = Volunteer::for_country(&w, CountryCode::new("TH"), 0).unwrap();
        let cfg = GammaConfig::paper_default(1);
        let (ds, q) = run_volunteer_checked(&w, &v, &cfg, 0).unwrap();
        assert!(q.is_empty(), "paper plan quarantined {} records", q.len());
        assert!(ds.dns.iter().all(|d| d.failure.is_none()));
        assert_eq!(ds, run_volunteer(&w, &v, &cfg));
    }

    #[test]
    fn dns_blackout_types_failures_and_quarantines_them() {
        let w = world();
        let th = CountryCode::new("TH");
        let v = Volunteer::for_country(&w, th, 0).unwrap();
        let mut dns_dead = FaultProfile::none();
        dns_dead.dns.timeout_rate = 1.0;
        let cfg = GammaConfig {
            plan: FaultPlan::none(1).with_override(th, dns_dead),
            ..GammaConfig::paper_default(1)
        };
        let (ds, q) = run_volunteer_checked(&w, &v, &cfg, 0).unwrap();
        assert!(!ds.dns.is_empty());
        assert!(ds
            .dns
            .iter()
            .all(|d| d.ip.is_none() && d.failure == Some(DnsFailure::Timeout)));
        assert!(
            ds.traceroutes.is_empty(),
            "nothing resolved, nothing probed"
        );
        // Once per unique domain, plus re-computations after the negative
        // TTL expires.
        assert!(q.dns_failures() >= ds.unique_domains().len());
    }

    #[test]
    fn full_blackout_completes_without_panic_and_owns_every_loss() {
        let w = world();
        let th = CountryCode::new("TH");
        let v = Volunteer::for_country(&w, th, 0).unwrap();
        let cfg = GammaConfig {
            plan: FaultPlan::none(1).with_override(th, FaultProfile::blackout()),
            ..GammaConfig::paper_default(1)
        };
        let (ds, q) = run_volunteer_checked(&w, &v, &cfg, 0).unwrap();
        // Every page hangs and is killed at the hard timeout: no requests,
        // so no DNS and no probes — and the ledger owns every loss.
        assert!(!ds.loads.is_empty());
        assert!(ds.loads.iter().all(|l| !l.succeeded()));
        assert!(ds.dns.is_empty());
        assert!(ds.traceroutes.is_empty());
        assert_eq!(q.pages_killed(), ds.loads.len());
    }

    #[test]
    fn blackout_override_leaves_other_countries_byte_identical() {
        let w = world();
        let th = CountryCode::new("TH");
        let gb = CountryCode::new("GB");
        let v = Volunteer::for_country(&w, gb, 1).unwrap();
        let quiet = GammaConfig::paper_default(3);
        let scoped = GammaConfig {
            plan: FaultPlan::paper_default(3).with_override(th, FaultProfile::blackout()),
            ..GammaConfig::paper_default(3)
        };
        let (a, qa) = run_volunteer_checked(&w, &v, &quiet, 0).unwrap();
        let (b, qb) = run_volunteer_checked(&w, &v, &scoped, 0).unwrap();
        assert_eq!(a, b);
        assert_eq!(qa, qb);
        assert!(qb.is_empty());
    }

    #[test]
    fn rdns_truncation_is_quarantined_once_per_address() {
        let w = world();
        let th = CountryCode::new("TH");
        let v = Volunteer::for_country(&w, th, 0).unwrap();
        let mut torn = FaultProfile::none();
        torn.dns.rdns_truncate_rate = 1.0;
        let cfg = GammaConfig {
            plan: FaultPlan::none(1).with_override(th, torn),
            ..GammaConfig::paper_default(1)
        };
        let (ds, q) = run_volunteer_checked(&w, &v, &cfg, 0).unwrap();
        assert!(ds.dns.iter().all(|d| d.rdns.is_none()));
        assert!(q.rdns_truncated() > 0);
        assert!(q.rdns_truncated() <= ds.unique_ips().len());
    }
}
