//! Probe-backend selection: the Scapy/OS-command portability layer.
//!
//! §3 of the paper: Gamma prefers library-based probing (Scapy) but "the
//! majority of features of Scapy don't work on Windows OS. To overcome
//! this, we added functionality that uses OS-specific commands and tools
//! to perform various measurements" — `traceroute` on Linux, `tracert` on
//! Windows — and then normalizes the differently-shaped outputs.
//!
//! This module reproduces the *selection logic and capability matrix*: for
//! a given OS and probe type, which backend runs and what command line it
//! would issue.

use crate::volunteer::Os;
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// Active probe types C3 supports (§3 lists traceroute, ping, TLS checks).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProbeKind {
    Traceroute,
    Ping,
    TlsScan,
}

/// Which implementation executes a probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// Library-based probing (raw sockets).
    Scapy,
    /// Shelling out to the platform tool.
    OsCommand,
}

/// Whether Scapy-style raw-socket probing works for (os, kind).
/// Raw-socket features are broadly unavailable on Windows (§3).
pub fn scapy_supported(os: Os, kind: ProbeKind) -> bool {
    match (os, kind) {
        (Os::Windows, ProbeKind::Traceroute | ProbeKind::Ping) => false,
        // TLS scanning is plain TCP and works everywhere, but the study's
        // tooling shells out to nmap/testssl on every platform.
        (_, ProbeKind::TlsScan) => false,
        _ => true,
    }
}

/// Selects the backend for a probe on a platform: Scapy when it works,
/// otherwise the OS command.
pub fn select_backend(os: Os, kind: ProbeKind) -> Backend {
    if scapy_supported(os, kind) {
        Backend::Scapy
    } else {
        Backend::OsCommand
    }
}

/// The command line the OS-command backend would run. `None` when the
/// selected backend is Scapy (no command is shelled out).
pub fn command_line(os: Os, kind: ProbeKind, target: Ipv4Addr) -> Option<String> {
    if select_backend(os, kind) != Backend::OsCommand {
        return None;
    }
    Some(match (os, kind) {
        (Os::Windows, ProbeKind::Traceroute) => format!("tracert -d -w 1000 {target}"),
        (Os::Windows, ProbeKind::Ping) => format!("ping -n 4 {target}"),
        (_, ProbeKind::Traceroute) => format!("traceroute -n -q 3 {target}"),
        (_, ProbeKind::Ping) => format!("ping -c 4 {target}"),
        (_, ProbeKind::TlsScan) => format!("nmap --script ssl-enum-ciphers -p 443 {target}"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const TARGET: Ipv4Addr = Ipv4Addr::new(20, 1, 2, 3);

    #[test]
    fn linux_uses_scapy_for_traceroute_and_ping() {
        assert_eq!(
            select_backend(Os::Linux, ProbeKind::Traceroute),
            Backend::Scapy
        );
        assert_eq!(select_backend(Os::Linux, ProbeKind::Ping), Backend::Scapy);
        assert_eq!(command_line(Os::Linux, ProbeKind::Traceroute, TARGET), None);
    }

    #[test]
    fn windows_falls_back_to_os_commands() {
        assert_eq!(
            select_backend(Os::Windows, ProbeKind::Traceroute),
            Backend::OsCommand
        );
        let cmd = command_line(Os::Windows, ProbeKind::Traceroute, TARGET).unwrap();
        assert!(cmd.starts_with("tracert"), "{cmd}");
        assert!(cmd.contains("20.1.2.3"));
        let ping = command_line(Os::Windows, ProbeKind::Ping, TARGET).unwrap();
        assert!(ping.contains("-n 4"), "Windows ping counts with -n: {ping}");
    }

    #[test]
    fn macos_behaves_like_linux() {
        assert_eq!(
            select_backend(Os::MacOs, ProbeKind::Traceroute),
            Backend::Scapy
        );
    }

    #[test]
    fn tls_scanning_always_shells_out_to_nmap() {
        for os in [Os::Linux, Os::Windows, Os::MacOs] {
            assert_eq!(
                select_backend(os, ProbeKind::TlsScan),
                Backend::OsCommand,
                "{os:?}"
            );
        }
        let cmd = command_line(Os::Linux, ProbeKind::TlsScan, TARGET).unwrap();
        assert!(cmd.contains("nmap"), "{cmd}");
        assert!(cmd.contains("443"));
    }
}
