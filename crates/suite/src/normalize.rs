//! Traceroute output rendering and normalization.
//!
//! The paper's portability layer: on Linux Gamma shells out to
//! `traceroute`, on Windows to `tracert`, and "these commands produce
//! output in different structures. To address this, we developed additional
//! functionality that normalizes the output into a consistent format ...
//! an identical structure JSON file with hop and RTT information" (§3).
//!
//! This module does the full round trip for real: it renders a simulated
//! [`TracerouteResult`] into faithful Linux/Windows command output, then
//! *parses that text back* into the unified [`NormalizedTraceroute`] — so
//! the parsers are genuinely load-bearing, exactly like the original tool.

use gamma_netsim::{TracerouteOutcome, TracerouteResult};
use serde::{Deserialize, Serialize};
use std::net::Ipv4Addr;

/// One normalized hop: the unified JSON schema.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NormHop {
    pub ttl: u8,
    pub ip: Option<Ipv4Addr>,
    pub rtt_ms: Option<f64>,
}

/// The OS-independent traceroute record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NormalizedTraceroute {
    pub dst: Ipv4Addr,
    pub reached: bool,
    pub hops: Vec<NormHop>,
}

impl NormalizedTraceroute {
    /// RTT to the destination, when reached and answered.
    pub fn destination_rtt_ms(&self) -> Option<f64> {
        if !self.reached {
            return None;
        }
        self.hops.last().and_then(|h| h.rtt_ms)
    }

    /// First answering hop's RTT (the paper's local-delay reference).
    pub fn first_hop_rtt_ms(&self) -> Option<f64> {
        self.hops.iter().find_map(|h| h.rtt_ms)
    }
}

/// Renders Linux `traceroute` output.
pub fn render_linux(t: &TracerouteResult) -> String {
    let mut s = format!(
        "traceroute to {dst} ({dst}), 30 hops max, 60 byte packets\n",
        dst = t.dst
    );
    for h in &t.hops {
        match (h.addr, h.rtt_ms) {
            (Some(ip), Some(rtt)) => {
                s.push_str(&format!(
                    "{:2}  {ip} ({ip})  {:.3} ms  {:.3} ms  {:.3} ms\n",
                    h.ttl,
                    rtt,
                    rtt * 1.01,
                    rtt * 0.995
                ));
            }
            _ => s.push_str(&format!("{:2}  * * *\n", h.ttl)),
        }
    }
    s
}

/// Renders Windows `tracert` output (integer milliseconds, `<1 ms` for
/// sub-millisecond hops, trailing "Trace complete." on success).
pub fn render_windows(t: &TracerouteResult) -> String {
    let mut s = format!(
        "\nTracing route to {dst} over a maximum of 30 hops\n\n",
        dst = t.dst
    );
    for h in &t.hops {
        match (h.addr, h.rtt_ms) {
            (Some(ip), Some(rtt)) => {
                let cell = |r: f64| -> String {
                    if r < 1.0 {
                        "  <1 ms".to_string()
                    } else {
                        format!("{:4} ms", r.round() as u64)
                    }
                };
                s.push_str(&format!(
                    "{:3}  {}  {}  {}  {ip}\n",
                    h.ttl,
                    cell(rtt),
                    cell(rtt * 1.01),
                    cell(rtt * 0.995)
                ));
            }
            _ => s.push_str(&format!(
                "{:3}     *        *        *     Request timed out.\n",
                h.ttl
            )),
        }
    }
    if t.outcome == TracerouteOutcome::Completed {
        s.push_str("\nTrace complete.\n");
    }
    s
}

/// Parse error for traceroute text.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError(pub String);

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "traceroute parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

/// Parses Linux `traceroute` output into the unified schema.
pub fn parse_linux(text: &str) -> Result<NormalizedTraceroute, ParseError> {
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| ParseError("empty output".into()))?;
    let dst = header
        .split_whitespace()
        .nth(2)
        .and_then(|w| w.parse::<Ipv4Addr>().ok())
        .ok_or_else(|| ParseError(format!("no destination in header: {header}")))?;
    let mut hops = Vec::new();
    for line in lines {
        let line = line.trim_end();
        if line.trim().is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let ttl: u8 = it
            .next()
            .and_then(|w| w.parse().ok())
            .ok_or_else(|| ParseError(format!("bad hop line: {line}")))?;
        let second = it
            .next()
            .ok_or_else(|| ParseError(format!("truncated hop: {line}")))?;
        if second == "*" {
            hops.push(NormHop {
                ttl,
                ip: None,
                rtt_ms: None,
            });
            continue;
        }
        let ip: Ipv4Addr = second
            .parse()
            .map_err(|_| ParseError(format!("bad address {second}")))?;
        // skip "(ip)"
        let _paren = it.next();
        let rtt: f64 = it
            .next()
            .and_then(|w| w.parse().ok())
            .ok_or_else(|| ParseError(format!("no rtt on: {line}")))?;
        hops.push(NormHop {
            ttl,
            ip: Some(ip),
            rtt_ms: Some(rtt),
        });
    }
    let reached = hops.last().map_or(false, |h| h.ip == Some(dst));
    Ok(NormalizedTraceroute { dst, reached, hops })
}

/// Parses Windows `tracert` output into the unified schema.
pub fn parse_windows(text: &str) -> Result<NormalizedTraceroute, ParseError> {
    let mut dst: Option<Ipv4Addr> = None;
    let mut hops = Vec::new();
    for line in text.lines() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed == "Trace complete." {
            continue;
        }
        if trimmed.starts_with("Tracing route to") {
            dst = trimmed
                .split_whitespace()
                .nth(3)
                .and_then(|w| w.parse().ok());
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let ttl: u8 = match it.next().and_then(|w| w.parse().ok()) {
            Some(t) => t,
            None => continue, // tolerate banner noise
        };
        if trimmed.contains("Request timed out") {
            hops.push(NormHop {
                ttl,
                ip: None,
                rtt_ms: None,
            });
            continue;
        }
        // Three latency cells then the address; cells are "<1 ms" or "N ms".
        let mut rtts = Vec::new();
        let mut ip = None;
        let tokens: Vec<&str> = it.collect();
        let mut i = 0;
        while i < tokens.len() {
            match tokens[i] {
                "<1" => {
                    rtts.push(0.5);
                    i += 2; // skip "ms"
                }
                w if w.parse::<f64>().is_ok() && tokens.get(i + 1) == Some(&"ms") => {
                    rtts.push(w.parse().expect("checked"));
                    i += 2;
                }
                w => {
                    ip = w.parse::<Ipv4Addr>().ok();
                    i += 1;
                }
            }
        }
        let ip = ip.ok_or_else(|| ParseError(format!("no address on hop line: {trimmed}")))?;
        hops.push(NormHop {
            ttl,
            ip: Some(ip),
            rtt_ms: rtts.first().copied(),
        });
    }
    let dst = dst.ok_or_else(|| ParseError("no Tracing route header".into()))?;
    let reached =
        text.contains("Trace complete.") && hops.last().map_or(false, |h| h.ip == Some(dst));
    Ok(NormalizedTraceroute { dst, reached, hops })
}

/// Converts a simulated result directly (the shape both parsers target).
pub fn normalize_direct(t: &TracerouteResult) -> NormalizedTraceroute {
    NormalizedTraceroute {
        dst: t.dst,
        reached: t.outcome == TracerouteOutcome::Completed,
        hops: t
            .hops
            .iter()
            .map(|h| NormHop {
                ttl: h.ttl,
                ip: h.addr,
                rtt_ms: h.rtt_ms,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gamma_netsim::Hop;
    use proptest::prelude::*;

    fn sample_result(unreached: bool) -> TracerouteResult {
        let mut hops = vec![
            Hop {
                ttl: 1,
                addr: Some(Ipv4Addr::new(192, 168, 1, 1)),
                rtt_ms: Some(2.41),
            },
            Hop {
                ttl: 2,
                addr: None,
                rtt_ms: None,
            },
            Hop {
                ttl: 3,
                addr: Some(Ipv4Addr::new(20, 0, 7, 1)),
                rtt_ms: Some(18.73),
            },
        ];
        if unreached {
            hops.push(Hop {
                ttl: 4,
                addr: None,
                rtt_ms: None,
            });
        } else {
            hops.push(Hop {
                ttl: 4,
                addr: Some(Ipv4Addr::new(20, 9, 1, 5)),
                rtt_ms: Some(42.2),
            });
        }
        TracerouteResult {
            dst: Ipv4Addr::new(20, 9, 1, 5),
            hops,
            outcome: if unreached {
                TracerouteOutcome::DestinationUnreached
            } else {
                TracerouteOutcome::Completed
            },
        }
    }

    #[test]
    fn linux_roundtrip_preserves_structure() {
        let t = sample_result(false);
        let text = render_linux(&t);
        let n = parse_linux(&text).unwrap();
        assert_eq!(n, normalize_direct(&t) /* exact f64 via {:.3} */);
    }

    #[test]
    fn windows_roundtrip_preserves_structure_with_ms_rounding() {
        let t = sample_result(false);
        let text = render_windows(&t);
        let n = parse_windows(&text).unwrap();
        let direct = normalize_direct(&t);
        assert_eq!(n.dst, direct.dst);
        assert_eq!(n.reached, direct.reached);
        assert_eq!(n.hops.len(), direct.hops.len());
        for (a, b) in n.hops.iter().zip(&direct.hops) {
            assert_eq!(a.ttl, b.ttl);
            assert_eq!(a.ip, b.ip);
            match (a.rtt_ms, b.rtt_ms) {
                (Some(x), Some(y)) => assert!((x - y).abs() <= 1.0, "{x} vs {y}"),
                (None, None) => {}
                other => panic!("mismatched rtt presence: {other:?}"),
            }
        }
    }

    #[test]
    fn both_parsers_agree_on_the_unified_json() {
        // The paper's normalization goal: one schema regardless of OS.
        let t = sample_result(false);
        let a = parse_linux(&render_linux(&t)).unwrap();
        let b = parse_windows(&render_windows(&t)).unwrap();
        let ja = serde_json::to_value(&a).unwrap();
        let jb = serde_json::to_value(&b).unwrap();
        assert_eq!(
            ja.as_object().unwrap().keys().collect::<Vec<_>>(),
            jb.as_object().unwrap().keys().collect::<Vec<_>>()
        );
        assert_eq!(a.hops.len(), b.hops.len());
        assert_eq!(a.reached, b.reached);
    }

    #[test]
    fn unreached_destination_is_flagged() {
        let t = sample_result(true);
        assert!(!parse_linux(&render_linux(&t)).unwrap().reached);
        assert!(!parse_windows(&render_windows(&t)).unwrap().reached);
        assert!(parse_linux(&render_linux(&t))
            .unwrap()
            .destination_rtt_ms()
            .is_none());
    }

    #[test]
    fn sub_millisecond_windows_cells_parse() {
        let t = TracerouteResult {
            dst: Ipv4Addr::new(20, 0, 0, 9),
            hops: vec![Hop {
                ttl: 1,
                addr: Some(Ipv4Addr::new(20, 0, 0, 9)),
                rtt_ms: Some(0.4),
            }],
            outcome: TracerouteOutcome::Completed,
        };
        let n = parse_windows(&render_windows(&t)).unwrap();
        assert_eq!(n.hops[0].rtt_ms, Some(0.5));
        assert!(n.reached);
    }

    #[test]
    fn parsers_reject_garbage() {
        assert!(parse_linux("").is_err());
        assert!(parse_linux("complete nonsense\n").is_err());
        assert!(parse_windows("no header here\n 1 x\n").is_err());
    }

    #[test]
    fn first_hop_rtt_skips_silent_hops() {
        let t = TracerouteResult {
            dst: Ipv4Addr::new(20, 0, 0, 9),
            hops: vec![
                Hop {
                    ttl: 1,
                    addr: None,
                    rtt_ms: None,
                },
                Hop {
                    ttl: 2,
                    addr: Some(Ipv4Addr::new(20, 0, 0, 1)),
                    rtt_ms: Some(7.0),
                },
                Hop {
                    ttl: 3,
                    addr: Some(Ipv4Addr::new(20, 0, 0, 9)),
                    rtt_ms: Some(20.0),
                },
            ],
            outcome: TracerouteOutcome::Completed,
        };
        let n = normalize_direct(&t);
        assert_eq!(n.first_hop_rtt_ms(), Some(7.0));
        assert_eq!(n.destination_rtt_ms(), Some(20.0));
    }

    proptest! {
        #[test]
        fn linux_roundtrip_for_arbitrary_runs(
            rtts in prop::collection::vec(prop::option::of(0.1f64..500.0), 1..12),
            reached in any::<bool>(),
        ) {
            let dst = Ipv4Addr::new(20, 7, 7, 7);
            let mut hops: Vec<Hop> = rtts
                .iter()
                .enumerate()
                .map(|(i, r)| Hop {
                    ttl: (i + 1) as u8,
                    addr: r.map(|_| Ipv4Addr::new(20, 0, i as u8, 1)),
                    rtt_ms: *r,
                })
                .collect();
            if reached {
                let ttl = hops.len() as u8 + 1;
                hops.push(Hop { ttl, addr: Some(dst), rtt_ms: Some(33.25) });
            }
            let t = TracerouteResult {
                dst,
                hops,
                outcome: if reached {
                    TracerouteOutcome::Completed
                } else {
                    TracerouteOutcome::DestinationUnreached
                },
            };
            let n = parse_linux(&render_linux(&t)).unwrap();
            prop_assert_eq!(n.reached, reached);
            prop_assert_eq!(n.hops.len(), t.hops.len());
            for (a, b) in n.hops.iter().zip(&t.hops) {
                prop_assert_eq!(a.ip, b.addr);
                match (a.rtt_ms, b.rtt_ms) {
                    (Some(x), Some(y)) => prop_assert!((x - y).abs() < 0.001),
                    (None, None) => {}
                    other => prop_assert!(false, "presence mismatch {:?}", other),
                }
            }
        }
    }
}
