//! The Selenium-Chrome background-request artifact.
//!
//! "During our analysis we also noticed that the chrome webdriver used by
//! selenium was generating some google services requests while loading
//! website ... We removed these requests from our data before doing further
//! analysis." (§5, also observed by OmniCrawl). The simulated Chrome emits
//! the same class of requests so the pipeline has something real to strip.

use gamma_dns::DomainName;
use rand::Rng;

/// Hostnames the driver-controlled Chrome contacts on its own.
pub const WEBDRIVER_NOISE_HOSTS: &[&str] = &[
    "update.googleapis.com",
    "optimizationguide-pa.googleapis.com",
    "content-autofill.googleapis.com",
    "safebrowsing.googleapis.com",
    "clients2.google.com",
    "accounts.google.com",
    "edgedl.me.gvt1.com",
];

/// Background requests emitted alongside one page load: a small random
/// subset of the noise hosts (the artifact is intermittent in practice).
pub fn webdriver_background_requests<R: Rng + ?Sized>(rng: &mut R) -> Vec<DomainName> {
    WEBDRIVER_NOISE_HOSTS
        .iter()
        .filter(|_| rng.gen::<f64>() < 0.35)
        .map(|h| DomainName::parse(h).expect("noise hosts are valid"))
        .collect()
}

/// Whether a request is webdriver noise — the filter the analysis applies
/// before any downstream processing (§5).
pub fn is_webdriver_noise(domain: &DomainName) -> bool {
    is_webdriver_noise_host(domain.as_str())
}

/// String-keyed variant of [`is_webdriver_noise`] for callers holding
/// interned hostnames rather than parsed [`DomainName`]s.
pub fn is_webdriver_noise_host(host: &str) -> bool {
    WEBDRIVER_NOISE_HOSTS.iter().any(|h| host == *h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn noise_hosts_parse_and_classify() {
        for h in WEBDRIVER_NOISE_HOSTS {
            let d = DomainName::parse(h).unwrap();
            assert!(is_webdriver_noise(&d), "{h}");
        }
    }

    #[test]
    fn ordinary_google_domains_are_not_noise() {
        // googletagmanager.com is a real tracker request, not an artifact.
        assert!(!is_webdriver_noise(
            &DomainName::parse("googletagmanager.com").unwrap()
        ));
        assert!(!is_webdriver_noise(
            &DomainName::parse("www.googleapis.com").unwrap()
        ));
    }

    #[test]
    fn background_requests_are_intermittent() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let mut total = 0;
        let mut empty_runs = 0;
        for _ in 0..200 {
            let reqs = webdriver_background_requests(&mut rng);
            total += reqs.len();
            if reqs.is_empty() {
                empty_runs += 1;
            }
            for r in &reqs {
                assert!(is_webdriver_noise(r));
            }
        }
        assert!(total > 100, "artifact too rare: {total}");
        assert!(empty_runs > 0, "artifact should be intermittent");
    }
}
