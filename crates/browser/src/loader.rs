//! Page loading over the synthetic web.
//!
//! Reproduces the observable behaviour of Gamma's C1 component: a page
//! either renders within the wait window and yields its network requests, a
//! non-responsive instance hits the 180 s hard ceiling and is killed, or
//! the load fails outright (connectivity). Failure rates are driven by the
//! volunteer's access quality plus the per-country success target, which is
//! how Figure 2b's Japan (64%) and Saudi Arabia (56%) coverage dips arise.

use crate::driver::BrowserConfig;
use crate::webdriver_noise::webdriver_background_requests;
use gamma_chaos::{FaultKind, FaultOracle, FaultScope};
use gamma_dns::DomainName;
use gamma_geo::CountryCode;
use gamma_websim::Website;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Outcome of one page-load attempt.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LoadStatus {
    /// Rendered within the wait window.
    Loaded,
    /// The instance never became responsive; killed at the hard timeout.
    TimedOut,
    /// Connection-level failure (DNS, TCP, TLS, mid-transfer stall).
    Failed,
}

/// A recorded page load: the unit Gamma ships home per target website.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PageLoad {
    /// The site's registrable domain.
    pub site: DomainName,
    pub status: LoadStatus,
    /// Wall-clock render time, ms (meaningful only when `Loaded`).
    pub render_ms: u32,
    /// Network requests observed during the load, including first-party
    /// hosts, tracker fires, and webdriver background noise.
    pub requests: Vec<DomainName>,
}

impl PageLoad {
    pub fn succeeded(&self) -> bool {
        self.status == LoadStatus::Loaded
    }
}

/// Loads one page. `success_rate` is the country-level target (Fig. 2b);
/// the effective failure probability blends it with access quality.
pub fn load_page<R: Rng + ?Sized>(
    site: &Website,
    config: &BrowserConfig,
    success_rate: f64,
    rng: &mut R,
) -> PageLoad {
    debug_assert!(config.validate().is_ok(), "invalid browser config");
    // Render time: log-normal-ish around 8s, occasionally pathological.
    let u: f64 = rng.gen::<f64>().max(1e-12);
    let base_ms = 2_000.0 + 6_000.0 * (-u.ln());
    let render_ms = base_ms.min(600_000.0) as u32;

    if render_ms > config.hard_timeout_seconds * 1_000 {
        return PageLoad {
            site: site.domain.clone(),
            status: LoadStatus::TimedOut,
            render_ms,
            requests: Vec::new(),
        };
    }
    if rng.gen::<f64>() > success_rate {
        return PageLoad {
            site: site.domain.clone(),
            status: LoadStatus::Failed,
            render_ms,
            requests: Vec::new(),
        };
    }

    let mut requests = site.page_requests(rng);
    // Brave-style in-browser blocking drops tracker requests before they
    // are emitted; first-party hosts always go out.
    let block = config.kind.tracker_block_rate();
    if block > 0.0 {
        let own: std::collections::HashSet<_> = site.own_hosts.iter().collect();
        requests.retain(|r| own.contains(r) || rng.gen::<f64>() >= block);
    }
    if config.kind.emits_webdriver_noise() {
        requests.extend(webdriver_background_requests(rng));
    }
    PageLoad {
        site: site.domain.clone(),
        status: LoadStatus::Loaded,
        render_ms,
        requests,
    }
}

/// Loads one page under the unified fault plan. The fault-free load is
/// computed first — consuming exactly the RNG draws [`load_page`] would —
/// and injected faults are then overlaid as a post-filter:
///
/// - `PageHang`: the instance never becomes responsive and is killed at
///   the §3.1 hard timeout; nothing is captured.
/// - `RequestDropped` (per request, by domain and position): individual
///   requests vanish from the capture.
/// - `HarTruncated`: only a prefix of the captured requests survives,
///   sized by the fault's severity.
///
/// A quiet oracle reproduces [`load_page`] byte-for-byte.
pub fn load_page_with<R: Rng + ?Sized>(
    site: &Website,
    config: &BrowserConfig,
    success_rate: f64,
    oracle: &dyn FaultOracle,
    country: Option<CountryCode>,
    rng: &mut R,
) -> PageLoad {
    let mut page = load_page(site, config, success_rate, rng);
    let scope = match country {
        Some(c) => FaultScope::new(c, site.domain.as_str()),
        None => FaultScope::global(site.domain.as_str()),
    };
    if oracle.fires(FaultKind::PageHang, scope) {
        return PageLoad {
            site: page.site,
            status: LoadStatus::TimedOut,
            render_ms: config.hard_timeout_seconds * 1_000,
            requests: Vec::new(),
        };
    }
    if page.status == LoadStatus::Loaded {
        let mut position = 0u64;
        page.requests.retain(|request| {
            let drop_scope = FaultScope {
                country,
                subject: request.as_str(),
                index: position,
            };
            position += 1;
            !oracle.fires(FaultKind::RequestDropped, drop_scope)
        });
        if oracle.fires(FaultKind::HarTruncated, scope) {
            let severity = oracle.severity(FaultKind::HarTruncated, scope);
            let keep = (page.requests.len() as f64 * (1.0 - severity)).floor() as usize;
            page.requests.truncate(keep);
        }
    }
    page
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::BrowserKind;
    use crate::webdriver_noise::is_webdriver_noise;
    use gamma_geo::CountryCode;
    use gamma_websim::{OrgId, SiteCategory, SiteId, SiteKind};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn d(s: &str) -> DomainName {
        DomainName::parse(s).unwrap()
    }

    fn site() -> Website {
        Website {
            id: SiteId(0),
            domain: d("dailystar-th0.co.th"),
            country: CountryCode::new("TH"),
            kind: SiteKind::Regional,
            category: SiteCategory::News,
            operator: OrgId(500),
            global: false,
            own_hosts: vec![d("dailystar-th0.co.th"), d("www.dailystar-th0.co.th")],
            trackers: vec![d("googletagmanager.com"), d("sync.smaato.net")],
        }
    }

    #[test]
    fn successful_load_records_requests() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let p = load_page(&site(), &BrowserConfig::paper_default(), 1.0, &mut rng);
        assert!(p.succeeded());
        assert!(p.requests.contains(&d("dailystar-th0.co.th")));
        assert!(p.render_ms > 0);
    }

    #[test]
    fn zero_success_rate_always_fails() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for _ in 0..20 {
            let p = load_page(&site(), &BrowserConfig::paper_default(), 0.0, &mut rng);
            assert!(!p.succeeded());
            assert!(p.requests.is_empty());
        }
    }

    #[test]
    fn success_rate_is_honored_statistically() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let n = 2_000;
        let ok = (0..n)
            .filter(|_| {
                load_page(&site(), &BrowserConfig::paper_default(), 0.64, &mut rng).succeeded()
            })
            .count();
        let rate = ok as f64 / n as f64;
        assert!((0.58..0.70).contains(&rate), "observed {rate}");
    }

    #[test]
    fn chrome_emits_noise_firefox_does_not() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let mut chrome_noise = 0;
        let mut firefox_noise = 0;
        for _ in 0..100 {
            let c = load_page(&site(), &BrowserConfig::paper_default(), 1.0, &mut rng);
            chrome_noise += c.requests.iter().filter(|r| is_webdriver_noise(r)).count();
            let ff = BrowserConfig {
                kind: BrowserKind::Firefox,
                ..BrowserConfig::paper_default()
            };
            let f = load_page(&site(), &ff, 1.0, &mut rng);
            firefox_noise += f.requests.iter().filter(|r| is_webdriver_noise(r)).count();
        }
        assert!(chrome_noise > 0, "chrome never produced the artifact");
        assert_eq!(firefox_noise, 0);
    }

    #[test]
    fn brave_suppresses_trackers_but_not_first_party() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let brave = BrowserConfig {
            kind: BrowserKind::Brave,
            ..BrowserConfig::paper_default()
        };
        let mut tracker_hits = 0;
        for _ in 0..200 {
            let p = load_page(&site(), &brave, 1.0, &mut rng);
            assert!(p.requests.contains(&d("dailystar-th0.co.th")));
            tracker_hits += p
                .requests
                .iter()
                .filter(|r| r.as_str().contains("smaato") || r.as_str().contains("googletag"))
                .count();
        }
        // 2 trackers x 200 loads x ~0.92 fire x 0.97 block => a handful leak.
        assert!(
            tracker_hits < 40,
            "brave leaked {tracker_hits} tracker requests"
        );
    }

    #[test]
    fn quiet_oracle_matches_legacy_load_byte_for_byte() {
        use gamma_chaos::NoFaults;
        for seed in 0..20 {
            let mut a = ChaCha8Rng::seed_from_u64(seed);
            let mut b = ChaCha8Rng::seed_from_u64(seed);
            let legacy = load_page(&site(), &BrowserConfig::paper_default(), 0.8, &mut a);
            let chaos = load_page_with(
                &site(),
                &BrowserConfig::paper_default(),
                0.8,
                &NoFaults,
                None,
                &mut b,
            );
            assert_eq!(legacy, chaos);
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn injected_hang_is_killed_at_the_hard_timeout() {
        use gamma_chaos::{FaultPlan, FaultProfile};
        let mut profile = FaultProfile::none();
        profile.browser.hang_rate = 1.0;
        let plan = FaultPlan {
            seed: 0,
            base: profile,
            overrides: Vec::new(),
        };
        let config = BrowserConfig::paper_default();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10 {
            let p = load_page_with(&site(), &config, 1.0, &plan, None, &mut rng);
            assert_eq!(p.status, LoadStatus::TimedOut);
            assert_eq!(p.render_ms, config.hard_timeout_seconds * 1_000);
            assert!(p.requests.is_empty());
        }
    }

    #[test]
    fn full_request_drop_empties_the_capture() {
        use gamma_chaos::{FaultPlan, FaultProfile};
        let mut profile = FaultProfile::none();
        profile.browser.request_drop_rate = 1.0;
        let plan = FaultPlan {
            seed: 0,
            base: profile,
            overrides: Vec::new(),
        };
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let p = load_page_with(
            &site(),
            &BrowserConfig::paper_default(),
            1.0,
            &plan,
            None,
            &mut rng,
        );
        assert_eq!(p.status, LoadStatus::Loaded);
        assert!(p.requests.is_empty());
    }

    #[test]
    fn har_truncation_keeps_a_prefix() {
        use gamma_chaos::{FaultPlan, FaultProfile, NoFaults};
        let mut profile = FaultProfile::none();
        profile.browser.har_truncate_rate = 1.0;
        let plan = FaultPlan {
            seed: 3,
            base: profile,
            overrides: Vec::new(),
        };
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let mut b = ChaCha8Rng::seed_from_u64(9);
        let full = load_page_with(
            &site(),
            &BrowserConfig::paper_default(),
            1.0,
            &NoFaults,
            None,
            &mut a,
        );
        let cut = load_page_with(
            &site(),
            &BrowserConfig::paper_default(),
            1.0,
            &plan,
            None,
            &mut b,
        );
        assert!(cut.requests.len() <= full.requests.len());
        assert_eq!(cut.requests[..], full.requests[..cut.requests.len()]);
    }

    #[test]
    fn hard_timeouts_are_rare_but_possible() {
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        let tight = BrowserConfig {
            hard_timeout_seconds: 21,
            ..BrowserConfig::paper_default()
        };
        let timeouts = (0..3_000)
            .filter(|_| load_page(&site(), &tight, 1.0, &mut rng).status == LoadStatus::TimedOut)
            .count();
        assert!(timeouts > 0, "no timeouts under a tight ceiling");
        let normal_timeouts = (0..3_000)
            .filter(|_| {
                load_page(&site(), &BrowserConfig::paper_default(), 1.0, &mut rng).status
                    == LoadStatus::TimedOut
            })
            .count();
        assert!(normal_timeouts < timeouts);
    }
}
