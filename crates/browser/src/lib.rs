//! # gamma-browser
//!
//! The browser-level interaction component (C1) of the Gamma suite,
//! reproduced over the synthetic web: isolated browser sessions load target
//! websites with a configurable render wait (20 s in the study) and a hard
//! 180 s timeout for non-responsive instances (§3.1), record every network
//! request the page makes, fail probabilistically according to the
//! volunteer's connection quality (Figure 2b), and — like the real
//! Selenium-driven Chrome — emit background Google-service requests that
//! the analysis must strip (§5).

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod driver;
pub mod har;
pub mod loader;
pub mod webdriver_noise;

pub use driver::{BrowserConfig, BrowserKind, BrowserSession};
pub use har::{har_from_load, Har};
pub use loader::{load_page, load_page_with, LoadStatus, PageLoad};
pub use webdriver_noise::{
    is_webdriver_noise, is_webdriver_noise_host, webdriver_background_requests,
    WEBDRIVER_NOISE_HOSTS,
};
