//! HAR (HTTP Archive) recording.
//!
//! Gamma's C1 component "is capable of saving full webpages, scraping page
//! content, recording HAR files and all network requests during page
//! loads" (§3). This module builds a HAR 1.2-shaped document from a
//! [`PageLoad`]: one entry per network request with request/response stubs
//! and timing breakdowns, serializable to the standard JSON layout that
//! downstream HAR tooling expects.

use crate::loader::PageLoad;
use serde::{Deserialize, Serialize};

/// Top-level HAR document (`{"log": {...}}`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Har {
    pub log: HarLog,
}

/// The `log` object of a HAR document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarLog {
    pub version: String,
    pub creator: HarCreator,
    pub pages: Vec<HarPage>,
    pub entries: Vec<HarEntry>,
}

/// Tool identification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarCreator {
    pub name: String,
    pub version: String,
}

/// One page record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarPage {
    pub id: String,
    pub title: String,
    #[serde(rename = "pageTimings")]
    pub page_timings: HarPageTimings,
}

/// Page-level timings, ms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarPageTimings {
    #[serde(rename = "onContentLoad")]
    pub on_content_load: f64,
    #[serde(rename = "onLoad")]
    pub on_load: f64,
}

/// One request/response entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarEntry {
    pub pageref: String,
    #[serde(rename = "startedDateTime")]
    pub started_date_time: String,
    pub time: f64,
    pub request: HarRequest,
    pub response: HarResponse,
    pub timings: HarTimings,
}

/// Request stub.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarRequest {
    pub method: String,
    pub url: String,
    #[serde(rename = "httpVersion")]
    pub http_version: String,
}

/// Response stub.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarResponse {
    pub status: u16,
    #[serde(rename = "statusText")]
    pub status_text: String,
    #[serde(rename = "bodySize")]
    pub body_size: i64,
}

/// Per-entry timing breakdown, ms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarTimings {
    pub dns: f64,
    pub connect: f64,
    pub send: f64,
    pub wait: f64,
    pub receive: f64,
}

impl HarTimings {
    /// Total entry time per the HAR spec (sum of the phases).
    pub fn total(&self) -> f64 {
        self.dns + self.connect + self.send + self.wait + self.receive
    }
}

/// Builds a HAR document from a recorded page load. Failed loads produce a
/// page record with no entries (the browser never got the content).
pub fn har_from_load(load: &PageLoad, started_iso8601: &str) -> Har {
    let page_id = format!("page_{}", load.site);
    let entries = if load.succeeded() {
        let n = load.requests.len().max(1) as f64;
        // Spread the render time across requests: the first request (the
        // document) carries the connection setup, the rest share the rest.
        load.requests
            .iter()
            .enumerate()
            .map(|(i, req)| {
                let share = load.render_ms as f64 / n;
                let timings = HarTimings {
                    dns: if i == 0 { share * 0.10 } else { 0.0 },
                    connect: if i == 0 { share * 0.20 } else { share * 0.05 },
                    send: share * 0.05,
                    wait: share * 0.55,
                    receive: share * 0.15,
                };
                HarEntry {
                    pageref: page_id.clone(),
                    started_date_time: started_iso8601.to_string(),
                    time: timings.total(),
                    request: HarRequest {
                        method: "GET".into(),
                        url: format!("https://{req}/"),
                        http_version: "HTTP/2".into(),
                    },
                    response: HarResponse {
                        status: 200,
                        status_text: "OK".into(),
                        body_size: 1024 + (i as i64 * 37) % 16_384,
                    },
                    timings,
                }
            })
            .collect()
    } else {
        Vec::new()
    };
    Har {
        log: HarLog {
            version: "1.2".into(),
            creator: HarCreator {
                name: "gamma".into(),
                version: env!("CARGO_PKG_VERSION").into(),
            },
            pages: vec![HarPage {
                id: page_id,
                title: format!("https://{}/", load.site),
                page_timings: HarPageTimings {
                    on_content_load: load.render_ms as f64 * 0.6,
                    on_load: load.render_ms as f64,
                },
            }],
            entries,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::LoadStatus;
    use gamma_dns::DomainName;

    fn load(success: bool) -> PageLoad {
        PageLoad {
            site: DomainName::parse("example-news.com").unwrap(),
            status: if success {
                LoadStatus::Loaded
            } else {
                LoadStatus::Failed
            },
            render_ms: 8_000,
            requests: if success {
                vec![
                    DomainName::parse("example-news.com").unwrap(),
                    DomainName::parse("www.example-news.com").unwrap(),
                    DomainName::parse("googletagmanager.com").unwrap(),
                ]
            } else {
                vec![]
            },
        }
    }

    #[test]
    fn har_has_one_entry_per_request() {
        let har = har_from_load(&load(true), "2024-03-16T10:00:00Z");
        assert_eq!(har.log.version, "1.2");
        assert_eq!(har.log.entries.len(), 3);
        assert_eq!(har.log.pages.len(), 1);
        assert!(har
            .log
            .entries
            .iter()
            .all(|e| e.pageref == har.log.pages[0].id));
    }

    #[test]
    fn entry_time_equals_timing_phases() {
        let har = har_from_load(&load(true), "2024-03-16T10:00:00Z");
        for e in &har.log.entries {
            assert!((e.time - e.timings.total()).abs() < 1e-9);
        }
    }

    #[test]
    fn page_timings_bracket_the_render() {
        let har = har_from_load(&load(true), "2024-03-16T10:00:00Z");
        let pt = &har.log.pages[0].page_timings;
        assert!(pt.on_content_load < pt.on_load);
        assert_eq!(pt.on_load, 8_000.0);
    }

    #[test]
    fn failed_loads_produce_empty_entries() {
        let har = har_from_load(&load(false), "2024-03-16T10:00:00Z");
        assert!(har.log.entries.is_empty());
        assert_eq!(har.log.pages.len(), 1);
    }

    #[test]
    fn serializes_with_standard_har_field_names() {
        let har = har_from_load(&load(true), "2024-03-16T10:00:00Z");
        let js = serde_json::to_string(&har).unwrap();
        for field in [
            "\"log\"",
            "\"startedDateTime\"",
            "\"pageTimings\"",
            "\"onLoad\"",
            "\"httpVersion\"",
        ] {
            assert!(js.contains(field), "missing {field}");
        }
        let back: Har = serde_json::from_str(&js).unwrap();
        assert_eq!(har, back);
    }

    #[test]
    fn only_first_entry_pays_dns() {
        let har = har_from_load(&load(true), "2024-03-16T10:00:00Z");
        assert!(har.log.entries[0].timings.dns > 0.0);
        for e in &har.log.entries[1..] {
            assert_eq!(e.timings.dns, 0.0);
        }
    }
}
