//! Browser session management.
//!
//! Gamma "initiates full-fledged browser sessions using the Selenium
//! Webdriver ... across major browsers, including Chrome, Firefox, and
//! privacy-focused Brave" (§3, C1). Sessions are isolated: they "do not
//! access volunteers' browser account nor history" (§3.5).

use serde::{Deserialize, Serialize};

/// Supported browsers. The study itself ran isolated Chrome instances
/// (§3); Brave's built-in blocking suppresses third-party tracker requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BrowserKind {
    Chrome,
    Firefox,
    Brave,
}

impl BrowserKind {
    /// Fraction of third-party tracker requests the browser blocks before
    /// they leave the machine (Brave ships an ad/tracker blocker).
    pub fn tracker_block_rate(self) -> f64 {
        match self {
            BrowserKind::Chrome | BrowserKind::Firefox => 0.0,
            BrowserKind::Brave => 0.97,
        }
    }

    /// Whether the driver generates background vendor-service requests
    /// (observed for Selenium-driven Chrome, §5).
    pub fn emits_webdriver_noise(self) -> bool {
        matches!(self, BrowserKind::Chrome)
    }
}

/// Tuning knobs of §3.1.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrowserConfig {
    pub kind: BrowserKind,
    /// Seconds to wait for the page to render fully.
    pub wait_seconds: u32,
    /// Hard per-page ceiling; a non-responsive instance is terminated and
    /// the tool moves on (§3.1).
    pub hard_timeout_seconds: u32,
    /// Simultaneous instances; the study ran single-threaded on volunteer
    /// hardware (§3.1).
    pub instances: u32,
    /// Isolated profile (no pre-existing cookies/history).
    pub isolated: bool,
}

impl Default for BrowserConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl BrowserConfig {
    /// The configuration used in the study: isolated Chrome, 20 s render
    /// wait (double the typical full-render time), 180 s hard ceiling,
    /// single-threaded.
    pub fn paper_default() -> Self {
        BrowserConfig {
            kind: BrowserKind::Chrome,
            wait_seconds: 20,
            hard_timeout_seconds: 180,
            instances: 1,
            isolated: true,
        }
    }

    /// Validates the knob relationships.
    pub fn validate(&self) -> Result<(), String> {
        if self.wait_seconds == 0 {
            return Err("wait_seconds must be positive".into());
        }
        if self.hard_timeout_seconds <= self.wait_seconds {
            return Err("hard timeout must exceed the render wait".into());
        }
        if self.instances == 0 {
            return Err("at least one browser instance is required".into());
        }
        Ok(())
    }
}

/// A running (simulated) browser session; owns per-session counters.
#[derive(Debug, Clone)]
pub struct BrowserSession {
    pub config: BrowserConfig,
    pages_loaded: u64,
    pages_failed: u64,
    instances_killed: u64,
}

impl BrowserSession {
    pub fn new(config: BrowserConfig) -> Result<Self, String> {
        config.validate()?;
        Ok(BrowserSession {
            config,
            pages_loaded: 0,
            pages_failed: 0,
            instances_killed: 0,
        })
    }

    pub fn record_load(&mut self) {
        self.pages_loaded += 1;
    }

    pub fn record_failure(&mut self) {
        self.pages_failed += 1;
    }

    /// A hard-timeout kill (§3.1's termination path).
    pub fn record_kill(&mut self) {
        self.instances_killed += 1;
        self.pages_failed += 1;
    }

    /// (loaded, failed, killed) counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (self.pages_loaded, self.pages_failed, self.instances_killed)
    }

    /// Fraction of attempted pages that loaded.
    pub fn success_rate(&self) -> f64 {
        let total = self.pages_loaded + self.pages_failed;
        if total == 0 {
            return 1.0;
        }
        self.pages_loaded as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_3_1() {
        let c = BrowserConfig::paper_default();
        assert_eq!(c.kind, BrowserKind::Chrome);
        assert_eq!(c.wait_seconds, 20);
        assert_eq!(c.hard_timeout_seconds, 180);
        assert_eq!(c.instances, 1);
        assert!(c.isolated);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_inverted_timeouts() {
        let c = BrowserConfig {
            hard_timeout_seconds: 10,
            ..BrowserConfig::paper_default()
        };
        assert!(c.validate().is_err());
        let c = BrowserConfig {
            wait_seconds: 0,
            ..BrowserConfig::paper_default()
        };
        assert!(c.validate().is_err());
        let c = BrowserConfig {
            instances: 0,
            ..BrowserConfig::paper_default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn brave_blocks_chrome_does_not() {
        assert_eq!(BrowserKind::Chrome.tracker_block_rate(), 0.0);
        assert!(BrowserKind::Brave.tracker_block_rate() > 0.9);
        assert!(BrowserKind::Chrome.emits_webdriver_noise());
        assert!(!BrowserKind::Firefox.emits_webdriver_noise());
    }

    #[test]
    fn session_counters() {
        let mut s = BrowserSession::new(BrowserConfig::paper_default()).unwrap();
        s.record_load();
        s.record_load();
        s.record_failure();
        s.record_kill();
        assert_eq!(s.stats(), (2, 2, 1));
        assert!((s.success_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn fresh_session_reports_full_success() {
        let s = BrowserSession::new(BrowserConfig::paper_default()).unwrap();
        assert_eq!(s.success_rate(), 1.0);
    }
}
