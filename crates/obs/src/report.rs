//! The machine-readable benchmark report behind `--metrics-out`.
//!
//! One JSON document per run: identity (seed, workers, countries), wall
//! clock per stage, throughput, and the full instrument snapshot. The
//! timing fields (`total_wall_ms`, `stages`, `throughput`, histograms) are
//! the only parts that may differ between two identical seeded runs —
//! `counters` and `gauges` are pure functions of the seed (minus the
//! documented `campaign.sched.*` scheduling family, which is zero in
//! single-worker runs).

use crate::registry::{HistogramSnapshot, Snapshot};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Current report layout version.
pub const REPORT_SCHEMA: u32 = 1;

/// A complete per-run performance report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    pub schema: u32,
    pub seed: u64,
    pub workers: usize,
    pub countries: usize,
    /// End-to-end campaign wall clock, milliseconds.
    pub total_wall_ms: f64,
    /// Per-stage wall clock, milliseconds (summed across shards).
    pub stages: BTreeMap<String, f64>,
    /// Work per wall-clock second, e.g. `sites_per_sec`.
    pub throughput: BTreeMap<String, f64>,
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsReport {
    /// Assembles a report from a run's counter/gauge/histogram deltas
    /// (an end snapshot diffed against a start snapshot) and the stage
    /// wall times the caller measured.
    pub fn new(
        seed: u64,
        workers: usize,
        countries: usize,
        total_wall_ms: f64,
        stages: BTreeMap<String, f64>,
        start: &Snapshot,
        end: &Snapshot,
    ) -> MetricsReport {
        MetricsReport {
            schema: REPORT_SCHEMA,
            seed,
            workers,
            countries,
            total_wall_ms,
            stages,
            throughput: BTreeMap::new(),
            counters: end.counters_since(start, false),
            gauges: end.gauges.clone(),
            histograms: end.histograms.clone(),
        }
    }

    /// Adds a throughput row derived from a counted unit and the total
    /// wall clock (no-op when the wall clock is zero).
    pub fn with_throughput(mut self, name: &str, units: f64) -> MetricsReport {
        if self.total_wall_ms > 0.0 {
            self.throughput
                .insert(name.to_owned(), units / (self.total_wall_ms / 1e3));
        }
        self
    }

    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string_pretty(self).map_err(|e| e.to_string())
    }

    pub fn from_json(text: &str) -> Result<MetricsReport, String> {
        serde_json::from_str(text).map_err(|e| e.to_string())
    }

    /// The CI sanity gate: stage wall times present and nonzero, and the
    /// counter snapshot spans every instrumented subsystem with at least
    /// `min_counters` distinct names.
    pub fn validate(&self, min_counters: usize) -> Result<(), String> {
        if self.schema != REPORT_SCHEMA {
            return Err(format!("unknown schema {}", self.schema));
        }
        if self.total_wall_ms <= 0.0 {
            return Err("total wall clock is zero".into());
        }
        if self.stages.is_empty() {
            return Err("no stage wall times recorded".into());
        }
        if let Some((name, _)) = self.stages.iter().find(|(_, ms)| **ms <= 0.0) {
            return Err(format!("stage {name:?} reports zero wall time"));
        }
        if self.counters.len() < min_counters {
            return Err(format!(
                "only {} counters recorded, expected at least {min_counters}",
                self.counters.len()
            ));
        }
        self.require_namespaces(&["dns.", "geoloc.", "trackers.", "campaign."])
    }

    /// Checks the snapshot has at least one counter or gauge under each
    /// of the given namespace prefixes. `validate` applies this to the
    /// core pipeline families; callers gate additional subsystems (the
    /// CI server smoke requires the `server.*` families) via
    /// `--check-metrics --require-ns PREFIX`.
    pub fn require_namespaces(&self, namespaces: &[&str]) -> Result<(), String> {
        for ns in namespaces {
            let present = self
                .counters
                .keys()
                .chain(self.gauges.keys())
                .any(|k| k.starts_with(ns));
            if !present {
                return Err(format!("no counters in the {ns}* namespace"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    fn sample() -> MetricsReport {
        let r = Registry::new();
        let before = r.snapshot();
        for name in [
            "dns.cache.hit",
            "geoloc.funnel.confirmed",
            "trackers.abp.evaluations",
            "campaign.shards.completed",
            "suite.pages.loaded",
            "suite.requests.captured",
            "netsim.traceroutes",
            "dns.cache.miss",
            "geoloc.funnel.local",
            "campaign.retries",
        ] {
            r.counter(name).add(3);
        }
        let after = r.snapshot();
        let stages = BTreeMap::from([
            ("measure".to_owned(), 120.0),
            ("geolocate".to_owned(), 60.0),
            ("finalize".to_owned(), 1.5),
        ]);
        MetricsReport::new(7, 1, 3, 200.0, stages, &before, &after)
            .with_throughput("sites_per_sec", 48.0)
    }

    #[test]
    fn valid_reports_pass_and_roundtrip() {
        let rep = sample();
        rep.validate(10).expect("valid report");
        let js = rep.to_json().expect("serialize");
        let back = MetricsReport::from_json(&js).expect("parse");
        assert_eq!(back, rep);
        assert!((back.throughput["sites_per_sec"] - 240.0).abs() < 1e-9);
    }

    #[test]
    fn zero_stage_walls_fail_validation() {
        let mut rep = sample();
        rep.stages.insert("measure".into(), 0.0);
        let err = rep.validate(10).expect_err("zero stage must fail");
        assert!(err.contains("measure"), "{err}");
    }

    #[test]
    fn missing_namespaces_fail_validation() {
        let mut rep = sample();
        rep.counters.retain(|k, _| !k.starts_with("trackers."));
        let err = rep.validate(5).expect_err("missing namespace must fail");
        assert!(err.contains("trackers."), "{err}");
    }

    #[test]
    fn extra_namespace_requirements_are_checked_separately() {
        let mut rep = sample();
        assert!(rep.require_namespaces(&["dns.", "suite."]).is_ok());
        let err = rep
            .require_namespaces(&["server.sched."])
            .expect_err("no server counters in the sample");
        assert!(err.contains("server.sched."), "{err}");
        rep.counters.insert("server.sched.ticks".into(), 3);
        assert!(rep.require_namespaces(&["server.sched."]).is_ok());
        // Gauge-only families (e.g. server.queue.depth) also satisfy a
        // namespace requirement.
        rep.gauges.insert("server.queue.depth".into(), 1);
        assert!(rep.require_namespaces(&["server.queue."]).is_ok());
    }

    #[test]
    fn thin_counter_sets_fail_validation() {
        let mut rep = sample();
        let keep: Vec<String> = rep.counters.keys().take(4).cloned().collect();
        rep.counters.retain(|k, _| keep.contains(k));
        assert!(rep.validate(10).is_err());
    }
}
