//! # gamma-obs
//!
//! The observability plane: every measurement layer reports *what it did*
//! (typed counters and gauges), *how long it took* (wall-clock spans and
//! log-linear histograms), and the campaign distills both into a
//! machine-readable per-run benchmark report (`--metrics-out`) plus a
//! human `--trace` tree.
//!
//! ## Determinism contract
//!
//! Wall-clock time is read **only** inside the span layer and flows
//! **only** outward — into `time.*` histograms, the trace sink, and the
//! ledger fields of the report. It never feeds seeded state: with metrics
//! collected or not, traced or not, every byte of measurement output is
//! identical. Counters count *work*, and work is a pure function of the
//! seed, so two identical seeded runs produce identical counter values;
//! the one documented exception is the `campaign.sched.*` family, which
//! counts work-stealing events and is only meaningful (and only nonzero)
//! under multi-worker schedules.
//!
//! ## Idiom
//!
//! ```
//! use gamma_obs as obs;
//!
//! // Counting: cache the handle if the call site is hot.
//! obs::global().counter("dns.cache.hit").inc();
//!
//! // Timing a stage, with the measured duration for the ledger:
//! let span = obs::span!("geolocate", country = "BR");
//! // ... do the work ...
//! let wall = span.finish();
//! # let _ = wall;
//! ```

#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod registry;
pub mod report;
pub mod span;

pub use registry::{global, Counter, Gauge, Histogram, HistogramSnapshot, Registry, Snapshot};
pub use report::{MetricsReport, REPORT_SCHEMA};
pub use span::{render_trace, ActiveSpan, SpanRecord};
